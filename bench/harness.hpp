// harness.hpp — the single entry point for experiment binaries.
//
// Every bench registers the same flags (--full, --csv, --json, --out,
// --progress, --seed, --trials, --threads, --no-reuse) exactly once, via
// run_harness(); the per-bench code only adds its own options and fills a
// run callback. The Harness context wires those flags into the sweep
// engine (SweepOptions), selects the table style, and collects every
// emitted table plus any attached JSON fragments into one structured
// document for --json (stdout) and --out FILE — the format
// scripts/bench_to_json.py consumes.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <streambuf>
#include <string>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "core/study.hpp"
#include "core/sweep.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace sfc::bench {

namespace detail {
/// Discard sink for prose when stdout must stay a parseable document.
class NullBuffer : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
};
}  // namespace detail

/// Per-bench context handed to HarnessSpec::run. Accessors expose the
/// parsed common flags; emit()/attach_json() feed the output document.
class Harness {
 public:
  explicit Harness(util::ArgParser& args) : args_(args), null_(&null_buffer_) {
    const long long threads = args.i64("threads");
    if (threads != 1) {
      pool_ = std::make_unique<util::ThreadPool>(
          threads <= 0 ? 0u : static_cast<unsigned>(threads));
    }
  }

  util::ArgParser& args() noexcept { return args_; }
  const util::ArgParser& args() const noexcept { return args_; }

  bool full() const { return args_.flag("full"); }
  bool json() const { return args_.flag("json"); }
  bool reuse() const { return !args_.flag("no-reuse"); }
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(args_.i64("seed"));
  }
  unsigned trials() const { return static_cast<unsigned>(args_.i64("trials")); }

  util::TableStyle style() const {
    if (json()) return util::TableStyle::kJson;
    return args_.flag("csv") ? util::TableStyle::kCsv
                             : util::TableStyle::kAscii;
  }

  /// Worker pool from --threads (1 = none/serial, 0 = all cores).
  util::ThreadPool* pool() noexcept { return pool_.get(); }

  /// Engine options wired from the common flags. Pass the study to get a
  /// per-cell stderr progress line under --progress.
  core::SweepOptions sweep_options(const core::Study* study = nullptr) const {
    core::SweepOptions options;
    options.pool = pool_.get();
    options.reuse = reuse();
    if (args_.flag("progress") && study != nullptr) {
      const core::Study s = *study;  // copy: outlives the caller's study
      options.progress = [s](const core::StudyCellRef& ref) {
        std::cerr << "  .. " << dist_name(s.distributions[ref.distribution])
                  << " trial " << ref.trial + 1 << "/" << s.trials << ": "
                  << curve_name(s.particle_curves[ref.particle_curve]);
        if (!s.paired_curves()) {
          std::cerr << " x "
                    << curve_name(s.processor_curves[ref.processor_curve]);
        }
        std::cerr << " @ " << topology_name(s.topologies[ref.topology])
                  << " p=" << s.proc_counts[ref.proc_count] << " done\n";
      };
    }
    return options;
  }

  /// Legacy string progress sink for the non-sweep studies (fig5).
  core::ProgressFn text_progress() const {
    if (!args_.flag("progress")) return {};
    return [](const std::string& msg) { std::cerr << "  .. " << msg << "\n"; };
  }

  /// Stream for human prose (headers, legends): stdout normally, a
  /// discard sink under --json so stdout stays one parseable document.
  std::ostream& prose() { return json() ? null_ : std::cout; }

  /// Print a table in the selected style (suppressed under --json) and
  /// record it for the output document.
  void emit(const util::Table& table) {
    if (!json()) {
      table.print(std::cout, style());
      std::cout << "\n";
    }
    tables_.push_back(table);
  }

  /// Attach a pre-serialized JSON member to the output document, e.g.
  /// attach_json("study", core::study_json(result)).
  void attach_json(std::string key, std::string json_value) {
    attachments_.emplace_back(std::move(key), std::move(json_value));
  }

  /// The combined JSON document (run_harness adds name + elapsed time).
  std::string document(const std::string& name,
                       double elapsed_seconds) const {
    std::ostringstream os;
    os.precision(17);
    os << "{\"bench\":\"" << util::json_escape(name) << '"'
       << ",\"elapsed_seconds\":" << elapsed_seconds
       << ",\"reuse\":" << (reuse() ? "true" : "false")
       << ",\"threads\":" << (pool_ ? pool_->size() : 1u) << ",\"tables\":[";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (i) os << ',';
      tables_[i].print(os, util::TableStyle::kJson);
    }
    os << ']';
    for (const auto& [key, value] : attachments_) {
      os << ",\"" << util::json_escape(key) << "\":" << value;
    }
    os << '}';
    return os.str();
  }

 private:
  util::ArgParser& args_;
  std::unique_ptr<util::ThreadPool> pool_;
  detail::NullBuffer null_buffer_;
  std::ostream null_;
  std::vector<util::Table> tables_;
  std::vector<std::pair<std::string, std::string>> attachments_;
};

/// One experiment binary: a name/description for --help, optional extra
/// options, and the run body.
struct HarnessSpec {
  std::string name;
  std::string description;
  std::function<void(util::ArgParser&)> add_options;  ///< optional extras
  std::function<int(Harness&)> run;
};

/// The shared main(): registers the common flags once, parses, times the
/// run body, and writes the JSON document to stdout (--json) and/or a
/// file (--out).
inline int run_harness(int argc, const char* const* argv,
                       const HarnessSpec& spec) {
  util::ArgParser args(spec.name, spec.description);
  args.add_flag("full", "run at the paper's exact scale (slow on laptops)");
  args.add_flag("csv", "emit CSV instead of ASCII tables");
  args.add_flag("json", "emit one JSON document on stdout");
  args.add_flag("progress", "report per-cell progress on stderr");
  args.add_flag("no-reuse",
                "disable sweep-engine artifact reuse (per-cell baseline)");
  args.add_option("seed", "master RNG seed", "1");
  args.add_option("trials", "independent trials to average", "1");
  args.add_option("threads", "worker threads (1 = serial, 0 = all cores)",
                  "1");
  args.add_option("out", "write the JSON document to this file", "");
  if (spec.add_options) spec.add_options(args);

  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  Harness harness(args);
  const auto start = std::chrono::steady_clock::now();
  const int status = spec.run(harness);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::string doc = harness.document(spec.name, elapsed);
  if (harness.json()) std::cout << doc << "\n";
  const std::string out = args.str("out");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "error: cannot open " << out << " for writing\n";
      return 1;
    }
    os << doc << "\n";
  }
  return status;
}

}  // namespace sfc::bench
