// harness.hpp — the single entry point for experiment binaries.
//
// Every bench registers the same flags (--full, --csv, --json, --out,
// --progress, --seed, --trials, --threads, --no-reuse, --trace,
// --metrics) exactly once, via run_harness(); the per-bench code only
// adds its own options and fills a run callback. The Harness context
// wires those flags into the sweep engine (SweepOptions), selects the
// table style, and collects every emitted table plus any attached JSON
// fragments into one structured document for --json (stdout) and --out
// FILE — the format scripts/bench_to_json.py consumes. Every document
// carries the build provenance from util/version.hpp.
//
// Observability: --trace FILE enables the obs span tracer for the run
// and writes a Chrome/Perfetto trace to FILE afterwards; --metrics
// enables the obs metrics registry and embeds its JSON snapshot in the
// output document under "metrics". The flight recorder (obs/flight.hpp)
// is on by *default* — every harness run gets the crash handler (path
// from --crash-report), a "stage_profile" section aggregating span
// durations per stage, and a background registry sampler (period from
// --sample-ms / SFCACD_OBS_SAMPLE_MS); --no-flight opts a run out, and
// --prom FILE exports the final registry in the Prometheus text format.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <streambuf>
#include <string>
#include <utility>
#include <vector>

#include "core/artifact_store.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "core/sweep.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/version.hpp"

namespace sfc::bench {

namespace detail {
/// Discard sink for prose when stdout must stay a parseable document.
class NullBuffer : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
};
}  // namespace detail

/// Per-bench context handed to HarnessSpec::run. Accessors expose the
/// parsed common flags; emit()/attach_json() feed the output document.
class Harness {
 public:
  explicit Harness(util::ArgParser& args) : args_(args), null_(&null_buffer_) {
    obs::Tracer::instance().set_thread_name("main");
    if (!args.str("trace").empty()) {
      obs::Tracer::instance().set_enabled(true);
    }
    if (args.flag("metrics")) obs::Registry::instance().set_enabled(true);
    if (flight()) {
      // Always-on forensics: crash handler + recorder + an initial
      // metrics snapshot, then the background sampler keeping that
      // snapshot (and the time-series rings) fresh. --sample-ms -1
      // leaves the recorder on but skips the sampler thread.
      obs::FlightRecorder::instance().install_crash_handler(
          args.str("crash-report"));
      const long long sample_ms = args.i64("sample-ms");
      const long long capacity = args.i64("sample-capacity");
      if (sample_ms >= 0) {
        obs::Sampler::instance().configure(
            sample_ms > 0 ? static_cast<std::uint64_t>(sample_ms)
                          : obs::Sampler::default_period_ms(),
            capacity > 0 ? static_cast<std::size_t>(capacity) : 0);
        obs::Sampler::instance().start();
      }
    }
    const long long threads = args.i64("threads");
    if (threads != 1) {
      pool_ = std::make_unique<util::ThreadPool>(
          threads <= 0 ? 0u : static_cast<unsigned>(threads));
    }
    const std::string store_dir = args.str("store");
    if (!store_dir.empty()) {
      core::ArtifactStoreOptions store_options;
      store_options.dir = store_dir;
      const long long budget = args.i64("store-budget");
      if (budget > 0) {
        store_options.byte_budget = static_cast<std::size_t>(budget);
      }
      store_options.clear = args.flag("store-clear");
      store_ = std::make_unique<core::ArtifactStore>(store_options);
    }
  }

  util::ArgParser& args() noexcept { return args_; }
  const util::ArgParser& args() const noexcept { return args_; }

  bool full() const { return args_.flag("full"); }
  bool json() const { return args_.flag("json"); }
  bool reuse() const { return !args_.flag("no-reuse"); }
  bool metrics() const { return args_.flag("metrics"); }
  bool flight() const { return !args_.flag("no-flight"); }
  std::string trace_path() const { return args_.str("trace"); }
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(args_.i64("seed"));
  }
  unsigned trials() const { return static_cast<unsigned>(args_.i64("trials")); }

  util::TableStyle style() const {
    if (json()) return util::TableStyle::kJson;
    return args_.flag("csv") ? util::TableStyle::kCsv
                             : util::TableStyle::kAscii;
  }

  /// Worker pool from --threads (1 = none/serial, 0 = all cores).
  util::ThreadPool* pool() noexcept { return pool_.get(); }

  /// Persistent artifact store from --store (nullptr = memory only).
  core::ArtifactStore* store() noexcept { return store_.get(); }

  /// Engine options wired from the common flags. Pass the study to get a
  /// per-cell stderr progress line under --progress.
  core::SweepOptions sweep_options(const core::Study* study = nullptr) const {
    core::SweepOptions options;
    options.pool = pool_.get();
    options.reuse = reuse();
    options.store = store_.get();
    if (args_.flag("progress") && study != nullptr) {
      const core::Study s = *study;  // copy: outlives the caller's study
      options.progress = [s](const core::StudyCellRef& ref,
                             double elapsed_ms) {
        std::ostringstream line;
        line << "  .. " << dist_name(s.distributions[ref.distribution])
             << " trial " << ref.trial + 1 << "/" << s.trials << ": "
             << curve_name(s.particle_curves[ref.particle_curve]);
        if (!s.paired_curves()) {
          line << " x "
               << curve_name(s.processor_curves[ref.processor_curve]);
        }
        line << " @ " << topology_name(s.topologies[ref.topology])
             << " p=" << s.proc_counts[ref.proc_count] << " done in "
             << std::fixed << std::setprecision(2) << elapsed_ms << " ms\n";
        std::cerr << line.str();
      };
    }
    return options;
  }

  /// Record a finished sweep in the output document (the "study" JSON
  /// member) and, under --progress, summarize the engine's cache
  /// accounting on stderr: evictions, resident/peak bytes, and per-stage
  /// hit ratios.
  void attach_study(const core::StudyResult& result) {
    attach_json("study", core::study_json(result));
    if (!args_.flag("progress")) return;
    const core::SweepStats& sweep = result.sweep;
    std::ostringstream line;
    line << "  .. cache: " << sweep.total_hits() << " hits / "
         << sweep.total_misses() << " misses, " << sweep.evictions
         << " evictions, " << sweep.bytes << " resident bytes ("
         << sweep.peak_bytes << " peak)\n  .. stage hit ratios:";
    for (unsigned i = 0; i < core::kSweepStageCount; ++i) {
      const auto stage = static_cast<core::SweepStage>(i);
      const core::StageCounters& c = sweep.stage(stage);
      if (c.hits + c.misses == 0) continue;
      line << ' ' << core::sweep_stage_name(stage) << '='
           << std::fixed << std::setprecision(2) << c.hit_ratio();
    }
    line << '\n';
    if (store_ != nullptr) {
      const core::ArtifactStore::Stats st = store_->stats();
      line << "  .. store: " << st.hits << " hits / " << st.misses
           << " misses, " << st.corrupt << " corrupt, " << st.spills
           << " spills, " << st.resident_files << " files ("
           << st.resident_bytes << " bytes)\n";
    }
    std::cerr << line.str();
  }

  /// Legacy string progress sink for the non-sweep studies (fig5).
  core::ProgressFn text_progress() const {
    if (!args_.flag("progress")) return {};
    return [](const std::string& msg) { std::cerr << "  .. " << msg << "\n"; };
  }

  /// Stream for human prose (headers, legends): stdout normally, a
  /// discard sink under --json so stdout stays one parseable document.
  std::ostream& prose() { return json() ? null_ : std::cout; }

  /// Print a table in the selected style (suppressed under --json) and
  /// record it for the output document.
  void emit(const util::Table& table) {
    if (!json()) {
      table.print(std::cout, style());
      std::cout << "\n";
    }
    tables_.push_back(table);
  }

  /// Attach a pre-serialized JSON member to the output document, e.g.
  /// attach_json("study", core::study_json(result)).
  void attach_json(std::string key, std::string json_value) {
    attachments_.emplace_back(std::move(key), std::move(json_value));
  }

  /// The combined JSON document (run_harness adds name + elapsed time).
  std::string document(const std::string& name,
                       double elapsed_seconds) const {
    std::ostringstream os;
    os.precision(17);
    os << "{\"bench\":\"" << util::json_escape(name) << '"'
       << ",\"elapsed_seconds\":" << elapsed_seconds
       << ",\"reuse\":" << (reuse() ? "true" : "false")
       << ",\"threads\":" << (pool_ ? pool_->size() : 1u)
       << ",\"build\":" << build_info_json();
    // Every document from a store-backed run carries the store's
    // accounting — bench_to_json.py gates on the warm hit ratio.
    if (store_ != nullptr) os << ",\"artifact_store\":" << store_->json();
    os << ",\"tables\":[";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (i) os << ',';
      tables_[i].print(os, util::TableStyle::kJson);
    }
    os << ']';
    for (const auto& [key, value] : attachments_) {
      os << ",\"" << util::json_escape(key) << "\":" << value;
    }
    os << '}';
    return os.str();
  }

 private:
  util::ArgParser& args_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<core::ArtifactStore> store_;
  detail::NullBuffer null_buffer_;
  std::ostream null_;
  std::vector<util::Table> tables_;
  std::vector<std::pair<std::string, std::string>> attachments_;
};

/// One experiment binary: a name/description for --help, optional extra
/// options, and the run body.
struct HarnessSpec {
  std::string name;
  std::string description;
  std::function<void(util::ArgParser&)> add_options;  ///< optional extras
  std::function<int(Harness&)> run;
};

/// The shared main(): registers the common flags once, parses, times the
/// run body, and writes the JSON document to stdout (--json) and/or a
/// file (--out).
inline int run_harness(int argc, const char* const* argv,
                       const HarnessSpec& spec) {
  util::ArgParser args(spec.name, spec.description);
  args.add_flag("full", "run at the paper's exact scale (slow on laptops)");
  args.add_flag("csv", "emit CSV instead of ASCII tables");
  args.add_flag("json", "emit one JSON document on stdout");
  args.add_flag("progress", "report per-cell progress on stderr");
  args.add_flag("no-reuse",
                "disable sweep-engine artifact reuse (per-cell baseline)");
  args.add_flag("metrics",
                "embed an obs metrics snapshot in the JSON document");
  args.add_flag("no-flight",
                "disable the flight recorder, crash handler, and sampler");
  args.add_option("trace",
                  "write a Chrome/Perfetto trace of the run to this file",
                  "");
  args.add_option("crash-report",
                  "crash-report path for the flight recorder's handler",
                  "sfcacd_crash_report.json");
  args.add_option("sample-ms",
                  "registry sampling period in ms (0 = default/env "
                  "SFCACD_OBS_SAMPLE_MS, -1 = no sampler thread)",
                  "0");
  args.add_option("sample-capacity",
                  "time-series ring capacity in points per metric "
                  "(0 = default)",
                  "0");
  args.add_option("prom",
                  "write the final metrics registry to this file in the "
                  "Prometheus text exposition format",
                  "");
  args.add_option("store",
                  "persistent artifact store directory (empty = memory-only "
                  "cache; warm reruns deserialize instead of recomputing)",
                  "");
  args.add_option("store-budget",
                  "artifact store byte budget (0 = default 4 GiB)", "0");
  args.add_flag("store-clear",
                "delete every stored artifact when opening --store");
  args.add_option("seed", "master RNG seed", "1");
  args.add_option("trials", "independent trials to average", "1");
  args.add_option("threads", "worker threads (1 = serial, 0 = all cores)",
                  "1");
  args.add_option("out", "write the JSON document to this file", "");
  if (spec.add_options) spec.add_options(args);

  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  std::unique_ptr<Harness> harness_ptr;
  try {
    harness_ptr = std::make_unique<Harness>(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  Harness& harness = *harness_ptr;
  const auto start = std::chrono::steady_clock::now();
  const int status = spec.run(harness);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // The run body (and its pool tasks — the Harness pool idles before the
  // body returns) has finished: snapshot metrics into the document and
  // flush the trace.
  if (harness.flight()) {
    // Stop the sampler before exporting so the rings are stable, then
    // take one final sample: even a run shorter than one period gets a
    // closing point, and the crash-report snapshot reflects run end.
    obs::Sampler::instance().stop();
    obs::Sampler::instance().sample_once(obs::now_ns());
    // Quiescent now (run body and pool tasks done): the stage profile is
    // part of every document so regressions are attributable post hoc.
    harness.attach_json(
        "stage_profile",
        obs::FlightRecorder::instance().stage_profile_json());
  }
  if (harness.metrics()) {
    harness.attach_json("metrics", obs::Registry::instance().json());
    if (harness.flight()) {
      harness.attach_json("timeseries", obs::Sampler::instance().json());
    }
  }
  const std::string prom_path = args.str("prom");
  if (!prom_path.empty()) {
    std::ofstream os(prom_path);
    if (!os) {
      std::cerr << "error: cannot open " << prom_path << " for writing\n";
      return 1;
    }
    os << obs::prometheus_text();
  }
  const std::string trace_path = harness.trace_path();
  if (!trace_path.empty()) {
    obs::Tracer::instance().set_enabled(false);
    if (!obs::Tracer::instance().write_chrome_trace(trace_path)) {
      std::cerr << "error: cannot write trace to " << trace_path << "\n";
      return 1;
    }
    std::cerr << "trace: " << obs::Tracer::instance().event_count()
              << " events -> " << trace_path << "\n";
  }

  const std::string doc = harness.document(spec.name, elapsed);
  if (harness.json()) std::cout << doc << "\n";
  const std::string out = args.str("out");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      std::cerr << "error: cannot open " << out << " for writing\n";
      return 1;
    }
    os << doc << "\n";
  }
  return status;
}

}  // namespace sfc::bench
