// ext_weighted — SFC load balancing (paper reference [4], Aluru &
// Sevilgen): when per-particle work is non-uniform, the curve order is cut
// by running *weight* instead of count. This harness measures what that
// buys (load imbalance) and what it costs (ACD) on a clustered input
// where near-field work is density-proportional.
#include <iostream>

#include "bench_common.hpp"
#include "fmm/enumerate.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_weighted",
                       "weighted vs equal-count SFC partitioning");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "60000");
  args.add_option("level", "log2 resolution side", "9");
  args.add_option("procs", "processor count", "1024");
  args.add_option("radius", "near-field Chebyshev radius", "2");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));
  const auto radius = static_cast<unsigned>(args.i64("radius"));

  std::cout << "== Weighted partitioning: " << particles_n
            << " clustered particles, " << (1u << level)
            << "^2 resolution, p=" << procs << " torus, r=" << radius
            << " ==\n\n";

  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto raw = dist::sample_particles<2>(dist::DistKind::kClusters, sample);

  util::Table table("equal-count vs weight-balanced chunking");
  table.set_header({"curve", "imb(count)", "imb(weighted)", "ACD(count)",
                    "ACD(weighted)"});

  for (const CurveKind kind : kPaperCurves) {
    const auto curve = make_curve<2>(kind);
    const core::AcdInstance<2> instance(raw, level, *curve);
    const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                            procs, curve.get());

    // Work model: one unit per particle plus one per near-field
    // interaction it must compute (density-proportional).
    std::vector<double> weights(instance.particles().size(), 1.0);
    fmm::nfi_visit<2>(instance.particles(), instance.grid(), radius,
                      fmm::NeighborNorm::kChebyshev,
                      [&](std::size_t i, std::size_t) { weights[i] += 1.0; });

    const fmm::Partition equal(instance.particles().size(), procs);
    const auto balanced = fmm::Partition::weighted(weights, procs);

    const double acd_equal = instance.nfi(equal, *net, radius).acd();
    const double acd_weighted = instance.nfi(balanced, *net, radius).acd();
    table.add_row(std::string(curve_name(kind)),
                  {equal.imbalance(weights), balanced.imbalance(weights),
                   acd_equal, acd_weighted});
    if (args.flag("progress")) {
      std::cerr << "  .. " << curve_name(kind) << " done\n";
    }
  }

  table.print(std::cout, bench::table_style(args));
  std::cout << "\nreading guide: weight-balanced cuts bring the heaviest "
               "processor's load to ~1x ideal at a small ACD\nchange — the "
               "SFC ordering, not the cut rule, is what controls "
               "communication distance, so the paper's\ncurve "
               "recommendations hold for the load-balanced deployment "
               "too.\n";
  return 0;
}
