// ablation_distribution — Section VI-A/VI-C distribution claims:
//   * NFI: uniform is best, exponential second, normal worst (the central
//     cluster straddles every recursive curve's biggest discontinuity),
//     with roughly a 2x uniform-to-normal gap for the recursive curves;
//   * FFI: the distributions are nearly indistinguishable, with
//     exponential at or below uniform (sparser quadrants -> smaller
//     interaction lists at fine levels).
#include <iostream>
#include <memory>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ablation_distribution",
                       "ACD per input distribution (Hilbert/Hilbert)");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "150000");
  args.add_option("level", "log2 resolution side", "10");
  args.add_option("procs", "processor count", "16384");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  args.add_flag("extended",
                "also evaluate the Clusters and Plummer n-body inputs");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));
  const auto radius = static_cast<unsigned>(args.i64("radius"));
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));

  std::cout << "== Distribution ablation: " << particles_n << " particles, "
            << (1u << level) << "^2 resolution, p=" << procs
            << " torus, r=" << radius << " ==\n\n";

  const std::vector<CurveKind> curves(kPaperCurves, kPaperCurves + 4);
  util::Table nfi_table("NFI ACD per distribution (same SFC both roles)");
  util::Table ffi_table("FFI ACD per distribution (same SFC both roles)");
  std::vector<std::string> header = {"distribution"};
  for (const CurveKind c : curves) header.emplace_back(curve_name(c));
  nfi_table.set_header(header);
  ffi_table.set_header(header);
  nfi_table.mark_minima(true);
  ffi_table.mark_minima(true);

  std::vector<dist::DistKind> kinds(std::begin(dist::kAllDistributions),
                                    std::end(dist::kAllDistributions));
  if (args.flag("extended")) {
    kinds.assign(std::begin(dist::kExtendedDistributions),
                 std::end(dist::kExtendedDistributions));
  }
  for (const dist::DistKind kind : kinds) {
    dist::SampleConfig sample;
    sample.count = particles_n;
    sample.level = level;
    sample.seed = seed;
    const auto particles = dist::sample_particles<2>(kind, sample);
    const fmm::Partition part(particles.size(), procs);

    std::vector<double> nfi_row, ffi_row;
    for (const CurveKind ck : curves) {
      const auto curve = make_curve<2>(ck);
      const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                              procs, curve.get());
      const core::AcdInstance<2> instance(particles, level, *curve);
      nfi_row.push_back(instance.nfi(part, *net, radius).acd());
      ffi_row.push_back(instance.ffi(part, *net).total().acd());
      if (args.flag("progress")) {
        std::cerr << "  .. " << dist_name(kind) << " " << curve_name(ck)
                  << " done\n";
      }
    }
    nfi_table.add_row(std::string(dist_name(kind)), std::move(nfi_row));
    ffi_table.add_row(std::string(dist_name(kind)), std::move(ffi_row));
  }

  const auto style = bench::table_style(args);
  nfi_table.print(std::cout, style);
  std::cout << "\n";
  ffi_table.print(std::cout, style);
  std::cout << "\nexpected shape: NFI uniform < exponential < normal "
               "(normal ~ 2x uniform for the recursive curves);\nFFI "
               "distributions are close, with exponential <= uniform; the "
               "curve ordering never changes, so dynamically\nreordering "
               "particles between FMM iterations buys nothing.\n";
  return 0;
}
