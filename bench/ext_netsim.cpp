// ext_netsim — the temporal view of contention (paper future-work i, one
// level deeper than ext_contention): inject the NFI communication set into
// a cycle-accurate store-and-forward torus and measure the makespan, per-
// message latency, and the slowdown relative to the contention-free hop
// count. Answers: does the SFC pairing that minimizes ACD also finish its
// communication phase first when links serialize?
#include <iostream>

#include "bench_common.hpp"
#include "fmm/enumerate.hpp"
#include "topology/grid.hpp"
#include "topology/netsim.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_netsim",
                       "cycle-accurate NFI phase simulation per SFC");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "40000");
  args.add_option("level", "log2 resolution side", "9");
  args.add_option("proc-level", "log2 torus side (p = 4^this)", "5");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto proc_level = static_cast<unsigned>(args.i64("proc-level"));
  const auto radius = static_cast<unsigned>(args.i64("radius"));
  const topo::Rank procs = 1u << (2 * proc_level);

  std::cout << "== Store-and-forward simulation: " << particles_n
            << " uniform particles, " << (1u << level)
            << "^2 resolution, p=" << procs << " torus, r=" << radius
            << " ==\n\n";

  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto raw = dist::sample_particles<2>(dist::DistKind::kUniform, sample);
  const fmm::Partition part(raw.size(), procs);

  util::Table table("NFI phase under link serialization (torus, DOR)");
  table.set_header({"curve", "messages", "ACD", "makespan", "mean-latency",
                    "slowdown"});

  for (const CurveKind kind : kAllCurves) {
    const auto curve = make_curve<2>(kind);
    const core::AcdInstance<2> instance(raw, level, *curve);
    const topo::TorusTopology<2> torus(proc_level, *curve);

    std::vector<topo::SimMessage> msgs;
    fmm::nfi_visit<2>(instance.particles(), instance.grid(), radius,
                      fmm::NeighborNorm::kChebyshev,
                      [&](std::size_t i, std::size_t j) {
                        msgs.push_back({torus.coordinate(part.proc_of(j)),
                                        torus.coordinate(part.proc_of(i))});
                      });
    const auto sim =
        topo::simulate_store_and_forward(msgs, proc_level, true);
    const double acd =
        sim.messages == 0
            ? 0.0
            : static_cast<double>(sim.total_hops) /
                  static_cast<double>(sim.messages);
    table.add_row(std::string(curve_name(kind)),
                  {static_cast<double>(sim.messages), acd,
                   static_cast<double>(sim.makespan), sim.mean_latency,
                   sim.slowdown});
    if (args.flag("progress")) {
      std::cerr << "  .. " << curve_name(kind) << " done\n";
    }
  }

  table.print(std::cout, bench::table_style(args));
  std::cout << "\nreading guide: 'makespan' is the cycle the last packet "
               "lands; 'slowdown' is mean latency over mean hop\ndistance "
               "(1.0 = no queueing). Expected: the ACD ordering survives "
               "serialization — locality both shortens\npaths and spreads "
               "them over disjoint links.\n";
  return 0;
}
