// ext_3d_acd — paper future-work item (ii): the ACD study in three
// dimensions. The geometry layer, curves, samplers, and both FMM models
// are dimension-generic, so this harness re-runs the Table-I/Figure-7
// style comparison on a 3-D torus with an octree far field.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_3d_acd", "ACD comparison in three dimensions");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "100000");
  args.add_option("level", "log2 resolution side (per axis)", "7");
  args.add_option("proc-level", "log2 torus side (p = 8^this)", "3");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto proc_level = static_cast<unsigned>(args.i64("proc-level"));
  const auto radius = static_cast<unsigned>(args.i64("radius"));
  const topo::Rank procs = 1u << (3 * proc_level);
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));

  std::cout << "== 3-D extension: " << particles_n << " particles, "
            << (1u << level) << "^3 resolution, " << procs
            << "-processor 3-D torus, r=" << radius << " ==\n\n";

  for (const dist::DistKind dk : dist::kAllDistributions) {
    dist::SampleConfig sample;
    sample.count = particles_n;
    sample.level = level;
    sample.seed = seed;
    const auto particles = dist::sample_particles<3>(dk, sample);
    const fmm::Partition part(particles.size(), procs);

    util::Table table(std::string(dist_name(dk)) +
                      " distribution (same SFC both roles)");
    table.set_header({"curve", "NFI ACD", "FFI ACD", "FFI interp ACD",
                      "FFI interact ACD"});
    table.mark_minima(false);
    for (const CurveKind kind : kCurves3D) {
      if (kind == CurveKind::kColumnMajor) continue;  // mirror of row-major
      const auto curve = make_curve<3>(kind);
      const auto net = topo::make_topology<3>(topo::TopologyKind::kTorus,
                                              procs, curve.get());
      const core::AcdInstance<3> instance(particles, level, *curve);
      const auto nfi = instance.nfi(part, *net, radius);
      const auto ffi = instance.ffi(part, *net);
      table.add_row(std::string(curve_name(kind)),
                    {nfi.acd(), ffi.total().acd(), ffi.interpolation.acd(),
                     ffi.interaction.acd()});
      if (args.flag("progress")) {
        std::cerr << "  .. " << dist_name(dk) << " " << curve_name(kind)
                  << " done\n";
      }
    }
    table.print(std::cout, bench::table_style(args));
    std::cout << "\n";
  }

  std::cout << "expected shape: the 2-D conclusions carry over — Hilbert "
               "(Skilling's construction generalizes to any\ndimension) "
               "remains best, the scan orders remain far worse, and the "
               "distribution ordering matches Table I.\n";
  return 0;
}
