// table1_nfi — reproduces paper Table I: ACD of every {particle-order,
// processor-order} SFC pairing under the near-field interaction model, for
// the uniform, normal and exponential input distributions.
//
// Paper parameters (the default): 250,000 particles on a 1024x1024 spatial
// resolution, 65,536 processors on a torus, near-field radius 1.
#include <iostream>

#include "bench_common.hpp"
#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("table1_nfi",
                       "Table I: particle/processor SFC pairings, NFI ACD");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "250000");
  args.add_option("level", "log2 of the spatial resolution side", "10");
  args.add_option("procs", "processor count (must be 4^k)", "65536");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  core::CombinationStudyConfig cfg;
  cfg.particles = static_cast<std::size_t>(args.i64("particles"));
  cfg.level = static_cast<unsigned>(args.i64("level"));
  cfg.procs = static_cast<topo::Rank>(args.i64("procs"));
  cfg.radius = static_cast<unsigned>(args.i64("radius"));
  cfg.seed = static_cast<std::uint64_t>(args.i64("seed"));
  cfg.trials = static_cast<unsigned>(args.i64("trials"));
  cfg.topology = topo::TopologyKind::kTorus;
  cfg.far_field = false;  // Table I is the near-field study

  std::cout << "== Table I reproduction: NFI ACD, " << cfg.particles
            << " particles, " << (1u << cfg.level) << "^2 resolution, "
            << cfg.procs << "-processor torus, r=" << cfg.radius << " ==\n\n";

  const auto result =
      core::run_combination_study(cfg, nullptr, bench::progress_fn(args));

  const auto style = bench::table_style(args);
  for (std::size_t d = 0; d < cfg.distributions.size(); ++d) {
    bench::print_combination_matrix(
        result, d, /*far_field=*/false,
        std::string(dist_name(cfg.distributions[d])) + " distribution (NFI)",
        style, bench::paper_table1(static_cast<int>(d)));
  }
  if (cfg.trials > 1) {
    std::cout << "95% CI half-widths over " << cfg.trials << " trials:\n";
    for (std::size_t d = 0; d < cfg.distributions.size(); ++d) {
      util::Table ci(std::string(dist_name(cfg.distributions[d])) + " CI");
      std::vector<std::string> header = {"Processor Order v"};
      for (const CurveKind c : cfg.curves) header.emplace_back(curve_name(c));
      ci.set_header(header);
      for (std::size_t rc = 0; rc < cfg.curves.size(); ++rc) {
        std::vector<double> row;
        for (std::size_t pc = 0; pc < cfg.curves.size(); ++pc) {
          row.push_back(result.stats[d][rc][pc].nfi.ci95_halfwidth());
        }
        ci.add_row(std::string(curve_name(cfg.curves[rc])), std::move(row));
      }
      ci.print(std::cout, style);
      std::cout << "\n";
    }
  }
  std::cout << "legend: '*' marks the row minimum (paper boldface), '^' the "
               "column minimum (paper italics).\n";
  return 0;
}
