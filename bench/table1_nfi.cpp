// table1_nfi — reproduces paper Table I: ACD of every {particle-order,
// processor-order} SFC pairing under the near-field interaction model, for
// the uniform, normal and exponential input distributions.
//
// Paper parameters (the default): 250,000 particles on a 1024x1024 spatial
// resolution, 65,536 processors on a torus, near-field radius 1.
#include "bench_common.hpp"
#include "harness.hpp"
#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  bench::HarnessSpec spec;
  spec.name = "table1_nfi";
  spec.description = "Table I: particle/processor SFC pairings, NFI ACD";
  spec.add_options = [](util::ArgParser& args) {
    args.add_option("particles", "number of particles", "250000");
    args.add_option("level", "log2 of the spatial resolution side", "10");
    args.add_option("procs", "processor count (must be 4^k)", "65536");
    args.add_option("radius", "near-field Chebyshev radius", "1");
  };
  spec.run = [](bench::Harness& h) {
    core::Study study;
    study.name = "table1_nfi";
    study.particles = static_cast<std::size_t>(h.args().i64("particles"));
    study.level = static_cast<unsigned>(h.args().i64("level"));
    study.radius = static_cast<unsigned>(h.args().i64("radius"));
    study.seed = h.seed();
    study.trials = h.trials();
    study.far_field = false;  // Table I is the near-field study
    study.distributions.assign(dist::kAllDistributions,
                               dist::kAllDistributions + 3);
    study.processor_curves = study.particle_curves;  // full cross product
    study.proc_counts = {static_cast<topo::Rank>(h.args().i64("procs"))};

    h.prose() << "== Table I reproduction: NFI ACD, " << study.particles
              << " particles, " << (1u << study.level) << "^2 resolution, "
              << study.proc_counts[0] << "-processor torus, r=" << study.radius
              << " ==\n\n";

    const auto result = core::run_study(study, h.sweep_options(&study));

    const bool overlay = h.style() == util::TableStyle::kAscii &&
                         study.particle_curves.size() == 4;
    for (std::size_t d = 0; d < study.distributions.size(); ++d) {
      h.emit(core::combination_table(result, d, /*far_field=*/false));
      if (overlay) {
        bench::paper_reference_table(study.particle_curves,
                                     bench::paper_table1(static_cast<int>(d)))
            .print(std::cout, h.style());
        std::cout << "\n";
      }
    }
    if (study.trials > 1) {
      h.prose() << "95% CI half-widths over " << study.trials << " trials:\n";
      for (std::size_t d = 0; d < study.distributions.size(); ++d) {
        util::Table ci(std::string(dist_name(study.distributions[d])) + " CI");
        std::vector<std::string> header = {"Processor Order v"};
        for (const CurveKind c : study.particle_curves)
          header.emplace_back(curve_name(c));
        ci.set_header(header);
        for (std::size_t rc = 0; rc < study.processor_curves.size(); ++rc) {
          std::vector<double> row;
          for (std::size_t pc = 0; pc < study.particle_curves.size(); ++pc) {
            row.push_back(
                result.cell_stats(d, pc, 0, rc, 0).nfi.ci95_halfwidth());
          }
          ci.add_row(std::string(curve_name(study.processor_curves[rc])),
                     std::move(row));
        }
        h.emit(ci);
      }
    }
    h.prose() << "legend: '*' marks the row minimum (paper boldface), '^' the "
                 "column minimum (paper italics).\n";
    h.attach_study(result);
    return 0;
  };
  return bench::run_harness(argc, argv, spec);
}
