// micro_model — google-benchmark timings for the model engines
// themselves: sampling, instance construction (sort + occupancy + cell
// tree), and the NFI/FFI reduction passes. These are the numbers that
// bound how large a study a given machine can afford.
#include <benchmark/benchmark.h>

#include "core/acd.hpp"
#include "fmm/ffi.hpp"
#include "fmm/nfi.hpp"
#include "util/simd.hpp"

namespace {

using namespace sfc;

constexpr unsigned kLevel = 9;  // 512 x 512
constexpr std::size_t kParticles = 50000;
constexpr topo::Rank kProcs = 4096;

std::vector<Point2> particles_for(dist::DistKind kind) {
  dist::SampleConfig cfg;
  cfg.count = kParticles;
  cfg.level = kLevel;
  cfg.seed = 1;
  return dist::sample_particles<2>(kind, cfg);
}

void BM_Sample(benchmark::State& state, dist::DistKind kind) {
  dist::SampleConfig cfg;
  cfg.count = kParticles;
  cfg.level = kLevel;
  for (auto _ : state) {
    cfg.seed = static_cast<std::uint64_t>(state.iterations());
    benchmark::DoNotOptimize(dist::sample_particles<2>(kind, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kParticles));
}

void BM_InstanceBuild(benchmark::State& state, CurveKind kind) {
  const auto particles = particles_for(dist::DistKind::kUniform);
  const auto curve = make_curve<2>(kind);
  for (auto _ : state) {
    const core::AcdInstance<2> instance(particles, kLevel, *curve);
    benchmark::DoNotOptimize(&instance);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kParticles));
}

void BM_NfiPass(benchmark::State& state, unsigned radius) {
  const auto particles = particles_for(dist::DistKind::kUniform);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const core::AcdInstance<2> instance(particles, kLevel, *curve);
  const fmm::Partition part(instance.particles().size(), kProcs);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                          kProcs, curve.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.nfi(part, *net, radius));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kParticles));
}

// Acceptance benchmarks for the rank-pair aggregation fast path: the
// 2^10-level uniform scenario with p = 256, timing the aggregated
// nfi_totals/ffi_totals against their *_direct references. Items are
// communication events, so benchmark output is directly ns/pair.
constexpr unsigned kAggLevel = 10;  // 1024 x 1024
constexpr std::size_t kAggParticles = 100000;
constexpr topo::Rank kAggProcs = 256;

const core::AcdInstance<2>& agg_instance() {
  static const core::AcdInstance<2> instance = [] {
    dist::SampleConfig cfg;
    cfg.count = kAggParticles;
    cfg.level = kAggLevel;
    cfg.seed = 1;
    const auto curve = make_curve<2>(CurveKind::kHilbert);
    return core::AcdInstance<2>(
        dist::sample_particles<2>(dist::DistKind::kUniform, cfg), kAggLevel,
        *curve);
  }();
  return instance;
}

void BM_NfiAggregated(benchmark::State& state, unsigned radius) {
  const auto& instance = agg_instance();
  const fmm::Partition part(instance.particles().size(), kAggProcs);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                          kAggProcs, curve.get());
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    const auto totals = fmm::nfi_totals<2>(instance.particles(),
                                           instance.grid(), part, *net,
                                           radius);
    pairs = totals.count;
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs));
}

/// BM_NfiAggregated on the portable table: the half-window scan probes
/// cells one at a time instead of compacting occupied ids 8 lanes at a
/// time — the baseline for the nfi simd_speedup column.
void BM_NfiAggregatedScalar(benchmark::State& state, unsigned radius) {
  const util::simd::ScopedForceScalar scalar;
  BM_NfiAggregated(state, radius);
}

void BM_NfiDirect(benchmark::State& state, unsigned radius) {
  const auto& instance = agg_instance();
  const fmm::Partition part(instance.particles().size(), kAggProcs);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                          kAggProcs, curve.get());
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    const auto totals = fmm::nfi_totals_direct<2>(instance.particles(),
                                                  instance.grid(), part,
                                                  *net, radius);
    pairs = totals.count;
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs));
}

void BM_FfiAggregated(benchmark::State& state) {
  const auto& instance = agg_instance();
  const fmm::Partition part(instance.particles().size(), kAggProcs);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                          kAggProcs, curve.get());
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    const auto totals = fmm::ffi_totals<2>(instance.tree(), part, *net);
    pairs = totals.total().count;
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs));
}

void BM_FfiDirect(benchmark::State& state) {
  const auto& instance = agg_instance();
  const fmm::Partition part(instance.particles().size(), kAggProcs);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                          kAggProcs, curve.get());
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    const auto totals = fmm::ffi_totals_direct<2>(instance.tree(), part,
                                                  *net);
    pairs = totals.total().count;
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs));
}

void BM_FfiPass(benchmark::State& state) {
  const auto particles = particles_for(dist::DistKind::kUniform);
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const core::AcdInstance<2> instance(particles, kLevel, *curve);
  const fmm::Partition part(instance.particles().size(), kProcs);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                          kProcs, curve.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.ffi(part, *net));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(instance.tree().total_cells()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Sample, uniform, sfc::dist::DistKind::kUniform);
BENCHMARK_CAPTURE(BM_Sample, normal, sfc::dist::DistKind::kNormal);
BENCHMARK_CAPTURE(BM_Sample, exponential,
                  sfc::dist::DistKind::kExponential);

BENCHMARK_CAPTURE(BM_InstanceBuild, hilbert, sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_InstanceBuild, morton, sfc::CurveKind::kMorton);

BENCHMARK_CAPTURE(BM_NfiPass, r1, 1u);
BENCHMARK_CAPTURE(BM_NfiPass, r4, 4u);

BENCHMARK(BM_FfiPass);

BENCHMARK_CAPTURE(BM_NfiAggregated, r1, 1u);
BENCHMARK_CAPTURE(BM_NfiAggregated, r4, 4u);
BENCHMARK_CAPTURE(BM_NfiAggregatedScalar, r4, 4u);
BENCHMARK_CAPTURE(BM_NfiDirect, r1, 1u);
BENCHMARK_CAPTURE(BM_NfiDirect, r4, 4u);
BENCHMARK(BM_FfiAggregated);
BENCHMARK(BM_FfiDirect);

// Custom main so the JSON context records the dispatched ISA (see
// micro_curves.cpp).
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd", sfc::util::simd::isa_name(sfc::util::simd::active_isa()));
  benchmark::AddCustomContext(
      "simd_compiled",
      sfc::util::simd::isa_name(sfc::util::simd::compiled_isa()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
