// ext_clustering — the classical clustering metric (related work:
// Jagadish '90, Moon et al. '01) over the same curve set, as a counterpoint
// to Figure 5: Hilbert wins under clustering yet loses under ANNS, which
// is the tension the paper's Section V calls "surprising".
#include <iostream>

#include "bench_common.hpp"
#include "core/clustering.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_clustering",
                       "average clusters per range query, per curve");
  bench::add_common_options(args);
  args.add_option("level", "log2 grid side", "7");
  args.add_flag("extended", "include snake, column-major and Moore");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto level = static_cast<unsigned>(args.i64("level"));
  std::vector<CurveKind> curves(kPaperCurves, kPaperCurves + 4);
  if (args.flag("extended")) {
    curves.assign(std::begin(kAllCurves), std::end(kAllCurves));
  }

  std::cout << "== Clustering metric: average clusters per w x w range "
               "query, "
            << (1u << level) << "^2 grid ==\n\n";

  util::Table table("average clusters (lower is better; exhaustive over all "
                    "query positions)");
  std::vector<std::string> header = {"window"};
  for (const CurveKind c : curves) header.emplace_back(curve_name(c));
  table.set_header(header);
  table.mark_minima(true);

  util::Table worst("worst-case clusters per query");
  worst.set_header(header);
  worst.mark_minima(true);

  for (const std::uint32_t w : {2u, 3u, 4u, 6u, 8u, 16u}) {
    std::vector<double> avg_row, max_row;
    for (const CurveKind kind : curves) {
      const auto curve = make_curve<2>(kind);
      const auto stats = core::average_clusters(*curve, level, w, w);
      avg_row.push_back(stats.average);
      max_row.push_back(static_cast<double>(stats.maximum));
      if (args.flag("progress")) {
        std::cerr << "  .. w=" << w << " " << curve_name(kind) << " done\n";
      }
    }
    table.add_row(std::to_string(w) + "x" + std::to_string(w),
                  std::move(avg_row));
    worst.add_row(std::to_string(w) + "x" + std::to_string(w),
                  std::move(max_row));
  }

  const auto style = bench::table_style(args);
  table.print(std::cout, style);
  std::cout << "\n";
  worst.print(std::cout, style);
  std::cout << "\nexpected shape (Moon et al.): Hilbert is best and tends "
               "to perimeter/4 clusters per query —\nthe opposite ordering "
               "of the ANNS metric in Figure 5, which is the paper's "
               "central observation about metric choice.\n";
  return 0;
}
