// micro_obs — google-benchmark timings for the observability layer
// itself: the per-span cost with tracing disabled (the price every
// instrumented scope pays on an uninstrumented run — the <1%-overhead
// claim in docs/observability.md rests on this number), the enabled-span
// record cost, the span clock, and the metrics primitives.
// scripts/bench_to_json.py folds these into BENCH_acd.json and checks
// the disabled-span cost against a measured span count from a traced
// table1_nfi run.
#include <benchmark/benchmark.h>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace {

using namespace sfc;

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer::instance().set_enabled(false);
  for (auto _ : state) {
    const obs::Span span("micro/disabled");
    benchmark::DoNotOptimize(&span);
  }
}

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Tracer::instance().set_enabled(true);
  // Each iteration records two events; drain the buffers periodically so
  // a long benchmark run cannot grow without bound.
  constexpr std::int64_t kDrainEvery = 1 << 20;
  std::int64_t since_drain = 0;
  for (auto _ : state) {
    {
      const obs::Span span("micro/enabled");
      benchmark::DoNotOptimize(&span);
    }
    if (++since_drain == kDrainEvery) {
      state.PauseTiming();
      obs::Tracer::instance().clear();
      since_drain = 0;
      state.ResumeTiming();
    }
  }
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();
}

void BM_ObsSpanFlight(benchmark::State& state) {
  // The always-on price: tracer off, flight recorder on. Two clock reads
  // plus a ring store and stage-table update per span. bench_to_json.py
  // budgets this number (not the disabled cost) against the <1% overhead
  // gate, since the default harness configuration runs exactly this way.
  obs::Tracer::instance().set_enabled(false);
  obs::FlightRecorder::instance().set_enabled(true);
  for (auto _ : state) {
    const obs::Span span("micro/flight");
    benchmark::DoNotOptimize(&span);
  }
  obs::FlightRecorder::instance().set_enabled(false);
  obs::FlightRecorder::instance().clear();
}

void BM_ObsSamplerSample(benchmark::State& state) {
  // One sampler tick over whatever the registry currently holds (the
  // micro instruments below plus anything the process registered). Paid
  // once per period on the background thread, never on the hot path.
  std::uint64_t t = 1;
  for (auto _ : state) {
    obs::Sampler::instance().sample_once(t);
    t += 1000000;
  }
  obs::Sampler::instance().clear();
}

void BM_ObsNowNs(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::now_ns());
  }
}

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter& counter = obs::Registry::instance().counter("micro.counter");
  for (auto _ : state) {
    counter.add(1);
  }
  benchmark::DoNotOptimize(counter.value());
}

void BM_ObsGaugeSet(benchmark::State& state) {
  obs::Gauge& gauge = obs::Registry::instance().gauge("micro.gauge");
  double v = 0.0;
  for (auto _ : state) {
    gauge.set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(gauge.value());
}

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram& hist =
      obs::Registry::instance().histogram("micro.histogram");
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = v * 6364136223846793005ull + 1442695040888963407ull;  // LCG spread
    v &= (1ull << 32) - 1;
  }
  benchmark::DoNotOptimize(hist.count());
}

}  // namespace

BENCHMARK(BM_ObsSpanDisabled);
BENCHMARK(BM_ObsSpanEnabled);
BENCHMARK(BM_ObsSpanFlight);
BENCHMARK(BM_ObsSamplerSample);
BENCHMARK(BM_ObsNowNs);
BENCHMARK(BM_ObsCounterAdd);
BENCHMARK(BM_ObsGaugeSet);
BENCHMARK(BM_ObsHistogramRecord);

BENCHMARK_MAIN();
