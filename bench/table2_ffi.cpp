// table2_ffi — reproduces paper Table II: ACD of every {particle-order,
// processor-order} SFC pairing under the far-field interaction model
// (interpolation + anterpolation + interaction lists).
//
// Paper parameters (the default): 250,000 particles on a 1024x1024 spatial
// resolution, 65,536 processors on a torus.
#include <iostream>

#include "bench_common.hpp"
#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("table2_ffi",
                       "Table II: particle/processor SFC pairings, FFI ACD");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "250000");
  args.add_option("level", "log2 of the spatial resolution side", "10");
  args.add_option("procs", "processor count (must be 4^k)", "65536");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  core::CombinationStudyConfig cfg;
  cfg.particles = static_cast<std::size_t>(args.i64("particles"));
  cfg.level = static_cast<unsigned>(args.i64("level"));
  cfg.procs = static_cast<topo::Rank>(args.i64("procs"));
  cfg.seed = static_cast<std::uint64_t>(args.i64("seed"));
  cfg.trials = static_cast<unsigned>(args.i64("trials"));
  cfg.topology = topo::TopologyKind::kTorus;
  cfg.near_field = false;  // Table II is the far-field study

  std::cout << "== Table II reproduction: FFI ACD, " << cfg.particles
            << " particles, " << (1u << cfg.level) << "^2 resolution, "
            << cfg.procs << "-processor torus ==\n\n";

  const auto result =
      core::run_combination_study(cfg, nullptr, bench::progress_fn(args));

  const auto style = bench::table_style(args);
  for (std::size_t d = 0; d < cfg.distributions.size(); ++d) {
    bench::print_combination_matrix(
        result, d, /*far_field=*/true,
        std::string(dist_name(cfg.distributions[d])) + " distribution (FFI)",
        style, bench::paper_table2(static_cast<int>(d)));
  }
  std::cout << "legend: '*' marks the row minimum (paper boldface), '^' the "
               "column minimum (paper italics).\n";
  return 0;
}
