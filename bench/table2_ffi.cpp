// table2_ffi — reproduces paper Table II: ACD of every {particle-order,
// processor-order} SFC pairing under the far-field interaction model
// (interpolation + anterpolation + interaction lists).
//
// Paper parameters (the default): 250,000 particles on a 1024x1024 spatial
// resolution, 65,536 processors on a torus.
#include "bench_common.hpp"
#include "harness.hpp"
#include "paper_reference.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  bench::HarnessSpec spec;
  spec.name = "table2_ffi";
  spec.description = "Table II: particle/processor SFC pairings, FFI ACD";
  spec.add_options = [](util::ArgParser& args) {
    args.add_option("particles", "number of particles", "250000");
    args.add_option("level", "log2 of the spatial resolution side", "10");
    args.add_option("procs", "processor count (must be 4^k)", "65536");
  };
  spec.run = [](bench::Harness& h) {
    core::Study study;
    study.name = "table2_ffi";
    study.particles = static_cast<std::size_t>(h.args().i64("particles"));
    study.level = static_cast<unsigned>(h.args().i64("level"));
    study.seed = h.seed();
    study.trials = h.trials();
    study.near_field = false;  // Table II is the far-field study
    study.distributions.assign(dist::kAllDistributions,
                               dist::kAllDistributions + 3);
    study.processor_curves = study.particle_curves;  // full cross product
    study.proc_counts = {static_cast<topo::Rank>(h.args().i64("procs"))};

    h.prose() << "== Table II reproduction: FFI ACD, " << study.particles
              << " particles, " << (1u << study.level) << "^2 resolution, "
              << study.proc_counts[0] << "-processor torus ==\n\n";

    const auto result = core::run_study(study, h.sweep_options(&study));

    const bool overlay = h.style() == util::TableStyle::kAscii &&
                         study.particle_curves.size() == 4;
    for (std::size_t d = 0; d < study.distributions.size(); ++d) {
      h.emit(core::combination_table(result, d, /*far_field=*/true));
      if (overlay) {
        bench::paper_reference_table(study.particle_curves,
                                     bench::paper_table2(static_cast<int>(d)))
            .print(std::cout, h.style());
        std::cout << "\n";
      }
    }
    h.prose() << "legend: '*' marks the row minimum (paper boldface), '^' the "
                 "column minimum (paper italics).\n";
    h.attach_study(result);
    return 0;
  };
  return bench::run_harness(argc, argv, spec);
}
