// ext_moore_ranking — evaluates the Moore curve (closed Hilbert loop) as a
// processor ranking, the extension suggested by the torus results of
// Section VI-B: if Hilbert's locality is what wins on the torus, a ranking
// whose wrap pair is also physically adjacent should match or beat it for
// rank-ring-style traffic.
#include <iostream>

#include "bench_common.hpp"
#include "comm/primitives.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_moore_ranking",
                       "Moore vs Hilbert processor ranking on mesh/torus");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "100000");
  args.add_option("level", "log2 resolution side", "10");
  args.add_option("proc-level", "log2 grid side (p = 4^this)", "6");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto proc_level = static_cast<unsigned>(args.i64("proc-level"));
  const auto radius = static_cast<unsigned>(args.i64("radius"));
  const topo::Rank procs = 1u << (2 * proc_level);

  std::cout << "== Moore-ranking extension: " << particles_n
            << " uniform particles, " << (1u << level) << "^2 resolution, p="
            << procs << " ==\n\n";

  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, sample);
  const fmm::Partition part(particles.size(), procs);

  // Particle order fixed to Hilbert (the paper's recommendation); the
  // processor ranking varies.
  const auto particle_curve = make_curve<2>(CurveKind::kHilbert);
  const core::AcdInstance<2> instance(particles, level, *particle_curve);

  const std::vector<CurveKind> rankings = {
      CurveKind::kHilbert, CurveKind::kMoore, CurveKind::kMorton,
      CurveKind::kSnake, CurveKind::kRowMajor};

  for (const bool wrap : {false, true}) {
    util::Table table(wrap ? "Torus" : "Mesh");
    table.set_header({"processor ranking", "NFI ACD", "FFI ACD",
                      "ring-allreduce ACD", "halo ACD"});
    table.mark_minima(false);
    for (const CurveKind kind : rankings) {
      const auto ranking = make_curve<2>(kind);
      const auto net = topo::make_topology<2>(
          wrap ? topo::TopologyKind::kTorus : topo::TopologyKind::kMesh,
          procs, ranking.get());
      const double nfi = instance.nfi(part, *net, radius).acd();
      const double ffi = instance.ffi(part, *net).total().acd();
      const double ring =
          comm::primitive_acd(*net, comm::Primitive::kRingAllreduce);
      const double halo =
          comm::primitive_acd(*net, comm::Primitive::kHaloExchange1D);
      table.add_row(std::string(curve_name(kind)), {nfi, ffi, ring, halo});
      if (args.flag("progress")) {
        std::cerr << "  .. " << (wrap ? "torus " : "mesh ")
                  << curve_name(kind) << " done\n";
      }
    }
    table.print(std::cout, bench::table_style(args));
    std::cout << "\n";
  }

  std::cout << "expected shape: Moore matches Hilbert on the FMM models "
               "(their locality is equivalent) and is the only\nranking "
               "whose ring-allreduce ACD is exactly 1.0 on the mesh — the "
               "closed loop removes the wrap penalty that\nHilbert pays "
               "without torus links.\n";
  return 0;
}
