// micro_fold — google-benchmark timings for the Topology::fold kernels
// the DistanceFold API dispatches between: the factorized closed forms
// (per-axis histograms, popcount buckets, digit-depth buckets), the
// dense DistanceTable path they replaced, and the streamed BFS path for
// graphs beyond the table budget. Items are distinct (src, dst) pairs,
// so output is directly ns/distinct-pair. bench_to_json.py lifts the
// factorized-vs-dense-cold ratio at p = 4096 into BENCH_acd.json and
// gates it: the cold column rebuilds the p² table every iteration,
// which is exactly the cost a sweep paid per topology before fold()
// existed.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <memory>

#include "core/rank_pair.hpp"
#include "sfc/curve.hpp"
#include "topology/graph.hpp"
#include "topology/grid.hpp"
#include "topology/hypercube.hpp"
#include "topology/linear.hpp"
#include "topology/tree.hpp"

namespace {

using namespace sfc;

// The acceptance scenario: the old p <= 4096 wall, i.e. the largest p
// whose dense table still fits the entry budget.
constexpr topo::Rank kProcs = 4096;
constexpr std::size_t kAdds = 100000;

using TopoFactory = std::function<std::unique_ptr<topo::Topology>()>;

const Curve<2>& ranking_curve() {
  static const auto curve = make_curve<2>(CurveKind::kHilbert);
  return *curve;
}

TopoFactory torus_factory(unsigned level) {
  return [level] {
    return std::make_unique<topo::Torus2D>(level, ranking_curve());
  };
}

TopoFactory hypercube_factory(topo::Rank p) {
  return [p] { return std::make_unique<topo::HypercubeTopology>(p); };
}

TopoFactory tree_factory(topo::Rank p) {
  return [p] { return std::make_unique<topo::TreeTopology>(p); };
}

TopoFactory ring_factory(topo::Rank p) {
  return [p] { return std::make_unique<topo::RingTopology>(p); };
}

/// Deterministic (src, dst, count) stream — the same LCG walk the fold
/// differential suite uses, so bench and tests exercise one shape.
core::RankPairAccumulator histogram_of(topo::Rank p, std::size_t n) {
  core::RankPairAccumulator acc(p);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    acc.add(static_cast<topo::Rank>((state >> 33) % p),
            static_cast<topo::Rank>((state >> 13) % p), 1 + (state & 3));
  }
  return acc;
}

std::int64_t distinct_pairs(const topo::PairCountsView& view) {
  std::int64_t n = 0;
  view.for_each([&n](topo::Rank, topo::Rank, std::uint64_t) { ++n; });
  return n;
}

/// The dense strategy as a free function: one table lookup per distinct
/// pair. This is the kernel fold_with_table runs, reproduced here so the
/// cold benchmark can pay the table build inside the timed region.
core::CommTotals fold_with_dense_table(const topo::Topology& net,
                                       const topo::PairCountsView& view) {
  const topo::DistanceTable& t = net.dense_table();
  core::CommTotals totals;
  view.for_each([&](topo::Rank a, topo::Rank b, std::uint64_t c) {
    totals.hops += c * t(a, b);
    totals.count += c;
  });
  return totals;
}

/// Factorized fold, warm topology: the shape every sweep iteration runs.
void BM_FoldFactorized(benchmark::State& state, const TopoFactory& make) {
  const auto net = make();
  const core::RankPairAccumulator acc = histogram_of(net->size(), kAdds);
  const topo::PairCountsView view = acc.view();
  for (auto _ : state) {
    core::CommTotals totals = net->fold(view);
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          distinct_pairs(view));
}

/// Dense fold, cold topology: rebuilds the p² DistanceTable inside the
/// timed region — the per-topology cost of the pre-fold contract, and
/// the denominator of the gated speedup ratio.
void BM_FoldDenseCold(benchmark::State& state, const TopoFactory& make) {
  const core::RankPairAccumulator acc = histogram_of(make()->size(), kAdds);
  const topo::PairCountsView view = acc.view();
  for (auto _ : state) {
    const auto net = make();
    core::CommTotals totals = fold_with_dense_table(*net, view);
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          distinct_pairs(view));
}

/// Dense fold, warm table: lookup cost only. Ungated — factorized vs
/// warm-dense is a fair per-pair kernel comparison, but the table build
/// is the cost that actually walled p at 4096.
void BM_FoldDenseWarm(benchmark::State& state, const TopoFactory& make) {
  const auto net = make();
  const core::RankPairAccumulator acc = histogram_of(net->size(), kAdds);
  const topo::PairCountsView view = acc.view();
  fold_with_dense_table(*net, view);  // build outside the timed region
  for (auto _ : state) {
    core::CommTotals totals = fold_with_dense_table(*net, view);
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          distinct_pairs(view));
}

/// Streamed fold: an arbitrary graph one doubling past the table budget,
/// grouped-by-source BFS rows (graph.cpp). Sparse histogram, sorted by
/// key, so each distinct source costs one BFS.
void BM_FoldStreamed(benchmark::State& state) {
  const topo::Rank p = 2 * kProcs;  // 8192: distance_table_fits(p) is false
  const topo::GraphTopology net = topo::build_ring_graph(p);
  const core::RankPairAccumulator acc = histogram_of(p, kAdds);
  const topo::PairCountsView view = acc.view();
  for (auto _ : state) {
    core::CommTotals totals = net.fold(view);
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          distinct_pairs(view));
}

/// Factorized fold at p = 2^20 (1024×1024 torus): the million-rank point
/// fig7 now reaches. No dense/streamed columns — a table would need 4 TiB.
void BM_FoldFactorizedMillion(benchmark::State& state) {
  const topo::Torus2D net(10, ranking_curve());
  const core::RankPairAccumulator acc = histogram_of(net.size(), kAdds);
  const topo::PairCountsView view = acc.view();
  for (auto _ : state) {
    core::CommTotals totals = net.fold(view);
    benchmark::DoNotOptimize(totals);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          distinct_pairs(view));
}

}  // namespace

BENCHMARK_CAPTURE(BM_FoldFactorized, torus4096, torus_factory(6));
BENCHMARK_CAPTURE(BM_FoldDenseCold, torus4096, torus_factory(6));
BENCHMARK_CAPTURE(BM_FoldDenseWarm, torus4096, torus_factory(6));

BENCHMARK_CAPTURE(BM_FoldFactorized, hypercube4096, hypercube_factory(kProcs));
BENCHMARK_CAPTURE(BM_FoldDenseCold, hypercube4096, hypercube_factory(kProcs));
BENCHMARK_CAPTURE(BM_FoldDenseWarm, hypercube4096, hypercube_factory(kProcs));

BENCHMARK_CAPTURE(BM_FoldFactorized, quadtree4096, tree_factory(kProcs));
BENCHMARK_CAPTURE(BM_FoldDenseWarm, quadtree4096, tree_factory(kProcs));

BENCHMARK_CAPTURE(BM_FoldFactorized, ring4096, ring_factory(kProcs));
BENCHMARK_CAPTURE(BM_FoldDenseWarm, ring4096, ring_factory(kProcs));

BENCHMARK(BM_FoldStreamed);
BENCHMARK(BM_FoldFactorizedMillion);

BENCHMARK_MAIN();
