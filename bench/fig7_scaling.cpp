// fig7_scaling — reproduces paper Figure 7: NFI and FFI ACD as a function
// of the processor count, per SFC (same curve used for both roles), torus
// topology, uniformly distributed particles.
//
// Paper parameters (--full): 1,000,000 particles; we sweep p over powers
// of four up to 65,536. The default is a reduced setting.
#include <iostream>

#include "bench_common.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("fig7_scaling",
                       "Figure 7: ACD vs processor count per SFC");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles (0 = preset)", "0");
  args.add_option("level", "log2 resolution side (0 = preset)", "0");
  args.add_option("max-procs", "largest processor count (0 = preset)", "0");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  args.add_option("out-csv", "basename for plot-ready CSV export", "");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  core::ScalingStudyConfig cfg;
  topo::Rank max_procs = 0;
  if (args.flag("full")) {
    cfg.particles = 1000000;
    cfg.level = 12;
    max_procs = 65536;
  } else {
    cfg.particles = 150000;
    cfg.level = 10;
    max_procs = 16384;
  }
  if (args.i64("particles") > 0)
    cfg.particles = static_cast<std::size_t>(args.i64("particles"));
  if (args.i64("level") > 0)
    cfg.level = static_cast<unsigned>(args.i64("level"));
  if (args.i64("max-procs") > 0)
    max_procs = static_cast<topo::Rank>(args.i64("max-procs"));
  cfg.radius = static_cast<unsigned>(args.i64("radius"));
  cfg.seed = static_cast<std::uint64_t>(args.i64("seed"));
  cfg.trials = static_cast<unsigned>(args.i64("trials"));
  cfg.proc_counts.clear();
  for (topo::Rank p = 16; p <= max_procs; p *= 4) cfg.proc_counts.push_back(p);

  std::cout << "== Figure 7 reproduction: " << cfg.particles
            << " uniform particles, " << (1u << cfg.level)
            << "^2 resolution, torus, r=" << cfg.radius << " ==\n\n";

  const auto result =
      core::run_scaling_study(cfg, nullptr, bench::progress_fn(args));
  const auto style = bench::table_style(args);

  for (const bool far_field : {false, true}) {
    auto table = core::scaling_table(result, far_field);
    table.print(std::cout, style);
    std::cout << "\n";
    const std::string out = args.str("out-csv");
    if (!out.empty()) {
      core::write_file(out + (far_field ? ".ffi.csv" : ".nfi.csv"), table);
    }
  }

  std::cout << "expected shape (paper Fig. 7): ACD grows with p for every "
               "curve; Hilbert is best throughout,\nGray and Z are roughly "
               "equivalent, and row-major is far worse (it is clipped from "
               "the paper's plots).\n";
  return 0;
}
