// fig7_scaling — reproduces paper Figure 7: NFI and FFI ACD as a function
// of the processor count, per SFC (same curve used for both roles), torus
// topology, uniformly distributed particles.
//
// Paper parameters (--full): 1,000,000 particles; we sweep p over powers
// of four up to 65,536. The default is a reduced setting.
#include "core/report.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  bench::HarnessSpec spec;
  spec.name = "fig7_scaling";
  spec.description = "Figure 7: ACD vs processor count per SFC";
  spec.add_options = [](util::ArgParser& args) {
    args.add_option("particles", "number of particles (0 = preset)", "0");
    args.add_option("level", "log2 resolution side (0 = preset)", "0");
    args.add_option("min-procs", "smallest processor count (0 = preset)", "0");
    args.add_option("max-procs", "largest processor count (0 = preset)", "0");
    args.add_option("radius", "near-field Chebyshev radius", "1");
    args.add_option("out-csv", "basename for plot-ready CSV export", "");
  };
  spec.run = [](bench::Harness& h) {
    core::Study study;
    study.name = "fig7_scaling";
    topo::Rank max_procs = 0;
    if (h.full()) {
      study.particles = 1000000;
      study.level = 12;
      max_procs = 65536;
    } else {
      study.particles = 150000;
      study.level = 10;
      max_procs = 16384;
    }
    if (h.args().i64("particles") > 0)
      study.particles = static_cast<std::size_t>(h.args().i64("particles"));
    if (h.args().i64("level") > 0)
      study.level = static_cast<unsigned>(h.args().i64("level"));
    topo::Rank min_procs = 16;
    if (h.args().i64("min-procs") > 0)
      min_procs = static_cast<topo::Rank>(h.args().i64("min-procs"));
    if (h.args().i64("max-procs") > 0)
      max_procs = static_cast<topo::Rank>(h.args().i64("max-procs"));
    study.radius = static_cast<unsigned>(h.args().i64("radius"));
    study.seed = h.seed();
    study.trials = h.trials();
    // Curves stay paired (processor_curves empty); the processor-count
    // axis is the sweep, on the default torus. --min-procs lets the
    // million-rank recipe (EXPERIMENTS.md) skip the small-p points: the
    // factorized fold makes p = 2^20 cheap, but each point still pays
    // the particle pipeline.
    study.proc_counts.clear();
    for (topo::Rank p = min_procs; p <= max_procs; p *= 4)
      study.proc_counts.push_back(p);

    h.prose() << "== Figure 7 reproduction: " << study.particles
              << " uniform particles, " << (1u << study.level)
              << "^2 resolution, torus, r=" << study.radius << " ==\n\n";

    const auto result = core::run_study(study, h.sweep_options(&study));

    for (const bool far_field : {false, true}) {
      auto table = core::scaling_table(result, far_field);
      h.emit(table);
      const std::string out = h.args().str("out-csv");
      if (!out.empty()) {
        core::write_file(out + (far_field ? ".ffi.csv" : ".nfi.csv"), table);
      }
    }

    h.prose() << "expected shape (paper Fig. 7): ACD grows with p for every "
                 "curve; Hilbert is best throughout,\nGray and Z are roughly "
                 "equivalent, and row-major is far worse (it is clipped from "
                 "the paper's plots).\n";
    h.attach_study(result);
    return 0;
  };
  return bench::run_harness(argc, argv, spec);
}
