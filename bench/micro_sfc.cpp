// micro_sfc — google-benchmark microbenchmarks for the curve encoders and
// decoders (the inner loop of every particle-ordering step).
#include <benchmark/benchmark.h>

#include <vector>

#include "sfc/canonical_hilbert.hpp"
#include "sfc/curve.hpp"
#include "sfc/hilbert_lut.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfc;

constexpr unsigned kLevel2D = 15;  // 32768 x 32768
constexpr unsigned kLevel3D = 10;  // 1024^3

std::vector<Point2> random_points_2d(std::size_t n) {
  util::Xoshiro256pp rng(42);
  std::vector<Point2> pts;
  pts.reserve(n);
  const std::uint32_t mask = (1u << kLevel2D) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(make_point(static_cast<std::uint32_t>(rng.next()) & mask,
                             static_cast<std::uint32_t>(rng.next()) & mask));
  }
  return pts;
}

std::vector<Point3> random_points_3d(std::size_t n) {
  util::Xoshiro256pp rng(43);
  std::vector<Point3> pts;
  pts.reserve(n);
  const std::uint32_t mask = (1u << kLevel3D) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(make_point(static_cast<std::uint32_t>(rng.next()) & mask,
                             static_cast<std::uint32_t>(rng.next()) & mask,
                             static_cast<std::uint32_t>(rng.next()) & mask));
  }
  return pts;
}

void BM_Index2D(benchmark::State& state, CurveKind kind) {
  const auto curve = make_curve<2>(kind);
  const auto pts = random_points_2d(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->index(pts[i], kLevel2D));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Point2D(benchmark::State& state, CurveKind kind) {
  const auto curve = make_curve<2>(kind);
  util::Xoshiro256pp rng(7);
  std::vector<std::uint64_t> idx(4096);
  for (auto& v : idx) v = rng.next() & (grid_size<2>(kLevel2D) - 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->point(idx[i], kLevel2D));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Index3D(benchmark::State& state, CurveKind kind) {
  const auto curve = make_curve<3>(kind);
  const auto pts = random_points_3d(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->index(pts[i], kLevel3D));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// The three Hilbert encoder strategies head to head: Skilling's transpose
// algorithm (any dimension), the canonical per-level recursion, and the
// finite-state-machine LUT.
void BM_HilbertStrategy_Skilling(benchmark::State& state) {
  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto pts = random_points_2d(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->index(pts[i], kLevel2D));
    i = (i + 1) & 4095;
  }
}

void BM_HilbertStrategy_Canonical(benchmark::State& state) {
  const auto pts = random_points_2d(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_hilbert_index(pts[i], kLevel2D));
    i = (i + 1) & 4095;
  }
}

void BM_HilbertStrategy_Lut(benchmark::State& state) {
  const auto pts = random_points_2d(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hilbert_lut_index(pts[i], kLevel2D));
    i = (i + 1) & 4095;
  }
}

void BM_SortByCurve(benchmark::State& state, CurveKind kind) {
  const auto curve = make_curve<2>(kind);
  const auto pts = random_points_2d(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto keys = indices_of(*curve, pts, kLevel2D);
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Index2D, hilbert, sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_Index2D, morton, sfc::CurveKind::kMorton);
BENCHMARK_CAPTURE(BM_Index2D, gray, sfc::CurveKind::kGray);
BENCHMARK_CAPTURE(BM_Index2D, rowmajor, sfc::CurveKind::kRowMajor);
BENCHMARK_CAPTURE(BM_Index2D, snake, sfc::CurveKind::kSnake);

BENCHMARK_CAPTURE(BM_Point2D, hilbert, sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_Point2D, morton, sfc::CurveKind::kMorton);
BENCHMARK_CAPTURE(BM_Point2D, gray, sfc::CurveKind::kGray);
BENCHMARK_CAPTURE(BM_Point2D, rowmajor, sfc::CurveKind::kRowMajor);

BENCHMARK_CAPTURE(BM_Index3D, hilbert, sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_Index3D, morton, sfc::CurveKind::kMorton);
BENCHMARK_CAPTURE(BM_Index3D, gray, sfc::CurveKind::kGray);

BENCHMARK(BM_HilbertStrategy_Skilling);
BENCHMARK(BM_HilbertStrategy_Canonical);
BENCHMARK(BM_HilbertStrategy_Lut);

BENCHMARK_CAPTURE(BM_SortByCurve, hilbert, sfc::CurveKind::kHilbert)
    ->Arg(1 << 14);
BENCHMARK_CAPTURE(BM_SortByCurve, morton, sfc::CurveKind::kMorton)
    ->Arg(1 << 14);

BENCHMARK_MAIN();
