// fig5_anns — reproduces paper Figure 5: Average Nearest Neighbor Stretch
// of the four SFCs as the spatial resolution grows from 2x2 to 512x512,
// for (a) the standard neighborhood r=1 and (b) the larger radius r=6.
//
// This metric is exact (every grid point participates), so the default IS
// the paper scale; --max-level extends beyond it.
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  bench::HarnessSpec spec;
  spec.name = "fig5_anns";
  spec.description = "Figure 5: neighbor stretch vs spatial resolution";
  spec.add_options = [](util::ArgParser& args) {
    args.add_option("max-level", "largest log2 resolution to evaluate", "9");
    args.add_option("radius-a", "first neighborhood radius (Fig 5a)", "1");
    args.add_option("radius-b", "second neighborhood radius (Fig 5b)", "6");
    args.add_flag("extended", "also report the snake scan and column-major");
  };
  spec.run = [](bench::Harness& h) {
    const unsigned max_level =
        static_cast<unsigned>(h.args().i64("max-level"));

    core::AnnsStudyConfig cfg;
    cfg.levels.clear();
    for (unsigned l = 1; l <= max_level; ++l) cfg.levels.push_back(l);
    if (h.args().flag("extended")) {
      cfg.curves.assign(std::begin(kAllCurves), std::end(kAllCurves));
    }

    std::vector<std::string> header = {"resolution"};
    for (const CurveKind c : cfg.curves) header.emplace_back(curve_name(c));

    for (const auto& [radius, figure] :
         {std::pair<unsigned, const char*>(
              static_cast<unsigned>(h.args().i64("radius-a")), "5(a)"),
          std::pair<unsigned, const char*>(
              static_cast<unsigned>(h.args().i64("radius-b")), "5(b)")}) {
      cfg.radius = radius;
      const auto result =
          core::run_anns_study(cfg, h.pool(), h.text_progress());

      util::Table table(std::string("Figure ") + figure +
                        ": average stretch, Manhattan radius " +
                        std::to_string(radius));
      table.set_header(header);
      for (std::size_t l = 0; l < cfg.levels.size(); ++l) {
        std::vector<double> row;
        for (std::size_t c = 0; c < cfg.curves.size(); ++c) {
          row.push_back(result.stats[c][l].average);
        }
        const unsigned side = 1u << cfg.levels[l];
        table.add_row(std::to_string(side) + "x" + std::to_string(side),
                      std::move(row));
      }
      h.emit(table);

      util::Table mnns(
          std::string("maximum stretch (MNNS when r=1), radius ") +
          std::to_string(radius));
      mnns.set_header(header);
      for (std::size_t l = 0; l < cfg.levels.size(); ++l) {
        std::vector<double> row;
        for (std::size_t c = 0; c < cfg.curves.size(); ++c) {
          row.push_back(result.stats[c][l].maximum);
        }
        const unsigned side = 1u << cfg.levels[l];
        mnns.add_row(std::to_string(side) + "x" + std::to_string(side),
                     std::move(row));
      }
      h.emit(mnns);
    }

    // The third Xu–Tirthapura metric for completeness: sampled all-pairs
    // stretch at the largest resolution.
    {
      util::Table table("all-pairs stretch (Monte-Carlo, 100k pairs) at " +
                        std::to_string(1u << max_level) + "x" +
                        std::to_string(1u << max_level));
      std::vector<std::string> aps_header = {"metric"};
      for (const CurveKind c : cfg.curves)
        aps_header.emplace_back(curve_name(c));
      table.set_header(aps_header);
      std::vector<double> row;
      for (const CurveKind c : cfg.curves) {
        row.push_back(
            core::all_pairs_stretch(*make_curve<2>(c), max_level, 100000, 1)
                .average);
      }
      table.add_row("APS", std::move(row));
      h.emit(table);
    }

    h.prose() << "expected shape (paper Fig. 5): Z-curve and Row-major beat "
                 "Gray and Hilbert at every resolution;\nthe gap widens as "
                 "the resolution grows, and the ordering is radius-"
                 "independent. The all-pairs stretch\ndiscriminates far less "
                 "— random pairs are distant, where every bijection looks "
                 "alike (Xu & Tirthapura).\n";
    return 0;
  };
  return bench::run_harness(argc, argv, spec);
}
