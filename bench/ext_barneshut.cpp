// ext_barneshut — the Section VII thesis made concrete: evaluate the ACD
// metric under a *different* algorithm's communication structure. A
// Barnes–Hut traversal is asymmetric (every particle pulls the tree cells
// it accepts), its volume is theta-dependent, and it mixes near and far
// traffic per particle — yet the paper's SFC recommendations should carry
// over unchanged.
#include <iostream>

#include "bench_common.hpp"
#include "fmm/barnes_hut.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_barneshut",
                       "ACD under the Barnes-Hut communication model");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "50000");
  args.add_option("level", "log2 resolution side", "9");
  args.add_option("procs", "processor count", "4096");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));

  std::cout << "== Barnes-Hut communication model: " << particles_n
            << " uniform particles, " << (1u << level)
            << "^2 resolution, p=" << procs << " torus ==\n\n";

  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto raw = dist::sample_particles<2>(dist::DistKind::kUniform, sample);
  const fmm::Partition part(raw.size(), procs);

  util::Table table("Barnes-Hut traversal ACD (same SFC both roles)");
  std::vector<std::string> header = {"theta"};
  for (const CurveKind c : kPaperCurves) header.emplace_back(curve_name(c));
  table.set_header(header);
  table.mark_minima(true);

  util::Table volume("communications per particle (theta-dependence)");
  volume.set_header(header);
  volume.set_precision(1);

  for (const double theta : {0.3, 0.5, 0.8, 1.2}) {
    std::vector<double> acd_row, vol_row;
    for (const CurveKind kind : kPaperCurves) {
      const auto curve = make_curve<2>(kind);
      const core::AcdInstance<2> instance(raw, level, *curve);
      const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                              procs, curve.get());
      const auto totals = fmm::bh_comm_totals(instance.particles(),
                                              instance.tree(), part, *net,
                                              theta);
      acd_row.push_back(totals.acd());
      vol_row.push_back(static_cast<double>(totals.count) /
                        static_cast<double>(raw.size()));
      if (args.flag("progress")) {
        std::cerr << "  .. theta=" << theta << " " << curve_name(kind)
                  << " done\n";
      }
    }
    table.add_row("theta=" + util::format_fixed(theta, 1),
                  std::move(acd_row));
    volume.add_row("theta=" + util::format_fixed(theta, 1),
                   std::move(vol_row));
  }

  const auto style = bench::table_style(args);
  table.print(std::cout, style);
  std::cout << "\n";
  volume.print(std::cout, style);
  std::cout << "\nexpected shape: the Table-I ordering (Hilbert < Z ~ Gray "
               "<< Row-major) holds at every theta, while the\nper-particle "
               "communication volume is SFC-independent — the ordering "
               "only moves the traffic closer.\n";
  return 0;
}
