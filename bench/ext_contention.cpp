// ext_contention — paper future-work item (i): does the SFC pairing that
// minimizes the (contention-unaware) ACD also minimize link congestion?
// Routes every NFI/FFI message with dimension-order routing on the torus
// and reports the worst link load and the max/mean imbalance per pairing.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/contention.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_contention",
                       "link congestion per SFC pairing (DOR routing)");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "100000");
  args.add_option("level", "log2 resolution side", "10");
  args.add_option("proc-level", "log2 torus side (p = 4^this)", "6");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto proc_level = static_cast<unsigned>(args.i64("proc-level"));
  const auto radius = static_cast<unsigned>(args.i64("radius"));
  const topo::Rank procs = 1u << (2 * proc_level);

  std::cout << "== Contention extension: " << particles_n
            << " uniform particles, " << (1u << level) << "^2 resolution, "
            << procs << "-processor torus, r=" << radius << " ==\n\n";

  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, sample);
  const fmm::Partition part(particles.size(), procs);

  util::Table table("NFI + FFI congestion, same SFC both roles (torus)");
  table.set_header({"curve", "ACD", "max-link", "mean-used", "imbalance"});
  table.mark_minima(false);

  for (const CurveKind kind : kAllCurves) {
    const auto curve = make_curve<2>(kind);
    const topo::TorusTopology<2> torus(proc_level, *curve);
    const core::AcdInstance<2> instance(particles, level, *curve);

    const auto nfi_c =
        core::nfi_congestion(instance, part, torus, true, radius);
    const auto ffi_c = core::ffi_congestion(instance, part, torus, true);
    core::CongestionStats combined;
    combined.messages = nfi_c.messages + ffi_c.messages;
    combined.hops = nfi_c.hops + ffi_c.hops;
    combined.max_link_load = std::max(nfi_c.max_link_load,
                                      ffi_c.max_link_load);
    combined.links_used = std::max(nfi_c.links_used, ffi_c.links_used);
    combined.total_links = nfi_c.total_links;

    const double acd = combined.messages == 0
                           ? 0.0
                           : static_cast<double>(combined.hops) /
                                 static_cast<double>(combined.messages);
    table.add_row(std::string(curve_name(kind)),
                  {acd, static_cast<double>(combined.max_link_load),
                   combined.mean_used_load(), combined.imbalance()});
    if (args.flag("progress")) {
      std::cerr << "  .. " << curve_name(kind) << " done\n";
    }
  }

  table.print(std::cout, bench::table_style(args));
  std::cout << "\nreading guide: 'max-link' is the serialization "
               "bottleneck a contention-aware model would report.\nThe "
               "expected result: the ACD ordering (Hilbert/Moore best, "
               "row-major worst) carries over to the worst link,\ni.e. "
               "minimizing ACD does not trade away congestion in this "
               "model.\n";
  return 0;
}
