// bench_common.hpp — shared plumbing for the experiment harnesses: common
// CLI flags, stderr progress reporting, and table printing in the layout
// the paper uses (particle order across, processor order down, row/column
// minima marked like the paper's boldface/italics).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/study.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace sfc::bench {

/// Register the options every harness shares.
inline void add_common_options(util::ArgParser& args) {
  args.add_flag("full", "run at the paper's exact scale (slow on laptops)");
  args.add_flag("csv", "emit CSV instead of ASCII tables");
  args.add_flag("progress", "report per-cell progress on stderr");
  args.add_option("seed", "master RNG seed", "1");
  args.add_option("trials", "independent trials to average", "1");
}

/// Standard prologue: parse or die; handle --help. Exits the process with
/// status 1 on a malformed command line; returns false (caller exits 0)
/// when --help was printed.
inline bool parse_or_usage(util::ArgParser& args, int argc,
                           const char* const* argv) {
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n\n" << args.usage();
    std::exit(1);
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return false;
  }
  return true;
}

inline core::ProgressFn progress_fn(const util::ArgParser& args) {
  if (!args.flag("progress")) return {};
  return [](const std::string& msg) { std::cerr << "  .. " << msg << "\n"; };
}

inline util::TableStyle table_style(const util::ArgParser& args) {
  return args.flag("csv") ? util::TableStyle::kCsv
                          : util::TableStyle::kAscii;
}

/// The paper's reported 4x4 matrix as a side-by-side comparison table.
/// Only valid for the canonical 4-curve grid; callers must check
/// curves.size() == 4 before indexing paper_ref with their curve list.
inline util::Table paper_reference_table(const std::vector<CurveKind>& curves,
                                         const double paper_ref[4][4]) {
  util::Table ref("paper reported (for shape comparison)");
  std::vector<std::string> header = {"Processor Order v"};
  for (const CurveKind c : curves) header.emplace_back(curve_name(c));
  ref.set_header(header);
  ref.mark_minima(true);
  for (std::size_t rc = 0; rc < 4; ++rc) {
    ref.add_row(std::string(curve_name(curves[rc])),
                {paper_ref[rc][0], paper_ref[rc][1], paper_ref[rc][2],
                 paper_ref[rc][3]});
  }
  return ref;
}

/// Print one distribution's {processor x particle} matrix, paper layout.
inline void print_combination_matrix(const core::CombinationStudyResult& r,
                                     std::size_t dist_index, bool far_field,
                                     const std::string& title,
                                     util::TableStyle style,
                                     const double paper_ref[4][4] = nullptr) {
  util::Table table(title);
  std::vector<std::string> header = {"Processor Order v"};
  for (const CurveKind c : r.config.curves) {
    header.emplace_back(curve_name(c));
  }
  table.set_header(header);
  table.mark_minima(true);
  for (std::size_t rc = 0; rc < r.config.curves.size(); ++rc) {
    std::vector<double> row;
    for (std::size_t pc = 0; pc < r.config.curves.size(); ++pc) {
      const auto& cell = r.cells[dist_index][rc][pc];
      row.push_back(far_field ? cell.ffi_acd : cell.nfi_acd);
    }
    table.add_row(std::string(curve_name(r.config.curves[rc])),
                  std::move(row));
  }
  table.print(std::cout, style);

  // The paper overlay is a fixed 4x4 matrix indexed by the canonical
  // curve order — skip it when the study ran a different curve set.
  if (paper_ref != nullptr && style != util::TableStyle::kCsv &&
      r.config.curves.size() == 4) {
    paper_reference_table(r.config.curves, paper_ref)
        .print(std::cout, style);
  }
  std::cout << "\n";
}

}  // namespace sfc::bench
