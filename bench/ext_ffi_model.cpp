// ext_ffi_model — the one modeling ambiguity the paper leaves open,
// quantified: Section III describes accumulation through the spatial cell
// hierarchy, Section IV describes per-quadrant processor log-trees. This
// harness runs both on identical instances; the reproduction's headline
// tables use the cell-tree model, and this ablation shows every
// qualitative conclusion is model-independent.
#include <iostream>

#include "bench_common.hpp"
#include "fmm/ffi_logtree.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_ffi_model",
                       "cell-tree vs processor-log-tree accumulation");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "100000");
  args.add_option("level", "log2 resolution side", "10");
  args.add_option("procs", "processor count", "16384");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));

  std::cout << "== FFI accumulation-model ablation: " << particles_n
            << " particles, " << (1u << level) << "^2 resolution, p="
            << procs << " torus ==\n\n";

  for (const dist::DistKind dk :
       {dist::DistKind::kUniform, dist::DistKind::kExponential}) {
    dist::SampleConfig sample;
    sample.count = particles_n;
    sample.level = level;
    sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
    const auto particles = dist::sample_particles<2>(dk, sample);
    const fmm::Partition part(particles.size(), procs);

    util::Table table(std::string(dist_name(dk)) +
                      ": interp+anterp ACD under the two models");
    table.set_header({"curve", "cell-tree ACD", "log-tree ACD",
                      "cell-tree msgs", "log-tree msgs"});

    for (const CurveKind kind : kPaperCurves) {
      const auto curve = make_curve<2>(kind);
      const core::AcdInstance<2> instance(particles, level, *curve);
      const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                              procs, curve.get());
      const auto cell = instance.ffi(part, *net);
      const auto cell_acc = cell.interpolation + cell.anterpolation;
      const auto log_acc = fmm::logtree_accumulation_totals<2>(
          instance.particles(), level, part, *net);
      table.add_row(std::string(curve_name(kind)),
                    {cell_acc.acd(), log_acc.acd(),
                     static_cast<double>(cell_acc.count),
                     static_cast<double>(log_acc.count)});
      if (args.flag("progress")) {
        std::cerr << "  .. " << dist_name(dk) << " " << curve_name(kind)
                  << " done\n";
      }
    }
    table.print(std::cout, bench::table_style(args));
    std::cout << "\n";
  }

  std::cout << "reading guide: the log-tree model exchanges far fewer, "
               "longer messages (it skips the per-level\ncell collection), "
               "so its absolute ACD is much higher. The conclusions are "
               "model-independent: the three\nrecursive curves stay within "
               "a few percent of each other and row-major stays clearly "
               "worst under both\nreadings of the paper's Section III/IV "
               "text — the heap-tree edges wash out fine-grained curve\n"
               "differences, which is one reason the cell-tree reading "
               "matches the paper's reported spreads better.\n";
  return 0;
}
