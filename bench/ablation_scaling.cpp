// ablation_scaling — Section VI-C claim: ACD behaviour "holds both as the
// number of particles is increased for a fixed number of processors and as
// the number of processors is increased for a fixed number of particles",
// and the payoff from choosing a better SFC grows with the problem size.
#include <iostream>
#include <memory>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ablation_scaling",
                       "ACD vs input size at a fixed processor count");
  bench::add_common_options(args);
  args.add_option("level", "log2 resolution side", "10");
  args.add_option("procs", "processor count", "4096");
  args.add_option("max-particles", "largest particle count", "256000");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));
  const auto max_particles =
      static_cast<std::size_t>(args.i64("max-particles"));
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));

  std::cout << "== Input-size ablation: uniform particles, " << (1u << level)
            << "^2 resolution, p=" << procs << " torus ==\n\n";

  const std::vector<CurveKind> curves(kPaperCurves, kPaperCurves + 4);
  std::vector<std::unique_ptr<topo::Topology>> nets;
  for (const CurveKind kind : curves) {
    const auto curve = make_curve<2>(kind);
    nets.push_back(topo::make_topology<2>(topo::TopologyKind::kTorus, procs,
                                          curve.get()));
  }

  util::Table nfi_table("NFI ACD vs particle count (r=1)");
  util::Table ffi_table("FFI ACD vs particle count");
  std::vector<std::string> header = {"particles"};
  for (const CurveKind c : curves) header.emplace_back(curve_name(c));
  nfi_table.set_header(header);
  ffi_table.set_header(header);
  nfi_table.mark_minima(true);
  ffi_table.mark_minima(true);

  for (std::size_t n = max_particles / 16; n <= max_particles; n *= 4) {
    dist::SampleConfig sample;
    sample.count = n;
    sample.level = level;
    sample.seed = seed;
    const auto particles =
        dist::sample_particles<2>(dist::DistKind::kUniform, sample);
    const fmm::Partition part(particles.size(), procs);

    std::vector<double> nfi_row, ffi_row;
    for (std::size_t c = 0; c < curves.size(); ++c) {
      const auto curve = make_curve<2>(curves[c]);
      const core::AcdInstance<2> instance(particles, level, *curve);
      nfi_row.push_back(instance.nfi(part, *nets[c], 1).acd());
      ffi_row.push_back(instance.ffi(part, *nets[c]).total().acd());
      if (args.flag("progress")) {
        std::cerr << "  .. n=" << n << " " << curve_name(curves[c])
                  << " done\n";
      }
    }
    nfi_table.add_row("n=" + std::to_string(n), std::move(nfi_row));
    ffi_table.add_row("n=" + std::to_string(n), std::move(ffi_row));
  }

  const auto style = bench::table_style(args);
  nfi_table.print(std::cout, style);
  std::cout << "\n";
  ffi_table.print(std::cout, style);
  std::cout << "\nexpected shape: Hilbert stays best at every input size; "
               "the absolute gap to row-major widens as n grows.\n";
  return 0;
}
