// ext_dynamics — the paper's Section VI-A claim, tested dynamically:
// "since the relative performance of the curves is unchanged, there is no
// incentive to shift the ordering of particles between FMM iterations to
// reflect the dynamically changing particle distribution profile."
//
// A fraction of the particles drifts one Chebyshev step per iteration and
// three re-ordering policies are compared over the trajectory:
//   * frozen      — keep the chunk assignment computed from the initial
//     ordering (no data movement between iterations); maintained by the
//     incremental DynamicAcd engine, O(moved particles) per step;
//   * reordered   — re-sort and re-chunk every iteration (perfect
//     ordering, but in practice an all-to-all shuffle the ACD metric
//     does not price);
//   * incremental — the advisor policy: stay frozen until the displaced
//     fraction crosses --threshold, then re-sort once (the "how often
//     must you re-order?" answer).
// A second pass times the incremental timestep against a full recompute
// of the same frozen configuration; the median speedup is attached to
// the JSON document ("dynamics") for the scripts/bench_to_json.py gate.
#include <algorithm>
#include <chrono>
#include <sstream>

#include "core/dynamic_acd.hpp"
#include "harness.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sfc;

  bench::HarnessSpec spec;
  spec.name = "ext_dynamics";
  spec.description = "ACD drift across simulated FMM iterations";
  spec.add_options = [](util::ArgParser& args) {
    args.add_option("particles", "number of particles (0 = preset)", "0");
    args.add_option("level", "log2 resolution side (0 = preset)", "0");
    args.add_option("procs", "processor count (0 = preset)", "0");
    args.add_option("steps", "drift iterations to simulate", "16");
    args.add_option("radius", "near-field Chebyshev radius", "1");
    args.add_option("curve", "space-filling curve (both roles)", "hilbert");
    args.add_option("topology", "interconnect topology", "torus");
    args.add_option("dist", "particle distribution", "normal");
    args.add_option("move-frac",
                    "fraction of particles attempting a step per iteration",
                    "0.05");
    args.add_option("threshold",
                    "displaced fraction that triggers the advisor re-order",
                    "0.25");
  };
  spec.run = [](bench::Harness& h) {
    core::DynamicsStudy study;
    study.name = "ext_dynamics";
    if (h.full()) {
      study.particles = 250000;
      study.level = 10;  // 1024 x 1024
      study.procs = 4096;
    } else {
      study.particles = 20000;
      study.level = 9;  // 512 x 512
      study.procs = 256;
    }
    if (h.args().i64("particles") > 0)
      study.particles = static_cast<std::size_t>(h.args().i64("particles"));
    if (h.args().i64("level") > 0)
      study.level = static_cast<unsigned>(h.args().i64("level"));
    if (h.args().i64("procs") > 0)
      study.procs = static_cast<topo::Rank>(h.args().i64("procs"));
    study.steps = static_cast<unsigned>(h.args().i64("steps"));
    study.radius = static_cast<unsigned>(h.args().i64("radius"));
    study.seed = h.seed();
    study.move_fraction = h.args().f64("move-frac");
    study.repartition_threshold = h.args().f64("threshold");

    const auto curve = parse_curve(h.args().str("curve"));
    const auto topology = topo::parse_topology(h.args().str("topology"));
    const auto distribution = dist::parse_dist(h.args().str("dist"));
    if (!curve || !topology || !distribution) {
      std::cerr << "error: unknown "
                << (!curve ? "--curve" : !topology ? "--topology" : "--dist")
                << " value\n";
      return 1;
    }
    study.curve = *curve;
    study.topology = *topology;
    study.distribution = *distribution;

    h.prose() << "== Dynamics: " << study.particles << " "
              << dist::dist_name(study.distribution) << " particles, "
              << (1u << study.level) << "^2 resolution, p=" << study.procs
              << " " << topo::topology_name(study.topology) << ", "
              << curve_name(study.curve) << " both roles, " << study.steps
              << " drift steps at move fraction " << study.move_fraction
              << " ==\n\n";

    const core::DynamicsOptions options{h.pool(), nullptr};
    const core::DynamicsResult result = core::run_dynamics(study, options);

    util::Table table(
        "NFI ACD per iteration: frozen vs re-sorted vs advisor chunking");
    table.set_header({"iteration", "moves", "frozen", "reordered", "penalty%",
                      "incremental", "displaced%", "reorders"});
    for (std::size_t t = 0; t < result.steps.size(); ++t) {
      const core::DynamicsStepResult& r = result.steps[t];
      const double frozen = r.frozen_nfi.acd();
      const double reordered = r.reorder_nfi.acd();
      const double penalty =
          reordered == 0.0 ? 0.0 : (frozen / reordered - 1.0) * 100.0;
      table.add_row("t=" + std::to_string(t + 1),
                    {static_cast<double>(r.moves), frozen, reordered, penalty,
                     r.lazy_nfi.acd(), r.frozen_displaced * 100.0,
                     static_cast<double>(r.lazy_repartitions)});
      if (h.args().flag("progress"))
        std::cerr << "  .. t=" << t + 1 << " done\n";
    }
    h.emit(table);

    // The advisor's answer: how often did the threshold policy actually
    // have to re-order?
    const std::size_t reorders =
        result.steps.empty() ? 0 : result.steps.back().lazy_repartitions;
    std::ostringstream advisor;
    if (reorders == 0) {
      advisor << "never in " << study.steps
              << " steps (displaced fraction peaked at "
              << (result.steps.empty()
                      ? 0.0
                      : result.steps.back().frozen_displaced * 100.0)
              << "% < threshold " << study.repartition_threshold * 100.0
              << "%)";
    } else {
      advisor << "every ~" << (study.steps + reorders - 1) / reorders
              << " steps (" << reorders << " re-orders in " << study.steps
              << ")";
    }

    // Timing pass: replay the same frozen trajectory, timing the
    // incremental timestep (move + fold) against a full recompute of the
    // identical configuration. Equality of the two is asserted along the
    // way — the bench doubles as an end-to-end check of the delta path.
    const auto curve_impl = make_curve<2>(study.curve);
    const auto net = topo::make_topology<2>(study.topology, study.procs,
                                            curve_impl.get());
    dist::SampleConfig cfg;
    cfg.count = study.particles;
    cfg.level = study.level;
    cfg.seed = study.seed;
    core::DynamicAcd<2>::Options dyn_opts;
    dyn_opts.radius = study.radius;
    dyn_opts.norm = study.norm;
    dyn_opts.repartition_threshold = 2.0;  // frozen: never re-partition
    core::DynamicAcd<2> dyn(
        dist::sample_particles<2>(study.distribution, cfg), study.level,
        *curve_impl, study.procs, dyn_opts, h.pool());

    std::vector<double> speedups;
    speedups.reserve(study.steps);
    for (unsigned s = 0; s < study.steps; ++s) {
      const auto moves = core::drift_moves<2>(
          dyn.particles(), study.level, study.seed, s, study.move_fraction);
      const double t0 = now_seconds();
      dyn.move_particles(moves, h.pool());
      const core::CommTotals inc_nfi = dyn.nfi(*net);
      const fmm::FfiTotals inc_ffi = dyn.ffi(*net);
      const double t1 = now_seconds();
      const std::vector<Point2>& cur = dyn.particles();
      const fmm::OccupancyGrid<2> grid(cur, study.level);
      const fmm::CellTree<2> tree(cur, study.level);
      const fmm::Partition part(cur.size(), study.procs);
      const core::CommTotals ref_nfi = fmm::nfi_totals<2>(
          cur, grid, part, *net, study.radius, study.norm, h.pool());
      const fmm::FfiTotals ref_ffi =
          fmm::ffi_totals<2>(tree, part, *net, h.pool());
      const double t2 = now_seconds();
      if (inc_nfi != ref_nfi || inc_ffi.total() != ref_ffi.total()) {
        std::cerr << "error: incremental totals diverged from the full "
                     "recompute at step "
                  << s + 1 << "\n";
        return 1;
      }
      if (t1 > t0) speedups.push_back((t2 - t1) / (t1 - t0));
    }
    std::sort(speedups.begin(), speedups.end());
    const double speedup_p50 =
        speedups.empty() ? 0.0 : speedups[speedups.size() / 2];

    std::ostringstream dyn_json;
    dyn_json.precision(17);
    dyn_json << "{\"speedup_p50\":" << speedup_p50
             << ",\"move_fraction\":" << study.move_fraction
             << ",\"steps\":" << study.steps
             << ",\"advisor_reorders\":" << reorders << "}";
    h.attach_json("dynamics", dyn_json.str());

    h.prose()
        << "advisor: re-order " << advisor.str() << "\n"
        << "incremental timestep vs full recompute: median speedup "
        << speedup_p50 << "x at move fraction " << study.move_fraction
        << "\n\nreading guide: 'penalty' is how much ACD the frozen "
           "assignment loses to re-sorting the drifted\nconfiguration. "
           "Two findings: (1) the 'reordered' column is flat — the curve "
           "ordering stays equally\ngood as the distribution evolves, "
           "which is the paper's Section VI-A point: no incentive to "
           "switch SFCs\nbetween iterations; (2) the frozen *assignment* "
           "does go stale (the penalty grows with drift), so real\ncodes "
           "re-chunk periodically — the 'incremental' column shows the "
           "threshold policy doing exactly that,\nand the advisor line "
           "above turns its re-order count into a cadence.\n";
    return 0;
  };
  return bench::run_harness(argc, argv, spec);
}
