// ext_dynamics — the paper's Section VI-A claim, tested dynamically:
// "since the relative performance of the curves is unchanged, there is no
// incentive to shift the ordering of particles between FMM iterations to
// reflect the dynamically changing particle distribution profile."
//
// We drift the particles one Chebyshev step per iteration and compare two
// strategies over T iterations:
//   * frozen   — keep the chunk assignment computed from the initial
//     ordering (no data movement between iterations);
//   * reorder  — re-sort and re-chunk every iteration (perfect ordering,
//     but in practice costs an all-to-all data shuffle the ACD metric
//     does not price).
#include <iostream>
#include <numeric>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_dynamics",
                       "ACD drift across simulated FMM iterations");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "50000");
  args.add_option("level", "log2 resolution side", "9");
  args.add_option("procs", "processor count", "4096");
  args.add_option("steps", "iterations to simulate", "16");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));
  const auto steps = static_cast<std::uint64_t>(args.i64("steps"));
  const auto radius = static_cast<unsigned>(args.i64("radius"));
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));

  std::cout << "== Dynamics: " << particles_n << " normal particles, "
            << (1u << level) << "^2 resolution, p=" << procs
            << " torus, Hilbert both roles, " << steps
            << " drift steps ==\n\n";

  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = seed;
  auto particles = dist::sample_particles<2>(dist::DistKind::kNormal, sample);

  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net =
      topo::make_topology<2>(topo::TopologyKind::kTorus, procs, curve.get());
  const fmm::Partition part(particles.size(), procs);

  // Frozen strategy: sort once; as particles drift, keep each particle on
  // the processor its initial position assigned it to. We realize that by
  // sorting the initial configuration and then drifting the *sorted*
  // array in place — index i stays on proc_of(i) forever.
  core::AcdInstance<2> initial(particles, level, *curve);
  std::vector<Point2> frozen = initial.particles();

  util::Table table("NFI ACD per iteration: frozen vs re-sorted chunking");
  table.set_header({"iteration", "frozen", "reordered", "penalty%"});

  for (std::uint64_t t = 0; t <= steps; t += (steps >= 16 ? 4 : 1)) {
    // Frozen: evaluate with the original index->processor assignment.
    const fmm::OccupancyGrid<2> grid(frozen, level);
    const auto frozen_totals =
        fmm::nfi_totals<2>(frozen, grid, part, *net, radius);

    // Reordered: re-sort the same physical configuration.
    const core::AcdInstance<2> fresh(frozen, level, *curve);
    const auto fresh_totals = fresh.nfi(part, *net, radius);

    const double penalty =
        fresh_totals.acd() == 0.0
            ? 0.0
            : (frozen_totals.acd() / fresh_totals.acd() - 1.0) * 100.0;
    table.add_row("t=" + std::to_string(t),
                  {frozen_totals.acd(), fresh_totals.acd(), penalty});
    if (args.flag("progress")) std::cerr << "  .. t=" << t << " done\n";

    // Advance the configuration to the next sampled iteration.
    if (t < steps) {
      const std::uint64_t until = std::min(steps, t + (steps >= 16 ? 4u : 1u));
      for (std::uint64_t s = t; s < until; ++s) {
        dist::drift_particles<2>(frozen, level, seed, s);
      }
    }
  }

  table.print(std::cout, bench::table_style(args));
  std::cout
      << "\nreading guide: 'penalty' is how much ACD the frozen assignment "
         "loses to re-sorting the drifted\nconfiguration. Two findings: "
         "(1) the 'reordered' column is flat — the Hilbert ordering stays "
         "equally\ngood as the distribution evolves, which is the paper's "
         "Section VI-A point: no incentive to switch SFCs\nbetween "
         "iterations; (2) the frozen *assignment* does go stale (the "
         "penalty grows with drift), so real\ncodes re-chunk periodically "
         "— a cost/benefit the contention-unaware ACD metric does not "
         "price and a\nsharper reading than the paper's prose suggests.\n";
  return 0;
}
