// micro_topology — google-benchmark microbenchmarks for the hop-distance
// closed forms (the inner loop of every ACD evaluation) and for the
// communication-primitive evaluator.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "comm/primitives.hpp"
#include "sfc/curve.hpp"
#include "topology/factory.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfc;

constexpr topo::Rank kProcs = 4096;

std::vector<std::pair<topo::Rank, topo::Rank>> random_pairs(topo::Rank p,
                                                            std::size_t n) {
  util::Xoshiro256pp rng(11);
  std::vector<std::pair<topo::Rank, topo::Rank>> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<topo::Rank>(util::bounded_u64(rng, p)),
                       static_cast<topo::Rank>(util::bounded_u64(rng, p)));
  }
  return pairs;
}

void BM_Distance(benchmark::State& state, topo::TopologyKind kind) {
  const auto ranking = make_curve<2>(CurveKind::kHilbert);
  const auto net = topo::make_topology<2>(kind, kProcs, ranking.get());
  const auto pairs = random_pairs(kProcs, 4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->distance(pairs[i].first, pairs[i].second));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TopologyConstruction(benchmark::State& state,
                             topo::TopologyKind kind) {
  const auto ranking = make_curve<2>(CurveKind::kHilbert);
  for (auto _ : state) {
    const auto net = topo::make_topology<2>(kind, kProcs, ranking.get());
    benchmark::DoNotOptimize(net.get());
  }
}

void BM_PrimitiveAcd(benchmark::State& state, comm::Primitive primitive) {
  const auto ranking = make_curve<2>(CurveKind::kHilbert);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus, 1024,
                                          ranking.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm::primitive_acd(*net, primitive));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Distance, bus, sfc::topo::TopologyKind::kBus);
BENCHMARK_CAPTURE(BM_Distance, ring, sfc::topo::TopologyKind::kRing);
BENCHMARK_CAPTURE(BM_Distance, mesh, sfc::topo::TopologyKind::kMesh);
BENCHMARK_CAPTURE(BM_Distance, torus, sfc::topo::TopologyKind::kTorus);
BENCHMARK_CAPTURE(BM_Distance, quadtree, sfc::topo::TopologyKind::kQuadtree);
BENCHMARK_CAPTURE(BM_Distance, hypercube,
                  sfc::topo::TopologyKind::kHypercube);

BENCHMARK_CAPTURE(BM_TopologyConstruction, torus,
                  sfc::topo::TopologyKind::kTorus);
BENCHMARK_CAPTURE(BM_TopologyConstruction, hypercube,
                  sfc::topo::TopologyKind::kHypercube);

BENCHMARK_CAPTURE(BM_PrimitiveAcd, broadcast,
                  sfc::comm::Primitive::kBroadcastBinomial);
BENCHMARK_CAPTURE(BM_PrimitiveAcd, prefix,
                  sfc::comm::Primitive::kParallelPrefix);
BENCHMARK_CAPTURE(BM_PrimitiveAcd, halo,
                  sfc::comm::Primitive::kHaloExchange1D);

BENCHMARK_MAIN();
