// ablation_radius — Section VI-C claim: varying the near-field radius r
// raises every curve's ACD but never changes the curves' relative order,
// "so it does not provide any incentive to select separate SFCs for larger
// radius values."
#include <iostream>
#include <memory>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ablation_radius", "NFI ACD as a function of radius");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "100000");
  args.add_option("level", "log2 resolution side", "10");
  args.add_option("procs", "processor count", "4096");
  args.add_option("max-radius", "largest radius to evaluate", "6");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));
  const auto max_radius = static_cast<unsigned>(args.i64("max-radius"));
  const auto seed = static_cast<std::uint64_t>(args.i64("seed"));

  std::cout << "== Radius ablation: " << particles_n << " uniform particles, "
            << (1u << level) << "^2 resolution, p=" << procs
            << " torus ==\n\n";

  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = seed;
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, sample);
  const fmm::Partition part(particles.size(), procs);

  util::Table table("NFI ACD vs near-field radius (torus, same SFC both roles)");
  std::vector<std::string> header = {"radius"};
  std::vector<std::unique_ptr<core::AcdInstance<2>>> instances;
  std::vector<std::unique_ptr<topo::Topology>> nets;
  std::vector<CurveKind> curves(kPaperCurves, kPaperCurves + 4);
  for (const CurveKind kind : curves) {
    header.emplace_back(curve_name(kind));
    const auto curve = make_curve<2>(kind);
    instances.push_back(
        std::make_unique<core::AcdInstance<2>>(particles, level, *curve));
    nets.push_back(
        topo::make_topology<2>(topo::TopologyKind::kTorus, procs, curve.get()));
  }
  table.set_header(header);
  table.mark_minima(true);

  for (unsigned r = 1; r <= max_radius; ++r) {
    std::vector<double> row;
    for (std::size_t c = 0; c < curves.size(); ++c) {
      row.push_back(instances[c]->nfi(part, *nets[c], r).acd());
      if (args.flag("progress")) {
        std::cerr << "  .. r=" << r << " " << curve_name(curves[c])
                  << " done\n";
      }
    }
    table.add_row("r=" + std::to_string(r), std::move(row));
  }
  table.print(std::cout, bench::table_style(args));

  std::cout << "\nexpected shape (paper Section VI-C): every column grows "
               "with r, but the per-row ordering of the\ncurves (Hilbert "
               "best, row-major worst) never changes.\n";
  return 0;
}
