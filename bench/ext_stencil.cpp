// ext_stencil — SFC domain decomposition for stencil codes, the other
// classical use of particle-order SFCs: distribute ALL cells of a dense
// grid (a PDE domain, not sparse particles) into p chunks along the curve
// and price the ghost-cell exchange of a 5-point/9-point stencil sweep.
// In model terms this is the NFI with the full grid as the particle set —
// the machinery is identical, which is itself a point about the ACD
// abstraction.
#include <iostream>

#include "bench_common.hpp"
#include "fmm/enumerate.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_stencil",
                       "ghost-exchange ACD for dense-grid decomposition");
  bench::add_common_options(args);
  args.add_option("level", "log2 grid side (all 4^level cells used)", "9");
  args.add_option("procs", "processor count", "4096");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));

  std::cout << "== Stencil decomposition: full " << (1u << level) << "^2 "
            << "grid, p=" << procs << " torus ==\n\n";

  // The "particles" are every cell of the domain.
  std::vector<Point2> cells;
  cells.reserve(grid_size<2>(level));
  const std::uint32_t side = 1u << level;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      cells.push_back(make_point(x, y));
    }
  }

  util::Table table("ghost-exchange traffic per stencil sweep");
  table.set_header({"curve", "remote-frac(5pt)", "ACD(5pt)",
                    "remote-frac(9pt)", "ACD(9pt)"});

  for (const CurveKind kind : kAllCurves) {
    const auto curve = make_curve<2>(kind);
    const core::AcdInstance<2> instance(cells, level, *curve);
    const fmm::Partition part(instance.particles().size(), procs);
    const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                            procs, curve.get());

    // 5-point stencil: Manhattan-1 neighbors; 9-point: Chebyshev-1.
    const auto five = instance.nfi(part, *net, 1,
                                   fmm::NeighborNorm::kManhattan);
    const auto nine = instance.nfi(part, *net, 1,
                                   fmm::NeighborNorm::kChebyshev);
    // Remote fraction: communications that actually cross processors.
    auto remote_fraction = [&](const core::CommTotals& t,
                               fmm::NeighborNorm norm) {
      core::CommTotals local;
      fmm::nfi_visit<2>(instance.particles(), instance.grid(), 1, norm,
                        [&](std::size_t a, std::size_t b) {
                          if (part.proc_of(a) != part.proc_of(b)) {
                            ++local.count;
                          }
                        });
      return static_cast<double>(local.count) /
             static_cast<double>(t.count);
    };
    table.add_row(std::string(curve_name(kind)),
                  {remote_fraction(five, fmm::NeighborNorm::kManhattan),
                   five.acd(),
                   remote_fraction(nine, fmm::NeighborNorm::kChebyshev),
                   nine.acd()});
    if (args.flag("progress")) {
      std::cerr << "  .. " << curve_name(kind) << " done\n";
    }
  }

  table.print(std::cout, bench::table_style(args));
  std::cout << "\nreading guide: 'remote-frac' is the ghost fraction — "
               "the surface-to-volume of the chunks the curve\ncuts; ACD "
               "prices where those ghosts travel. Hilbert/Moore chunks are "
               "the most compact; row-major's\nchunks are 1-cell-thin "
               "strips whose entire surface is remote.\n";
  return 0;
}
