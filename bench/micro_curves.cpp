// micro_curves — google-benchmark timings for the encode and ordering
// hot paths PR 5 rebuilt: per-point virtual index() against the batched
// index_batch kernels for every 2-D curve (ns/point), and the full
// ordering stage — key computation plus argsort — comparing the old
// shape (one virtual call per particle, comparison argsort) against the
// shipped shape (one batched call, stable LSD radix argsort). Items are
// points, so benchmark output is directly ns/point; bench_to_json.py
// lifts the per-curve ratios and the ordering speedup into
// BENCH_acd.json and gates regressions on them.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "distribution/distribution.hpp"
#include "sfc/curve.hpp"
#include "util/radix_sort.hpp"
#include "util/simd.hpp"

namespace {

using namespace sfc;

// The acceptance scenario: level 10 (1024 x 1024), 100k particles — the
// same cell the sweep and aggregation benches pin.
constexpr unsigned kLevel = 10;
constexpr std::size_t kParticles = 100000;

const std::vector<Point2>& bench_points() {
  static const std::vector<Point2> pts = [] {
    dist::SampleConfig cfg;
    cfg.count = kParticles;
    cfg.level = kLevel;
    cfg.seed = 1;
    return dist::sample_particles<2>(dist::DistKind::kUniform, cfg);
  }();
  return pts;
}

void BM_EncodePerPoint(benchmark::State& state, CurveKind kind) {
  const auto curve = make_curve<2>(kind);
  const auto& pts = bench_points();
  std::vector<std::uint64_t> keys(pts.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      keys[i] = curve->index(pts[i], kLevel);
    }
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}

void BM_EncodeBatched(benchmark::State& state, CurveKind kind) {
  const auto curve = make_curve<2>(kind);
  const auto& pts = bench_points();
  std::vector<std::uint64_t> keys(pts.size());
  for (auto _ : state) {
    curve->index_batch(pts.data(), keys.data(), pts.size(), kLevel);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}

/// BM_EncodeBatched with the dispatcher pinned to the portable table:
/// the per-ISA baseline column. The simd_speedup ratios in
/// BENCH_acd.json divide this row by the dispatched one, so both come
/// from the same binary and process.
void BM_EncodeBatchedScalar(benchmark::State& state, CurveKind kind) {
  const util::simd::ScopedForceScalar scalar;
  BM_EncodeBatched(state, kind);
}

/// The ordering stage as it shipped before this change: one virtual
/// index() per particle, then a comparison argsort (std::stable_sort on
/// (key, index) pairs — the tie-break contract the radix sort preserves).
void BM_OrderVirtualStableSort(benchmark::State& state, CurveKind kind) {
  const auto curve = make_curve<2>(kind);
  const auto& pts = bench_points();
  std::vector<std::uint32_t> rank(pts.size());
  for (auto _ : state) {
    std::vector<util::KeyIndex> items(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      items[i] = util::KeyIndex{curve->index(pts[i], kLevel),
                                static_cast<std::uint32_t>(i)};
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const util::KeyIndex& a, const util::KeyIndex& b) {
                       return a.key < b.key;
                     });
    for (std::uint32_t k = 0; k < items.size(); ++k) {
      rank[items[k].index] = k;
    }
    benchmark::DoNotOptimize(rank.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}

/// The ordering stage as the sweep engine now runs it: one batched
/// encode for the whole sample, then a serial stable LSD radix argsort
/// (sweep.cpp make_ordering's beyond-dense path — at level 10/100k the
/// 4^level grid is 10x the sample, so this is the path that runs).
void BM_OrderBatchedRadix(benchmark::State& state, CurveKind kind) {
  const auto curve = make_curve<2>(kind);
  const auto& pts = bench_points();
  std::vector<std::uint64_t> keys(pts.size());
  std::vector<std::uint32_t> rank(pts.size());
  for (auto _ : state) {
    curve->index_batch(pts.data(), keys.data(), pts.size(), kLevel);
    std::vector<util::KeyIndex> items(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      items[i] = util::KeyIndex{keys[i], static_cast<std::uint32_t>(i)};
    }
    util::radix_sort_pairs(items);
    for (std::uint32_t k = 0; k < items.size(); ++k) {
      rank[items[k].index] = k;
    }
    benchmark::DoNotOptimize(rank.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pts.size()));
}

/// BM_OrderBatchedRadix on the portable table: encode and sort pre-scan
/// both fall back to their scalar loops.
void BM_OrderBatchedRadixScalar(benchmark::State& state, CurveKind kind) {
  const util::simd::ScopedForceScalar scalar;
  BM_OrderBatchedRadix(state, kind);
}

}  // namespace

BENCHMARK_CAPTURE(BM_EncodePerPoint, hilbert, sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_EncodeBatched, hilbert, sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_EncodePerPoint, morton, sfc::CurveKind::kMorton);
BENCHMARK_CAPTURE(BM_EncodeBatched, morton, sfc::CurveKind::kMorton);
BENCHMARK_CAPTURE(BM_EncodePerPoint, gray, sfc::CurveKind::kGray);
BENCHMARK_CAPTURE(BM_EncodeBatched, gray, sfc::CurveKind::kGray);
BENCHMARK_CAPTURE(BM_EncodePerPoint, rowmajor, sfc::CurveKind::kRowMajor);
BENCHMARK_CAPTURE(BM_EncodeBatched, rowmajor, sfc::CurveKind::kRowMajor);
BENCHMARK_CAPTURE(BM_EncodePerPoint, snake, sfc::CurveKind::kSnake);
BENCHMARK_CAPTURE(BM_EncodeBatched, snake, sfc::CurveKind::kSnake);
BENCHMARK_CAPTURE(BM_EncodePerPoint, moore, sfc::CurveKind::kMoore);
BENCHMARK_CAPTURE(BM_EncodeBatched, moore, sfc::CurveKind::kMoore);

// Per-ISA baseline columns for the curves with SIMD kernel variants
// (rowmajor/snake dispatch nothing; their scalar row would equal the
// dispatched one).
BENCHMARK_CAPTURE(BM_EncodeBatchedScalar, hilbert, sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_EncodeBatchedScalar, morton, sfc::CurveKind::kMorton);
BENCHMARK_CAPTURE(BM_EncodeBatchedScalar, gray, sfc::CurveKind::kGray);
BENCHMARK_CAPTURE(BM_EncodeBatchedScalar, moore, sfc::CurveKind::kMoore);

BENCHMARK_CAPTURE(BM_OrderVirtualStableSort, hilbert,
                  sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_OrderBatchedRadix, hilbert, sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_OrderVirtualStableSort, morton, sfc::CurveKind::kMorton);
BENCHMARK_CAPTURE(BM_OrderBatchedRadix, morton, sfc::CurveKind::kMorton);
BENCHMARK_CAPTURE(BM_OrderBatchedRadixScalar, hilbert,
                  sfc::CurveKind::kHilbert);
BENCHMARK_CAPTURE(BM_OrderBatchedRadixScalar, morton,
                  sfc::CurveKind::kMorton);

// Custom main instead of BENCHMARK_MAIN so every JSON document carries
// the dispatched ISA in its context block — bench_to_json.py copies it
// into the build-provenance stamp that gates cross-machine comparisons.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd", sfc::util::simd::isa_name(sfc::util::simd::active_isa()));
  benchmark::AddCustomContext(
      "simd_compiled",
      sfc::util::simd::isa_name(sfc::util::simd::compiled_isa()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
