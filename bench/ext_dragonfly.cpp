// ext_dragonfly — extends the paper's Figure 6 topology comparison to a
// modern high-radix interconnect. The Dragonfly's diameter-3 structure is
// what replaced the tori the paper studied; this harness asks how much of
// the SFC question survives on it (answer: the particle-ordering question
// survives intact; the processor-ordering question mostly disappears,
// because everything is 0-3 hops from everything).
#include <iostream>

#include "bench_common.hpp"
#include "comm/primitives.hpp"
#include "topology/dragonfly.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_dragonfly",
                       "FMM ACD on a Dragonfly vs the paper's topologies");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "50000");
  args.add_option("level", "log2 resolution side", "9");
  args.add_option("group-size", "Dragonfly routers per group", "8");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto a = static_cast<topo::Rank>(args.i64("group-size"));
  const auto radius = static_cast<unsigned>(args.i64("radius"));

  const topo::DragonflyTopology dragonfly(a);
  const topo::Rank p_df = dragonfly.size();
  // Nearest power-of-four size for the grid-based references.
  topo::Rank p_grid = 4;
  while (p_grid * 4 <= p_df) p_grid *= 4;

  std::cout << "== Dragonfly extension: " << particles_n
            << " uniform particles, " << (1u << level)
            << "^2 resolution; Dragonfly a=" << a << " (p=" << p_df
            << ") vs torus/quadtree/hypercube (p=" << p_grid << ") ==\n\n";

  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, sample);

  util::Table table("NFI / FFI ACD per topology (Hilbert particle order)");
  table.set_header({"topology", "p", "NFI ACD", "FFI ACD",
                    "broadcast ACD"});

  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const core::AcdInstance<2> instance(particles, level, *curve);

  auto add_row = [&](const std::string& name, const topo::Topology& net) {
    const fmm::Partition part(instance.particles().size(), net.size());
    table.add_row(name,
                  {static_cast<double>(net.size()),
                   instance.nfi(part, net, radius).acd(),
                   instance.ffi(part, net).total().acd(),
                   comm::primitive_acd(net,
                                       comm::Primitive::kBroadcastBinomial)});
    if (args.flag("progress")) std::cerr << "  .. " << name << " done\n";
  };

  add_row("Dragonfly", dragonfly);
  const topo::Rank p_linear = p_df;
  add_row("Ring", *topo::make_topology<2>(topo::TopologyKind::kRing,
                                          p_linear, curve.get()));
  add_row("Bus", *topo::make_topology<2>(topo::TopologyKind::kBus, p_linear,
                                         curve.get()));
  add_row("Torus", *topo::make_topology<2>(topo::TopologyKind::kTorus,
                                           p_grid, curve.get()));
  add_row("Quadtree", *topo::make_topology<2>(topo::TopologyKind::kQuadtree,
                                              p_grid, curve.get()));
  add_row("Hypercube", *topo::make_topology<2>(
                           topo::TopologyKind::kHypercube, p_grid,
                           curve.get()));

  table.print(std::cout, bench::table_style(args));
  std::cout << "\nreading guide: the Dragonfly's flat 0-3 hop geometry "
               "compresses every ACD toward its diameter,\nshrinking the "
               "processor-ordering question the paper studies on tori — "
               "but the particle-ordering\nquestion (who owns which data) "
               "is topology-independent and remains in full force.\n";
  return 0;
}
