// fig6_topologies — reproduces paper Figure 6: NFI and FFI ACD across the
// six network topologies, using the same SFC for particle and processor
// ordering (24 sub-cases).
//
// Paper parameters (--full): 1,000,000 uniformly distributed particles on
// a 4096x4096 resolution, radius 4. The default is a reduced setting that
// finishes in well under a minute on one core; the qualitative ordering is
// identical. The paper omits bus/ring (and row-major NFI) from its plot
// because the values dwarf the rest — we print everything.
#include "core/report.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  bench::HarnessSpec spec;
  spec.name = "fig6_topologies";
  spec.description = "Figure 6: ACD per topology per SFC";
  spec.add_options = [](util::ArgParser& args) {
    args.add_option("particles", "number of particles (0 = preset)", "0");
    args.add_option("level", "log2 resolution side (0 = preset)", "0");
    args.add_option("procs", "processor count (0 = preset)", "0");
    args.add_option("radius", "near-field Chebyshev radius (0 = preset)", "0");
    args.add_option("out-csv", "basename for plot-ready CSV export", "");
  };
  spec.run = [](bench::Harness& h) {
    core::Study study;
    study.name = "fig6_topologies";
    topo::Rank procs = 0;
    if (h.full()) {
      study.particles = 1000000;
      study.level = 12;  // 4096 x 4096
      procs = 65536;
      study.radius = 4;
    } else {
      study.particles = 150000;
      study.level = 10;  // 1024 x 1024
      procs = 4096;
      study.radius = 2;
    }
    if (h.args().i64("particles") > 0)
      study.particles = static_cast<std::size_t>(h.args().i64("particles"));
    if (h.args().i64("level") > 0)
      study.level = static_cast<unsigned>(h.args().i64("level"));
    if (h.args().i64("procs") > 0)
      procs = static_cast<topo::Rank>(h.args().i64("procs"));
    if (h.args().i64("radius") > 0)
      study.radius = static_cast<unsigned>(h.args().i64("radius"));
    study.seed = h.seed();
    study.trials = h.trials();
    study.proc_counts = {procs};
    // Curves stay paired (processor_curves empty); the topology axis is
    // the sweep.
    study.topologies.assign(topo::kAllTopologies, topo::kAllTopologies + 6);

    h.prose() << "== Figure 6 reproduction: " << study.particles
              << " uniform particles, " << (1u << study.level)
              << "^2 resolution, p=" << procs << ", r=" << study.radius
              << " ==\n\n";

    const auto result = core::run_study(study, h.sweep_options(&study));

    for (const bool far_field : {false, true}) {
      auto table = core::topology_table(result, far_field);
      h.emit(table);
      const std::string out = h.args().str("out-csv");
      if (!out.empty()) {
        core::write_file(out + (far_field ? ".ffi.csv" : ".nfi.csv"), table);
      }
    }

    h.prose()
        << "expected shape (paper Fig. 6): for NFI hypercube < torus ~ mesh "
           "< quadtree << ring < bus;\nfor FFI the quadtree edges out the "
           "hypercube; mesh ~ torus for the recursive SFCs but torus << mesh "
           "for row-major;\nHilbert is the best curve on every topology.\n";
    h.attach_study(result);
    return 0;
  };
  return bench::run_harness(argc, argv, spec);
}
