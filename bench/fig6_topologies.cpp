// fig6_topologies — reproduces paper Figure 6: NFI and FFI ACD across the
// six network topologies, using the same SFC for particle and processor
// ordering (24 sub-cases).
//
// Paper parameters (--full): 1,000,000 uniformly distributed particles on
// a 4096x4096 resolution, radius 4. The default is a reduced setting that
// finishes in well under a minute on one core; the qualitative ordering is
// identical. The paper omits bus/ring (and row-major NFI) from its plot
// because the values dwarf the rest — we print everything.
#include <iostream>

#include "bench_common.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("fig6_topologies",
                       "Figure 6: ACD per topology per SFC");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles (0 = preset)", "0");
  args.add_option("level", "log2 resolution side (0 = preset)", "0");
  args.add_option("procs", "processor count (0 = preset)", "0");
  args.add_option("radius", "near-field Chebyshev radius (0 = preset)", "0");
  args.add_option("out-csv", "basename for plot-ready CSV export", "");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  core::TopologyStudyConfig cfg;
  if (args.flag("full")) {
    cfg.particles = 1000000;
    cfg.level = 12;  // 4096 x 4096
    cfg.procs = 65536;
    cfg.radius = 4;
  } else {
    cfg.particles = 150000;
    cfg.level = 10;  // 1024 x 1024
    cfg.procs = 4096;
    cfg.radius = 2;
  }
  if (args.i64("particles") > 0)
    cfg.particles = static_cast<std::size_t>(args.i64("particles"));
  if (args.i64("level") > 0)
    cfg.level = static_cast<unsigned>(args.i64("level"));
  if (args.i64("procs") > 0)
    cfg.procs = static_cast<topo::Rank>(args.i64("procs"));
  if (args.i64("radius") > 0)
    cfg.radius = static_cast<unsigned>(args.i64("radius"));
  cfg.seed = static_cast<std::uint64_t>(args.i64("seed"));
  cfg.trials = static_cast<unsigned>(args.i64("trials"));

  std::cout << "== Figure 6 reproduction: " << cfg.particles
            << " uniform particles, " << (1u << cfg.level)
            << "^2 resolution, p=" << cfg.procs << ", r=" << cfg.radius
            << " ==\n\n";

  const auto result =
      core::run_topology_study(cfg, nullptr, bench::progress_fn(args));
  const auto style = bench::table_style(args);

  for (const bool far_field : {false, true}) {
    auto table = core::topology_table(result, far_field);
    table.print(std::cout, style);
    std::cout << "\n";
    const std::string out = args.str("out-csv");
    if (!out.empty()) {
      core::write_file(out + (far_field ? ".ffi.csv" : ".nfi.csv"), table);
    }
  }

  std::cout
      << "expected shape (paper Fig. 6): for NFI hypercube < torus ~ mesh "
         "< quadtree << ring < bus;\nfor FFI the quadtree edges out the "
         "hypercube; mesh ~ torus for the recursive SFCs but torus << mesh "
         "for row-major;\nHilbert is the best curve on every topology.\n";
  return 0;
}
