// paper_reference.hpp — the ACD values reported in the paper's Tables I
// and II, transcribed verbatim. Rows are processor-order curves, columns
// particle-order curves, both in the order Hilbert, Z, Gray, Row-major.
// Used only for side-by-side shape comparison in the harness output; the
// reproduction is not expected to match absolute values (the paper's
// distribution parameters and sampling details are unpublished).
#pragma once

namespace sfc::bench {

// Table I — near-field interactions.
inline constexpr double kPaperTable1Uniform[4][4] = {
    {4.008, 4.308, 4.939, 13.117},
    {5.486, 5.758, 6.573, 18.127},
    {5.802, 6.010, 6.970, 19.220},
    {9.126, 9.763, 11.713, 70.353},
};

inline constexpr double kPaperTable1Normal[4][4] = {
    {8.561, 9.297, 10.123, 20.340},
    {11.003, 11.551, 12.984, 26.842},
    {11.881, 12.595, 13.249, 28.188},
    {20.143, 22.221, 24.053, 66.719},
};

inline constexpr double kPaperTable1Exponential[4][4] = {
    {5.238, 5.654, 6.271, 14.943},
    {6.943, 7.070, 8.235, 20.851},
    {7.276, 7.663, 8.760, 22.269},
    {12.483, 13.017, 15.289, 61.227},
};

// Table II — far-field interactions.
inline constexpr double kPaperTable2Uniform[4][4] = {
    {19.494, 20.841, 22.572, 31.124},
    {24.217, 24.793, 27.787, 37.709},
    {24.622, 25.446, 27.997, 39.282},
    {44.513, 48.762, 50.118, 57.880},
};

inline constexpr double kPaperTable2Normal[4][4] = {
    {26.336, 26.824, 31.963, 32.542},
    {29.160, 28.036, 34.241, 36.663},
    {29.449, 27.981, 31.909, 37.291},
    {43.639, 44.636, 49.133, 45.475},
};

inline constexpr double kPaperTable2Exponential[4][4] = {
    {18.960, 19.841, 23.007, 31.368},
    {24.672, 23.316, 26.315, 37.576},
    {23.762, 24.076, 27.973, 37.863},
    {42.447, 44.067, 46.872, 50.963},
};

inline const double (*paper_table1(int dist_index))[4] {
  switch (dist_index) {
    case 0:
      return kPaperTable1Uniform;
    case 1:
      return kPaperTable1Normal;
    default:
      return kPaperTable1Exponential;
  }
}

inline const double (*paper_table2(int dist_index))[4] {
  switch (dist_index) {
    case 0:
      return kPaperTable2Uniform;
    case 1:
      return kPaperTable2Normal;
    default:
      return kPaperTable2Exponential;
  }
}

}  // namespace sfc::bench
