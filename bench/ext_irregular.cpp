// ext_irregular — ACD on a degraded network. Real machines lose links;
// the closed-form topologies cannot express that, but the explicit-graph
// topology (BFS shortest paths) can. This harness knocks out a random
// subset of a torus's links and asks whether the SFC ranking conclusions
// survive on the resulting irregular interconnect.
#include <iostream>

#include "bench_common.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_irregular",
                       "ACD on a torus with failed links (graph/BFS)");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "20000");
  args.add_option("level", "log2 resolution side", "8");
  args.add_option("proc-level", "log2 torus side (p = 4^this)", "4");
  args.add_option("fail-percent", "percent of links to fail", "10");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto proc_level = static_cast<unsigned>(args.i64("proc-level"));
  const auto fail_percent = static_cast<unsigned>(args.i64("fail-percent"));
  const std::uint32_t grid_side = 1u << proc_level;
  const topo::Rank procs = grid_side * grid_side;

  std::cout << "== Irregular network: " << procs << "-processor torus with "
            << fail_percent << "% failed links, " << particles_n
            << " uniform particles ==\n\n";

  // Build the torus edge list, then fail a deterministic random subset
  // (keeping the graph connected by retrying the sample if BFS ever
  // reports unreachable pairs — detected by a distance overflow).
  dist::SampleConfig sample;
  sample.count = particles_n;
  sample.level = level;
  sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kUniform, sample);
  const fmm::Partition part(particles.size(), procs);

  auto vertex = [grid_side](std::uint32_t x, std::uint32_t y) {
    return y * grid_side + x;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> all_edges;
  for (std::uint32_t y = 0; y < grid_side; ++y) {
    for (std::uint32_t x = 0; x < grid_side; ++x) {
      all_edges.emplace_back(vertex(x, y),
                             vertex((x + 1) % grid_side, y));
      all_edges.emplace_back(vertex(x, y),
                             vertex(x, (y + 1) % grid_side));
    }
  }
  util::Xoshiro256pp rng(99);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> kept;
  for (const auto& e : all_edges) {
    if (util::bounded_u64(rng, 100) >= fail_percent) kept.push_back(e);
  }
  std::cout << "links: " << all_edges.size() << " -> " << kept.size()
            << " after failures\n\n";

  util::Table table("ACD on healthy vs degraded torus");
  table.set_header({"ranking curve", "NFI healthy", "NFI degraded",
                    "FFI healthy", "FFI degraded"});

  for (const CurveKind kind : kPaperCurves) {
    const auto curve = make_curve<2>(kind);
    const core::AcdInstance<2> instance(particles, level, *curve);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> coords;
    for (topo::Rank r = 0; r < procs; ++r) {
      const Point2 p = curve->point(r, proc_level);
      coords.emplace_back(p[0], p[1]);
    }
    std::vector<std::uint32_t> rank_to_vertex;
    for (const auto& [x, y] : coords) rank_to_vertex.push_back(vertex(x, y));

    const topo::GraphTopology healthy(procs, all_edges, rank_to_vertex);
    const topo::GraphTopology degraded(procs, kept, rank_to_vertex);

    const double nfi_h = instance.nfi(part, healthy, 1).acd();
    const double nfi_d = instance.nfi(part, degraded, 1).acd();
    const double ffi_h = instance.ffi(part, healthy).total().acd();
    const double ffi_d = instance.ffi(part, degraded).total().acd();
    table.add_row(std::string(curve_name(kind)),
                  {nfi_h, nfi_d, ffi_h, ffi_d});
    if (args.flag("progress")) {
      std::cerr << "  .. " << curve_name(kind) << " done\n";
    }
  }

  table.print(std::cout, bench::table_style(args));
  std::cout << "\nreading guide: failures lengthen paths roughly uniformly "
               "across rankings, so the SFC ordering is\nrobust to "
               "moderate interconnect degradation — and the healthy "
               "columns cross-check the closed-form torus\n(they match "
               "bench/fig6 values for the same setting).\n";
  return 0;
}
