// ext_compressed — the compressed-quadtree ablation: the paper's Section
// III describes the domain as a compressed quadtree, but the ACD
// computation of Section IV walks every occupied cell. Collapsing the
// singleton chains removes exactly the zero-hop accumulation messages, so
// the hop totals are representation-independent while the message counts
// (ACD's denominator) are not — a pitfall when comparing ACD values across
// implementations.
#include <iostream>

#include "bench_common.hpp"
#include "fmm/compressed.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("ext_compressed",
                       "compressed vs uncompressed accumulation model");
  bench::add_common_options(args);
  args.add_option("particles", "number of particles", "100000");
  args.add_option("level", "log2 resolution side", "10");
  args.add_option("procs", "processor count", "4096");
  if (!bench::parse_or_usage(args, argc, argv)) return 0;

  const auto particles_n = static_cast<std::size_t>(args.i64("particles"));
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));

  std::cout << "== Compressed-quadtree ablation: " << particles_n
            << " particles, " << (1u << level) << "^2 resolution, p="
            << procs << " torus, Hilbert both roles ==\n\n";

  util::Table table(
      "occupied cells vs compressed nodes, and accumulation ACD");
  table.set_header({"distribution", "cells", "nodes", "ratio", "ACD-full",
                    "ACD-compressed"});
  table.set_precision(3);

  const auto curve = make_curve<2>(CurveKind::kHilbert);
  const auto net =
      topo::make_topology<2>(topo::TopologyKind::kTorus, procs, curve.get());

  for (const dist::DistKind kind : dist::kExtendedDistributions) {
    dist::SampleConfig sample;
    sample.count = particles_n;
    sample.level = level;
    sample.seed = static_cast<std::uint64_t>(args.i64("seed"));
    const auto particles = dist::sample_particles<2>(kind, sample);
    const core::AcdInstance<2> instance(particles, level, *curve);
    const fmm::Partition part(particles.size(), procs);

    const fmm::CompressedCellTree<2> compressed(instance.tree());
    const auto full = instance.ffi(part, *net).interpolation;
    const auto collapsed =
        fmm::compressed_accumulation_totals<2>(compressed, part, *net);

    table.add_row(std::string(dist_name(kind)),
                  {static_cast<double>(instance.tree().total_cells()),
                   static_cast<double>(compressed.node_count()),
                   compressed.compression(instance.tree()), full.acd(),
                   collapsed.acd()});
    if (args.flag("progress")) {
      std::cerr << "  .. " << dist_name(kind) << " done\n";
    }
  }

  table.print(std::cout, bench::table_style(args));
  std::cout << "\nreading guide: hop totals are identical by construction "
               "(unit-tested). Sparse/isolated particles produce\nthe "
               "singleton chains that compression removes, so the uniform "
               "input compresses hardest while tight\nclusters (whose "
               "siblings are occupied) barely compress. Removing the "
               "zero-hop chain messages raises the\nreported ACD — state "
               "which tree representation you count when quoting ACD "
               "values.\n";
  return 0;
}
