// quickstart — a five-minute tour of the public API:
//   1. sample a particle set from one of the paper's distributions,
//   2. linearize it with a space-filling curve (particle ordering),
//   3. distribute the order over a processor topology ranked by a second
//      curve (processor ordering), and
//   4. score the placement with the Average Communicated Distance metric
//      under the FMM near-field and far-field communication models.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <iostream>

#include "core/acd.hpp"

int main() {
  using namespace sfc;

  // --- 1. Input: 20,000 exponentially distributed particles on a 256x256
  //        grid of finest-resolution cells (at most one per cell).
  dist::SampleConfig sample;
  sample.count = 20000;
  sample.level = 8;
  sample.seed = 2013;  // everything downstream is bit-reproducible
  const auto particles =
      dist::sample_particles<2>(dist::DistKind::kExponential, sample);
  std::cout << "sampled " << particles.size()
            << " particles (exponential, 256x256 grid)\n\n";

  // --- 2+3. Evaluate every particle-order curve against a 1024-processor
  //          torus ranked by the Hilbert curve (the paper's recommended
  //          processor ordering).
  const auto processor_curve = make_curve<2>(CurveKind::kHilbert);
  const auto net = topo::make_topology<2>(topo::TopologyKind::kTorus, 1024,
                                          processor_curve.get());
  const fmm::Partition part(particles.size(), net->size());

  std::printf("%-12s %12s %12s %14s\n", "particle SFC", "NFI ACD", "FFI ACD",
              "communications");
  for (const CurveKind kind : kPaperCurves) {
    const auto curve = make_curve<2>(kind);
    const core::AcdInstance<2> instance(particles, sample.level, *curve);

    // --- 4. Count every pairwise communication and its hop distance.
    const core::CommTotals nfi = instance.nfi(part, *net, /*radius=*/1);
    const fmm::FfiTotals ffi = instance.ffi(part, *net);
    std::printf("%-12s %12.3f %12.3f %14llu\n",
                std::string(curve->name()).c_str(), nfi.acd(),
                ffi.total().acd(),
                static_cast<unsigned long long>(nfi.count +
                                                ffi.total().count));
  }

  // The one-call variant: a Scenario bundles every knob.
  core::Scenario2 scenario;
  scenario.particles = 20000;
  scenario.level = 8;
  scenario.procs = 1024;
  scenario.particle_curve = CurveKind::kHilbert;
  scenario.processor_curve = CurveKind::kHilbert;
  scenario.topology = topo::TopologyKind::kTorus;
  scenario.distribution = dist::DistKind::kExponential;
  scenario.seed = 2013;
  const auto result = core::compute_acd<2>(scenario);
  std::cout << "\none-call Scenario API: NFI ACD = " << result.nfi_acd()
            << ", FFI ACD = " << result.ffi_acd() << "\n"
            << "(expected: the Hilbert row above, computed end-to-end)\n";
  return 0;
}
