// primitives_acd — the Section VII generalization in action: the ACD
// metric applied to generic parallel communication primitives instead of
// the FMM model. For each primitive we compare topologies, and for the
// SFC-ranked topologies we compare processor orderings — the same
// "pick your curve before you run" workflow the paper proposes.
//
// Run: ./primitives_acd [--procs 1024]
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "comm/primitives.hpp"
#include "sfc/curve.hpp"
#include "topology/factory.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("primitives_acd",
                       "ACD of generic communication primitives");
  args.add_option("procs", "processor count (a power of four)", "1024");
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }
  const auto procs = static_cast<topo::Rank>(args.i64("procs"));

  // --- Part 1: primitive x topology (Hilbert ranking on mesh/torus).
  const auto hilbert = make_curve<2>(CurveKind::kHilbert);
  std::vector<std::unique_ptr<topo::Topology>> nets;
  for (const topo::TopologyKind kind : topo::kAllTopologies) {
    nets.push_back(topo::make_topology<2>(kind, procs, hilbert.get()));
  }

  std::cout << "== ACD of communication primitives, p=" << procs
            << " (mesh/torus ranked by Hilbert) ==\n\n";
  std::printf("%-20s", "primitive");
  for (const auto& net : nets) {
    std::printf("%12s", std::string(net->name()).c_str());
  }
  std::printf("\n");
  for (const comm::Primitive prim : comm::kAllPrimitives) {
    std::printf("%-20s", std::string(comm::primitive_name(prim)).c_str());
    for (const auto& net : nets) {
      std::printf("%12.3f", comm::primitive_acd(*net, prim));
    }
    std::printf("\n");
  }

  // --- Part 2: the processor-order SFC matters for primitives too.
  std::cout << "\n== Torus processor-ordering comparison ==\n\n";
  std::printf("%-20s", "primitive");
  for (const CurveKind kind : kPaperCurves) {
    std::printf("%12s", std::string(curve_name(kind)).c_str());
  }
  std::printf("\n");
  for (const comm::Primitive prim : comm::kAllPrimitives) {
    std::printf("%-20s", std::string(comm::primitive_name(prim)).c_str());
    for (const CurveKind kind : kPaperCurves) {
      const auto curve = make_curve<2>(kind);
      const auto torus = topo::make_topology<2>(topo::TopologyKind::kTorus,
                                                procs, curve.get());
      std::printf("%12.3f", comm::primitive_acd(*torus, prim));
    }
    std::printf("\n");
  }
  std::cout << "\nreading guide: rank-local primitives (halo, ring "
               "allreduce, prefix) reward a locality-preserving\nprocessor "
               "ordering — compare the Hilbert and Row-Major columns — "
               "while all-to-all is ordering-invariant.\n";
  return 0;
}
