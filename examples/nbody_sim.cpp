// nbody_sim — the end-to-end workload the paper's introduction motivates:
// a 2-D self-gravitating cluster integrated with leapfrog over FMM forces,
// reporting the conservation diagnostics and the communication volume an
// SFC-distributed run of each step would price with the ACD metric.
//
// Run: ./nbody_sim [--bodies 2000] [--steps 200] [--dt 0.00005]
#include <cstdio>
#include <iostream>

#include "fmm/nbody.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("nbody_sim", "leapfrog n-body over the FMM solver");
  args.add_option("bodies", "number of bodies", "2000");
  args.add_option("steps", "leapfrog steps", "200");
  args.add_option("dt", "timestep", "0.00005");
  args.add_option("terms", "FMM expansion order", "10");
  args.add_option("tree-level", "FMM leaf level", "4");
  args.add_option("seed", "RNG seed", "42");
  args.add_flag("direct", "use O(n^2) forces instead of the FMM");
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  const auto n = static_cast<std::size_t>(args.i64("bodies"));
  const auto steps = static_cast<unsigned>(args.i64("steps"));

  fmm::NbodyConfig cfg;
  cfg.dt = args.f64("dt");
  cfg.use_fmm = !args.flag("direct");
  cfg.fmm.terms = static_cast<unsigned>(args.i64("terms"));
  cfg.fmm.tree_level = static_cast<unsigned>(args.i64("tree-level"));

  // A Plummer-like central cluster with small virial velocities.
  util::Xoshiro256pp rng(static_cast<std::uint64_t>(args.i64("seed")));
  util::NormalSampler normal;
  std::vector<fmm::Charge> bodies;
  std::vector<fmm::Vec2> velocities;
  for (std::size_t i = 0; i < n; ++i) {
    double x = 0.5 + 0.08 * normal(rng);
    double y = 0.5 + 0.08 * normal(rng);
    x = std::min(std::max(x, 0.05), 0.95);
    y = std::min(std::max(y, 0.05), 0.95);
    bodies.push_back({x, y, 1.0 / static_cast<double>(n)});
    velocities.push_back({0.02 * normal(rng), 0.02 * normal(rng)});
  }

  fmm::NbodyIntegrator sim(std::move(bodies), std::move(velocities), cfg);
  const double e0 = sim.total_energy();
  std::printf("n=%zu  dt=%g  %s forces  E0=%+.6f\n", n, cfg.dt,
              cfg.use_fmm ? "FMM" : "direct", e0);
  std::printf("%8s %14s %14s %12s %8s\n", "step", "E", "dE/E0", "|P|",
              "bounces");

  const unsigned report_every = steps >= 10 ? steps / 10 : 1;
  for (unsigned s = 0; s < steps; s += report_every) {
    sim.step(std::min(report_every, steps - s));
    const double e = sim.total_energy();
    const auto p = sim.momentum();
    std::printf("%8llu %+14.6f %14.2e %12.4e %8llu\n",
                static_cast<unsigned long long>(sim.steps_taken()), e,
                (e - e0) / std::abs(e0), std::hypot(p.x, p.y),
                static_cast<unsigned long long>(sim.wall_bounces()));
  }

  // One step's communication volume, as the ACD pipeline would price it:
  // the FMM pass counts are exactly the NFI/FFI message families.
  const fmm::LaplaceFmm2D solver(sim.bodies(), cfg.fmm);
  const auto& c = solver.pass_counts();
  std::printf(
      "\nper-step communication profile (what the ACD metric prices):\n"
      "  near field: %llu particle pairs\n"
      "  far field:  %llu M2L (interaction lists), %llu M2M + %llu L2L "
      "(inter/anterpolation)\n",
      static_cast<unsigned long long>(c.p2p_pairs),
      static_cast<unsigned long long>(c.m2l),
      static_cast<unsigned long long>(c.m2m),
      static_cast<unsigned long long>(c.l2l));
  return 0;
}
