// curve_gallery — terminal renderings of the paper's illustration figures:
//   * Figure 1: the traversal of each space-filling curve,
//   * Figure 2: the three input distributions as density maps,
//   * Figure 3: the rank each curve assigns to a sampled particle set.
//
// Run: ./curve_gallery [--level 3] [--distributions] [--order]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "distribution/distribution.hpp"
#include "sfc/curve.hpp"
#include "util/cli.hpp"

namespace {

using namespace sfc;

/// Figure-1 style: draw the curve's path through a 2^level grid using
/// box-drawing strokes between consecutive (adjacent) positions. Curves
/// with jumps (Z, Gray, row-major) show broken strokes at the jumps, which
/// is exactly what their discontinuities look like in the paper's figure.
void render_path(const Curve<2>& curve, unsigned level) {
  const std::uint32_t side = 1u << level;
  const std::uint32_t w = 2 * side - 1;
  std::vector<std::string> canvas(w, std::string(w, ' '));

  auto plot = [&](std::uint32_t cx, std::uint32_t cy, char ch) {
    // Flip y so larger y prints higher (math orientation).
    canvas[w - 1 - cy][cx] = ch;
  };

  Point2 prev = curve.point(0, level);
  plot(2 * prev[0], 2 * prev[1], 'o');  // entry point
  for (std::uint64_t i = 1; i < grid_size<2>(level); ++i) {
    const Point2 cur = curve.point(i, level);
    plot(2 * cur[0], 2 * cur[1], '+');
    if (manhattan(prev, cur) == 1) {
      const std::uint32_t mx = prev[0] + cur[0];
      const std::uint32_t my = prev[1] + cur[1];
      plot(mx, my, prev[1] == cur[1] ? '-' : '|');
    }
    prev = cur;
  }
  for (const auto& row : canvas) std::cout << "  " << row << "\n";
}

/// Figure-3 style: print the rank each point receives.
void render_order(const Curve<2>& curve, unsigned level) {
  const std::uint32_t side = 1u << level;
  for (std::uint32_t row = 0; row < side; ++row) {
    const std::uint32_t y = side - 1 - row;
    std::cout << "  ";
    for (std::uint32_t x = 0; x < side; ++x) {
      std::printf("%4llu",
                  static_cast<unsigned long long>(
                      curve.index(make_point(x, y), level)));
    }
    std::cout << "\n";
  }
}

/// Figure-2 style: density map of a sampled distribution, binned to
/// 48x24 character cells.
void render_distribution(dist::DistKind kind) {
  dist::SampleConfig cfg;
  cfg.count = 60000;
  cfg.level = 9;
  cfg.seed = 99;
  const auto particles = dist::sample_particles<2>(kind, cfg);

  constexpr int kW = 48, kH = 24;
  std::vector<std::vector<int>> bins(kH, std::vector<int>(kW, 0));
  const double side = 512.0;
  for (const auto& p : particles) {
    const auto bx = static_cast<std::size_t>(p[0] / side * kW);
    const auto by = static_cast<std::size_t>(p[1] / side * kH);
    ++bins[kH - 1 - by][bx];
  }
  int max_bin = 1;
  for (const auto& row : bins) {
    for (const int b : row) max_bin = std::max(max_bin, b);
  }
  static const char kShades[] = " .:-=+*#%@";
  for (const auto& row : bins) {
    std::cout << "  ";
    for (const int b : row) {
      const int s = b == 0 ? 0 : 1 + b * 8 / max_bin;
      std::cout << kShades[std::min(s, 9)];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("curve_gallery",
                       "ASCII renderings of paper Figures 1-3");
  args.add_option("level", "log2 grid side for the curve drawings", "3");
  args.add_flag("distributions", "only show the Figure 2 density maps");
  args.add_flag("order", "only show the Figure 3 rank grids");
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  const auto level = static_cast<unsigned>(args.i64("level"));
  const bool only_dist = args.flag("distributions");
  const bool only_order = args.flag("order");

  if (!only_dist) {
    std::cout << "== Figure 1: space-filling curve traversals ("
              << (1u << level) << "x" << (1u << level) << ") ==\n";
    for (const CurveKind kind : kAllCurves) {
      const auto curve = make_curve<2>(kind);
      std::cout << "\n--- " << curve->name() << " ---\n";
      if (only_order) {
        render_order(*curve, level);
      } else {
        render_path(*curve, level);
      }
    }
    if (!only_order) {
      std::cout << "\n== Figure 3: ranks assigned by each curve ("
                << (1u << 2) << "x" << (1u << 2) << ") ==\n";
      for (const CurveKind kind : kPaperCurves) {
        const auto curve = make_curve<2>(kind);
        std::cout << "\n--- " << curve->name() << " ---\n";
        render_order(*curve, 2);
      }
    }
  }

  if (!only_order) {
    std::cout << "\n== Figure 2: input distributions (60k samples, 512x512 "
                 "grid) ==\n";
    for (const dist::DistKind kind : dist::kAllDistributions) {
      std::cout << "\n--- " << dist_name(kind) << " ---\n";
      render_distribution(kind);
    }
  }
  return 0;
}
