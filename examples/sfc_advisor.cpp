// sfc_advisor — the paper's recommendations as an interactive tool: state
// what you know about your workload, get the SFC pair the paper's data
// favors, and (optionally) verify the advice empirically on a scaled-down
// instance of your setting.
//
// Example:
//   ./sfc_advisor --distribution normal --topology torus
//       --workload nearfield --verify
#include <cstdio>
#include <iostream>

#include "core/acd.hpp"
#include "core/advisor.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("sfc_advisor",
                       "recommend particle/processor SFCs for a workload");
  args.add_option("distribution", "uniform|normal|exponential", "uniform");
  args.add_option("topology", "bus|ring|mesh|torus|quadtree|hypercube",
                  "torus");
  args.add_option("workload", "nearfield|farfield|balanced", "balanced");
  args.add_flag("verify",
                "empirically check the advice on a 50k-particle instance");
  args.add_option("seed", "RNG seed for --verify", "1");
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  const auto dist_kind = dist::parse_dist(args.str("distribution"));
  const auto topo_kind = topo::parse_topology(args.str("topology"));
  if (!dist_kind || !topo_kind) {
    std::cerr << "error: unrecognized distribution/topology name\n";
    return 1;
  }
  core::Workload workload = core::Workload::kBalanced;
  const std::string w = args.str("workload");
  if (w == "nearfield" || w == "nfi") {
    workload = core::Workload::kNearFieldDominant;
  } else if (w == "farfield" || w == "ffi") {
    workload = core::Workload::kFarFieldDominant;
  } else if (w != "balanced") {
    std::cerr << "error: unknown workload '" << w << "'\n";
    return 1;
  }

  const auto rec = core::recommend(*dist_kind, *topo_kind, workload);
  std::cout << "setting: " << dist_name(*dist_kind) << " input on a "
            << topo::topology_name(*topo_kind) << " network, " << w
            << " workload\n\n"
            << "recommendation:\n"
            << "  particle order:  " << curve_name(rec.particle_curve) << "\n"
            << "  processor order: " << curve_name(rec.processor_curve)
            << "\n\nwhy:\n  " << rec.rationale << "\n";

  if (!args.flag("verify")) return 0;

  std::cout << "\nempirical check (50,000 particles, 512^2 resolution, "
               "p=4096):\n";
  std::printf("  %-28s %10s %10s\n", "particle x processor", "NFI ACD",
              "FFI ACD");
  core::Scenario2 s;
  s.particles = 50000;
  s.level = 9;
  s.procs = 4096;
  s.topology = *topo_kind;
  s.distribution = *dist_kind;
  s.seed = static_cast<std::uint64_t>(args.i64("seed"));

  double best_combined = -1.0;
  std::string best_name;
  for (const CurveKind pc : kPaperCurves) {
    for (const CurveKind rc : {CurveKind::kHilbert, CurveKind::kRowMajor}) {
      s.particle_curve = pc;
      s.processor_curve = rc;
      const auto result = core::compute_acd<2>(s);
      const std::string name = std::string(curve_name(pc)) + " x " +
                               std::string(curve_name(rc));
      std::printf("  %-28s %10.4f %10.4f\n", name.c_str(), result.nfi_acd(),
                  result.ffi_acd());
      const double combined = (result.nfi + result.ffi.total()).acd();
      if (best_combined < 0 || combined < best_combined) {
        best_combined = combined;
        best_name = name;
      }
    }
  }
  std::cout << "  -> empirically best combined pairing here: " << best_name
            << "\n";
  return 0;
}
