// fmm_solver — runs the actual 2-D Laplace FMM solver and ties it back to
// the communication model: the translation counts the solver performs are
// the communications the ACD metric prices.
//
// Run: ./fmm_solver [--charges 4000] [--tree-level 4] [--terms 12]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "fmm/laplace_fmm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("fmm_solver",
                       "2-D Laplace FMM vs direct summation");
  args.add_option("charges", "number of point charges", "4000");
  args.add_option("tree-level", "quadtree leaf level", "4");
  args.add_option("terms", "multipole expansion order p", "12");
  args.add_option("seed", "RNG seed", "7");
  args.add_flag("skip-direct", "skip the O(n^2) reference (large n)");
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  const auto n = static_cast<std::size_t>(args.i64("charges"));
  fmm::FmmSolverConfig cfg;
  cfg.tree_level = static_cast<unsigned>(args.i64("tree-level"));
  cfg.terms = static_cast<unsigned>(args.i64("terms"));

  util::Xoshiro256pp rng(static_cast<std::uint64_t>(args.i64("seed")));
  std::vector<fmm::Charge> charges;
  charges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    charges.push_back({util::uniform01(rng), util::uniform01(rng),
                       util::uniform01(rng) * 2.0 - 1.0});
  }

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const fmm::LaplaceFmm2D fmm(charges, cfg);
  const auto t1 = clock::now();
  const double fmm_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::cout << "FMM: n=" << n << ", leaf level " << cfg.tree_level << " ("
            << (1u << cfg.tree_level) << "^2 leaves), p=" << cfg.terms
            << " -> " << fmm_ms << " ms\n";

  const auto& counts = fmm.pass_counts();
  std::printf(
      "translation counts (the communications the ACD model prices):\n"
      "  P2M %8llu   M2M %8llu   M2L %8llu\n"
      "  L2L %8llu   L2P %8llu   P2P pairs %llu\n",
      static_cast<unsigned long long>(counts.p2m),
      static_cast<unsigned long long>(counts.m2m),
      static_cast<unsigned long long>(counts.m2l),
      static_cast<unsigned long long>(counts.l2l),
      static_cast<unsigned long long>(counts.l2p),
      static_cast<unsigned long long>(counts.p2p_pairs));

  if (!args.flag("skip-direct")) {
    const auto t2 = clock::now();
    const auto direct = fmm::direct_potentials(charges);
    const auto t3 = clock::now();
    const double direct_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();

    double scale = 0.0, err = 0.0;
    for (const double v : direct) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < n; ++i) {
      err = std::max(err, std::abs(fmm.potentials()[i] - direct[i]));
    }
    std::cout << "direct: " << direct_ms << " ms (speedup "
              << direct_ms / fmm_ms << "x)\n"
              << "max relative error vs direct: " << err / scale << "\n";
  }
  return 0;
}
