// acd_tool — a scripting-friendly multi-command CLI over the library.
//
// Subcommand dispatch through a single flag keeps the ArgParser simple:
//   ./acd_tool --cmd index --curve hilbert --level 4 --x 3 --y 5
//   ./acd_tool --cmd point --curve z --level 4 --i 37
//   ./acd_tool --cmd distance --topology torus --procs 256 --a 10 --b 200
//   ./acd_tool --cmd anns --curve gray --level 8 --radius 1
//   ./acd_tool --cmd clusters --curve hilbert --level 7 --w 4
//   ./acd_tool --cmd acd --curve hilbert --topology torus --procs 4096
// Each prints a single machine-parseable line.
#include <iostream>

#include "core/acd.hpp"
#include "core/anns.hpp"
#include "core/clustering.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("acd_tool", "one-shot queries against the library");
  args.add_option("cmd", "index|point|distance|anns|clusters|acd", "index");
  args.add_option("curve", "curve name", "hilbert");
  args.add_option("topology", "topology name", "torus");
  args.add_option("distribution", "distribution name", "uniform");
  args.add_option("level", "grid level (side 2^level)", "4");
  args.add_option("x", "x coordinate", "0");
  args.add_option("y", "y coordinate", "0");
  args.add_option("i", "curve index", "0");
  args.add_option("a", "first processor rank", "0");
  args.add_option("b", "second processor rank", "0");
  args.add_option("procs", "processor count", "256");
  args.add_option("particles", "particle count (acd command)", "20000");
  args.add_option("radius", "neighborhood radius", "1");
  args.add_option("w", "query window side (clusters command)", "4");
  args.add_option("seed", "RNG seed", "1");
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  const auto curve_kind = parse_curve(args.str("curve"));
  const auto topo_kind = topo::parse_topology(args.str("topology"));
  const auto dist_kind = dist::parse_dist(args.str("distribution"));
  if (!curve_kind || !topo_kind || !dist_kind) {
    std::cerr << "error: unrecognized curve/topology/distribution\n";
    return 1;
  }
  const auto level = static_cast<unsigned>(args.i64("level"));
  const auto curve = make_curve<2>(*curve_kind);
  const std::string cmd = args.str("cmd");

  if (cmd == "index") {
    const auto p = make_point(static_cast<std::uint32_t>(args.i64("x")),
                              static_cast<std::uint32_t>(args.i64("y")));
    if (!in_grid(p, level)) {
      std::cerr << "error: point outside the level-" << level << " grid\n";
      return 1;
    }
    std::cout << curve->index(p, level) << "\n";
    return 0;
  }
  if (cmd == "point") {
    const auto idx = static_cast<std::uint64_t>(args.i64("i"));
    if (idx >= grid_size<2>(level)) {
      std::cerr << "error: index outside the level-" << level << " curve\n";
      return 1;
    }
    const auto p = curve->point(idx, level);
    std::cout << p[0] << " " << p[1] << "\n";
    return 0;
  }
  if (cmd == "distance") {
    const auto net = topo::make_topology<2>(
        *topo_kind, static_cast<topo::Rank>(args.i64("procs")), curve.get());
    const auto a = static_cast<topo::Rank>(args.i64("a"));
    const auto b = static_cast<topo::Rank>(args.i64("b"));
    if (a >= net->size() || b >= net->size()) {
      std::cerr << "error: rank out of range\n";
      return 1;
    }
    std::cout << net->distance(a, b) << "\n";
    return 0;
  }
  if (cmd == "anns") {
    const auto stats = core::neighbor_stretch(
        *curve, level, static_cast<unsigned>(args.i64("radius")));
    std::cout << stats.average << " " << stats.maximum << " " << stats.pairs
              << "\n";
    return 0;
  }
  if (cmd == "clusters") {
    const auto w = static_cast<std::uint32_t>(args.i64("w"));
    const auto stats = core::average_clusters(*curve, level, w, w);
    std::cout << stats.average << " " << stats.maximum << " "
              << stats.queries << "\n";
    return 0;
  }
  if (cmd == "acd") {
    core::Scenario2 s;
    s.particles = static_cast<std::size_t>(args.i64("particles"));
    s.level = level >= 6 ? level : 8;  // sensible floor for sampling
    s.procs = static_cast<topo::Rank>(args.i64("procs"));
    s.particle_curve = *curve_kind;
    s.processor_curve = *curve_kind;
    s.topology = *topo_kind;
    s.distribution = *dist_kind;
    s.radius = static_cast<unsigned>(args.i64("radius"));
    s.seed = static_cast<std::uint64_t>(args.i64("seed"));
    const auto r = core::compute_acd<2>(s);
    std::cout << r.nfi_acd() << " " << r.ffi_acd() << "\n";
    return 0;
  }
  std::cerr << "error: unknown command '" << cmd << "'\n" << args.usage();
  return 1;
}
