// fmm_acd_demo — a fully configurable single-scenario run with the
// detailed FFI breakdown the paper's model distinguishes (interpolation /
// anterpolation / interaction lists), useful for exploring parameter
// choices before committing to a full study.
//
// Example:
//   ./fmm_acd_demo --particles 100000 --level 10 --procs 16384
//       --particle-curve z --processor-curve hilbert --topology torus
//       --distribution normal --radius 2
#include <cstdio>
#include <iostream>

#include "core/acd.hpp"
#include "core/cost_model.hpp"
#include "core/histogram.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  util::ArgParser args("fmm_acd_demo",
                       "single-scenario ACD evaluation with full breakdown");
  args.add_option("particles", "number of particles", "50000");
  args.add_option("level", "log2 of the spatial resolution side", "9");
  args.add_option("procs", "processor count", "4096");
  args.add_option("particle-curve", "hilbert|z|gray|row|snake|column",
                  "hilbert");
  args.add_option("processor-curve", "hilbert|z|gray|row|snake|column",
                  "hilbert");
  args.add_option("topology", "bus|ring|mesh|torus|quadtree|hypercube",
                  "torus");
  args.add_option("distribution", "uniform|normal|exponential", "uniform");
  args.add_option("radius", "near-field Chebyshev radius", "1");
  args.add_option("seed", "master RNG seed", "1");
  args.add_flag("histogram",
                "print the hop-distance histograms (ACD is their mean)");
  args.add_flag("cost",
                "estimate communication time under the alpha-beta model");
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n" << args.usage();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage();
    return 0;
  }

  core::Scenario2 s;
  s.particles = static_cast<std::size_t>(args.i64("particles"));
  s.level = static_cast<unsigned>(args.i64("level"));
  s.procs = static_cast<topo::Rank>(args.i64("procs"));
  s.radius = static_cast<unsigned>(args.i64("radius"));
  s.seed = static_cast<std::uint64_t>(args.i64("seed"));

  const auto pc = parse_curve(args.str("particle-curve"));
  const auto rc = parse_curve(args.str("processor-curve"));
  const auto topo_kind = topo::parse_topology(args.str("topology"));
  const auto dist_kind = dist::parse_dist(args.str("distribution"));
  if (!pc || !rc || !topo_kind || !dist_kind) {
    std::cerr << "error: unrecognized curve/topology/distribution name\n";
    return 1;
  }
  s.particle_curve = *pc;
  s.processor_curve = *rc;
  s.topology = *topo_kind;
  s.distribution = *dist_kind;

  std::cout << "scenario: n=" << s.particles << ", resolution "
            << (1u << s.level) << "^2, p=" << s.procs << " "
            << topo::topology_name(s.topology) << ", particle order "
            << curve_name(s.particle_curve) << ", processor order "
            << curve_name(s.processor_curve) << ", "
            << dist_name(s.distribution) << " input, r=" << s.radius
            << "\n\n";

  const auto result = core::compute_acd<2>(s);

  const auto print_line = [](const char* name, const core::CommTotals& t) {
    std::printf("  %-22s %14llu comms %16llu hops   ACD %10.4f\n", name,
                static_cast<unsigned long long>(t.count),
                static_cast<unsigned long long>(t.hops), t.acd());
  };
  std::cout << "near-field interactions:\n";
  print_line("NFI", result.nfi);
  std::cout << "far-field interactions:\n";
  print_line("interpolation", result.ffi.interpolation);
  print_line("anterpolation", result.ffi.anterpolation);
  print_line("interaction lists", result.ffi.interaction);
  print_line("FFI total", result.ffi.total());
  std::cout << "combined:\n";
  print_line("NFI + FFI", result.nfi + result.ffi.total());

  if (args.flag("cost")) {
    const core::CostParams params;  // defaults: 1us alpha, 50ns/hop, 10GB/s
    const auto est = core::fmm_cost_estimate(result.nfi, result.ffi, params);
    std::printf(
        "\nalpha-beta cost estimate (alpha %.2fus, %.3fus/hop, %.0f MB/s, "
        "p=%u expansions):\n"
        "  NFI %.1f us   FFI %.1f us   total %.1f us per iteration\n",
        params.alpha_us, params.per_hop_us, params.bandwidth_bytes_per_us,
        params.expansion_terms, est.nfi_us, est.ffi_us, est.total_us());
  }

  if (args.flag("histogram")) {
    // Rebuild the instance explicitly to get at the communication sets.
    dist::SampleConfig sample;
    sample.count = s.particles;
    sample.level = s.level;
    sample.seed = s.seed;
    const auto particles = dist::sample_particles<2>(s.distribution, sample);
    const auto particle_curve = make_curve<2>(s.particle_curve);
    const auto processor_curve = make_curve<2>(s.processor_curve);
    const auto net = topo::make_topology<2>(s.topology, s.procs,
                                            processor_curve.get());
    const core::AcdInstance<2> instance(particles, s.level, *particle_curve);
    const fmm::Partition part(particles.size(), s.procs);

    const auto nfi_hist =
        core::nfi_histogram(instance, part, *net, s.radius);
    const auto ffi_hist = core::ffi_histogram(instance, part, *net);
    std::printf(
        "\nNFI hop distribution: local %.1f%%, p50 %llu, p99 %llu, max "
        "%llu\n%s",
        nfi_hist.local_fraction() * 100.0,
        static_cast<unsigned long long>(nfi_hist.percentile(0.5)),
        static_cast<unsigned long long>(nfi_hist.percentile(0.99)),
        static_cast<unsigned long long>(nfi_hist.max_seen()),
        nfi_hist.ascii().c_str());
    std::printf(
        "\nFFI hop distribution: local %.1f%%, p50 %llu, p99 %llu, max "
        "%llu\n%s",
        ffi_hist.local_fraction() * 100.0,
        static_cast<unsigned long long>(ffi_hist.percentile(0.5)),
        static_cast<unsigned long long>(ffi_hist.percentile(0.99)),
        static_cast<unsigned long long>(ffi_hist.max_seen()),
        ffi_hist.ascii().c_str());
  }
  return 0;
}
