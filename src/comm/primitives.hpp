// primitives.hpp — ACD for generic parallel communication primitives
// (paper Section VII).
//
// The ACD metric is not FMM-specific: any application whose communication
// demands can be abstracted as a set of (source, destination) pairs can be
// evaluated in advance against candidate topologies and processor-order
// SFCs. This module provides pattern generators for the common primitives
// the paper names — point-to-point sets, log-tree broadcast, all-to-all,
// parallel prefix — plus gather/scatter, ring allreduce and halo exchange,
// and a tiny evaluator that reduces a pattern against a Topology.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/totals.hpp"
#include "topology/topology.hpp"

namespace sfc::comm {

enum class Primitive {
  kBroadcastBinomial,   // root fans out along a binomial (log) tree
  kReduceBinomial,      // mirror of broadcast
  kScatter,             // root sends one message to every other rank
  kGather,              // every other rank sends one message to the root
  kAllToAll,            // every ordered pair communicates once
  kRingAllreduce,       // 2(p-1) neighbor steps around the rank ring
  kParallelPrefix,      // Hillis–Steele scan: rank i -> i + 2^t per round
  kHaloExchange1D,      // rank i <-> i±1 (the NFI archetype in 1-D)
  kAllreduceRecDouble,  // recursive doubling: round t pairs i <-> i ^ 2^t
  kAllGatherRing,       // p-1 ring steps, every rank forwards each step
  kHaloExchange2D,      // ranks as a sqrt(p) grid: i <-> i±1, i±sqrt(p)
};

inline constexpr Primitive kAllPrimitives[] = {
    Primitive::kBroadcastBinomial, Primitive::kReduceBinomial,
    Primitive::kScatter,           Primitive::kGather,
    Primitive::kAllToAll,          Primitive::kRingAllreduce,
    Primitive::kParallelPrefix,    Primitive::kHaloExchange1D,
    Primitive::kAllreduceRecDouble, Primitive::kAllGatherRing,
    Primitive::kHaloExchange2D};

std::string_view primitive_name(Primitive p) noexcept;
std::optional<Primitive> parse_primitive(std::string_view name) noexcept;

/// One directed communication.
struct Message {
  topo::Rank from;
  topo::Rank to;
  friend constexpr bool operator==(const Message&, const Message&) = default;
};

/// Generate the message set of a primitive over ranks [0, p).
/// `root` applies to the rooted primitives (broadcast/reduce/scatter/gather).
std::vector<Message> pattern(Primitive primitive, topo::Rank p,
                             topo::Rank root = 0);

/// Sum/count of hop distances of a pattern on a topology.
core::CommTotals pattern_totals(const topo::Topology& net,
                                const std::vector<Message>& messages);

/// Convenience: ACD of a primitive on a topology.
double primitive_acd(const topo::Topology& net, Primitive primitive,
                     topo::Rank root = 0);

}  // namespace sfc::comm
