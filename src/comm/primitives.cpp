#include "comm/primitives.hpp"

#include <algorithm>
#include <cctype>
#include <string>

namespace sfc::comm {

std::string_view primitive_name(Primitive p) noexcept {
  switch (p) {
    case Primitive::kBroadcastBinomial:
      return "Broadcast(binomial)";
    case Primitive::kReduceBinomial:
      return "Reduce(binomial)";
    case Primitive::kScatter:
      return "Scatter";
    case Primitive::kGather:
      return "Gather";
    case Primitive::kAllToAll:
      return "All-to-All";
    case Primitive::kRingAllreduce:
      return "Allreduce(ring)";
    case Primitive::kParallelPrefix:
      return "Parallel-Prefix";
    case Primitive::kHaloExchange1D:
      return "Halo-1D";
    case Primitive::kAllreduceRecDouble:
      return "Allreduce(recdbl)";
    case Primitive::kAllGatherRing:
      return "Allgather(ring)";
    case Primitive::kHaloExchange2D:
      return "Halo-2D";
  }
  return "?";
}

std::optional<Primitive> parse_primitive(std::string_view name) noexcept {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "broadcast" || lower == "bcast")
    return Primitive::kBroadcastBinomial;
  if (lower == "reduce") return Primitive::kReduceBinomial;
  if (lower == "scatter") return Primitive::kScatter;
  if (lower == "gather") return Primitive::kGather;
  if (lower == "alltoall" || lower == "all-to-all")
    return Primitive::kAllToAll;
  if (lower == "allreduce" || lower == "ring") return Primitive::kRingAllreduce;
  if (lower == "prefix" || lower == "scan") return Primitive::kParallelPrefix;
  if (lower == "halo" || lower == "halo1d") return Primitive::kHaloExchange1D;
  if (lower == "recdouble" || lower == "recursivedoubling")
    return Primitive::kAllreduceRecDouble;
  if (lower == "allgather") return Primitive::kAllGatherRing;
  if (lower == "halo2d") return Primitive::kHaloExchange2D;
  return std::nullopt;
}

std::vector<Message> pattern(Primitive primitive, topo::Rank p,
                             topo::Rank root) {
  std::vector<Message> msgs;
  // Rotate ranks so the root acts as virtual rank 0 in the tree-based
  // primitives (the standard binomial-tree trick).
  const auto real = [p, root](std::uint64_t virt) {
    return static_cast<topo::Rank>((virt + root) % p);
  };

  switch (primitive) {
    case Primitive::kBroadcastBinomial:
    case Primitive::kReduceBinomial: {
      // Round t: every virtual rank < 2^t forwards to rank + 2^t.
      for (std::uint64_t step = 1; step < p; step <<= 1) {
        for (std::uint64_t i = 0; i < step && i + step < p; ++i) {
          if (primitive == Primitive::kBroadcastBinomial) {
            msgs.push_back({real(i), real(i + step)});
          } else {
            msgs.push_back({real(i + step), real(i)});
          }
        }
      }
      break;
    }
    case Primitive::kScatter:
      for (topo::Rank i = 0; i < p; ++i) {
        if (i != root) msgs.push_back({root, i});
      }
      break;
    case Primitive::kGather:
      for (topo::Rank i = 0; i < p; ++i) {
        if (i != root) msgs.push_back({i, root});
      }
      break;
    case Primitive::kAllToAll:
      for (topo::Rank i = 0; i < p; ++i) {
        for (topo::Rank j = 0; j < p; ++j) {
          if (i != j) msgs.push_back({i, j});
        }
      }
      break;
    case Primitive::kRingAllreduce:
      // Reduce-scatter + allgather: each of the 2(p-1) steps sends one
      // message from every rank to its ring successor.
      if (p > 1) {
        for (topo::Rank step = 0; step < 2 * (p - 1); ++step) {
          for (topo::Rank i = 0; i < p; ++i) {
            msgs.push_back({i, static_cast<topo::Rank>((i + 1) % p)});
          }
        }
      }
      break;
    case Primitive::kParallelPrefix:
      // Hillis–Steele inclusive scan: round t sends i -> i + 2^t.
      for (std::uint64_t step = 1; step < p; step <<= 1) {
        for (std::uint64_t i = 0; i + step < p; ++i) {
          msgs.push_back({static_cast<topo::Rank>(i),
                          static_cast<topo::Rank>(i + step)});
        }
      }
      break;
    case Primitive::kHaloExchange1D:
      for (topo::Rank i = 0; i + 1 < p; ++i) {
        msgs.push_back({i, static_cast<topo::Rank>(i + 1)});
        msgs.push_back({static_cast<topo::Rank>(i + 1), i});
      }
      break;
    case Primitive::kAllreduceRecDouble:
      // Power-of-two ranks participate fully; stragglers (non-power-of-two
      // p) first fold into their lower partner and unfold at the end, the
      // standard MPI implementation trick.
      {
        std::uint64_t pow2 = 1;
        while (pow2 * 2 <= p) pow2 *= 2;
        for (std::uint64_t i = pow2; i < p; ++i) {
          msgs.push_back({static_cast<topo::Rank>(i),
                          static_cast<topo::Rank>(i - pow2)});
        }
        for (std::uint64_t step = 1; step < pow2; step <<= 1) {
          for (std::uint64_t i = 0; i < pow2; ++i) {
            msgs.push_back({static_cast<topo::Rank>(i),
                            static_cast<topo::Rank>(i ^ step)});
          }
        }
        for (std::uint64_t i = pow2; i < p; ++i) {
          msgs.push_back({static_cast<topo::Rank>(i - pow2),
                          static_cast<topo::Rank>(i)});
        }
      }
      break;
    case Primitive::kAllGatherRing:
      if (p > 1) {
        for (topo::Rank step = 0; step < p - 1; ++step) {
          for (topo::Rank i = 0; i < p; ++i) {
            msgs.push_back({i, static_cast<topo::Rank>((i + 1) % p)});
          }
        }
      }
      break;
    case Primitive::kHaloExchange2D: {
      // Interpret ranks as a side x side grid in rank order (side =
      // floor(sqrt(p))); trailing ranks beyond the square sit out.
      topo::Rank side = 1;
      while ((side + 1) * (side + 1) <= p) ++side;
      auto rank_at = [side](topo::Rank gx, topo::Rank gy) {
        return static_cast<topo::Rank>(gy * side + gx);
      };
      for (topo::Rank gy = 0; gy < side; ++gy) {
        for (topo::Rank gx = 0; gx < side; ++gx) {
          if (gx + 1 < side) {
            msgs.push_back({rank_at(gx, gy), rank_at(gx + 1, gy)});
            msgs.push_back({rank_at(gx + 1, gy), rank_at(gx, gy)});
          }
          if (gy + 1 < side) {
            msgs.push_back({rank_at(gx, gy), rank_at(gx, gy + 1)});
            msgs.push_back({rank_at(gx, gy + 1), rank_at(gx, gy)});
          }
        }
      }
      break;
    }
  }
  return msgs;
}

core::CommTotals pattern_totals(const topo::Topology& net,
                                const std::vector<Message>& messages) {
  core::CommTotals totals;
  for (const Message& m : messages) {
    totals.hops += net.distance(m.from, m.to);
    ++totals.count;
  }
  return totals;
}

double primitive_acd(const topo::Topology& net, Primitive primitive,
                     topo::Rank root) {
  return pattern_totals(net, pattern(primitive, net.size(), root)).acd();
}

}  // namespace sfc::comm
