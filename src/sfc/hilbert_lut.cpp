#include "sfc/hilbert_lut.hpp"

#include "util/simd.hpp"

namespace sfc {
namespace {

// A square symmetry t(x, y) = F(S(x, y)): optional coordinate swap S
// followed by per-axis complements F. Encoded in 3 bits:
// state = swap << 2 | flip_x << 1 | flip_y.
constexpr unsigned kStates = 8;

/// Apply a symmetry to single-bit coordinates.
constexpr void apply(unsigned state, unsigned& x, unsigned& y) {
  if (state & 4u) {
    const unsigned t = x;
    x = y;
    y = t;
  }
  x ^= (state >> 1) & 1u;
  y ^= state & 1u;
}

/// Composition c = a after b (c(p) = a(b(p))).
constexpr unsigned compose(unsigned a, unsigned b) {
  const unsigned sa = (a >> 2) & 1u;
  const unsigned sb = (b >> 2) & 1u;
  unsigned fbx = (b >> 1) & 1u;
  unsigned fby = b & 1u;
  if (sa) {
    const unsigned t = fbx;
    fbx = fby;
    fby = t;
  }
  const unsigned fx = (((a >> 1) & 1u) ^ fbx);
  const unsigned fy = ((a & 1u) ^ fby);
  return ((sa ^ sb) << 2) | (fx << 1) | fy;
}

/// Inverse symmetry: t = F.S => t^-1 = S.F, re-normalized to F'.S form.
constexpr unsigned inverse(unsigned state) {
  const unsigned s = (state >> 2) & 1u;
  unsigned fx = (state >> 1) & 1u;
  unsigned fy = state & 1u;
  if (s) {
    const unsigned t = fx;
    fx = fy;
    fy = t;
  }
  return (s << 2) | (fx << 1) | fy;
}

// The canonical refinement step (see canonical_hilbert.cpp): in the
// canonical frame, quadrant (cx, cy) has
//   digit: (0,0)->0  (0,1)->1  (1,1)->2  (1,0)->3
//   child transform: 0 -> transpose, 1/2 -> identity, 3 -> anti-transpose.
constexpr unsigned kDigitOf[4] = {0, 1, 3, 2};  // index = (cx<<1)|cy
constexpr unsigned kQuadrantOfDigit[4][2] = {
    {0, 0}, {0, 1}, {1, 1}, {1, 0}};  // digit -> (cx, cy)
constexpr unsigned kChildTransform[4] = {
    0b100,  // transpose: swap, no flips
    0b000,  // identity
    0b000,  // identity
    0b111,  // anti-transpose: swap + both flips
};

struct StepTables {
  // forward[state][(ax<<1)|ay] = digit<<3 | next_state
  unsigned char forward[kStates][4];
  // backward[state][digit] = ax<<4 | ay<<3 | next_state
  unsigned char backward[kStates][4];
};

constexpr StepTables build_tables() {
  StepTables t{};
  for (unsigned state = 0; state < kStates; ++state) {
    for (unsigned ax = 0; ax < 2; ++ax) {
      for (unsigned ay = 0; ay < 2; ++ay) {
        unsigned cx = ax;
        unsigned cy = ay;
        apply(state, cx, cy);
        const unsigned digit = kDigitOf[(cx << 1) | cy];
        const unsigned next = compose(kChildTransform[digit], state);
        t.forward[state][(ax << 1) | ay] =
            static_cast<unsigned char>((digit << 3) | next);
      }
    }
    const unsigned inv = inverse(state);
    for (unsigned digit = 0; digit < 4; ++digit) {
      unsigned ax = kQuadrantOfDigit[digit][0];
      unsigned ay = kQuadrantOfDigit[digit][1];
      apply(inv, ax, ay);
      const unsigned next = compose(kChildTransform[digit], state);
      t.backward[state][digit] =
          static_cast<unsigned char>((ax << 4) | (ay << 3) | next);
    }
  }
  return t;
}

constexpr StepTables kTables = build_tables();

}  // namespace

std::uint64_t hilbert_lut_index(Point2 p, unsigned level) noexcept {
  return hilbert_lut_index_from(p, level, 0);
}

std::uint64_t hilbert_lut_index_from(Point2 p, unsigned level,
                                     unsigned state0) noexcept {
  std::uint64_t idx = 0;
  unsigned state = state0;
  for (unsigned k = level; k > 0; --k) {
    const unsigned ax = (p[0] >> (k - 1)) & 1u;
    const unsigned ay = (p[1] >> (k - 1)) & 1u;
    const unsigned entry = kTables.forward[state][(ax << 1) | ay];
    idx = (idx << 2) | (entry >> 3);
    state = entry & 7u;
  }
  return idx;
}

void hilbert_lut_index_batch(const Point2* pts, std::uint64_t* out,
                             std::size_t n, unsigned level,
                             unsigned state0) noexcept {
  // The 8-lane kernel strides the FSM over 32-bit index lanes, which
  // caps it at 2*level index bits; deeper levels run the scalar loop.
  if (level <= util::simd::kFsmMaxLevel) {
    if (auto* kernel = util::simd::kernels().hilbert2_batch;
        kernel != nullptr) {
      kernel(coord_data(pts), out, n, level, state0, &kTables.forward[0][0]);
      return;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t x = pts[i][0];
    const std::uint32_t y = pts[i][1];
    std::uint64_t idx = 0;
    unsigned state = state0;
    for (unsigned k = level; k > 0; --k) {
      const unsigned entry =
          kTables.forward[state]
                         [(((x >> (k - 1)) & 1u) << 1) | ((y >> (k - 1)) & 1u)];
      idx = (idx << 2) | (entry >> 3);
      state = entry & 7u;
    }
    out[i] = idx;
  }
}

void moore_lut_index_batch(const Point2* pts, std::uint64_t* out,
                           std::size_t n, unsigned level) noexcept {
  if (level == 0) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  // Lane budget: 2 rank bits + 2*(level-1) Hilbert bits must fit the
  // 32-bit index lanes, the same bound as a level-deep Hilbert encode.
  if (level <= util::simd::kFsmMaxLevel) {
    if (auto* kernel = util::simd::kernels().moore2_batch; kernel != nullptr) {
      kernel(coord_data(pts), out, n, level, &kTables.forward[0][0]);
      return;
    }
  }
  const std::uint32_t s = 1u << (level - 1);
  const std::uint64_t quad_cells = 1ull << (2 * (level - 1));
  for (std::size_t i = 0; i < n; ++i) {
    const bool qx = pts[i][0] >= s;
    const bool qy = pts[i][1] >= s;
    const std::uint32_t rank = qx ? (qy ? 2u : 3u) : (qy ? 1u : 0u);
    const Point2 local = make_point(pts[i][0] & (s - 1), pts[i][1] & (s - 1));
    out[i] = rank * quad_cells +
             hilbert_lut_index_from(local, level - 1, rank < 2 ? 5u : 6u);
  }
}

Point2 hilbert_lut_point(std::uint64_t idx, unsigned level) noexcept {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  unsigned state = 0;
  for (unsigned k = level; k > 0; --k) {
    const auto digit =
        static_cast<unsigned>((idx >> (2 * (k - 1))) & 3u);
    const unsigned entry = kTables.backward[state][digit];
    x = (x << 1) | ((entry >> 4) & 1u);
    y = (y << 1) | ((entry >> 3) & 1u);
    state = entry & 7u;
  }
  return make_point(x, y);
}

}  // namespace sfc
