// rowmajor.hpp — the scan-order curves: row-major, column-major, and the
// boustrophedon ("snake") scan.
//
// The paper's "row major" numbers the points of the first column
// 1..2^k — i.e. it scans column by column; by the grid's symmetry the two
// variants have identical metric behaviour, so we provide both and use
// kRowMajor in the experiments. The snake scan is the discrete analog of
// the continuous curve Xu & Tirthapura call the "snake scan"; it is
// included as an extension because their clustering-optimality result
// applies to it.
#pragma once

#include <cassert>

#include "sfc/curve.hpp"

namespace sfc {

template <int D>
class RowMajorCurve final : public Curve<D> {
 public:
  std::uint64_t index(const Point<D>& p, unsigned level) const override {
    assert(level <= max_level<D>() && in_grid(p, level));
    return pack(p, level);
  }

  Point<D> point(std::uint64_t idx, unsigned level) const override {
    assert(level <= max_level<D>() && idx < grid_size<D>(level));
    return unpack<D>(idx, level);
  }

  /// Devirtualized batch encode: a pure shift/or packing loop.
  void index_batch(const Point<D>* pts, std::uint64_t* out, std::size_t n,
                   unsigned level) const override {
    for (std::size_t i = 0; i < n; ++i) out[i] = pack(pts[i], level);
  }

  CurveKind kind() const noexcept override { return CurveKind::kRowMajor; }
};

template <int D>
class ColumnMajorCurve final : public Curve<D> {
 public:
  std::uint64_t index(const Point<D>& p, unsigned level) const override {
    assert(level <= max_level<D>() && in_grid(p, level));
    std::uint64_t key = 0;
    for (int i = 0; i < D; ++i) {
      key = (key << level) | p[i];
    }
    return key;
  }

  Point<D> point(std::uint64_t idx, unsigned level) const override {
    assert(level <= max_level<D>() && idx < grid_size<D>(level));
    Point<D> p{};
    const std::uint64_t mask = (1ull << level) - 1u;
    for (int i = D - 1; i >= 0; --i) {
      p[i] = static_cast<std::uint32_t>(idx & mask);
      idx >>= level;
    }
    return p;
  }

  /// Devirtualized batch encode: the same shift/or pack, reversed axes.
  void index_batch(const Point<D>* pts, std::uint64_t* out, std::size_t n,
                   unsigned level) const override {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t key = 0;
      for (int d = 0; d < D; ++d) key = (key << level) | pts[i][d];
      out[i] = key;
    }
  }

  CurveKind kind() const noexcept override { return CurveKind::kColumnMajor; }
};

/// Boustrophedon scan: like row-major, but every other row (and,
/// recursively, every other plane in 3-D) is traversed in reverse, making
/// the curve continuous (consecutive indices are always lattice neighbors).
///
/// The reversal state threads through the digits: scanning from the most
/// significant dimension down, a sub-block is traversed in reverse exactly
/// when the digit chosen at the enclosing dimension is odd.
template <int D>
class SnakeCurve final : public Curve<D> {
 public:
  std::uint64_t index(const Point<D>& p, unsigned level) const override {
    assert(level <= max_level<D>() && in_grid(p, level));
    const std::uint64_t side = 1ull << level;
    std::uint64_t idx = 0;
    bool reversed = false;
    for (int i = D - 1; i >= 0; --i) {
      const std::uint64_t digit = reversed ? side - 1 - p[i] : p[i];
      idx = (idx << level) | digit;
      reversed = (digit & 1u) != 0;
    }
    return idx;
  }

  Point<D> point(std::uint64_t idx, unsigned level) const override {
    assert(level <= max_level<D>() && idx < grid_size<D>(level));
    const std::uint64_t side = 1ull << level;
    const std::uint64_t mask = side - 1u;
    Point<D> p{};
    bool reversed = false;
    for (int i = D - 1; i >= 0; --i) {
      const std::uint64_t digit =
          (idx >> (static_cast<unsigned>(i) * level)) & mask;
      p[i] = static_cast<std::uint32_t>(reversed ? side - 1 - digit : digit);
      reversed = (digit & 1u) != 0;
    }
    return p;
  }

  /// Devirtualized batch encode: the reversal state is a mask (all-ones
  /// when the enclosing digit was odd), so the digit selection is a
  /// branch-free XOR/AND blend instead of a conditional subtract.
  void index_batch(const Point<D>* pts, std::uint64_t* out, std::size_t n,
                   unsigned level) const override {
    const std::uint64_t mask = (std::uint64_t{1} << level) - 1u;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t idx = 0;
      std::uint64_t rev = 0;  // 0 or `mask`: digit ^ mask == side-1-digit
      for (int d = D - 1; d >= 0; --d) {
        const std::uint64_t digit = pts[i][d] ^ rev;
        idx = (idx << level) | digit;
        rev = mask & (std::uint64_t{0} - (digit & 1u));
      }
      out[i] = idx;
    }
  }

  CurveKind kind() const noexcept override { return CurveKind::kSnake; }
};

}  // namespace sfc
