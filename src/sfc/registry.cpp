// registry.cpp — names, parsing, and the curve factory.
#include <algorithm>
#include <cctype>

#include <stdexcept>

#include "sfc/curve.hpp"
#include "sfc/gray.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/moore.hpp"
#include "sfc/morton.hpp"
#include "sfc/rowmajor.hpp"

namespace sfc {

std::string_view curve_name(CurveKind kind) noexcept {
  switch (kind) {
    case CurveKind::kHilbert:
      return "Hilbert";
    case CurveKind::kMorton:
      return "Z-Curve";
    case CurveKind::kGray:
      return "Gray";
    case CurveKind::kRowMajor:
      return "Row-Major";
    case CurveKind::kColumnMajor:
      return "Column-Major";
    case CurveKind::kSnake:
      return "Snake";
    case CurveKind::kMoore:
      return "Moore";
  }
  return "?";
}

std::optional<CurveKind> parse_curve(std::string_view name) noexcept {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  lower.erase(std::remove_if(lower.begin(), lower.end(),
                             [](char c) { return c == '-' || c == '_' || c == ' '; }),
              lower.end());
  if (lower == "hilbert" || lower == "h") return CurveKind::kHilbert;
  if (lower == "z" || lower == "zcurve" || lower == "morton")
    return CurveKind::kMorton;
  if (lower == "gray" || lower == "graycode" || lower == "g")
    return CurveKind::kGray;
  if (lower == "row" || lower == "rowmajor" || lower == "r")
    return CurveKind::kRowMajor;
  if (lower == "column" || lower == "columnmajor" || lower == "col")
    return CurveKind::kColumnMajor;
  if (lower == "snake" || lower == "boustrophedon") return CurveKind::kSnake;
  if (lower == "moore" || lower == "loop") return CurveKind::kMoore;
  return std::nullopt;
}

template <int D>
std::unique_ptr<Curve<D>> make_curve(CurveKind kind) {
  switch (kind) {
    case CurveKind::kHilbert:
      return std::make_unique<HilbertCurve<D>>();
    case CurveKind::kMorton:
      return std::make_unique<MortonCurve<D>>();
    case CurveKind::kGray:
      return std::make_unique<GrayCurve<D>>();
    case CurveKind::kRowMajor:
      return std::make_unique<RowMajorCurve<D>>();
    case CurveKind::kColumnMajor:
      return std::make_unique<ColumnMajorCurve<D>>();
    case CurveKind::kSnake:
      return std::make_unique<SnakeCurve<D>>();
    case CurveKind::kMoore:
      if constexpr (D == 2) {
        return std::make_unique<MooreCurve>();
      } else {
        throw std::invalid_argument("the Moore curve is 2-D only");
      }
  }
  return nullptr;
}

template std::unique_ptr<Curve<2>> make_curve<2>(CurveKind);
template std::unique_ptr<Curve<3>> make_curve<3>(CurveKind);

}  // namespace sfc
