// hilbert_lut.hpp — a table-driven 2-D Hilbert encoder/decoder.
//
// The canonical recursion (sfc/canonical_hilbert.hpp) re-derives the
// quadrant transform at every refinement step; this implementation
// precomputes the step as a finite-state machine instead. A state is the
// accumulated symmetry of the square — (swap, flip-x, flip-y), eight
// possible, four reachable — and one step maps (state, quadrant bits) to
// (output digit, next state) via a 32-entry table. Same bit-exact output
// as canonical_hilbert_index/point, ~4x faster than the recursion and ~7x
// faster than Skilling's algorithm in the encode micro bench — a worked
// example of the LUT approach production SFC libraries use.
#pragma once

#include <cstdint>

#include "sfc/curve.hpp"

namespace sfc {

/// Table-driven canonical Hilbert index (bit-exact match of
/// canonical_hilbert_index). O(level) with one table lookup per level.
std::uint64_t hilbert_lut_index(Point2 p, unsigned level) noexcept;

/// Inverse of hilbert_lut_index (bit-exact match of
/// canonical_hilbert_point).
Point2 hilbert_lut_point(std::uint64_t idx, unsigned level) noexcept;

/// Curve wrapper so the LUT variant can be used wherever a Curve<2> is
/// expected (reports kHilbert: it *is* a Hilbert curve, in the canonical
/// orientation rather than Skilling's).
class HilbertLutCurve final : public Curve<2> {
 public:
  std::uint64_t index(const Point<2>& p, unsigned level) const override {
    return hilbert_lut_index(p, level);
  }
  Point<2> point(std::uint64_t idx, unsigned level) const override {
    return hilbert_lut_point(idx, level);
  }
  CurveKind kind() const noexcept override { return CurveKind::kHilbert; }
};

}  // namespace sfc
