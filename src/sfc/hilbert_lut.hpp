// hilbert_lut.hpp — a table-driven 2-D Hilbert encoder/decoder.
//
// The canonical recursion (sfc/canonical_hilbert.hpp) re-derives the
// quadrant transform at every refinement step; this implementation
// precomputes the step as a finite-state machine instead. A state is the
// accumulated symmetry of the square — (swap, flip-x, flip-y), eight
// possible, four reachable — and one step maps (state, quadrant bits) to
// (output digit, next state) via a 32-entry table. Same bit-exact output
// as canonical_hilbert_index/point, ~4x faster than the recursion and ~7x
// faster than Skilling's algorithm in the encode micro bench — a worked
// example of the LUT approach production SFC libraries use.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sfc/curve.hpp"

namespace sfc {

/// Table-driven canonical Hilbert index (bit-exact match of
/// canonical_hilbert_index). O(level) with one table lookup per level.
std::uint64_t hilbert_lut_index(Point2 p, unsigned level) noexcept;

/// hilbert_lut_index started in an arbitrary FSM state: computes the
/// canonical Hilbert index of t(p), where t is the square symmetry the
/// state encodes (state = swap<<2 | flip_x<<1 | flip_y; 0 = identity).
/// Symmetries act independently on each bit plane, so pre-transforming
/// the point and seeding the state machine are the same computation —
/// this is how the Moore batch kernel reuses the table for its rotated
/// quadrants (T1^-1 = state 5, T2^-1 = state 6).
std::uint64_t hilbert_lut_index_from(Point2 p, unsigned level,
                                     unsigned state0) noexcept;

/// Batched table-driven encode: out[i] = hilbert_lut_index_from(pts[i],
/// level, state0). One table lookup per point per level, no per-point
/// function call — the devirtualized kernel behind the Hilbert-family
/// index_batch overrides.
void hilbert_lut_index_batch(const Point2* pts, std::uint64_t* out,
                             std::size_t n, unsigned level,
                             unsigned state0 = 0) noexcept;

/// Batched Moore encode: quadrant rank decomposition + the Hilbert FSM
/// seeded per point with the quadrant's inverse-transform state. Lives
/// here (not moore.hpp) because the kernel needs the step table; the
/// MooreCurve::index_batch override forwards to it.
void moore_lut_index_batch(const Point2* pts, std::uint64_t* out,
                           std::size_t n, unsigned level) noexcept;

/// Inverse of hilbert_lut_index (bit-exact match of
/// canonical_hilbert_point).
Point2 hilbert_lut_point(std::uint64_t idx, unsigned level) noexcept;

/// Curve wrapper so the LUT variant can be used wherever a Curve<2> is
/// expected (reports kHilbert: it *is* a Hilbert curve, in the canonical
/// orientation rather than Skilling's).
class HilbertLutCurve final : public Curve<2> {
 public:
  std::uint64_t index(const Point<2>& p, unsigned level) const override {
    return hilbert_lut_index(p, level);
  }
  Point<2> point(std::uint64_t idx, unsigned level) const override {
    return hilbert_lut_point(idx, level);
  }
  void index_batch(const Point<2>* pts, std::uint64_t* out, std::size_t n,
                   unsigned level) const override {
    hilbert_lut_index_batch(pts, out, n, level);
  }
  CurveKind kind() const noexcept override { return CurveKind::kHilbert; }
};

}  // namespace sfc
