// hilbert.hpp — the Hilbert curve, paper Fig. 1(a).
//
// H_{k+1} is built from four copies of H_k rotated so that entry and exit
// points align, which makes consecutive curve positions lattice neighbors
// at every level (the only one of the paper's curves with this property
// besides the snake scan).
//
// The production implementation is John Skilling's transpose algorithm
// ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), which works
// in any dimension with O(level * D) bit operations and no tables. An
// independent recursive construction (sfc/recursive_ref.hpp) — written
// directly from the paper's geometric description — serves as a test
// oracle; the two agree up to a fixed symmetry of the square, which the
// tests pin down explicitly.
#pragma once

#include <cassert>

#include "sfc/curve.hpp"
#include "sfc/hilbert_lut.hpp"

namespace sfc::detail {

/// In-place conversion between coordinate axes and Skilling's "transpose"
/// representation of a Hilbert index. `x` holds `dims` coordinates of
/// `bits` bits each.
void axes_to_transpose(std::uint32_t* x, unsigned bits, int dims) noexcept;
void transpose_to_axes(std::uint32_t* x, unsigned bits, int dims) noexcept;

}  // namespace sfc::detail

namespace sfc {

template <int D>
class HilbertCurve final : public Curve<D> {
 public:
  std::uint64_t index(const Point<D>& p, unsigned level) const override {
    assert(level <= max_level<D>() && in_grid(p, level));
    if (level == 0) return 0;
    Point<D> t = p;
    detail::axes_to_transpose(t.c.data(), level, D);
    // Interleave the transpose: from the most significant bit plane down,
    // dimension 0 contributes the most significant bit of each plane.
    std::uint64_t h = 0;
    for (int b = static_cast<int>(level) - 1; b >= 0; --b) {
      for (int i = 0; i < D; ++i) {
        h = (h << 1) | ((t[i] >> b) & 1u);
      }
    }
    return h;
  }

  Point<D> point(std::uint64_t idx, unsigned level) const override {
    assert(level <= max_level<D>() && idx < grid_size<D>(level));
    if (level == 0) return Point<D>{};
    Point<D> t{};
    // Scatter the index back into the transpose representation.
    for (unsigned b = 0; b < level; ++b) {
      for (int i = D - 1; i >= 0; --i) {
        t[i] |= static_cast<std::uint32_t>((idx & 1u) << b);
        idx >>= 1;
      }
    }
    detail::transpose_to_axes(t.c.data(), level, D);
    return t;
  }

  /// Devirtualized batch encode. In 2-D Skilling's algorithm agrees
  /// bit-for-bit with the canonical table-driven state machine at every
  /// level (pbt_batch_diff checks this against the per-point path), so
  /// the batch kernel threads the rotation state through the flat LUT —
  /// one table lookup per point per level instead of the transpose
  /// passes. Other dimensions run Skilling's algorithm in a tight
  /// non-virtual loop.
  void index_batch(const Point<D>* pts, std::uint64_t* out, std::size_t n,
                   unsigned level) const override {
    if constexpr (D == 2) {
      hilbert_lut_index_batch(pts, out, n, level);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = HilbertCurve::index(pts[i], level);
      }
    }
  }

  CurveKind kind() const noexcept override { return CurveKind::kHilbert; }
};

}  // namespace sfc
