// recursive_ref.hpp — independent recursive constructions of the 2-D
// curves, written directly from the paper's Section II descriptions.
//
// These are deliberately naive (they materialize the full visiting order of
// the 4^k grid points) and exist only as oracles for the property tests:
// the fast bit-twiddling implementations must agree with them exactly
// (Morton, Gray) or up to a fixed symmetry of the square (Hilbert — the
// defining recursion fixes the curve only up to rotation/reflection).
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/point.hpp"

namespace sfc::ref {

/// Per-point recursive Hilbert index. Quadrant order LL, UL, UR, LR with
/// the LL copy transposed and the LR copy anti-transposed, which yields the
/// classic orientation that starts in the lower-left corner heading right.
std::uint64_t hilbert2_index(Point2 p, unsigned level);

/// Full visiting orders, built by recursive concatenation:
///   Morton: LL, LR, UL, UR (no rotation).
///   Gray:   LL, LR, UR, UL with odd-position quadrants reversed.
///   Hilbert: as above.
std::vector<Point2> hilbert2_order(unsigned level);
std::vector<Point2> morton2_order(unsigned level);
std::vector<Point2> gray2_order(unsigned level);

}  // namespace sfc::ref
