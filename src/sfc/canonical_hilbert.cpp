#include "sfc/canonical_hilbert.hpp"

namespace sfc {

// Quadrant layout per refinement step (see recursive_ref.cpp):
//   rank 0: lower-left,  transposed        (x,y) <- (y,x)
//   rank 1: upper-left,  identity
//   rank 2: upper-right, identity
//   rank 3: lower-right, anti-transposed   (x,y) <- (s-1-y, s-1-x)

std::uint64_t canonical_hilbert_index(Point2 p, unsigned level) noexcept {
  std::uint64_t idx = 0;
  std::uint32_t x = p[0];
  std::uint32_t y = p[1];
  for (unsigned k = level; k > 0; --k) {
    const std::uint32_t s = 1u << (k - 1);
    const bool qx = x >= s;
    const bool qy = y >= s;
    const std::uint32_t lx = x & (s - 1);
    const std::uint32_t ly = y & (s - 1);
    std::uint32_t rank;
    if (!qx && !qy) {
      rank = 0;
      x = ly;
      y = lx;
    } else if (!qx) {
      rank = 1;
      x = lx;
      y = ly;
    } else if (qy) {
      rank = 2;
      x = lx;
      y = ly;
    } else {
      rank = 3;
      x = s - 1 - ly;
      y = s - 1 - lx;
    }
    idx = (idx << 2) | rank;
  }
  return idx;
}

Point2 canonical_hilbert_point(std::uint64_t idx, unsigned level) noexcept {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  // Unwind from the innermost refinement outward: digit k-1 (counting from
  // the least significant base-4 digit) places the point within its
  // level-k quadrant.
  for (unsigned k = 1; k <= level; ++k) {
    const std::uint32_t s = 1u << (k - 1);
    const auto rank = static_cast<std::uint32_t>((idx >> (2 * (k - 1))) & 3u);
    switch (rank) {
      case 0: {  // transpose back into the lower-left quadrant
        const std::uint32_t t = x;
        x = y;
        y = t;
        break;
      }
      case 1:  // upper-left
        y += s;
        break;
      case 2:  // upper-right
        x += s;
        y += s;
        break;
      default: {  // anti-transpose into the lower-right quadrant
        const std::uint32_t nx = 2 * s - 1 - y;
        const std::uint32_t ny = s - 1 - x;
        x = nx;
        y = ny;
        break;
      }
    }
  }
  return make_point(x, y);
}

}  // namespace sfc
