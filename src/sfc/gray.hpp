// gray.hpp — the Gray order, paper Fig. 1(c).
//
// "The Gray order takes the Z-curve representations of each point and
// orders them by the Gray code": the point visited at position i is the
// one whose Morton code equals gray(i) = i ^ (i >> 1), so consecutive
// points differ in exactly one Morton bit. Hence
//   index(p) = gray^{-1}(morton(p)),   point(i) = morton^{-1}(gray(i)).
//
// Unlike Hilbert, a single Morton-bit flip can be a long geometric jump, so
// the curve is not continuous — but it is "recursive" in the paper's sense:
// G_{k+1} visits quadrants LL, LR, UR, UL, with the quadrants at odd
// positions traversed in reverse.
#pragma once

#include <cassert>

#include "sfc/curve.hpp"
#include "sfc/morton.hpp"
#include "util/bits.hpp"
#include "util/simd.hpp"

namespace sfc {

template <int D>
class GrayCurve final : public Curve<D> {
 public:
  std::uint64_t index(const Point<D>& p, unsigned level) const override {
    assert(level <= max_level<D>() && in_grid(p, level));
    (void)level;
    return util::gray_decode(morton_index(p));
  }

  Point<D> point(std::uint64_t idx, unsigned level) const override {
    assert(level <= max_level<D>() && idx < grid_size<D>(level));
    (void)level;
    return morton_point<D>(util::gray_encode(idx));
  }

  /// Devirtualized batch encode: interleave + Gray-decode XOR cascade,
  /// dispatched to the BMI2 pdep kernel when available (bit-identical).
  void index_batch(const Point<D>* pts, std::uint64_t* out, std::size_t n,
                   unsigned level) const override {
    (void)level;
    if constexpr (D == 2 || D == 3) {
      const auto& k = util::simd::kernels();
      auto* kernel = D == 2 ? k.gray2_batch : k.gray3_batch;
      if (kernel != nullptr) {
        kernel(coord_data(pts), out, n);
        return;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = util::gray_decode(morton_index(pts[i]));
    }
  }

  CurveKind kind() const noexcept override { return CurveKind::kGray; }
};

}  // namespace sfc
