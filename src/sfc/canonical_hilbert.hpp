// canonical_hilbert.hpp — the 2-D Hilbert curve in a pinned orientation.
//
// Skilling's algorithm (sfc/hilbert.hpp) produces a valid Hilbert curve up
// to a symmetry of the square; for constructions that need to know exactly
// where the curve enters and exits — the Moore curve glues four copies by
// their endpoints — we provide an O(level) per-point implementation of the
// *canonical* orientation: H_k enters at (0,0) and exits at (2^k - 1, 0).
// It is the closed form of the recursive reference (sfc/recursive_ref.hpp)
// and is verified against it in the tests.
#pragma once

#include <cstdint>

#include "sfc/point.hpp"

namespace sfc {

/// Index of `p` on the canonical level-k Hilbert curve. O(level).
std::uint64_t canonical_hilbert_index(Point2 p, unsigned level) noexcept;

/// Inverse of canonical_hilbert_index. O(level).
Point2 canonical_hilbert_point(std::uint64_t idx, unsigned level) noexcept;

}  // namespace sfc
