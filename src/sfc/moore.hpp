// moore.hpp — the Moore curve: the closed-loop variant of the Hilbert
// curve (an extension beyond the paper's four curves).
//
// M_k glues four canonical H_{k-1} copies so that the exit of each copy
// touches the entry of the next AND the exit of the last touches the entry
// of the first — the traversal is a Hamiltonian *cycle* of the grid. That
// makes it a natural processor ranking for tori: consecutive ranks are
// physically adjacent including the wrap from rank p-1 back to rank 0,
// which rank-ring primitives (ring allreduce, halo exchange) exploit.
//
// Construction (left half ascends, right half descends):
//   rank 0: lower-left,  sub-curve rotated +90°   T1(x,y) = (s-1-y, x)
//   rank 1: upper-left,  rotated +90°
//   rank 2: upper-right, rotated -90°             T2(x,y) = (y, s-1-x)
//   rank 3: lower-right, rotated -90°
#pragma once

#include <cassert>

#include "sfc/canonical_hilbert.hpp"
#include "sfc/curve.hpp"
#include "sfc/hilbert_lut.hpp"

namespace sfc {

class MooreCurve final : public Curve<2> {
 public:
  std::uint64_t index(const Point<2>& p, unsigned level) const override {
    assert(level <= max_level<2>() && in_grid(p, level));
    if (level == 0) return 0;
    const std::uint32_t s = 1u << (level - 1);
    const std::uint64_t quad_cells = 1ull << (2 * (level - 1));
    const bool qx = p[0] >= s;
    const bool qy = p[1] >= s;
    const std::uint32_t lx = p[0] & (s - 1);
    const std::uint32_t ly = p[1] & (s - 1);
    // Quadrant visit order: LL, UL, UR, LR.
    const std::uint32_t rank = qx ? (qy ? 2u : 3u) : (qy ? 1u : 0u);
    const Point2 local = rank < 2 ? make_point(ly, s - 1 - lx)    // T1^{-1}
                                  : make_point(s - 1 - ly, lx);   // T2^{-1}
    return rank * quad_cells + canonical_hilbert_index(local, level - 1);
  }

  Point<2> point(std::uint64_t idx, unsigned level) const override {
    assert(level <= max_level<2>() && idx < grid_size<2>(level));
    if (level == 0) return make_point(0, 0);
    const std::uint32_t s = 1u << (level - 1);
    const std::uint64_t quad_cells = 1ull << (2 * (level - 1));
    const auto rank = static_cast<std::uint32_t>(idx / quad_cells);
    const Point2 hp = canonical_hilbert_point(idx % quad_cells, level - 1);
    const Point2 local = rank < 2 ? make_point(s - 1 - hp[1], hp[0])  // T1
                                  : make_point(hp[1], s - 1 - hp[0]); // T2
    const std::uint32_t ox = rank == 2 || rank == 3 ? s : 0;
    const std::uint32_t oy = rank == 1 || rank == 2 ? s : 0;
    return make_point(local[0] + ox, local[1] + oy);
  }

  /// Devirtualized batch encode: the quadrant pre-rotations T1^-1/T2^-1
  /// are square symmetries, so instead of transforming the local point
  /// the kernel seeds the canonical Hilbert state machine with the
  /// matching initial state (5 for the ascending left half, 6 for the
  /// descending right half) and runs it on the untransformed quadrant
  /// coordinates — no per-point recursion or virtual dispatch. The body
  /// lives next to the step table in hilbert_lut.cpp, where the SIMD
  /// FSM kernel can be dispatched.
  void index_batch(const Point<2>* pts, std::uint64_t* out, std::size_t n,
                   unsigned level) const override {
    moore_lut_index_batch(pts, out, n, level);
  }

  CurveKind kind() const noexcept override { return CurveKind::kMoore; }
};

}  // namespace sfc
