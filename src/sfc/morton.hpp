// morton.hpp — the Z-curve (Morton order), paper Fig. 1(b).
//
// The index of a point is obtained by interleaving the bits of its
// coordinates (y bit, x bit, y bit, x bit, ... from the most significant
// end). Equivalently, Z_{k+1} consists of four unrotated copies of Z_k
// visited in the order LL, LR, UL, UR.
#pragma once

#include <cassert>

#include "sfc/curve.hpp"
#include "util/bits.hpp"
#include "util/simd.hpp"

namespace sfc {

/// Morton index of a point, independent of level (levels only bound the
/// coordinate range; the bit interleave is level-agnostic).
template <int D>
constexpr std::uint64_t morton_index(const Point<D>& p) noexcept {
  if constexpr (D == 1) {
    return p[0];
  } else if constexpr (D == 2) {
    return util::morton2_encode(p[0], p[1]);
  } else if constexpr (D == 3) {
    return util::morton3_encode(p[0], p[1], p[2]);
  } else {
    std::uint64_t idx = 0;
    for (int b = static_cast<int>(max_level<D>()) - 1; b >= 0; --b) {
      for (int i = D - 1; i >= 0; --i) {
        idx = (idx << 1) | ((p[i] >> b) & 1u);
      }
    }
    return idx;
  }
}

/// Inverse of morton_index.
template <int D>
constexpr Point<D> morton_point(std::uint64_t idx) noexcept {
  Point<D> p{};
  if constexpr (D == 1) {
    p[0] = static_cast<std::uint32_t>(idx);
  } else if constexpr (D == 2) {
    p[0] = util::morton2_decode_x(idx);
    p[1] = util::morton2_decode_y(idx);
  } else if constexpr (D == 3) {
    p[0] = util::morton3_decode_x(idx);
    p[1] = util::morton3_decode_y(idx);
    p[2] = util::morton3_decode_z(idx);
  } else {
    for (unsigned b = 0; idx != 0; ++b) {
      for (int i = 0; i < D; ++i) {
        p[i] |= static_cast<std::uint32_t>((idx & 1u) << b);
        idx >>= 1;
      }
    }
  }
  return p;
}

template <int D>
class MortonCurve final : public Curve<D> {
 public:
  std::uint64_t index(const Point<D>& p, unsigned level) const override {
    assert(level <= max_level<D>() && in_grid(p, level));
    (void)level;
    return morton_index(p);
  }

  Point<D> point(std::uint64_t idx, unsigned level) const override {
    assert(level <= max_level<D>() && idx < grid_size<D>(level));
    (void)level;
    return morton_point<D>(idx);
  }

  /// Devirtualized batch encode: a pure bit-interleave loop, dispatched
  /// to the BMI2 pdep kernel when the host supports it (bit-identical).
  void index_batch(const Point<D>* pts, std::uint64_t* out, std::size_t n,
                   unsigned level) const override {
    (void)level;
    if constexpr (D == 2 || D == 3) {
      const auto& k = util::simd::kernels();
      auto* kernel = D == 2 ? k.morton2_batch : k.morton3_batch;
      if (kernel != nullptr) {
        kernel(coord_data(pts), out, n);
        return;
      }
    }
    for (std::size_t i = 0; i < n; ++i) out[i] = morton_index(pts[i]);
  }

  CurveKind kind() const noexcept override { return CurveKind::kMorton; }
};

}  // namespace sfc
