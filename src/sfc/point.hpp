// point.hpp — D-dimensional lattice points on a 2^k × ... × 2^k grid.
//
// The paper's experiments live in 2-D; the geometry layer is templated on
// the dimension so the 3-D extension (paper's future-work item ii) shares
// the same code paths.
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <type_traits>

namespace sfc {

/// A point with non-negative integer coordinates. Coordinate i is c[i];
/// for D=2 we use c[0]=x (horizontal), c[1]=y (vertical).
/// Maximum refinement level representable in a 64-bit index for dimension D.
template <int D>
constexpr unsigned max_level() noexcept {
  return D == 1 ? 63u : D == 2 ? 31u : D == 3 ? 21u : 15u;
}

template <int D>
struct Point {
  static_assert(D >= 1 && D <= 4, "supported dimensions: 1..4");
  std::array<std::uint32_t, static_cast<std::size_t>(D)> c{};

  constexpr std::uint32_t& operator[](int i) noexcept {
    return c[static_cast<std::size_t>(i)];
  }
  constexpr std::uint32_t operator[](int i) const noexcept {
    return c[static_cast<std::size_t>(i)];
  }

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

using Point2 = Point<2>;
using Point3 = Point<3>;

/// A Point<D> batch viewed as its flat coordinate array: element i's
/// coordinate d is at [D*i + d]. Valid (and deref-free) for empty
/// batches; the layout static_asserts make the cast well-defined.
template <int D>
inline const std::uint32_t* coord_data(const Point<D>* pts) noexcept {
  static_assert(std::is_standard_layout_v<Point<D>>);
  static_assert(sizeof(Point<D>) == D * sizeof(std::uint32_t),
                "Point<D> must pack its coordinates with no padding");
  return reinterpret_cast<const std::uint32_t*>(pts);
}

constexpr Point2 make_point(std::uint32_t x, std::uint32_t y) noexcept {
  return Point2{{x, y}};
}

constexpr Point3 make_point(std::uint32_t x, std::uint32_t y,
                            std::uint32_t z) noexcept {
  return Point3{{x, y, z}};
}

/// L1 (Manhattan) distance. Used by the ANNS metric, whose "nearest
/// neighbors" are points at Manhattan distance exactly 1.
template <int D>
constexpr std::uint64_t manhattan(const Point<D>& a, const Point<D>& b) noexcept {
  std::uint64_t d = 0;
  for (int i = 0; i < D; ++i) {
    d += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
  }
  return d;
}

/// L-infinity (Chebyshev) distance. The FMM near-field neighborhood of
/// radius r contains every cell sharing an edge or corner within r rings,
/// i.e. all cells at Chebyshev distance <= r.
template <int D>
constexpr std::uint64_t chebyshev(const Point<D>& a, const Point<D>& b) noexcept {
  std::uint64_t d = 0;
  for (int i = 0; i < D; ++i) {
    const std::uint64_t di = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (di > d) d = di;
  }
  return d;
}

/// Row-major packing of a point on the level-k grid (side 2^k) into a
/// single integer key: key = (((c[D-1])*side + c[D-2])*side + ...)*...
/// Used as the canonical cell key by the occupancy structures.
template <int D>
constexpr std::uint64_t pack(const Point<D>& p, unsigned level) noexcept {
  std::uint64_t key = 0;
  for (int i = D - 1; i >= 0; --i) {
    key = (key << level) | p[i];
  }
  return key;
}

/// Inverse of pack().
template <int D>
constexpr Point<D> unpack(std::uint64_t key, unsigned level) noexcept {
  Point<D> p{};
  const std::uint64_t mask = (1ull << level) - 1u;
  for (int i = 0; i < D; ++i) {
    p[i] = static_cast<std::uint32_t>(key & mask);
    key >>= level;
  }
  return p;
}

/// True iff every coordinate fits on the level-k grid.
template <int D>
constexpr bool in_grid(const Point<D>& p, unsigned level) noexcept {
  for (int i = 0; i < D; ++i) {
    if (p[i] >= (1ull << level)) return false;
  }
  return true;
}

/// Total number of lattice points at this level: (2^level)^D.
template <int D>
constexpr std::uint64_t grid_size(unsigned level) noexcept {
  return 1ull << (static_cast<unsigned>(D) * level);
}

/// Debug/printing helper: "(x, y[, z])".
template <int D>
std::string to_string(const Point<D>& p) {
  std::string s = "(";
  for (int i = 0; i < D; ++i) {
    if (i) s += ", ";
    s += std::to_string(p[i]);
  }
  s += ")";
  return s;
}

}  // namespace sfc
