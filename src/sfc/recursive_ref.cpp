#include "sfc/recursive_ref.hpp"

#include <cassert>

namespace sfc::ref {
namespace {

// Append `sub` to `out`, transforming each point by `f` and offsetting into
// the quadrant at (ox, oy). `reversed` walks `sub` back to front.
template <typename Transform>
void append_quadrant(std::vector<Point2>& out, const std::vector<Point2>& sub,
                     std::uint32_t ox, std::uint32_t oy, bool reversed,
                     Transform f) {
  const std::size_t n = sub.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point2 local = f(sub[reversed ? n - 1 - i : i]);
    out.push_back(make_point(local[0] + ox, local[1] + oy));
  }
}

Point2 identity(Point2 p) { return p; }

}  // namespace

std::uint64_t hilbert2_index(Point2 p, unsigned level) {
  assert(in_grid(p, level));
  if (level == 0) return 0;
  const std::uint32_t s = 1u << (level - 1);
  const bool qx = p[0] >= s;
  const bool qy = p[1] >= s;
  const std::uint32_t lx = p[0] & (s - 1);
  const std::uint32_t ly = p[1] & (s - 1);
  const std::uint64_t quad_cells = 1ull << (2 * (level - 1));

  if (!qx && !qy) {  // lower-left: transposed copy
    return 0 * quad_cells + hilbert2_index(make_point(ly, lx), level - 1);
  }
  if (!qx && qy) {  // upper-left: identity
    return 1 * quad_cells + hilbert2_index(make_point(lx, ly), level - 1);
  }
  if (qx && qy) {  // upper-right: identity
    return 2 * quad_cells + hilbert2_index(make_point(lx, ly), level - 1);
  }
  // lower-right: anti-transposed copy
  return 3 * quad_cells +
         hilbert2_index(make_point(s - 1 - ly, s - 1 - lx), level - 1);
}

std::vector<Point2> hilbert2_order(unsigned level) {
  if (level == 0) return {make_point(0, 0)};
  const std::vector<Point2> sub = hilbert2_order(level - 1);
  const std::uint32_t s = 1u << (level - 1);
  std::vector<Point2> out;
  out.reserve(sub.size() * 4);
  append_quadrant(out, sub, 0, 0, false,
                  [](Point2 p) { return make_point(p[1], p[0]); });
  append_quadrant(out, sub, 0, s, false, identity);
  append_quadrant(out, sub, s, s, false, identity);
  append_quadrant(out, sub, s, 0, false, [s](Point2 p) {
    return make_point(s - 1 - p[1], s - 1 - p[0]);
  });
  return out;
}

std::vector<Point2> morton2_order(unsigned level) {
  if (level == 0) return {make_point(0, 0)};
  const std::vector<Point2> sub = morton2_order(level - 1);
  const std::uint32_t s = 1u << (level - 1);
  std::vector<Point2> out;
  out.reserve(sub.size() * 4);
  append_quadrant(out, sub, 0, 0, false, identity);
  append_quadrant(out, sub, s, 0, false, identity);
  append_quadrant(out, sub, 0, s, false, identity);
  append_quadrant(out, sub, s, s, false, identity);
  return out;
}

std::vector<Point2> gray2_order(unsigned level) {
  if (level == 0) return {make_point(0, 0)};
  const std::vector<Point2> sub = gray2_order(level - 1);
  const std::uint32_t s = 1u << (level - 1);
  std::vector<Point2> out;
  out.reserve(sub.size() * 4);
  // Quadrant visit order LL, LR, UR, UL ("the lower two copies are not
  // rotated and the upper two are rotated 180 degrees" — in index terms,
  // every odd-position quadrant is walked in reverse).
  append_quadrant(out, sub, 0, 0, false, identity);
  append_quadrant(out, sub, s, 0, true, identity);
  append_quadrant(out, sub, s, s, false, identity);
  append_quadrant(out, sub, 0, s, true, identity);
  return out;
}

}  // namespace sfc::ref
