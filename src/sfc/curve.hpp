// curve.hpp — the space-filling-curve interface.
//
// A discrete space-filling curve at refinement level k is a bijection
// between the (2^k)^D lattice points and the index range [0, (2^k)^D).
// The paper deploys these bijections in two roles:
//   * particle-order: linearize the input points before chunked
//     distribution onto processors, and
//   * processor-order: assign ranks to the processors of a mesh/torus.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sfc/point.hpp"

namespace sfc {

/// The curve families studied in the paper (first four) plus extensions.
enum class CurveKind {
  kHilbert,      // recursive, rotated quadrants (paper Fig. 1a)
  kMorton,       // Z-curve, bit interleaving (paper Fig. 1b)
  kGray,         // Z codes ordered by the binary-reflected Gray code (Fig. 1c)
  kRowMajor,     // scan rows bottom-to-top
  kColumnMajor,  // extension: scan columns (the paper's literal description)
  kSnake,        // extension: boustrophedon scan (continuous row-major)
  kMoore,        // extension: closed-loop Hilbert (2-D only)
};

/// The four curves the paper studies, in the order its tables list them.
inline constexpr CurveKind kPaperCurves[] = {
    CurveKind::kHilbert, CurveKind::kMorton, CurveKind::kGray,
    CurveKind::kRowMajor};

/// Every implemented curve (2-D).
inline constexpr CurveKind kAllCurves[] = {
    CurveKind::kHilbert,     CurveKind::kMorton, CurveKind::kGray,
    CurveKind::kRowMajor,    CurveKind::kColumnMajor,
    CurveKind::kSnake,       CurveKind::kMoore};

/// Curves available in three dimensions (the Moore construction is 2-D).
inline constexpr CurveKind kCurves3D[] = {
    CurveKind::kHilbert,     CurveKind::kMorton, CurveKind::kGray,
    CurveKind::kRowMajor,    CurveKind::kColumnMajor,
    CurveKind::kSnake};

std::string_view curve_name(CurveKind kind) noexcept;

/// Parse a case-insensitive curve name ("hilbert", "z", "morton", "gray",
/// "row", "rowmajor", "column", "snake"); nullopt if unrecognized.
std::optional<CurveKind> parse_curve(std::string_view name) noexcept;

/// Abstract D-dimensional space-filling curve.
template <int D>
class Curve {
 public:
  virtual ~Curve() = default;

  /// Linear position of `p` on the level-k curve; p must lie on the grid.
  virtual std::uint64_t index(const Point<D>& p, unsigned level) const = 0;

  /// Inverse mapping: the point at linear position `idx`.
  virtual Point<D> point(std::uint64_t idx, unsigned level) const = 0;

  /// Batch encode: out[i] = index(pts[i], level) for i in [0, n).
  ///
  /// The base implementation is the per-point loop; concrete curves
  /// override it with devirtualized kernels (one virtual call per batch,
  /// tight branch-free loops inside) that must stay bit-identical to the
  /// per-point index() — the pbt_batch_diff suite enforces this for every
  /// curve kind. The ordering stage of the sweep engine feeds all
  /// particles through this entry point, so it is the encode hot path.
  virtual void index_batch(const Point<D>* pts, std::uint64_t* out,
                           std::size_t n, unsigned level) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = index(pts[i], level);
  }

  virtual CurveKind kind() const noexcept = 0;
  std::string_view name() const noexcept { return curve_name(kind()); }
};

using Curve2 = Curve<2>;
using Curve3 = Curve<3>;

/// Factory for the concrete curves.
template <int D>
std::unique_ptr<Curve<D>> make_curve(CurveKind kind);

extern template std::unique_ptr<Curve<2>> make_curve<2>(CurveKind);
extern template std::unique_ptr<Curve<3>> make_curve<3>(CurveKind);

/// Convenience: curve indices for a batch of points.
template <int D>
std::vector<std::uint64_t> indices_of(const Curve<D>& curve,
                                      const std::vector<Point<D>>& points,
                                      unsigned level) {
  std::vector<std::uint64_t> out(points.size());
  curve.index_batch(points.data(), out.data(), points.size(), level);
  return out;
}

}  // namespace sfc
