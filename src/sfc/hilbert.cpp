#include "sfc/hilbert.hpp"

namespace sfc::detail {

// Both routines follow Skilling (2004) verbatim, with unsigned types.
// State: x[0..dims-1], each coordinate `bits` bits wide.

void axes_to_transpose(std::uint32_t* x, unsigned bits, int dims) noexcept {
  const std::uint32_t m = 1u << (bits - 1);

  // Inverse undo of the rotation/reflection cascade.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < dims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of the first axis
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;  // exchange low bits
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }

  // Gray encode across axes.
  for (int i = 1; i < dims; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[dims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < dims; ++i) x[i] ^= t;
}

void transpose_to_axes(std::uint32_t* x, unsigned bits, int dims) noexcept {
  const std::uint32_t n = 2u << (bits - 1);

  // Gray decode across axes.
  std::uint32_t t = x[dims - 1] >> 1;
  for (int i = dims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;

  // Undo the excess rotation/reflection work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = dims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t u = (x[0] ^ x[i]) & p;
        x[0] ^= u;
        x[i] ^= u;
      }
    }
  }
}

}  // namespace sfc::detail
