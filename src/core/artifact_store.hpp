// artifact_store.hpp — the crash-safe on-disk tier under the sweep
// engine's in-memory artifact cache.
//
// Every run of a study bench rebuilds the same expensive stage artifacts
// (canonical samples, orderings, instances, NFI/FFI histograms) because
// the byte-budgeted LRU dies with the process. The store persists those
// artifacts as one file per (stage, content key), so a warm rerun — same
// parameters, same build — deserializes instead of recomputing. It is a
// cache, not a database: every failure mode (absent file, truncated
// write, bit rot, foreign build, version skew) is silently a miss, and
// the engine recomputes.
//
// On-disk format (docs/architecture.md, "Persistent artifact store"):
//   <dir>/<stage>-<16-hex-key>.sfcart
//   header: magic "SFCARTv1", format version, stage id, stage key,
//           provenance hash (git sha ⊕ format version), payload length,
//           FNV-1a checksum of the payload — followed by the payload.
// The filename key is the stage key chained with the stage id and the
// provenance hash, so builds from different commits coexist in one
// directory without ever answering each other's probes.
//
// Writes are temp-file + fsync + rename (atomic on POSIX): a crash
// mid-write leaves a temp file that is ignored, never a half-written
// artifact under a valid name. Reads are mmap'd and fully validated
// before the payload is handed out; the mapping pins the bytes, and
// POSIX unlink leaves established mappings intact, so concurrent budget
// eviction can never yank a payload out from under a reader.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/sweep.hpp"

namespace sfc::core {

/// Bump on any change to the header layout or a stage's payload
/// encoding: old files then validate as foreign and are treated as
/// misses (and eventually evicted by the byte budget).
inline constexpr std::uint32_t kArtifactStoreFormatVersion = 1;

/// Default on-disk budget: 4 GiB holds several paper-scale sweeps'
/// worth of histograms and instances.
inline constexpr std::size_t kDefaultArtifactStoreBytes = std::size_t{4}
                                                          << 30;

struct ArtifactStoreOptions {
  std::string dir;
  std::size_t byte_budget = kDefaultArtifactStoreBytes;
  /// Delete every artifact file at open (the --store-clear flag).
  bool clear = false;
  /// Build-provenance override. Empty = util/version.hpp's git sha, the
  /// production behavior; tests pass a fixed string so round-trips do
  /// not depend on the working tree, and a *different* string to prove
  /// foreign-build artifacts are misses.
  std::string provenance;
};

class ArtifactStore {
 public:
  /// Counter snapshot (one atomic block under the store mutex).
  struct Stats {
    std::uint64_t hits = 0;        ///< validated loads
    std::uint64_t misses = 0;      ///< probes with no (valid) file
    std::uint64_t corrupt = 0;     ///< probes that found an invalid file
    std::uint64_t spills = 0;      ///< artifacts written (evictions+flush)
    std::uint64_t spilled_bytes = 0;
    std::uint64_t read_bytes = 0;
    std::uint64_t evicted_files = 0;  ///< files deleted by the budget
    std::uint64_t resident_files = 0;
    std::uint64_t resident_bytes = 0;
  };

  /// A validated, mmap'd payload. Movable; unmaps on destruction.
  class Mapping {
   public:
    Mapping() = default;
    Mapping(Mapping&& o) noexcept { swap(o); }
    Mapping& operator=(Mapping&& o) noexcept {
      if (this != &o) {
        release();
        swap(o);
      }
      return *this;
    }
    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;
    ~Mapping() { release(); }

    const std::uint8_t* data() const noexcept { return payload_; }
    std::size_t size() const noexcept { return size_; }

   private:
    friend class ArtifactStore;
    void swap(Mapping& o) noexcept {
      std::swap(base_, o.base_);
      std::swap(map_len_, o.map_len_);
      std::swap(payload_, o.payload_);
      std::swap(size_, o.size_);
    }
    void release() noexcept;

    void* base_ = nullptr;
    std::size_t map_len_ = 0;
    const std::uint8_t* payload_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Opens (creating the directory if needed), optionally clears, and
  /// indexes the existing artifact files. Throws std::runtime_error when
  /// the directory cannot be created.
  explicit ArtifactStore(const ArtifactStoreOptions& options);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  const std::string& dir() const noexcept { return dir_; }
  std::size_t byte_budget() const noexcept { return budget_; }

  /// Validated read of the artifact under (stage, key). nullopt is a
  /// miss; an existing-but-invalid file additionally counts as corrupt
  /// and is deleted. The returned mapping stays readable even if the
  /// budget evicts the file afterwards.
  std::optional<Mapping> load(SweepStage stage, std::uint64_t key);

  /// Whether a file for (stage, key) is indexed (no validation, no
  /// counter traffic) — the spill/flush paths use this to skip rewrites.
  bool contains(SweepStage stage, std::uint64_t key) const;

  /// Persist an artifact payload: temp file + fsync + rename, then
  /// oldest-first deletion until within the byte budget. A key already
  /// present is left untouched. IO failures are silent (miss-on-reload
  /// is the contract) but leave no partial file behind.
  void save(SweepStage stage, std::uint64_t key, const void* payload,
            std::size_t size);

  Stats stats() const;
  /// {"dir":...,"hits":...,...} — embedded by the bench harness in every
  /// --json document under "artifact_store".
  std::string json() const;
  /// sweep.store.* gauges (set, not accumulated — same discipline as the
  /// sweep.cache.* family).
  void publish_metrics() const;

  /// FNV-1a over the payload bytes (the header checksum).
  static std::uint64_t checksum(const void* data, std::size_t size) noexcept;

 private:
  struct FileInfo {
    std::string name;
    std::size_t bytes = 0;   ///< whole file (header + payload)
    std::uint64_t order = 0;  ///< eviction order: scan mtime, then writes
  };

  std::uint64_t file_key(SweepStage stage, std::uint64_t key) const noexcept;
  std::string path_of(SweepStage stage, std::uint64_t key) const;
  /// Delete oldest files until resident_bytes_ <= budget_ (keeping at
  /// least the newest). Caller holds mutex_.
  void enforce_budget_locked();
  void forget_locked(std::uint64_t fkey);

  std::string dir_;
  std::size_t budget_;
  std::uint64_t provenance_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, FileInfo> index_;
  std::uint64_t next_order_ = 0;
  Stats counters_;
  unsigned temp_seq_ = 0;
};

}  // namespace sfc::core
