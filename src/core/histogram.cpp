#include "core/histogram.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "fmm/enumerate.hpp"

namespace sfc::core {

HopHistogram::HopHistogram(std::uint64_t max_distance)
    : bins_(max_distance + 1, 0) {}

void HopHistogram::add(std::uint64_t distance) {
  if (distance >= bins_.size()) bins_.resize(distance + 1, 0);
  ++bins_[distance];
  ++total_;
  hops_ += distance;
  max_seen_ = std::max(max_seen_, distance);
}

double HopHistogram::mean() const noexcept {
  return total_ == 0 ? 0.0
                     : static_cast<double>(hops_) /
                           static_cast<double>(total_);
}

std::uint64_t HopHistogram::percentile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile must be in [0, 1]");
  }
  if (total_ == 0) return 0;
  const double target = q * static_cast<double>(total_);
  std::uint64_t cumulative = 0;
  for (std::uint64_t d = 0; d < bins_.size(); ++d) {
    cumulative += bins_[d];
    if (static_cast<double>(cumulative) >= target) return d;
  }
  return max_seen_;
}

double HopHistogram::local_fraction() const noexcept {
  return total_ == 0 ? 0.0
                     : static_cast<double>(bins_[0]) /
                           static_cast<double>(total_);
}

std::string HopHistogram::ascii(unsigned width) const {
  std::uint64_t peak = 0;
  for (const auto b : bins_) peak = std::max(peak, b);
  std::ostringstream os;
  if (peak == 0) return "(empty)\n";
  for (std::uint64_t d = 0; d <= max_seen_; ++d) {
    if (bins_[d] == 0 && d != 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(bins_[d]) / static_cast<double>(peak) * width);
    os << (d < 10 ? "  " : d < 100 ? " " : "") << d << " | "
       << std::string(bar, '#') << ' ' << bins_[d] << '\n';
  }
  return os.str();
}

HopHistogram nfi_histogram(const AcdInstance<2>& instance,
                           const fmm::Partition& part,
                           const topo::Topology& net, unsigned radius,
                           fmm::NeighborNorm norm) {
  HopHistogram hist(net.diameter());
  fmm::nfi_visit<2>(instance.particles(), instance.grid(), radius, norm,
                    [&](std::size_t i, std::size_t j) {
                      hist.add(net.distance(part.proc_of(i),
                                            part.proc_of(j)));
                    });
  return hist;
}

HopHistogram ffi_histogram(const AcdInstance<2>& instance,
                           const fmm::Partition& part,
                           const topo::Topology& net) {
  HopHistogram hist(net.diameter());
  fmm::ffi_visit<2>(instance.tree(),
                    [&](std::uint32_t from, std::uint32_t to,
                        fmm::FfiComponent) {
                      hist.add(net.distance(part.proc_of(from),
                                            part.proc_of(to)));
                    });
  return hist;
}

}  // namespace sfc::core
