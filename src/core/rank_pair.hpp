// rank_pair.hpp — (source rank, destination rank) → count aggregation.
//
// The ACD engines enumerate O(n · window) communication events but only
// p² distinct rank pairs exist, so the hot loops record events into one
// of these histograms and the totals are recovered by handing view() to
// Topology::fold(), which picks a structure-exploiting kernel (factorized
// closed form, dense hop table, or streamed BFS). Integer multiplication
// is exact repeated addition, so the folded totals are bit-identical to
// summing the per-event distances in any order — and identical across
// fold strategies.
//
// Storage adapts to p: a dense p² count array while p² fits the budget
// (p <= 2048 by default), and a sorted-sparse (key → count) list with a
// bounded unsorted staging buffer beyond — sweeps at paper scale
// (p = 65536) never allocate p² memory.
//
// Beyond the fast path, the histogram itself is the observability
// artifact for contention modeling: for_each() exposes the exact
// per-rank-pair traffic matrix of a communication set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/totals.hpp"
#include "topology/distance_table.hpp"
#include "topology/topology.hpp"
#include "util/thread_pool.hpp"

namespace sfc::core {

class RankPairAccumulator {
 public:
  /// Dense-mode budget: p² count entries at 8 bytes each (32 MiB).
  static constexpr std::size_t kDenseEntryBudget = std::size_t{1} << 22;

  /// Whether a histogram for `procs` ranks should use the dense p² array.
  /// When the fold strategy is not kDense the p² counts are only ever
  /// walked once by a factorized/streamed kernel, so an enlarged caller
  /// budget is clamped back to the default — million-rank runs must never
  /// attempt the dense allocation no matter what budget they inherit.
  static bool pick_dense(topo::Rank procs, std::size_t dense_budget,
                         topo::FoldStrategy strategy) noexcept {
    if (strategy != topo::FoldStrategy::kDense &&
        dense_budget > kDenseEntryBudget) {
      dense_budget = kDenseEntryBudget;
    }
    return static_cast<std::size_t>(procs) * procs <= dense_budget;
  }

  /// `dense_budget` is a test hook: pass 0 to force the sparse fallback.
  explicit RankPairAccumulator(topo::Rank procs,
                               std::size_t dense_budget = kDenseEntryBudget);

  /// Histogram destined for `net`: the dense/sparse pick threads the
  /// topology's fold strategy through pick_dense().
  RankPairAccumulator(topo::Rank procs, const topo::Topology& net,
                      std::size_t dense_budget = kDenseEntryBudget);

  topo::Rank procs() const noexcept { return p_; }
  bool dense() const noexcept { return is_dense_; }

  /// Record `count` communications from rank `src` to rank `dst`.
  void add(topo::Rank src, topo::Rank dst, std::uint64_t count = 1) {
    if (count == 0) return;
    if (is_dense_) {
      dense_[static_cast<std::size_t>(src) * p_ + dst] += count;
    } else {
      add_sparse(src, dst, count);
    }
  }

  /// Remove `count` previously recorded communications from rank `src` to
  /// rank `dst` — the retraction half of the incremental (delta) update
  /// path. Counts are unsigned, so sparse mode stages the two's-complement
  /// 0 - count and lets the modular sums of compact() net it out; every
  /// fold kernel is linear in the counts, so as long as the *multiset*
  /// never goes negative overall (each sub matches an earlier add), the
  /// folded totals stay exact. A per-pair count that a stale subtraction
  /// drives "negative" wraps to a huge value, which the differential
  /// dynamics suite detects immediately.
  void sub(topo::Rank src, topo::Rank dst, std::uint64_t count = 1) {
    if (count == 0) return;
    if (is_dense_) {
      dense_[static_cast<std::size_t>(src) * p_ + dst] -= count;
    } else {
      add_sparse(src, dst, std::uint64_t{0} - count);
    }
  }

  /// Dense-mode count row for a fixed source rank (nullptr in sparse
  /// mode) — lets kernels hoist the row base out of their inner loops.
  std::uint64_t* row(topo::Rank src) noexcept {
    return is_dense_ ? dense_.data() + static_cast<std::size_t>(src) * p_
                     : nullptr;
  }

  /// Merge another histogram (same processor count) into this one.
  RankPairAccumulator& operator+=(const RankPairAccumulator& o);

  /// Fold against a prebuilt hop table: Σ count(a,b) · table(a,b).
  /// Test/oracle path — production consumers hand view() to
  /// Topology::fold() and let the topology pick its kernel.
  CommTotals fold(const topo::DistanceTable& table) const;

  /// Fold with one distance() call per *distinct* pair — the oracle path
  /// exercising the virtual distance directly (still O(pairs)).
  CommTotals fold(const topo::Topology& net) const;

  /// Non-owning view of the histogram for Topology::fold(). Sparse mode
  /// compacts first; like for_each(), seal() a histogram shared across
  /// concurrent fold tasks before taking views. The view borrows this
  /// histogram's storage — it is invalidated by any later add().
  topo::PairCountsView view() const {
    if (is_dense_) return topo::PairCountsView::dense(p_, dense_.data());
    compact();
    return topo::PairCountsView::sparse(p_, sorted_.data(), sorted_.size());
  }

  /// Force the sparse-mode staging buffer into the sorted aggregate now.
  /// compact() runs lazily on first fold/for_each and mutates the
  /// (mutable) representation, so a histogram shared across concurrent
  /// fold tasks must be sealed first — afterwards every const operation
  /// is a pure read. No-op in dense mode or when already compact.
  void seal() const {
    if (!is_dense_) compact();
  }

  /// Bytes held by this histogram's backing storage (cache accounting).
  std::size_t memory_bytes() const noexcept {
    return dense_.capacity() * sizeof(std::uint64_t) +
           (staging_.capacity() + sorted_.capacity()) *
               sizeof(std::pair<std::uint64_t, std::uint64_t>);
  }

  /// Total recorded communications (sum of all counts).
  std::uint64_t events() const;

  /// Invoke fn(src, dst, count) for every pair with a nonzero count.
  /// Dense mode iterates in row-major order; sparse mode in key order
  /// (the same order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (is_dense_) {
      std::size_t k = 0;
      for (topo::Rank a = 0; a < p_; ++a) {
        for (topo::Rank b = 0; b < p_; ++b, ++k) {
          if (dense_[k] != 0) fn(a, b, dense_[k]);
        }
      }
      return;
    }
    compact();
    for (const auto& [key, count] : sorted_) {
      fn(static_cast<topo::Rank>(key / p_), static_cast<topo::Rank>(key % p_),
         count);
    }
  }

 private:
  /// Staging buffer cap before a sort-and-merge compaction (16 MiB).
  static constexpr std::size_t kStagingCap = std::size_t{1} << 20;

  void add_sparse(topo::Rank src, topo::Rank dst, std::uint64_t count);
  /// Merge the staging buffer into the sorted aggregate. Const because
  /// the pair *multiset* is unchanged — only its representation.
  void compact() const;

  topo::Rank p_;
  bool is_dense_;
  std::vector<std::uint64_t> dense_;  // p² counts (dense mode only)
  mutable std::vector<std::pair<std::uint64_t, std::uint64_t>> staging_;
  mutable std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted_;
};

// ------------------------------------------------- artifact-store codec

/// Append one self-describing record for `acc` to `out`: host-endian
/// u64s — procs, mode flag (1 = dense), nonzero-pair count, then (key,
/// count) pairs with key = src·p + dst in key order. Sparse histograms
/// compact first (seal() semantics), so serializing a shared histogram
/// follows the same sealing rule as view().
void rank_pairs_serialize(const RankPairAccumulator& acc,
                          std::vector<std::uint8_t>& out);

/// Decode the record at `offset` in [data, data+size), advancing offset
/// past it. The restored accumulator reproduces the recorded dense or
/// sparse mode exactly (via the ctor's budget hook), independent of what
/// pick_dense would choose today. Returns nullopt on malformed bytes —
/// the artifact store's checksum makes that unreachable for store-read
/// payloads, but the codec still never trusts its input.
std::optional<RankPairAccumulator> rank_pairs_deserialize(
    const std::uint8_t* data, std::size_t size, std::size_t& offset);

/// Scratch aggregation of (src, dst) → modular count deltas for the
/// incremental (delta) consumers.
///
/// A delta walk touches the same few rank pairs thousands of times per
/// timestep. In dense mode that is harmless (each event is one array
/// update), but in sparse mode every raw add()/sub() lands in the
/// staging buffer and pays its share of a large compaction sort — the
/// dominant cost of an incremental step at paper-scale p. A PairDeltas
/// nets the step's events by pair first (open addressing, modular
/// arithmetic, so retract/assert pairs that cancel vanish here) and
/// flush_into() forwards only the surviving net entries. Every count is
/// modular, so flushing preserves the multiset exactly regardless of
/// how events were grouped.
class PairDeltas {
 public:
  explicit PairDeltas(topo::Rank procs) : p_(procs) { rehash(1024); }

  void add(topo::Rank src, topo::Rank dst, std::uint64_t count = 1) {
    accum(static_cast<std::uint64_t>(src) * p_ + dst, count);
  }
  void sub(topo::Rank src, topo::Rank dst, std::uint64_t count = 1) {
    accum(static_cast<std::uint64_t>(src) * p_ + dst,
          std::uint64_t{0} - count);
  }

  /// Distinct pairs currently held (zero-net pairs included until flush).
  std::size_t entries() const noexcept { return used_; }

  /// Forward every nonzero net delta into `acc` and reset to empty (the
  /// table keeps its capacity). add() with a modular count is exact in
  /// both accumulator modes.
  void flush_into(RankPairAccumulator& acc) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == kEmptyKey) continue;
      acc.add(static_cast<topo::Rank>(keys_[i] / p_),
              static_cast<topo::Rank>(keys_[i] % p_), deltas_[i]);
    }
    if (used_ != 0) {
      std::fill(keys_.begin(), keys_.end(), kEmptyKey);
      used_ = 0;
    }
  }

 private:
  /// Keys are src·p + dst < p² — never the empty sentinel.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  static std::size_t mix(std::uint64_t key) noexcept {
    key *= 0x9E3779B97F4A7C15ull;  // Fibonacci hashing
    return static_cast<std::size_t>(key >> 32 ^ key);
  }

  void accum(std::uint64_t key, std::uint64_t delta) {
    std::size_t i = mix(key) & mask_;
    while (keys_[i] != kEmptyKey && keys_[i] != key) i = (i + 1) & mask_;
    if (keys_[i] == key) {
      deltas_[i] += delta;
      return;
    }
    keys_[i] = key;
    deltas_[i] = delta;
    // Grow at 70% load: linear probing needs slack to stay O(1).
    if (++used_ * 10 >= keys_.size() * 7) rehash(keys_.size() * 2);
  }

  void rehash(std::size_t capacity) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint64_t> old_deltas = std::move(deltas_);
    keys_.assign(capacity, kEmptyKey);
    deltas_.assign(capacity, 0);
    mask_ = capacity - 1;
    used_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmptyKey) accum(old_keys[i], old_deltas[i]);
    }
  }

  topo::Rank p_;
  std::vector<std::uint64_t> keys_;    // kEmptyKey = vacant slot
  std::vector<std::uint64_t> deltas_;  // modular net counts
  std::size_t used_ = 0;
  std::size_t mask_ = 0;
};

/// Per-worker shard histograms for lock-free parallel accumulation.
///
/// The enumerate kernels fan out over cell/particle chunks; instead of
/// building a fresh accumulator per chunk and merging under a mutex (a
/// p²-sized zero + merge per chunk), each chunk records into the shard of
/// the worker executing it, and the shards merge into the target exactly
/// once after all fan-outs finish. Counts commute, so the merged multiset
/// — and in dense mode the byte-for-byte array — is independent of
/// scheduling and chunk boundaries.
class RankPairShards {
 public:
  /// One shard per pool worker plus one for the calling thread (the
  /// serial fallback and below-cutoff ranges land there).
  RankPairShards(topo::Rank procs, unsigned workers) {
    shards_.reserve(static_cast<std::size_t>(workers) + 1);
    for (unsigned i = 0; i <= workers; ++i) shards_.emplace_back(procs);
  }

  /// The shard owned by the executing thread: workers of the pool the
  /// kernel fans out on get distinct slots; any other caller (the
  /// coordinator, a foreign pool's worker running the serial fallback)
  /// gets the last slot. Within one fan-out the executors are either
  /// this pool's workers or the single calling thread, never both, so no
  /// two threads share a slot concurrently.
  RankPairAccumulator& local() noexcept {
    const unsigned idx = util::ThreadPool::current_worker_index();
    const std::size_t last = shards_.size() - 1;
    return shards_[idx < last ? idx : last];
  }

  /// Merge every shard into `acc`, in fixed slot order.
  void merge_into(RankPairAccumulator& acc) const {
    for (const RankPairAccumulator& s : shards_) acc += s;
  }

 private:
  std::vector<RankPairAccumulator> shards_;
};

}  // namespace sfc::core
