#include "core/artifact_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <vector>

#include "obs/metrics.hpp"
#include "util/version.hpp"

namespace sfc::core {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'S', 'F', 'C', 'A', 'R', 'T', 'v', '1'};
constexpr const char* kExtension = ".sfcart";

/// Fixed-layout file header. Every field is validated on load; any
/// mismatch makes the whole file a miss. Packed scalars, no padding
/// surprises: 8 + 4 + 4 + 8 + 8 + 8 + 8 = 48 bytes.
struct StoreHeader {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t stage;
  std::uint64_t key;
  std::uint64_t provenance;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
};
static_assert(sizeof(StoreHeader) == 48);

std::uint64_t fnv1a(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

void ArtifactStore::Mapping::release() noexcept {
  if (base_ != nullptr) ::munmap(base_, map_len_);
  base_ = nullptr;
  map_len_ = 0;
  payload_ = nullptr;
  size_ = 0;
}

ArtifactStore::ArtifactStore(const ArtifactStoreOptions& options)
    : dir_(options.dir), budget_(options.byte_budget) {
  const std::string sha =
      options.provenance.empty() ? std::string(sfc::kGitSha)
                                 : options.provenance;
  provenance_ = sweep_key(fnv1a(sha.data(), sha.size()),
                          kArtifactStoreFormatVersion);

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec && !fs::is_directory(dir_)) {
    throw std::runtime_error("artifact store: cannot create directory '" +
                             dir_ + "': " + ec.message());
  }

  // Index existing artifacts (or clear them). Only the filename and size
  // are trusted here; content validation stays lazy, on load. Scan order
  // for budget eviction is last-write-time so a long-lived shared
  // directory sheds its stalest artifacts first.
  struct Scanned {
    std::uint64_t fkey;
    FileInfo info;
    fs::file_time_type mtime;
  };
  std::vector<Scanned> scanned;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (ec) break;
    std::error_code stat_ec;
    if (!entry.is_regular_file(stat_ec) || stat_ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 16 + std::strlen(kExtension)) continue;
    if (name.substr(name.size() - std::strlen(kExtension)) != kExtension)
      continue;
    if (options.clear) {
      fs::remove(entry.path(), ec);
      continue;
    }
    const std::string hex =
        name.substr(name.size() - std::strlen(kExtension) - 16, 16);
    std::uint64_t fkey = 0;
    bool valid_hex = true;
    for (char c : hex) {
      fkey <<= 4;
      if (c >= '0' && c <= '9')
        fkey |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        fkey |= static_cast<std::uint64_t>(c - 'a' + 10);
      else
        valid_hex = false;
    }
    if (!valid_hex) continue;
    Scanned s;
    s.fkey = fkey;
    s.info.name = name;
    const std::uintmax_t bytes = entry.file_size(stat_ec);
    if (stat_ec) continue;  // racing delete; the sentinel -1 would poison
                            // resident_bytes and evict the whole store
    s.info.bytes = static_cast<std::size_t>(bytes);
    s.mtime = entry.last_write_time(stat_ec);
    if (stat_ec) continue;
    scanned.push_back(std::move(s));
  }
  std::sort(scanned.begin(), scanned.end(),
            [](const Scanned& a, const Scanned& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime
                                        : a.info.name < b.info.name;
            });
  for (auto& s : scanned) {
    s.info.order = next_order_++;
    counters_.resident_bytes += s.info.bytes;
    index_.emplace(s.fkey, std::move(s.info));
  }
  counters_.resident_files = index_.size();
}

std::uint64_t ArtifactStore::file_key(SweepStage stage,
                                      std::uint64_t key) const noexcept {
  std::uint64_t k = sweep_key(provenance_, key);
  return sweep_key(static_cast<std::uint64_t>(stage), k);
}

std::string ArtifactStore::path_of(SweepStage stage, std::uint64_t key) const {
  return dir_ + "/" + std::string(sweep_stage_name(stage)) + "-" +
         hex16(file_key(stage, key)) + kExtension;
}

bool ArtifactStore::contains(SweepStage stage, std::uint64_t key) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return index_.count(file_key(stage, key)) != 0;
}

std::optional<ArtifactStore::Mapping> ArtifactStore::load(SweepStage stage,
                                                          std::uint64_t key) {
  const std::uint64_t fkey = file_key(stage, key);
  const std::string path = path_of(stage, key);

  // Snapshot the index entry's order before touching the file. If a
  // concurrent save() replaces the file while we read it, the order
  // changes (save renames and indexes under the mutex), and the cleanup
  // below must not delete the fresh artifact it never looked at.
  std::optional<std::uint64_t> order_before;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = index_.find(fkey);
    if (it != index_.end()) order_before = it->second.order;
  }
  auto entry_unchanged_locked = [&]() {
    auto it = index_.find(fkey);
    if (it == index_.end()) return !order_before.has_value();
    return order_before.has_value() && it->second.order == *order_before;
  };

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    std::lock_guard<std::mutex> lk(mutex_);
    ++counters_.misses;
    // Stale index entry (file vanished underneath us) — unless a save
    // raced in after the failed open, in which case the entry is live.
    if (entry_unchanged_locked()) forget_locked(fkey);
    return std::nullopt;
  }

  struct ::stat st{};
  Mapping mapping;
  bool valid = false;
  if (::fstat(fd, &st) == 0 &&
      static_cast<std::size_t>(st.st_size) >= sizeof(StoreHeader)) {
    const std::size_t len = static_cast<std::size_t>(st.st_size);
    void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      StoreHeader header;
      std::memcpy(&header, base, sizeof header);
      const auto* payload =
          static_cast<const std::uint8_t*>(base) + sizeof header;
      const std::size_t payload_len = len - sizeof header;
      if (std::memcmp(header.magic, kMagic, sizeof kMagic) == 0 &&
          header.format_version == kArtifactStoreFormatVersion &&
          header.stage == static_cast<std::uint32_t>(stage) &&
          header.key == key && header.provenance == provenance_ &&
          header.payload_bytes == payload_len &&
          header.checksum == fnv1a(payload, payload_len)) {
        mapping.base_ = base;
        mapping.map_len_ = len;
        mapping.payload_ = payload;
        mapping.size_ = payload_len;
        valid = true;
      } else {
        ::munmap(base, len);
      }
    }
  }
  ::close(fd);

  std::lock_guard<std::mutex> lk(mutex_);
  if (valid) {
    ++counters_.hits;
    counters_.read_bytes += mapping.size();
    return mapping;
  }
  // Existing-but-invalid: corrupt, truncated, foreign build, or wrong
  // version. Count it, delete it (it can never validate again), miss —
  // but only if no concurrent save() swapped in a fresh file since the
  // open; deleting that would turn a just-written artifact into a miss.
  ++counters_.misses;
  ++counters_.corrupt;
  if (entry_unchanged_locked()) {
    ::unlink(path.c_str());
    forget_locked(fkey);
  }
  return std::nullopt;
}

void ArtifactStore::save(SweepStage stage, std::uint64_t key,
                         const void* payload, std::size_t size) {
  const std::uint64_t fkey = file_key(stage, key);
  std::string temp;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (index_.count(fkey) != 0) return;
    temp = dir_ + "/tmp-" + std::to_string(::getpid()) + "-" +
           std::to_string(temp_seq_++);
  }

  StoreHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.format_version = kArtifactStoreFormatVersion;
  header.stage = static_cast<std::uint32_t>(stage);
  header.key = key;
  header.provenance = provenance_;
  header.payload_bytes = size;
  header.checksum = fnv1a(payload, size);

  const int fd =
      ::open(temp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return;
  bool ok = true;
  auto write_all = [&](const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    while (len > 0) {
      const ::ssize_t n = ::write(fd, p, len);
      if (n <= 0) return false;
      p += n;
      len -= static_cast<std::size_t>(n);
    }
    return true;
  };
  ok = write_all(&header, sizeof header) && (size == 0 || write_all(payload, size));
  if (ok) ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    ::unlink(temp.c_str());
    return;
  }
  const std::string path = path_of(stage, key);

  // Rename under the mutex so the index and the directory can never
  // disagree: a racing save for the same key either loses here (its temp
  // file is discarded, no counter traffic) or is serialized before us.
  std::lock_guard<std::mutex> lk(mutex_);
  if (index_.count(fkey) != 0) {
    ::unlink(temp.c_str());
    return;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    return;
  }
  FileInfo info;
  info.name = std::string(sweep_stage_name(stage)) + "-" + hex16(fkey) +
              kExtension;
  info.bytes = sizeof header + size;
  info.order = next_order_++;
  counters_.resident_bytes += info.bytes;
  index_.emplace(fkey, std::move(info));
  counters_.resident_files = index_.size();
  ++counters_.spills;
  counters_.spilled_bytes += size;
  enforce_budget_locked();
}

void ArtifactStore::enforce_budget_locked() {
  while (counters_.resident_bytes > budget_ && index_.size() > 1) {
    auto victim = index_.begin();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (it->second.order < victim->second.order) victim = it;
    }
    ::unlink((dir_ + "/" + victim->second.name).c_str());
    counters_.resident_bytes -= victim->second.bytes;
    ++counters_.evicted_files;
    index_.erase(victim);
  }
  counters_.resident_files = index_.size();
}

void ArtifactStore::forget_locked(std::uint64_t fkey) {
  auto it = index_.find(fkey);
  if (it == index_.end()) return;
  counters_.resident_bytes -= it->second.bytes;
  index_.erase(it);
  counters_.resident_files = index_.size();
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return counters_;
}

std::string ArtifactStore::json() const {
  const Stats s = stats();
  std::string out = "{";
  out += "\"dir\":\"" + dir_ + "\"";
  out += ",\"budget_bytes\":" + std::to_string(budget_);
  out += ",\"hits\":" + std::to_string(s.hits);
  out += ",\"misses\":" + std::to_string(s.misses);
  out += ",\"corrupt\":" + std::to_string(s.corrupt);
  out += ",\"spills\":" + std::to_string(s.spills);
  out += ",\"spilled_bytes\":" + std::to_string(s.spilled_bytes);
  out += ",\"read_bytes\":" + std::to_string(s.read_bytes);
  out += ",\"evicted_files\":" + std::to_string(s.evicted_files);
  out += ",\"resident_files\":" + std::to_string(s.resident_files);
  out += ",\"resident_bytes\":" + std::to_string(s.resident_bytes);
  out += "}";
  return out;
}

void ArtifactStore::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  const Stats s = stats();
  auto& reg = obs::Registry::instance();
  reg.gauge("sweep.store.hits").set(static_cast<double>(s.hits));
  reg.gauge("sweep.store.misses").set(static_cast<double>(s.misses));
  reg.gauge("sweep.store.corrupt").set(static_cast<double>(s.corrupt));
  reg.gauge("sweep.store.spills").set(static_cast<double>(s.spills));
  reg.gauge("sweep.store.evicted_files")
      .set(static_cast<double>(s.evicted_files));
  reg.gauge("sweep.store.resident_bytes")
      .set(static_cast<double>(s.resident_bytes));
}

std::uint64_t ArtifactStore::checksum(const void* data,
                                      std::size_t size) noexcept {
  return fnv1a(data, size);
}

}  // namespace sfc::core
