// report.hpp — turn study results into tables and plot-ready files.
//
// The bench harnesses and the tests share these builders so the output
// layout is covered by the test suite, and `write_file` lets any harness
// dump CSV series for external plotting.
#pragma once

#include <string>

#include "core/study.hpp"
#include "util/table.hpp"

namespace sfc::core {

/// Tables I/II layout: processor order down, particle order across.
util::Table combination_table(const CombinationStudyResult& result,
                              std::size_t dist_index, bool far_field);

/// Figure 6 layout: one row per topology, one column per curve.
util::Table topology_table(const TopologyStudyResult& result,
                           bool far_field);

/// Figure 7 layout: one row per processor count, one column per curve.
util::Table scaling_table(const ScalingStudyResult& result, bool far_field);

// Sweep-engine overloads: the same layouts built straight from a
// StudyResult (what the bench harnesses consume since the Study API).
util::Table combination_table(const StudyResult& result,
                              std::size_t dist_index, bool far_field);
util::Table topology_table(const StudyResult& result, bool far_field);
util::Table scaling_table(const StudyResult& result, bool far_field);

/// Machine-readable JSON document for a sweep-engine run: the study
/// description, one record per grid cell (across-trial mean ACDs plus
/// 95% CI half-widths), and the engine's cache accounting
/// (per-stage hit/miss counters, evictions, byte high-water mark).
std::string study_json(const StudyResult& result);

/// Figure 5 layout: one row per resolution, one column per curve.
/// `maxima` selects the max-stretch (MNNS) view instead of the average.
util::Table anns_table(const AnnsStudyResult& result, bool maxima = false);

/// Write a table to a file in the given style. Throws std::runtime_error
/// if the file cannot be opened.
void write_file(const std::string& path, const util::Table& table,
                util::TableStyle style = util::TableStyle::kCsv);

}  // namespace sfc::core
