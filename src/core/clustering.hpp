// clustering.hpp — the classical SFC clustering metric (related work:
// Jagadish '90/'97, Moon et al. '01, Xu & Tirthapura PODS'12).
//
// For a rectilinear range query, the "clustering number" is the number of
// maximal runs of consecutive curve indices inside the query region — i.e.
// how many times a linear scan must seek when the data is laid out in
// curve order. Databases want it small; Moon et al. show the Hilbert curve
// asymptotically achieves ~ perimeter/4 clusters per query in 2-D
// (reproduced by the tests: an 8x8 window tends to 8 clusters).
//
// This module complements the paper's ANNS/ACD results with the metric the
// prior literature optimized for — and demonstrates the paper's headline
// tension: Hilbert wins under clustering yet loses under ANNS.
#pragma once

#include <cstdint>

#include "sfc/curve.hpp"
#include "util/thread_pool.hpp"

namespace sfc::core {

/// A half-open axis-aligned query box on the level-k grid.
struct QueryRect {
  std::uint32_t x0 = 0, y0 = 0;  ///< inclusive lower corner
  std::uint32_t w = 1, h = 1;    ///< extent per axis (cells)
};

/// Number of maximal runs of consecutive curve indices covering the query.
/// Runs in O(w*h log(w*h)) time and O(w*h) space.
std::uint64_t cluster_count(const Curve<2>& curve, unsigned level,
                            const QueryRect& query);

struct ClusteringStats {
  double average = 0.0;      ///< mean clusters per query
  std::uint64_t maximum = 0; ///< worst query seen
  std::uint64_t queries = 0;
};

/// Average clustering number over every position of a w x h query window
/// on the level-k grid (exhaustive, like Moon et al.'s analysis). Window
/// positions are clipped to the grid.
ClusteringStats average_clusters(const Curve<2>& curve, unsigned level,
                                 std::uint32_t w, std::uint32_t h,
                                 util::ThreadPool* pool = nullptr);

}  // namespace sfc::core
