// histogram.hpp — the distribution behind the average.
//
// ACD (Definition 1) compresses each communication set to a mean; for
// capacity planning the tail matters just as much (a p99 of
// diameter-length paths serializes differently than a uniform spread of
// short hops). This extension materializes the full hop-distance histogram
// of the NFI/FFI communication sets, with exact percentiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/acd.hpp"

namespace sfc::core {

class HopHistogram {
 public:
  /// Bins cover distances 0..max_distance (one bin per hop count).
  explicit HopHistogram(std::uint64_t max_distance);

  void add(std::uint64_t distance);

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t hops() const noexcept { return hops_; }
  std::uint64_t max_seen() const noexcept { return max_seen_; }

  /// Mean hop distance == the ACD of the recorded set.
  double mean() const noexcept;

  /// Exact q-quantile (q in [0, 1]) by cumulative counts: the smallest
  /// distance d such that at least q * total communications have
  /// distance <= d. Returns 0 on an empty histogram.
  std::uint64_t percentile(double q) const;

  /// Count of communications with exactly this distance.
  std::uint64_t bin(std::uint64_t distance) const {
    return distance < bins_.size() ? bins_[distance] : 0;
  }
  const std::vector<std::uint64_t>& bins() const noexcept { return bins_; }

  /// Fraction of communications that stay on-processor (distance 0).
  double local_fraction() const noexcept;

  /// A compact ASCII bar rendering (one row per nonzero bin, `width`
  /// characters for the largest bin).
  std::string ascii(unsigned width = 50) const;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t hops_ = 0;
  std::uint64_t max_seen_ = 0;
};

/// Histogram of the near-field communication set.
HopHistogram nfi_histogram(const AcdInstance<2>& instance,
                           const fmm::Partition& part,
                           const topo::Topology& net, unsigned radius,
                           fmm::NeighborNorm norm =
                               fmm::NeighborNorm::kChebyshev);

/// Histogram of the far-field communication set (all three components).
HopHistogram ffi_histogram(const AcdInstance<2>& instance,
                           const fmm::Partition& part,
                           const topo::Topology& net);

}  // namespace sfc::core
