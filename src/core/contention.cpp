#include "core/contention.hpp"

#include <algorithm>
#include <stdexcept>

#include "fmm/enumerate.hpp"

namespace sfc::core {

LinkLoadMap::LinkLoadMap(unsigned level, bool wrap)
    : level_(level), side_(1u << level), wrap_(wrap) {
  if (2 * level > 26) {
    throw std::invalid_argument("link map too large");
  }
  load_.assign(static_cast<std::size_t>(side_) * side_ * 4, 0);
}

void LinkLoadMap::route(const Point2& from, const Point2& to,
                        std::uint64_t count) {
  if (count == 0) return;
  messages_ += count;
  auto traverse = [this, count](std::uint32_t x, std::uint32_t y,
                                unsigned dir) {
    load_[(static_cast<std::size_t>(y) * side_ + x) * 4 + dir] += count;
  };
  std::uint32_t x = from[0];
  std::uint32_t y = from[1];

  // X leg. On the torus pick the shorter wrap, ties toward +x.
  while (x != to[0]) {
    const std::uint32_t fwd = (to[0] + side_ - x) % side_;  // steps going +x
    bool step_pos;
    if (!wrap_) {
      step_pos = to[0] > x;
    } else {
      step_pos = fwd <= side_ - fwd;
    }
    if (step_pos) {
      traverse(x, y, 0);
      x = wrap_ ? (x + 1) % side_ : x + 1;
    } else {
      traverse(x, y, 1);
      x = wrap_ ? (x + side_ - 1) % side_ : x - 1;
    }
  }
  // Y leg.
  while (y != to[1]) {
    const std::uint32_t fwd = (to[1] + side_ - y) % side_;
    bool step_pos;
    if (!wrap_) {
      step_pos = to[1] > y;
    } else {
      step_pos = fwd <= side_ - fwd;
    }
    if (step_pos) {
      traverse(x, y, 2);
      y = wrap_ ? (y + 1) % side_ : y + 1;
    } else {
      traverse(x, y, 3);
      y = wrap_ ? (y + side_ - 1) % side_ : y - 1;
    }
  }
}

CongestionStats LinkLoadMap::stats() const {
  CongestionStats s;
  s.messages = messages_;
  // Directed links that physically exist: 4 per node on the torus; the
  // mesh loses the boundary-crossing ones.
  if (wrap_ && side_ > 1) {
    s.total_links = static_cast<std::uint64_t>(side_) * side_ * 4;
  } else {
    s.total_links =
        2ull * 2ull * side_ * (side_ - 1);  // 2 dirs x 2 signs per edge
  }
  for (const std::uint64_t l : load_) {
    if (l == 0) continue;
    s.hops += l;
    ++s.links_used;
    s.max_link_load = std::max(s.max_link_load, l);
  }
  return s;
}

void LinkLoadMap::reset() {
  messages_ = 0;
  std::fill(load_.begin(), load_.end(), 0);
}

std::uint64_t LinkLoadMap::link_load(std::uint32_t x, std::uint32_t y,
                                     unsigned dir) const {
  return load_[(static_cast<std::size_t>(y) * side_ + x) * 4 + dir];
}

namespace {

LinkLoadMap route_messages(const AcdInstance<2>& instance,
                           const fmm::Partition& part,
                           const topo::GridTopologyBase<2>& net, bool wrap,
                           unsigned radius, const fmm::NeighborNorm* norm) {
  LinkLoadMap map(net.level(), wrap);
  // Aggregate the communication set into per-rank-pair counts, then walk
  // each distinct pair's path once with its multiplicity: O(pairs · hops)
  // link updates instead of O(events · hops). Loads are additive, so the
  // stats are identical to routing every event.
  const core::RankPairAccumulator pairs =
      norm != nullptr
          ? fmm::nfi_pair_counts<2>(instance.particles(), instance.grid(),
                                    part, radius, *norm)
          : fmm::ffi_pair_counts<2>(instance.tree(), part);
  pairs.view().for_each(
      [&](topo::Rank from, topo::Rank to, std::uint64_t count) {
        map.route(net.coordinate(from), net.coordinate(to), count);
      });
  return map;
}

}  // namespace

CongestionStats nfi_congestion(const AcdInstance<2>& instance,
                               const fmm::Partition& part,
                               const topo::GridTopologyBase<2>& net,
                               bool wrap, unsigned radius,
                               fmm::NeighborNorm norm) {
  return route_messages(instance, part, net, wrap, radius, &norm).stats();
}

CongestionStats ffi_congestion(const AcdInstance<2>& instance,
                               const fmm::Partition& part,
                               const topo::GridTopologyBase<2>& net,
                               bool wrap) {
  return route_messages(instance, part, net, wrap, 0, nullptr).stats();
}

}  // namespace sfc::core
