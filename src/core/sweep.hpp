// sweep.hpp — the grid-sweep engine behind every ACD study.
//
// The paper's evaluation is a grid sweep: Tables I/II enumerate
// {distribution x particle-order x processor-order}, Figure 6
// {topology x curve}, Figure 7 {p x curve}. Every cell runs the same
// pipeline — sample, order, partition, histogram, fold — and most of the
// pipeline is *shared* between cells: the rank-pair histograms produced
// by the NFI/FFI models depend only on (sample, particle order, p,
// radius), not on the topology or processor order, which only enter the
// final p²-bounded fold. The engine decomposes a declarative Study into
// content-hash-keyed stage artifacts, memoizes them in a byte-budgeted
// LRU (optionally backed by the on-disk ArtifactStore tier), and
// schedules the whole study as a task graph on the ThreadPool — every
// stage node is a task with hash-keyed dependencies, so independent
// cells run concurrently end-to-end while Table I's four
// processor-order rows and Figure 6's six topologies still fold the
// *same* histograms instead of re-running the O(n·window) enumeration. The spatial side of a sample is factored out
// once per (distribution, trial) as a cell-sorted *canonical* copy with
// its occupancy grid; each curve then contributes only a rank table (a
// linear-time bucket argsort of its cell indices), the NFI events are
// enumerated over the canonical copy with explicit owners, and the
// curve-sorted AcdInstance (needed by the FFI tree walk alone) is built
// by scattering through the rank table instead of re-sorting. Folds sum
// exact integers, so engine results are bit-identical to evaluating
// every cell from scratch (SweepOptions::reuse = false, which is also
// the speedup baseline).
//
// docs/architecture.md describes the stage DAG, key derivations, and
// invalidation rules.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/acd.hpp"
#include "util/stats.hpp"

namespace sfc::core {

// ------------------------------------------------------------- stage plumbing

/// The pipeline stages whose outputs the engine caches (kFold executes
/// per cell and is counted but not stored — fold keys never repeat
/// within a study grid).
enum class SweepStage : unsigned {
  kSample = 0,       ///< (distribution, n, level, seed, trial) -> particles
  kCanonical,        ///< (sample) -> cell-sorted copy + occupancy grid
  kOrdering,         ///< (sample, particle order) -> curve-rank table
  kInstance,         ///< (sample, particle order) -> AcdInstance (FFI only)
  kNfiHistogram,     ///< (sample, order, p, radius, norm) -> rank-pair hist
  kFfiHistogram,     ///< (instance, p) -> FFI histograms
  kTopology,         ///< (kind, p [, processor order]) -> Topology
  kDelta,            ///< (scenario, move-set chain) -> per-step dynamic totals
  kFold,             ///< (histogram, topology) -> CommTotals
};

inline constexpr unsigned kSweepStageCount = 9;

std::string_view sweep_stage_name(SweepStage stage) noexcept;

struct StageCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  /// Fraction of lookups served from the cache (0 when the stage never
  /// ran). Published as the sweep.stage.<name>.hit_ratio metrics gauge.
  double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// Cache accounting for one engine run. Counter *totals* are
/// deterministic — the engine plans every lookup in grid order and
/// replays the accounting sequence on the coordinating thread — but
/// under the concurrent scheduler the wall-clock moment a given stage's
/// build runs (and therefore per-stage *attribution order* in traces) is
/// scheduling-dependent. See docs/architecture.md, "Cell-graph
/// scheduling".
struct SweepStats {
  StageCounters stages[kSweepStageCount];
  std::uint64_t evictions = 0;
  std::size_t bytes = 0;       ///< resident artifact bytes after the run
  std::size_t peak_bytes = 0;  ///< high-water mark during the run
  /// Resident bytes split by producing stage (sums to `bytes`). Answers
  /// "what is the budget actually holding?" — published as the
  /// sweep.cache.stage.<name>.bytes gauges.
  std::size_t stage_bytes[kSweepStageCount] = {};

  const StageCounters& stage(SweepStage s) const noexcept {
    return stages[static_cast<unsigned>(s)];
  }
  StageCounters& stage(SweepStage s) noexcept {
    return stages[static_cast<unsigned>(s)];
  }
  std::size_t bytes_of(SweepStage s) const noexcept {
    return stage_bytes[static_cast<unsigned>(s)];
  }
  std::uint64_t total_hits() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : stages) n += c.hits;
    return n;
  }
  std::uint64_t total_misses() const noexcept {
    std::uint64_t n = 0;
    for (const auto& c : stages) n += c.misses;
    return n;
  }
};

/// 64-bit content-hash keys: splitmix64-mixed field combination. Not
/// cryptographic — collisions across the handful of artifacts in one
/// sweep are vanishingly unlikely and would only trade a result for an
/// identically-typed one of the same stage.
constexpr std::uint64_t sweep_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t sweep_key(std::uint64_t h, std::uint64_t v) noexcept {
  return sweep_mix(h ^ sweep_mix(v));
}

/// Thread-safe LRU artifact cache with byte-budget eviction and atomic
/// per-stage hit/miss counters. The key space is sharded across
/// independently-locked hash maps (keys are splitmix64-mixed, so any
/// shard selection bits are uniform); recency is a global atomic touch
/// sequence, which makes eviction order *exactly* the single LRU list's
/// whenever operations are serialized (the unit tests pin that), and a
/// consistent least-recently-touched choice under concurrency.
/// Evictions run under one eviction mutex and may invoke a spill hook —
/// the bridge to the disk-backed ArtifactStore tier. The sweep engine
/// serializes its accounting traffic (plan-order replay on the
/// coordinator), so SweepStats stays deterministic regardless of thread
/// count; the locking here is what lets dynamics replays, tests, and
/// future query servers share one cache across threads.
class ArtifactCache {
 public:
  /// Eviction spill hook: (stage, un-mixed stage key, artifact, payload
  /// bytes). Runs outside the shard locks (the hook may do IO).
  using SpillFn =
      std::function<void(SweepStage, std::uint64_t,
                         const std::shared_ptr<const void>&, std::size_t)>;

  explicit ArtifactCache(std::size_t byte_budget) : budget_(byte_budget) {}

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Install the eviction spill hook. Not thread-safe against concurrent
  /// cache traffic — set it before the cache is shared.
  void set_spill_hook(SpillFn hook) { spill_ = std::move(hook); }

  /// Artifact under (stage, key), building it via `make` on a miss.
  /// `make` returns {artifact, payload bytes}. The returned pointer stays
  /// valid across later evictions (shared ownership).
  template <typename T, typename MakeFn>
  std::shared_ptr<const T> get(SweepStage stage, std::uint64_t key,
                               MakeFn&& make) {
    if (auto found = find<T>(stage, key)) return found;
    std::pair<std::shared_ptr<const T>, std::size_t> made = make();
    put<T>(stage, key, made.first, made.second);
    return made.first;
  }

  /// Lookup half of get(): counts the hit or miss, returns nullptr on a
  /// miss. Lets the engine batch miss-builds onto the ThreadPool while
  /// the counter sequence stays exactly the serial grid order.
  template <typename T>
  std::shared_ptr<const T> find(SweepStage stage, std::uint64_t key) {
    key = sweep_key(static_cast<std::uint64_t>(stage), key);
    return std::static_pointer_cast<const T>(lookup(stage, key));
  }

  /// Store half of get(): no counter traffic (the find() that missed
  /// already counted).
  template <typename T>
  void put(SweepStage stage, std::uint64_t key,
           std::shared_ptr<const T> value, std::size_t bytes) {
    const std::uint64_t mixed =
        sweep_key(static_cast<std::uint64_t>(stage), key);
    insert(stage, mixed, key, std::move(value), bytes);
  }

  /// Count a per-cell fold execution (computed, never stored).
  void count_fold() noexcept {
    misses_[static_cast<unsigned>(SweepStage::kFold)].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::size_t budget() const noexcept { return budget_; }
  /// Counter snapshot (each field individually atomic; a snapshot taken
  /// while traffic is in flight is internally consistent only once the
  /// traffic quiesces — every engine path reads it after its barrier).
  SweepStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    SweepStage stage = SweepStage::kSample;
    /// The caller's un-mixed stage key — what the spill hook needs to
    /// address the same artifact in the ArtifactStore.
    std::uint64_t raw_key = 0;
    /// Span-clock time of insertion or last hit; feeds the
    /// sweep.cache.eviction_age_ns histogram (how long a victim sat cold
    /// before eviction — the signal that the budget is too small).
    std::uint64_t last_touch_ns = 0;
    /// Global recency stamp: larger = touched more recently. The victim
    /// scan evicts the minimum, which reproduces list-LRU order exactly.
    std::uint64_t touch_seq = 0;
  };

  static constexpr std::size_t kShardCount = 16;
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> map;
  };

  Shard& shard_of(std::uint64_t mixed_key) noexcept {
    return shards_[mixed_key % kShardCount];
  }

  std::shared_ptr<const void> lookup(SweepStage stage, std::uint64_t key);
  void insert(SweepStage stage, std::uint64_t key, std::uint64_t raw_key,
              std::shared_ptr<const void> value, std::size_t bytes);
  void evict_to_budget();

  std::size_t budget_;
  SpillFn spill_;
  std::array<Shard, kShardCount> shards_;
  std::atomic<std::uint64_t> touch_seq_{0};
  std::atomic<std::uint64_t> hits_[kSweepStageCount]{};
  std::atomic<std::uint64_t> misses_[kSweepStageCount]{};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> peak_bytes_{0};
  std::atomic<std::size_t> stage_bytes_[kSweepStageCount]{};
  std::atomic<std::size_t> entries_{0};
  /// Serializes victim selection (the scan-and-remove would otherwise
  /// race two inserters into double-evicting).
  std::mutex evict_mutex_;
};

// ------------------------------------------------------------- study grammar

struct AcdCell {
  double nfi_acd = 0.0;
  double ffi_acd = 0.0;
};

/// Per-cell across-trial statistics (populated for every trial count;
/// with trials == 1 the CI is zero).
struct AcdCellStats {
  util::RunningStats nfi;
  util::RunningStats ffi;
};

/// Declarative description of one ACD sweep: scalar pipeline parameters
/// plus the grid axes. Every combination of {distribution x
/// particle_curve x proc_count x processor_order x topology} is one
/// cell; trials average into each cell. This one struct subsumes the
/// former CombinationStudyConfig (both curve roles swept),
/// TopologyStudyConfig (topologies swept, curves paired), and
/// ScalingStudyConfig (proc_counts swept, curves paired).
struct Study {
  std::string name = "study";
  std::size_t particles = 250000;
  unsigned level = 10;  ///< spatial resolution: 2^level per dimension
  unsigned radius = 1;  ///< near-field neighborhood radius
  fmm::NeighborNorm norm = fmm::NeighborNorm::kChebyshev;
  std::uint64_t seed = 1;
  unsigned trials = 1;
  bool near_field = true;  ///< evaluate the NFI model
  bool far_field = true;   ///< evaluate the FFI model

  std::vector<dist::DistKind> distributions{dist::DistKind::kUniform};
  std::vector<CurveKind> particle_curves{kPaperCurves, kPaperCurves + 4};
  /// Processor-order axis. Empty means *paired* mode: each cell ranks the
  /// processors with its own particle curve (Figures 6/7); non-empty
  /// sweeps the full cross product (Tables I/II).
  std::vector<CurveKind> processor_curves{};
  std::vector<topo::TopologyKind> topologies{topo::TopologyKind::kTorus};
  std::vector<topo::Rank> proc_counts{65536};

  bool paired_curves() const noexcept { return processor_curves.empty(); }
  std::size_t processor_order_count() const noexcept {
    return paired_curves() ? 1 : processor_curves.size();
  }
  std::size_t cell_count() const noexcept {
    return distributions.size() * particle_curves.size() *
           proc_counts.size() * processor_order_count() * topologies.size();
  }
};

/// Grid coordinates of one cell (indices into the Study's axis vectors).
/// In paired mode processor_curve mirrors particle_curve.
struct StudyCellRef {
  std::size_t distribution = 0;
  unsigned trial = 0;
  std::size_t particle_curve = 0;
  std::size_t proc_count = 0;
  std::size_t processor_curve = 0;
  std::size_t topology = 0;
};

/// Per-cell progress sink (long paper-scale runs report each cell).
/// `elapsed_ms` is the wall time of that cell's fold work, measured on
/// the obs span clock (obs::now_ns) so progress lines and exported
/// traces can never disagree about a cell's duration.
using CellProgressFn =
    std::function<void(const StudyCellRef&, double elapsed_ms)>;

/// Default artifact budget: 1 GiB comfortably holds a paper-scale
/// sweep's working set (the biggest artifacts are one AcdInstance per
/// particle curve at ~50 MiB for n = 10^6).
inline constexpr std::size_t kDefaultSweepCacheBytes = std::size_t{1} << 30;

class ArtifactStore;

struct SweepOptions {
  util::ThreadPool* pool = nullptr;  ///< parallelism (cell graph + kernels)
  std::size_t cache_bytes = kDefaultSweepCacheBytes;
  /// false = evaluate every cell from scratch (no artifact reuse): the
  /// legacy per-cell pipeline, kept as the equivalence oracle and the
  /// speedup baseline. Results are bit-identical either way.
  bool reuse = true;
  CellProgressFn progress;
  /// Optional disk tier (reuse path only): stage artifacts missing from
  /// the in-memory cache are probed here before being recomputed, and
  /// every persistable artifact this run materializes is written back.
  /// Results are bit-identical with or without a store, warm or cold.
  ArtifactStore* store = nullptr;
};

struct StudyResult {
  Study study;
  /// Across-trial means, row-major over
  /// [distribution][particle_curve][proc_count][processor_order][topology].
  std::vector<AcdCell> cells;
  /// Matching across-trial statistics (same indexing).
  std::vector<AcdCellStats> stats;
  /// Cache accounting (all-zero when SweepOptions::reuse was false).
  SweepStats sweep;

  std::size_t index(std::size_t d, std::size_t pc, std::size_t pi,
                    std::size_t rc, std::size_t ti) const noexcept {
    return (((d * study.particle_curves.size() + pc) *
                 study.proc_counts.size() +
             pi) *
                study.processor_order_count() +
            rc) *
               study.topologies.size() +
           ti;
  }
  const AcdCell& cell(std::size_t d, std::size_t pc, std::size_t pi,
                      std::size_t rc, std::size_t ti) const noexcept {
    return cells[index(d, pc, pi, rc, ti)];
  }
  const AcdCellStats& cell_stats(std::size_t d, std::size_t pc,
                                 std::size_t pi, std::size_t rc,
                                 std::size_t ti) const noexcept {
    return stats[index(d, pc, pi, rc, ti)];
  }
};

/// Execute a study. Cells are visited in row-major grid order with
/// trials outermost per distribution; artifact reuse and fold
/// parallelism never change the arithmetic (integer histogram sums
/// commute), only the wall clock. Invalid grid parameters (e.g. a torus
/// size that is not a power of 4) surface as std::invalid_argument from
/// the coordinating thread.
StudyResult run_study(const Study& study, const SweepOptions& options = {});

// ---------------------------------------------------------------- dynamics

/// One dynamics trajectory: a sampled 2-D configuration evolved by
/// `steps` drift timesteps (core::drift_moves), evaluated per step under
/// three reordering policies — never re-order (frozen, the incremental
/// engine), re-sort every step (the from-scratch AcdInstance baseline),
/// and lazy re-order at `repartition_threshold` (the advisor column).
struct DynamicsStudy {
  std::string name = "dynamics";
  std::size_t particles = 10000;
  unsigned level = 7;
  unsigned radius = 1;
  fmm::NeighborNorm norm = fmm::NeighborNorm::kChebyshev;
  std::uint64_t seed = 1;
  CurveKind curve = CurveKind::kHilbert;
  topo::TopologyKind topology = topo::TopologyKind::kTorus;
  dist::DistKind distribution = dist::DistKind::kUniform;
  topo::Rank procs = 64;
  unsigned steps = 16;
  /// Fraction of particles attempting a drift step per timestep.
  double move_fraction = 1.0;
  /// Lazy policy's displaced-fraction trigger (the frozen policy always
  /// runs with re-partitioning disabled).
  double repartition_threshold = 0.25;
};

/// Exact per-step totals under the three policies, plus the advisor
/// signals. ACD values derive from the CommTotals (`.acd()`); integers
/// are stored so golden tests can pin the trajectory bit-exactly.
struct DynamicsStepResult {
  std::size_t moves = 0;  ///< effective moves this step (no-ops excluded)
  CommTotals frozen_nfi;
  fmm::FfiTotals frozen_ffi;
  CommTotals reorder_nfi;
  fmm::FfiTotals reorder_ffi;
  CommTotals lazy_nfi;
  fmm::FfiTotals lazy_ffi;
  /// Frozen engine's displaced fraction after this step (monotone-ish
  /// drift signal the advisor thresholds against).
  double frozen_displaced = 0.0;
  double lazy_displaced = 0.0;
  /// Cumulative re-sorts the lazy policy has performed through this step.
  std::size_t lazy_repartitions = 0;
};

struct DynamicsResult {
  DynamicsStudy study;
  std::vector<DynamicsStepResult> steps;
  /// Delta-stage cache accounting (zero when no cache was supplied).
  SweepStats sweep;
};

struct DynamicsOptions {
  util::ThreadPool* pool = nullptr;
  /// Optional cross-run artifact store. Each step's results are cached
  /// under SweepStage::kDelta keyed by the scenario parameters chained
  /// with the cumulative move-set hash, so re-running the same trajectory
  /// (or extending it by more steps) replays cached prefixes without
  /// touching the engines. Totals are bit-identical either way.
  ArtifactCache* cache = nullptr;
};

/// Evolve one dynamics trajectory. Deterministic in the study parameters;
/// the incremental engines are materialized lazily — a fully cached
/// replay never builds them. Invalid parameters (e.g. a torus size that
/// is not a power of 4) surface as std::invalid_argument.
DynamicsResult run_dynamics(const DynamicsStudy& study,
                            const DynamicsOptions& options = {});

}  // namespace sfc::core
