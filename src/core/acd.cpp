#include "core/acd.hpp"

#include "util/radix_sort.hpp"

namespace sfc::core {

/// Sort particles by their position on the given curve. The keys come
/// from the batched encode; the argsort is a stable LSD radix sort, so
/// equal-key particles keep their sampling order — the same tie-break as
/// the std::stable_sort this replaced, which keeps the sorted sequence
/// (and every golden number downstream) identical across standard-library
/// implementations and across the sort swap itself.
template <int D>
std::vector<Point<D>> sort_by_curve(std::vector<Point<D>> particles,
                                    unsigned level, const Curve<D>& curve) {
  const std::vector<std::uint64_t> keys = indices_of(curve, particles, level);
  std::vector<util::KeyIndex> items(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    items[i] = util::KeyIndex{keys[i], static_cast<std::uint32_t>(i)};
  }
  util::radix_sort_pairs(items);
  std::vector<Point<D>> sorted;
  sorted.reserve(particles.size());
  for (const util::KeyIndex& it : items) sorted.push_back(particles[it.index]);
  return sorted;
}

template std::vector<Point<2>> sort_by_curve<2>(std::vector<Point<2>>,
                                                unsigned, const Curve<2>&);
template std::vector<Point<3>> sort_by_curve<3>(std::vector<Point<3>>,
                                                unsigned, const Curve<3>&);

template <int D>
AcdInstance<D>::AcdInstance(std::vector<Point<D>> particles, unsigned level,
                            const Curve<D>& particle_curve)
    : level_(level),
      particles_(sort_by_curve<D>(std::move(particles), level,
                                  particle_curve)),
      grid_(particles_, level),
      tree_(particles_, level) {}

template <int D>
CommTotals AcdInstance<D>::nfi(const fmm::Partition& part,
                               const topo::Topology& net, unsigned radius,
                               fmm::NeighborNorm norm,
                               util::ThreadPool* pool) const {
  return fmm::nfi_totals<D>(particles_, grid_, part, net, radius, norm, pool);
}

template <int D>
fmm::FfiTotals AcdInstance<D>::ffi(const fmm::Partition& part,
                                   const topo::Topology& net,
                                   util::ThreadPool* pool) const {
  return fmm::ffi_totals<D>(tree_, part, net, pool);
}

template <int D>
AcdResult compute_acd(const Scenario<D>& scenario, util::ThreadPool* pool) {
  dist::SampleConfig sample;
  sample.count = scenario.particles;
  sample.level = scenario.level;
  sample.seed = scenario.seed;
  auto particles = dist::sample_particles<D>(scenario.distribution, sample);

  const auto particle_curve = make_curve<D>(scenario.particle_curve);
  const auto processor_curve = make_curve<D>(scenario.processor_curve);
  const auto net = topo::make_topology<D>(scenario.topology, scenario.procs,
                                          processor_curve.get());

  AcdInstance<D> instance(std::move(particles), scenario.level,
                          *particle_curve);
  const fmm::Partition part(instance.particles().size(), scenario.procs);

  AcdResult result;
  result.nfi = instance.nfi(part, *net, scenario.radius,
                            fmm::NeighborNorm::kChebyshev, pool);
  result.ffi = instance.ffi(part, *net, pool);
  return result;
}

template class AcdInstance<2>;
template class AcdInstance<3>;
template AcdResult compute_acd<2>(const Scenario<2>&, util::ThreadPool*);
template AcdResult compute_acd<3>(const Scenario<3>&, util::ThreadPool*);

}  // namespace sfc::core
