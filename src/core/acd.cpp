#include "core/acd.hpp"

#include <algorithm>
#include <numeric>

namespace sfc::core {
namespace {

/// Sort particles by their position on the given curve.
template <int D>
std::vector<Point<D>> sorted_by_curve(std::vector<Point<D>> particles,
                                      unsigned level, const Curve<D>& curve) {
  std::vector<std::uint64_t> keys = indices_of(curve, particles, level);
  std::vector<std::uint32_t> order(particles.size());
  std::iota(order.begin(), order.end(), 0u);
  // stable_sort: equal-key particles keep their sampling order, so the
  // sorted sequence (and every golden number downstream) is identical
  // across standard-library implementations.
  std::stable_sort(order.begin(), order.end(),
                   [&keys](std::uint32_t a, std::uint32_t b) {
                     return keys[a] < keys[b];
                   });
  std::vector<Point<D>> sorted;
  sorted.reserve(particles.size());
  for (const std::uint32_t i : order) sorted.push_back(particles[i]);
  return sorted;
}

}  // namespace

template <int D>
AcdInstance<D>::AcdInstance(std::vector<Point<D>> particles, unsigned level,
                            const Curve<D>& particle_curve)
    : level_(level),
      particles_(sorted_by_curve<D>(std::move(particles), level,
                                    particle_curve)),
      grid_(particles_, level),
      tree_(particles_, level) {}

template <int D>
CommTotals AcdInstance<D>::nfi(const fmm::Partition& part,
                               const topo::Topology& net, unsigned radius,
                               fmm::NeighborNorm norm,
                               util::ThreadPool* pool) const {
  return fmm::nfi_totals<D>(particles_, grid_, part, net, radius, norm, pool);
}

template <int D>
fmm::FfiTotals AcdInstance<D>::ffi(const fmm::Partition& part,
                                   const topo::Topology& net,
                                   util::ThreadPool* pool) const {
  return fmm::ffi_totals<D>(tree_, part, net, pool);
}

template <int D>
AcdResult compute_acd(const Scenario<D>& scenario, util::ThreadPool* pool) {
  dist::SampleConfig sample;
  sample.count = scenario.particles;
  sample.level = scenario.level;
  sample.seed = scenario.seed;
  auto particles = dist::sample_particles<D>(scenario.distribution, sample);

  const auto particle_curve = make_curve<D>(scenario.particle_curve);
  const auto processor_curve = make_curve<D>(scenario.processor_curve);
  const auto net = topo::make_topology<D>(scenario.topology, scenario.procs,
                                          processor_curve.get());

  AcdInstance<D> instance(std::move(particles), scenario.level,
                          *particle_curve);
  const fmm::Partition part(instance.particles().size(), scenario.procs);

  AcdResult result;
  result.nfi = instance.nfi(part, *net, scenario.radius,
                            fmm::NeighborNorm::kChebyshev, pool);
  result.ffi = instance.ffi(part, *net, pool);
  return result;
}

template class AcdInstance<2>;
template class AcdInstance<3>;
template AcdResult compute_acd<2>(const Scenario<2>&, util::ThreadPool*);
template AcdResult compute_acd<3>(const Scenario<3>&, util::ThreadPool*);

}  // namespace sfc::core
