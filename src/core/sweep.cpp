#include "core/sweep.hpp"

#include <atomic>
#include <bit>
#include <cstring>
#include <deque>
#include <initializer_list>
#include <optional>
#include <stdexcept>

#include "core/artifact_store.hpp"
#include "core/dynamic_acd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/radix_sort.hpp"
#include "util/rng.hpp"

namespace sfc::core {

std::string_view sweep_stage_name(SweepStage stage) noexcept {
  switch (stage) {
    case SweepStage::kSample:
      return "sample";
    case SweepStage::kCanonical:
      return "canonical";
    case SweepStage::kOrdering:
      return "ordering";
    case SweepStage::kInstance:
      return "instance";
    case SweepStage::kNfiHistogram:
      return "nfi_histogram";
    case SweepStage::kFfiHistogram:
      return "ffi_histogram";
    case SweepStage::kTopology:
      return "topology";
    case SweepStage::kDelta:
      return "delta";
    case SweepStage::kFold:
      return "fold";
  }
  return "unknown";
}

std::shared_ptr<const void> ArtifactCache::lookup(SweepStage stage,
                                                 std::uint64_t key) {
  const unsigned idx = static_cast<unsigned>(stage);
  Shard& sh = shard_of(key);
  std::unique_lock<std::mutex> lk(sh.mutex);
  const auto it = sh.map.find(key);
  if (it == sh.map.end()) {
    lk.unlock();
    misses_[idx].fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second.touch_seq =
      touch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Touch timestamps exist only for the eviction-age histogram, so the
  // clock read follows the metrics gate (same discipline as the pool).
  if (obs::metrics_enabled()) it->second.last_touch_ns = obs::now_ns();
  std::shared_ptr<const void> value = it->second.value;
  lk.unlock();
  hits_[idx].fetch_add(1, std::memory_order_relaxed);
  return value;
}

void ArtifactCache::insert(SweepStage stage, std::uint64_t key,
                           std::uint64_t raw_key,
                           std::shared_ptr<const void> value,
                           std::size_t bytes) {
  const unsigned idx = static_cast<unsigned>(stage);
  Entry fresh{std::move(value),
              bytes,
              stage,
              raw_key,
              obs::metrics_enabled() ? obs::now_ns() : 0,
              touch_seq_.fetch_add(1, std::memory_order_relaxed) + 1};
  {
    Shard& sh = shard_of(key);
    std::lock_guard<std::mutex> lk(sh.mutex);
    Entry& slot = sh.map[key];
    if (slot.value != nullptr) {
      // Same-key overwrite: retire the replaced payload's accounting.
      bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
      stage_bytes_[static_cast<unsigned>(slot.stage)].fetch_sub(
          slot.bytes, std::memory_order_relaxed);
    } else {
      entries_.fetch_add(1, std::memory_order_relaxed);
    }
    slot = std::move(fresh);
  }
  const std::size_t resident =
      bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  stage_bytes_[idx].fetch_add(bytes, std::memory_order_relaxed);
  std::size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (resident > peak &&
         !peak_bytes_.compare_exchange_weak(peak, resident,
                                            std::memory_order_relaxed)) {
  }
  evict_to_budget();
}

void ArtifactCache::evict_to_budget() {
  if (bytes_.load(std::memory_order_relaxed) <= budget_) return;
  std::lock_guard<std::mutex> ev(evict_mutex_);
  const bool metrics = obs::metrics_enabled();
  // Evict the globally least-recently-touched entry until within budget.
  // The entry just inserted carries the maximum recency stamp and is
  // never the victim while anything else is resident; an over-budget
  // artifact simply leaves the cache holding only itself.
  while (bytes_.load(std::memory_order_relaxed) > budget_ &&
         entries_.load(std::memory_order_relaxed) > 1) {
    std::uint64_t victim_seq = ~std::uint64_t{0};
    std::size_t victim_shard = 0;
    std::uint64_t victim_key = 0;
    for (std::size_t i = 0; i < kShardCount; ++i) {
      std::lock_guard<std::mutex> lk(shards_[i].mutex);
      for (const auto& [k, e] : shards_[i].map) {
        if (e.touch_seq < victim_seq) {
          victim_seq = e.touch_seq;
          victim_shard = i;
          victim_key = k;
        }
      }
    }
    if (victim_seq == ~std::uint64_t{0}) return;
    Entry victim;
    {
      Shard& sh = shards_[victim_shard];
      std::lock_guard<std::mutex> lk(sh.mutex);
      const auto it = sh.map.find(victim_key);
      // A concurrent hit may have re-warmed the candidate between the
      // scan and this lock; rescan rather than evict a hot entry.
      if (it == sh.map.end() || it->second.touch_seq != victim_seq) continue;
      victim = std::move(it->second);
      sh.map.erase(it);
    }
    entries_.fetch_sub(1, std::memory_order_relaxed);
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    stage_bytes_[static_cast<unsigned>(victim.stage)].fetch_sub(
        victim.bytes, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics && victim.last_touch_ns != 0) {
      // How long the victim sat cold: small ages mean the budget is
      // thrashing artifacts that were just used.
      obs::Registry::instance()
          .histogram("sweep.cache.eviction_age_ns")
          .record(obs::now_ns() - victim.last_touch_ns);
    }
    if (spill_) {
      spill_(victim.stage, victim.raw_key, victim.value, victim.bytes);
    }
  }
}

SweepStats ArtifactCache::stats() const {
  SweepStats out;
  for (unsigned i = 0; i < kSweepStageCount; ++i) {
    out.stages[i].hits = hits_[i].load(std::memory_order_relaxed);
    out.stages[i].misses = misses_[i].load(std::memory_order_relaxed);
    out.stage_bytes[i] = stage_bytes_[i].load(std::memory_order_relaxed);
  }
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.bytes = bytes_.load(std::memory_order_relaxed);
  out.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  return out;
}

namespace {

/// Chain a field list into one 64-bit content key.
std::uint64_t key_of(std::initializer_list<std::uint64_t> fields) {
  std::uint64_t h = 0x5fc4a51b9ce2ad17ull;
  for (const std::uint64_t v : fields) h = sweep_key(h, v);
  return h;
}

/// Publish the run's cache accounting into the metrics registry: resident
/// and peak bytes, evictions, and one hit-ratio gauge per pipeline stage.
/// Gauges are set (not accumulated), so the snapshot always describes the
/// most recent run in this process.
void publish_sweep_metrics(const SweepStats& stats) {
  if (!obs::metrics_enabled()) return;
  obs::Registry& reg = obs::Registry::instance();
  reg.gauge("sweep.cache.bytes").set(static_cast<double>(stats.bytes));
  reg.gauge("sweep.cache.peak_bytes")
      .set(static_cast<double>(stats.peak_bytes));
  reg.gauge("sweep.cache.evictions")
      .set(static_cast<double>(stats.evictions));
  for (unsigned i = 0; i < kSweepStageCount; ++i) {
    const auto stage = static_cast<SweepStage>(i);
    const StageCounters& c = stats.stage(stage);
    if (c.hits + c.misses == 0) continue;  // stage never ran in this study
    const std::string base =
        "sweep.stage." + std::string(sweep_stage_name(stage));
    reg.gauge(base + ".hit_ratio").set(c.hit_ratio());
  }
  for (unsigned i = 0; i < kSweepStageCount; ++i) {
    const auto stage = static_cast<SweepStage>(i);
    if (stats.bytes_of(stage) == 0) continue;
    reg.gauge("sweep.cache.stage." +
              std::string(sweep_stage_name(stage)) + ".bytes")
        .set(static_cast<double>(stats.bytes_of(stage)));
  }
}

/// Span names per cached stage (string literals: obs::Span requires
/// static lifetime). Indexed like SweepStats::stages.
constexpr const char* kStageSpanNames[kSweepStageCount] = {
    "sweep/sample",        "sweep/canonical",     "sweep/ordering",
    "sweep/instance",      "sweep/nfi_histogram", "sweep/ffi_histogram",
    "sweep/topology",      "sweep/delta",         "sweep/fold",
};

constexpr const char* stage_span_name(SweepStage stage) noexcept {
  return kStageSpanNames[static_cast<unsigned>(stage)];
}

/// Sentinel ranking field for topologies with a natural labeling (the
/// paper applies SFC ranking only to mesh/torus) — their artifacts are
/// shared across processor-order curves.
constexpr std::uint64_t kNoRanking = ~std::uint64_t{0};

bool topology_uses_ranking(topo::TopologyKind kind) noexcept {
  return kind == topo::TopologyKind::kMesh ||
         kind == topo::TopologyKind::kTorus;
}

using Sample2 = std::vector<Point2>;

/// Cell-sorted copy of a sample plus its occupancy grid: the
/// curve-independent spatial state shared by every NFI histogram and
/// instance build of one (distribution, trial).
struct CanonicalSample2 {
  std::vector<Point2> particles;
  fmm::OccupancyGrid<2> grid;
  CanonicalSample2(std::vector<Point2> pts, unsigned level)
      : particles(std::move(pts)), grid(particles, level) {}
  std::size_t memory_bytes() const noexcept {
    return particles.capacity() * sizeof(Point2) + grid.memory_bytes();
  }
};

/// Argsort policy: the dense scatter walks the whole 4^level slot array
/// (a memset plus a full scan), so it only pays while the grid is within
/// a small factor of the sample size; past that — and always beyond the
/// dense-bits cap — a radix argsort over just the occupied keys is the
/// linear-time path.
bool dense_argsort_pays(unsigned level, std::size_t n) noexcept {
  if (2u * level > fmm::OccupancyGrid<2>::kDenseBits) return false;
  const std::uint64_t cells = grid_size<2>(level);
  return cells <= (std::uint64_t{1} << 16) || cells <= 4 * std::uint64_t{n};
}

/// Particles of `raw` sorted by row-major packed cell id. The samplers
/// place every particle in a distinct cell, so the order is unique — a
/// linear dense scatter by cell id on compact grids, a (threaded) stable
/// radix sort of (key, index) pairs beyond. Both produce the same unique
/// permutation, so the canonical artifact is independent of the path and
/// of the thread count.
std::vector<Point2> canonical_order(const Sample2& raw, unsigned level,
                                    util::ThreadPool* pool) {
  std::vector<Point2> out;
  out.reserve(raw.size());
  if (dense_argsort_pays(level, raw.size())) {
    std::vector<std::int32_t> slot(
        static_cast<std::size_t>(grid_size<2>(level)), -1);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      slot[pack(raw[i], level)] = static_cast<std::int32_t>(i);
    }
    for (const std::int32_t i : slot) {
      if (i >= 0) out.push_back(raw[static_cast<std::size_t>(i)]);
    }
    return out;
  }
  std::vector<util::KeyIndex> items(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    items[i] = util::KeyIndex{pack(raw[i], level),
                              static_cast<std::uint32_t>(i)};
  }
  {
    const obs::Span span("sweep/canonical/radix");
    util::radix_sort_pairs(items, pool);
  }
  for (const util::KeyIndex& it : items) out.push_back(raw[it.index]);
  return out;
}

/// Rank table of one curve over a canonical sample: rank[i] is the
/// position canonical particle i occupies in the curve-sorted order.
struct Ordering2 {
  std::vector<std::uint32_t> rank;
  std::size_t memory_bytes() const noexcept {
    return rank.capacity() * sizeof(std::uint32_t);
  }
};

/// Curve indices are a bijection between cells and [0, 4^level), and the
/// particles occupy distinct cells, so the argsort is unique and equals
/// the stable_sort the sorting AcdInstance constructor performs. Keys
/// come from the batched encode (one virtual call for the whole sample);
/// the argsort is a dense scatter + scan on compact grids and a stable
/// LSD radix sort of (key, index) pairs beyond. Serial radix on purpose:
/// ordering builds already fan out across curves on the pool, and a
/// nested threaded sort would fight them for workers.
Ordering2 make_ordering(const std::vector<Point2>& canonical, unsigned level,
                        const Curve<2>& curve) {
  const std::vector<std::uint64_t> keys = indices_of(curve, canonical, level);
  Ordering2 out;
  out.rank.resize(canonical.size());
  if (dense_argsort_pays(level, canonical.size())) {
    std::vector<std::int32_t> slot(
        static_cast<std::size_t>(grid_size<2>(level)), -1);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      slot[keys[i]] = static_cast<std::int32_t>(i);
    }
    std::uint32_t next = 0;
    for (const std::int32_t i : slot) {
      if (i >= 0) out.rank[static_cast<std::size_t>(i)] = next++;
    }
    return out;
  }
  std::vector<util::KeyIndex> items(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    items[i] = util::KeyIndex{keys[i], static_cast<std::uint32_t>(i)};
  }
  {
    const obs::Span span("sweep/order/radix");
    util::radix_sort_pairs(items);
  }
  for (std::uint32_t k = 0; k < items.size(); ++k) {
    out.rank[items[k].index] = k;
  }
  return out;
}

// ------------------------------------------------------------- cell graph

/// One node of the study's task graph: a stage artifact to materialize,
/// either by computing it or by deserializing a store payload validated
/// and pinned at plan time. The coordinator creates every node during
/// the plan walk; execution only reads the graph shape and writes
/// outputs, so the only cross-thread state is `pending` and `output`
/// (ordered by the dependency hand-off).
struct PlanNode {
  SweepStage stage = SweepStage::kSample;
  std::uint64_t raw_key = 0;  ///< un-mixed stage key (the store address)
  /// Materializer: sets output and bytes. Runs exactly once, on
  /// whichever thread the scheduler hands the node to.
  std::function<void(PlanNode&)> build;
  std::shared_ptr<const void> output;
  std::size_t bytes = 0;
  bool from_store = false;
  ArtifactStore::Mapping mapping;  ///< pinned store payload (load nodes)
  std::vector<PlanNode*> consumers;
  std::atomic<unsigned> pending{0};  ///< unfinished producers
};

template <typename T>
std::shared_ptr<const T> out_as(const PlanNode* node) {
  return std::static_pointer_cast<const T>(node->output);
}

/// One entry of the deterministic accounting replay: the exact cache
/// operation the serial engine would have performed at this point of the
/// grid walk.
struct CacheOp {
  enum Kind { kFind, kPut, kCountFold };
  Kind kind = kFind;
  SweepStage stage = SweepStage::kSample;
  std::uint64_t raw_key = 0;
  PlanNode* node = nullptr;  ///< kPut: the materialized artifact
};

/// One cell of the drain pass (results, statistics, progress) in grid
/// order.
struct DrainJob {
  std::size_t index = 0;
  StudyCellRef ref;
  PlanNode* fold = nullptr;
};

/// Output of a fold node: the cell's ACD contributions plus the fold's
/// span-clock wall time for the progress sink.
struct FoldOut {
  double nfi_acd = 0.0;
  double ffi_acd = 0.0;
  bool has_nfi = false;
  bool has_ffi = false;
  double ms = 0.0;
};

/// Stages with an on-disk representation. kSample is superseded by
/// kCanonical (same content, already cell-sorted); kTopology is cheap to
/// rebuild and validation must stay on the coordinator; kDelta artifacts
/// are keyed per trajectory prefix and stay in-memory. kFold persists
/// its two doubles: tiny payloads, but at warm-start time the folds are
/// the one remaining recompute, so skipping them is what turns a warm
/// rerun into pure deserialization.
bool store_persistable(SweepStage stage) noexcept {
  switch (stage) {
    case SweepStage::kCanonical:
    case SweepStage::kOrdering:
    case SweepStage::kInstance:
    case SweepStage::kNfiHistogram:
    case SweepStage::kFfiHistogram:
    case SweepStage::kFold:
      return true;
    default:
      return false;
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t buf[8];
  std::memcpy(buf, &v, sizeof buf);
  out.insert(out.end(), buf, buf + sizeof buf);
}

bool read_u64(const std::uint8_t* data, std::size_t size, std::size_t& offset,
              std::uint64_t& v) {
  if (offset > size || size - offset < 8) return false;
  std::memcpy(&v, data + offset, 8);
  offset += 8;
  return true;
}

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + n);
}

/// Store payload of one persistable artifact (host-endian; provenance in
/// the store header ties files to one build, so portability is not a
/// goal). Canonical and instance payloads are the particle arrays — the
/// occupancy grid and cell tree rebuild deterministically from them.
std::vector<std::uint8_t> serialize_artifact(SweepStage stage,
                                             const void* value) {
  std::vector<std::uint8_t> out;
  switch (stage) {
    case SweepStage::kCanonical: {
      const auto* canon = static_cast<const CanonicalSample2*>(value);
      append_u64(out, canon->particles.size());
      append_bytes(out, canon->particles.data(),
                   canon->particles.size() * sizeof(Point2));
      break;
    }
    case SweepStage::kOrdering: {
      const auto* ord = static_cast<const Ordering2*>(value);
      append_u64(out, ord->rank.size());
      append_bytes(out, ord->rank.data(),
                   ord->rank.size() * sizeof(std::uint32_t));
      break;
    }
    case SweepStage::kInstance: {
      const auto* inst = static_cast<const AcdInstance<2>*>(value);
      append_u64(out, inst->particles().size());
      append_bytes(out, inst->particles().data(),
                   inst->particles().size() * sizeof(Point2));
      break;
    }
    case SweepStage::kNfiHistogram:
      rank_pairs_serialize(*static_cast<const RankPairAccumulator*>(value),
                           out);
      break;
    case SweepStage::kFfiHistogram:
      fmm::ffi_histograms_serialize(
          *static_cast<const fmm::FfiHistograms*>(value), out);
      break;
    case SweepStage::kFold: {
      // The ACD contributions as exact bit patterns; the fold's wall
      // time is a property of the run, not the artifact, and is
      // re-stamped with the load time on the way back in.
      const auto* fold = static_cast<const FoldOut*>(value);
      append_u64(out, (fold->has_nfi ? 1ull : 0ull) |
                          (fold->has_ffi ? 2ull : 0ull));
      std::uint64_t bits = 0;
      std::memcpy(&bits, &fold->nfi_acd, sizeof bits);
      append_u64(out, bits);
      std::memcpy(&bits, &fold->ffi_acd, sizeof bits);
      append_u64(out, bits);
      break;
    }
    default:
      break;
  }
  return out;
}

[[noreturn]] void malformed_store_payload() {
  // Unreachable for store-read payloads (the header checksum validated
  // the exact bytes the producer wrote); reaching it means a producer
  // bug, which must not be silently recomputed around.
  throw std::runtime_error("artifact store: malformed payload");
}

/// Deserializer for a store-loaded node of `stage`. The returned builder
/// reconstructs the artifact from the pinned mapping and releases the
/// mapping immediately after.
std::function<void(PlanNode&)> store_load_build(SweepStage stage,
                                                unsigned level) {
  switch (stage) {
    case SweepStage::kCanonical:
      return [level](PlanNode& n) {
        const obs::Span span("sweep/store/load");
        std::size_t off = 0;
        std::uint64_t count = 0;
        if (!read_u64(n.mapping.data(), n.mapping.size(), off, count) ||
            n.mapping.size() - off != count * sizeof(Point2)) {
          malformed_store_payload();
        }
        std::vector<Point2> pts(count);
        std::memcpy(pts.data(), n.mapping.data() + off,
                    count * sizeof(Point2));
        auto canon =
            std::make_shared<const CanonicalSample2>(std::move(pts), level);
        n.bytes = canon->memory_bytes();
        n.output = std::move(canon);
        n.mapping = ArtifactStore::Mapping();
      };
    case SweepStage::kOrdering:
      return [](PlanNode& n) {
        const obs::Span span("sweep/store/load");
        std::size_t off = 0;
        std::uint64_t count = 0;
        if (!read_u64(n.mapping.data(), n.mapping.size(), off, count) ||
            n.mapping.size() - off != count * sizeof(std::uint32_t)) {
          malformed_store_payload();
        }
        Ordering2 ord;
        ord.rank.resize(count);
        std::memcpy(ord.rank.data(), n.mapping.data() + off,
                    count * sizeof(std::uint32_t));
        auto built = std::make_shared<const Ordering2>(std::move(ord));
        n.bytes = built->memory_bytes();
        n.output = std::move(built);
        n.mapping = ArtifactStore::Mapping();
      };
    case SweepStage::kInstance:
      return [level](PlanNode& n) {
        const obs::Span span("sweep/store/load");
        std::size_t off = 0;
        std::uint64_t count = 0;
        if (!read_u64(n.mapping.data(), n.mapping.size(), off, count) ||
            n.mapping.size() - off != count * sizeof(Point2)) {
          malformed_store_payload();
        }
        std::vector<Point2> pts(count);
        std::memcpy(pts.data(), n.mapping.data() + off,
                    count * sizeof(Point2));
        auto built = std::make_shared<const AcdInstance<2>>(
            AcdInstance<2>::from_sorted(std::move(pts), level));
        n.bytes = built->memory_bytes();
        n.output = std::move(built);
        n.mapping = ArtifactStore::Mapping();
      };
    case SweepStage::kNfiHistogram:
      return [](PlanNode& n) {
        const obs::Span span("sweep/store/load");
        std::size_t off = 0;
        auto acc =
            rank_pairs_deserialize(n.mapping.data(), n.mapping.size(), off);
        if (!acc || off != n.mapping.size()) malformed_store_payload();
        auto built =
            std::make_shared<const RankPairAccumulator>(std::move(*acc));
        n.bytes = built->memory_bytes();
        n.output = std::move(built);
        n.mapping = ArtifactStore::Mapping();
      };
    case SweepStage::kFfiHistogram:
      return [](PlanNode& n) {
        const obs::Span span("sweep/store/load");
        std::size_t off = 0;
        auto hist = fmm::ffi_histograms_deserialize(n.mapping.data(),
                                                    n.mapping.size(), off);
        if (!hist || off != n.mapping.size()) malformed_store_payload();
        auto built =
            std::make_shared<const fmm::FfiHistograms>(std::move(*hist));
        n.bytes = built->memory_bytes();
        n.output = std::move(built);
        n.mapping = ArtifactStore::Mapping();
      };
    case SweepStage::kFold:
      return [](PlanNode& n) {
        const std::uint64_t t0 = obs::now_ns();
        const obs::Span span("sweep/store/load");
        std::size_t off = 0;
        std::uint64_t flags = 0, nfi_bits = 0, ffi_bits = 0;
        if (!read_u64(n.mapping.data(), n.mapping.size(), off, flags) ||
            !read_u64(n.mapping.data(), n.mapping.size(), off, nfi_bits) ||
            !read_u64(n.mapping.data(), n.mapping.size(), off, ffi_bits) ||
            off != n.mapping.size() || (flags & ~3ull) != 0) {
          malformed_store_payload();
        }
        auto out = std::make_shared<FoldOut>();
        out->has_nfi = (flags & 1ull) != 0;
        out->has_ffi = (flags & 2ull) != 0;
        std::memcpy(&out->nfi_acd, &nfi_bits, sizeof nfi_bits);
        std::memcpy(&out->ffi_acd, &ffi_bits, sizeof ffi_bits);
        out->ms = static_cast<double>(obs::now_ns() - t0) / 1e6;
        n.bytes = sizeof(FoldOut);
        n.output = std::move(out);
        n.mapping = ArtifactStore::Mapping();
      };
    default:
      return {};
  }
}

/// The artifact-reusing engine path: plan the whole study as a task
/// graph on the coordinator (grid order, exactly the serial walk), run
/// every node on the pool with dependency counters, then replay the
/// cache accounting and drain results serially — so independent cells
/// execute concurrently end-to-end while results, statistics, progress
/// order, and SweepStats stay bit-identical to the serial engine.
StudyResult run_reuse(const Study& s, const SweepOptions& o) {
  StudyResult result;
  result.study = s;
  result.cells.assign(s.cell_count(), AcdCell{});
  result.stats.assign(s.cell_count(), AcdCellStats{});

  ArtifactCache cache(o.cache_bytes);
  ArtifactStore* store = o.store;
  util::ThreadPool* pool = o.pool;
  const bool parallel = pool != nullptr && pool->size() > 1;
  const double trials = s.trials;
  const std::size_t nrc = s.processor_order_count();

  // Ordering-stage throughput accounting for the
  // sweep.stage.order.ns_per_particle gauge: every cache-miss ordering
  // build adds its span-clock wall time and particle count.
  std::atomic<std::uint64_t> order_build_ns{0};
  std::atomic<std::uint64_t> order_build_particles{0};

  // ---- plan -------------------------------------------------------
  // One pass over the study grid on the coordinator, in the serial
  // engine's exact order. Every artifact becomes a node (deduped by
  // stage key); every cache operation the serial engine would perform
  // is recorded in `ops` at its exact site, to be replayed after
  // execution — so the SweepStats counters are deterministic whatever
  // the scheduling.
  std::deque<PlanNode> nodes;  // deque: node addresses must be stable
  std::vector<CacheOp> ops;
  std::vector<DrainJob> drain;
  std::array<std::unordered_map<std::uint64_t, PlanNode*>, kSweepStageCount>
      planned;
  auto planned_of =
      [&planned](SweepStage stage) -> std::unordered_map<std::uint64_t,
                                                         PlanNode*>& {
    return planned[static_cast<unsigned>(stage)];
  };
  auto make_node = [&nodes](SweepStage stage,
                            std::uint64_t raw_key) -> PlanNode* {
    PlanNode& n = nodes.emplace_back();
    n.stage = stage;
    n.raw_key = raw_key;
    return &n;
  };
  auto link = [](PlanNode* node, std::initializer_list<PlanNode*> deps) {
    unsigned count = 0;
    for (PlanNode* dep : deps) {
      if (dep == nullptr || dep->output != nullptr) continue;
      dep->consumers.push_back(node);
      ++count;
    }
    node->pending.store(count, std::memory_order_relaxed);
  };
  auto find_op = [&ops](SweepStage stage, std::uint64_t key) {
    ops.push_back(CacheOp{CacheOp::kFind, stage, key, nullptr});
  };
  auto put_op = [&ops](PlanNode* node) {
    ops.push_back(CacheOp{CacheOp::kPut, node->stage, node->raw_key, node});
  };
  // Store probe for a planned miss: a validated payload turns the node
  // into a cheap deserialize; the mapping pins the bytes until then.
  auto probe_store = [store, level = s.level](PlanNode* node) -> bool {
    if (store == nullptr || !store_persistable(node->stage)) return false;
    auto mapping = store->load(node->stage, node->raw_key);
    if (!mapping) return false;
    node->mapping = std::move(*mapping);
    node->from_store = true;
    node->build = store_load_build(node->stage, level);
    return true;
  };

  for (std::size_t d = 0; d < s.distributions.size(); ++d) {
    for (unsigned t = 0; t < s.trials; ++t) {
      const std::uint64_t sample_key =
          key_of({static_cast<std::uint64_t>(s.distributions[d]), s.particles,
                  s.level, s.seed, t});

      // Canonical spatial state for this (distribution, trial): the
      // cell-sorted sample and its occupancy grid, which every curve of
      // the row shares. The serial engine's canonical builder starts
      // with the sample lookup, so the sample ops nest inside the
      // canonical miss.
      find_op(SweepStage::kCanonical, sample_key);
      PlanNode* canonical = nullptr;
      if (const auto it = planned_of(SweepStage::kCanonical).find(sample_key);
          it != planned_of(SweepStage::kCanonical).end()) {
        canonical = it->second;
      } else {
        canonical = make_node(SweepStage::kCanonical, sample_key);
        if (!probe_store(canonical)) {
          find_op(SweepStage::kSample, sample_key);
          PlanNode* sample = nullptr;
          if (const auto sit = planned_of(SweepStage::kSample).find(sample_key);
              sit != planned_of(SweepStage::kSample).end()) {
            sample = sit->second;
          } else {
            sample = make_node(SweepStage::kSample, sample_key);
            sample->build = [dk = s.distributions[d], count = s.particles,
                             level = s.level,
                             seed = util::substream_seed(s.seed, t)](
                                PlanNode& n) {
              const obs::Span span(stage_span_name(SweepStage::kSample));
              dist::SampleConfig cfg;
              cfg.count = count;
              cfg.level = level;
              cfg.seed = seed;
              auto pts = std::make_shared<const Sample2>(
                  dist::sample_particles<2>(dk, cfg));
              n.bytes = pts->capacity() * sizeof(Point2);
              n.output = std::move(pts);
            };
            put_op(sample);
            planned_of(SweepStage::kSample).emplace(sample_key, sample);
          }
          canonical->build = [sample, level = s.level, pool](PlanNode& n) {
            const obs::Span span(stage_span_name(SweepStage::kCanonical));
            const auto raw = out_as<Sample2>(sample);
            auto canon = std::make_shared<const CanonicalSample2>(
                canonical_order(*raw, level, pool), level);
            n.bytes = canon->memory_bytes();
            n.output = std::move(canon);
          };
          link(canonical, {sample});
        }
        put_op(canonical);
        planned_of(SweepStage::kCanonical).emplace(sample_key, canonical);
      }

      // Ordering (and, for FFI studies, instance) sites: lookups in pc
      // order, then the misses in pc order — the serial engine's
      // prefetch shape, so the counter sequence is identical.
      const std::size_t npc = s.particle_curves.size();
      std::vector<PlanNode*> orderings(npc, nullptr);
      {
        std::vector<std::size_t> missed;
        for (std::size_t pc = 0; pc < npc; ++pc) {
          const std::uint64_t order_key = sweep_key(
              sample_key, static_cast<std::uint64_t>(s.particle_curves[pc]));
          find_op(SweepStage::kOrdering, order_key);
          if (const auto it = planned_of(SweepStage::kOrdering).find(order_key);
              it != planned_of(SweepStage::kOrdering).end()) {
            orderings[pc] = it->second;
          } else {
            missed.push_back(pc);
          }
        }
        for (const std::size_t pc : missed) {
          const CurveKind pkind = s.particle_curves[pc];
          const std::uint64_t order_key =
              sweep_key(sample_key, static_cast<std::uint64_t>(pkind));
          if (const auto it = planned_of(SweepStage::kOrdering).find(order_key);
              it != planned_of(SweepStage::kOrdering).end()) {
            // Duplicate curve in the study row: one build, two puts —
            // the same artifact the serial engine would re-put.
            orderings[pc] = it->second;
            put_op(it->second);
            continue;
          }
          PlanNode* node = make_node(SweepStage::kOrdering, order_key);
          if (!probe_store(node)) {
            node->build = [canonical, pkind, level = s.level, &order_build_ns,
                           &order_build_particles](PlanNode& n) {
              const obs::Span span(stage_span_name(SweepStage::kOrdering));
              const std::uint64_t t0 = obs::now_ns();
              const auto canon = out_as<CanonicalSample2>(canonical);
              const auto curve = make_curve<2>(pkind);
              auto built = std::make_shared<const Ordering2>(
                  make_ordering(canon->particles, level, *curve));
              order_build_ns.fetch_add(obs::now_ns() - t0,
                                       std::memory_order_relaxed);
              order_build_particles.fetch_add(canon->particles.size(),
                                              std::memory_order_relaxed);
              n.bytes = built->memory_bytes();
              n.output = std::move(built);
            };
            link(node, {canonical});
          }
          put_op(node);
          planned_of(SweepStage::kOrdering).emplace(order_key, node);
          orderings[pc] = node;
        }
      }

      // The FFI tree walk is the one consumer that needs the particles
      // physically in curve order; scatter them through the rank table
      // instead of re-sorting (the sequence is identical). Near-field-
      // only studies never build an instance at all.
      std::vector<PlanNode*> instances(s.far_field ? npc : 0, nullptr);
      if (s.far_field) {
        std::vector<std::size_t> missed;
        for (std::size_t pc = 0; pc < npc; ++pc) {
          const std::uint64_t instance_key = sweep_key(
              sample_key, static_cast<std::uint64_t>(s.particle_curves[pc]));
          find_op(SweepStage::kInstance, instance_key);
          if (const auto it =
                  planned_of(SweepStage::kInstance).find(instance_key);
              it != planned_of(SweepStage::kInstance).end()) {
            instances[pc] = it->second;
          } else {
            missed.push_back(pc);
          }
        }
        for (const std::size_t pc : missed) {
          const std::uint64_t instance_key = sweep_key(
              sample_key, static_cast<std::uint64_t>(s.particle_curves[pc]));
          if (const auto it =
                  planned_of(SweepStage::kInstance).find(instance_key);
              it != planned_of(SweepStage::kInstance).end()) {
            instances[pc] = it->second;
            put_op(it->second);
            continue;
          }
          PlanNode* node = make_node(SweepStage::kInstance, instance_key);
          if (!probe_store(node)) {
            node->build = [canonical, ordering = orderings[pc],
                           level = s.level](PlanNode& n) {
              const obs::Span span(stage_span_name(SweepStage::kInstance));
              const auto canon = out_as<CanonicalSample2>(canonical);
              const auto ord = out_as<Ordering2>(ordering);
              std::vector<Point2> sorted(canon->particles.size());
              for (std::size_t i = 0; i < sorted.size(); ++i) {
                sorted[ord->rank[i]] = canon->particles[i];
              }
              auto built = std::make_shared<const AcdInstance<2>>(
                  AcdInstance<2>::from_sorted(std::move(sorted), level));
              n.bytes = built->memory_bytes();
              n.output = std::move(built);
            };
            link(node, {canonical, orderings[pc]});
          }
          put_op(node);
          planned_of(SweepStage::kInstance).emplace(instance_key, node);
          instances[pc] = node;
        }
      }

      for (std::size_t pc = 0; pc < npc; ++pc) {
        const CurveKind pkind = s.particle_curves[pc];
        const std::uint64_t instance_key =
            sweep_key(sample_key, static_cast<std::uint64_t>(pkind));

        for (std::size_t pi = 0; pi < s.proc_counts.size(); ++pi) {
          const topo::Rank procs = s.proc_counts[pi];

          // Plan this group's fold inputs (cache ops stay in the serial
          // prefetch order; make_topology's argument validation throws
          // here on the coordinator, never inside a pool task).
          std::vector<DrainJob> group;
          group.reserve(nrc * s.topologies.size());
          for (std::size_t rc = 0; rc < nrc; ++rc) {
            const std::size_t rc_index = s.paired_curves() ? pc : rc;
            const CurveKind rkind =
                s.paired_curves() ? pkind : s.processor_curves[rc];
            for (std::size_t ti = 0; ti < s.topologies.size(); ++ti) {
              const topo::TopologyKind tkind = s.topologies[ti];
              // The planned fold strategy is part of the cache identity:
              // a strategy change (new kernel, budget change) must not
              // resurrect payloads sized for the old plan.
              const topo::FoldStrategy planned_fold =
                  topo::planned_fold_strategy(tkind, procs);
              const std::uint64_t topo_key =
                  key_of({static_cast<std::uint64_t>(tkind), procs,
                          topology_uses_ranking(tkind)
                              ? static_cast<std::uint64_t>(rkind)
                              : kNoRanking,
                          static_cast<std::uint64_t>(planned_fold)});
              find_op(SweepStage::kTopology, topo_key);
              PlanNode* topo_node = nullptr;
              if (const auto it = planned_of(SweepStage::kTopology)
                                      .find(topo_key);
                  it != planned_of(SweepStage::kTopology).end()) {
                topo_node = it->second;
              } else {
                // Topologies are built eagerly at plan time: they are
                // cheap, their validation must throw on the coordinator,
                // and pre-materializing them keeps them out of the
                // execution graph entirely.
                topo_node = make_node(SweepStage::kTopology, topo_key);
                const obs::Span span(stage_span_name(SweepStage::kTopology));
                const auto ranking = make_curve<2>(rkind);
                std::shared_ptr<const topo::Topology> net =
                    topo::make_topology<2>(tkind, procs, ranking.get());
                // Payload estimate: per-rank coordinates plus the hop
                // table only a dense-strategy fold would materialize
                // (factorized kernels never touch p×p state).
                std::size_t bytes =
                    static_cast<std::size_t>(procs) * 2 * sizeof(topo::Rank);
                if (planned_fold == topo::FoldStrategy::kDense) {
                  bytes += static_cast<std::size_t>(procs) * procs *
                           sizeof(std::uint32_t);
                }
                topo_node->bytes = bytes;
                topo_node->output = std::move(net);
                put_op(topo_node);
                planned_of(SweepStage::kTopology).emplace(topo_key, topo_node);
              }
              const auto net = out_as<topo::Topology>(topo_node);

              PlanNode* nfi_node = nullptr;
              if (s.near_field) {
                const std::uint64_t nfi_key =
                    key_of({instance_key, procs, s.radius,
                            static_cast<std::uint64_t>(s.norm)});
                find_op(SweepStage::kNfiHistogram, nfi_key);
                if (const auto it = planned_of(SweepStage::kNfiHistogram)
                                        .find(nfi_key);
                    it != planned_of(SweepStage::kNfiHistogram).end()) {
                  nfi_node = it->second;
                } else {
                  nfi_node = make_node(SweepStage::kNfiHistogram, nfi_key);
                  if (!probe_store(nfi_node)) {
                    nfi_node->build = [canonical, ordering = orderings[pc],
                                       procs, radius = s.radius, norm = s.norm,
                                       pool](PlanNode& n) {
                      const obs::Span span(
                          stage_span_name(SweepStage::kNfiHistogram));
                      const auto canon = out_as<CanonicalSample2>(canonical);
                      const auto ord = out_as<Ordering2>(ordering);
                      // Owner of canonical particle i: the partition
                      // chunk its curve rank falls in.
                      const fmm::Partition part(canon->particles.size(),
                                                procs);
                      const std::vector<topo::Rank> by_rank =
                          part.owner_table();
                      std::vector<topo::Rank> owners(
                          canon->particles.size());
                      for (std::size_t i = 0; i < owners.size(); ++i) {
                        owners[i] = by_rank[ord->rank[i]];
                      }
                      auto hist = std::make_shared<const RankPairAccumulator>(
                          fmm::nfi_histogram_owners<2>(
                              canon->particles, canon->grid, owners, procs,
                              radius, norm, pool));
                      hist->seal();
                      n.bytes = hist->memory_bytes();
                      n.output = std::move(hist);
                    };
                    link(nfi_node, {canonical, orderings[pc]});
                  }
                  put_op(nfi_node);
                  planned_of(SweepStage::kNfiHistogram)
                      .emplace(nfi_key, nfi_node);
                }
              }

              PlanNode* ffi_node = nullptr;
              if (s.far_field) {
                const std::uint64_t ffi_key = key_of({instance_key, procs});
                find_op(SweepStage::kFfiHistogram, ffi_key);
                if (const auto it = planned_of(SweepStage::kFfiHistogram)
                                        .find(ffi_key);
                    it != planned_of(SweepStage::kFfiHistogram).end()) {
                  ffi_node = it->second;
                } else {
                  ffi_node = make_node(SweepStage::kFfiHistogram, ffi_key);
                  if (!probe_store(ffi_node)) {
                    ffi_node->build = [instance = instances[pc], procs,
                                       pool](PlanNode& n) {
                      const obs::Span span(
                          stage_span_name(SweepStage::kFfiHistogram));
                      const auto inst = out_as<AcdInstance<2>>(instance);
                      const fmm::Partition part(inst->particles().size(),
                                                procs);
                      auto hist = std::make_shared<const fmm::FfiHistograms>(
                          fmm::ffi_histograms<2>(inst->tree(), part, pool));
                      hist->interpolation.seal();
                      hist->interaction.seal();
                      n.bytes = hist->memory_bytes();
                      n.output = std::move(hist);
                    };
                    link(ffi_node, {instances[pc]});
                  }
                  put_op(ffi_node);
                  planned_of(SweepStage::kFfiHistogram)
                      .emplace(ffi_key, ffi_node);
                }
              }

              // The fold: one per cell, never memory-cached or deduped
              // in-plan, but keyed by its inputs (histograms ⊕ topology)
              // so a warm store answers it — at warm-start the folds are
              // the only remaining compute. It holds the topology
              // directly (pre-materialized above), so its only graph
              // dependencies are the histograms.
              const std::uint64_t fold_key =
                  key_of({nfi_node != nullptr ? nfi_node->raw_key : 0,
                          ffi_node != nullptr ? ffi_node->raw_key : 0,
                          topo_key});
              PlanNode* fold = make_node(SweepStage::kFold, fold_key);
              if (probe_store(fold)) {
                group.push_back(
                    DrainJob{result.index(d, pc, pi, rc, ti),
                             StudyCellRef{d, t, pc, pi, rc_index, ti}, fold});
                continue;
              }
              fold->build = [net, nfi_node, ffi_node](PlanNode& n) {
                const std::uint64_t t0 = obs::now_ns();
                const obs::Span span(stage_span_name(SweepStage::kFold));
                auto out = std::make_shared<FoldOut>();
                if (nfi_node != nullptr) {
                  const auto hist = out_as<RankPairAccumulator>(nfi_node);
                  out->nfi_acd = net->fold(hist->view()).acd();
                  out->has_nfi = true;
                }
                if (ffi_node != nullptr) {
                  const auto hist = out_as<fmm::FfiHistograms>(ffi_node);
                  out->ffi_acd = fmm::ffi_fold(*hist, *net).total().acd();
                  out->has_ffi = true;
                }
                out->ms = static_cast<double>(obs::now_ns() - t0) / 1e6;
                n.bytes = sizeof(FoldOut);
                n.output = std::move(out);
              };
              link(fold, {nfi_node, ffi_node});
              group.push_back(DrainJob{result.index(d, pc, pi, rc, ti),
                                       StudyCellRef{d, t, pc, pi, rc_index, ti},
                                       fold});
            }
          }

          // The serial engine counts the fold traffic after the group's
          // prefetch, one tick per model per cell.
          for (const DrainJob& job : group) {
            if (s.near_field) {
              ops.push_back(CacheOp{CacheOp::kCountFold, SweepStage::kFold, 0,
                                    nullptr});
            }
            if (s.far_field) {
              ops.push_back(CacheOp{CacheOp::kCountFold, SweepStage::kFold, 0,
                                    nullptr});
            }
            drain.push_back(job);
          }
        }
      }
    }
  }

  // ---- execute ----------------------------------------------------
  // Everything not pre-materialized at plan time runs here. Both paths
  // seed the ready roots and let completions cascade through the
  // dependency counters; the parallel path additionally has the
  // coordinator help drain the pool's queue.
  std::vector<PlanNode*> runnable;
  runnable.reserve(nodes.size());
  for (PlanNode& n : nodes) {
    if (n.output == nullptr) runnable.push_back(&n);
  }
  if (!parallel) {
    std::vector<PlanNode*> ready;
    ready.reserve(runnable.size());
    for (PlanNode* n : runnable) {
      if (n->pending.load(std::memory_order_relaxed) == 0) {
        ready.push_back(n);
      }
    }
    for (std::size_t i = 0; i < ready.size(); ++i) {
      PlanNode* n = ready[i];
      n->build(*n);
      for (PlanNode* c : n->consumers) {
        if (c->pending.fetch_sub(1, std::memory_order_relaxed) == 1) {
          ready.push_back(c);
        }
      }
    }
  } else if (!runnable.empty()) {
    struct Exec {
      util::ThreadPool* pool;
      util::Latch* done;
      void run(PlanNode* n) const {
        n->build(*n);
        for (PlanNode* c : n->consumers) {
          // acq_rel: the consumer's build must observe every producer
          // output, whichever thread decrements last.
          if (c->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            pool->submit([this, c] { run(c); });
          }
        }
        done->count_down();
      }
    };
    util::Latch done(runnable.size());
    const Exec exec{pool, &done};
    // Snapshot the roots before submitting any of them: once a root
    // runs, its completions decrement consumers toward zero, and a
    // live scan would re-submit those as roots.
    std::vector<PlanNode*> roots;
    for (PlanNode* n : runnable) {
      if (n->pending.load(std::memory_order_relaxed) == 0) {
        roots.push_back(n);
      }
    }
    for (PlanNode* n : roots) {
      pool->submit([&exec, n] { exec.run(n); });
    }
    done.wait_and_help(util::can_help(*pool) ? pool : nullptr);
  }

  // ---- account ----------------------------------------------------
  // Replay the recorded cache traffic through the real cache on this
  // one thread: hit/miss/eviction counters, byte accounting, and the
  // spill stream are exactly what the serial engine would have
  // produced, independent of how execution was scheduled.
  if (store != nullptr) {
    cache.set_spill_hook([store](SweepStage stage, std::uint64_t raw_key,
                                 const std::shared_ptr<const void>& value,
                                 std::size_t) {
      if (!store_persistable(stage) || value == nullptr) return;
      if (store->contains(stage, raw_key)) return;
      const std::vector<std::uint8_t> payload =
          serialize_artifact(stage, value.get());
      store->save(stage, raw_key, payload.data(), payload.size());
    });
  }
  for (const CacheOp& op : ops) {
    switch (op.kind) {
      case CacheOp::kFind:
        (void)cache.find<void>(op.stage, op.raw_key);
        break;
      case CacheOp::kPut:
        cache.put<void>(op.stage, op.raw_key, op.node->output,
                        op.node->bytes);
        break;
      case CacheOp::kCountFold:
        cache.count_fold();
        break;
    }
  }

  // Flush: every persistable artifact this run computed lands on disk
  // (spilled evictions and store-loaded nodes are already there), so a
  // warm rerun deserializes instead of recomputing.
  if (store != nullptr) {
    for (const PlanNode& n : nodes) {
      if (!store_persistable(n.stage) || n.from_store || !n.output) continue;
      if (store->contains(n.stage, n.raw_key)) continue;
      const std::vector<std::uint8_t> payload =
          serialize_artifact(n.stage, n.output.get());
      store->save(n.stage, n.raw_key, payload.data(), payload.size());
    }
    store->publish_metrics();
  }

  // ---- drain ------------------------------------------------------
  // Results, statistics, and progress callbacks in plan (= grid) order:
  // the float accumulation order matches the serial engine exactly, so
  // cells are bit-identical whatever the thread count.
  for (const DrainJob& job : drain) {
    const auto out = out_as<FoldOut>(job.fold);
    if (out->has_nfi) {
      result.cells[job.index].nfi_acd += out->nfi_acd / trials;
      result.stats[job.index].nfi.add(out->nfi_acd);
    }
    if (out->has_ffi) {
      result.cells[job.index].ffi_acd += out->ffi_acd / trials;
      result.stats[job.index].ffi.add(out->ffi_acd);
    }
    if (o.progress) o.progress(job.ref, out->ms);
  }

  result.sweep = cache.stats();
  publish_sweep_metrics(result.sweep);
  if (obs::metrics_enabled() && order_build_particles.load() > 0) {
    obs::Registry::instance()
        .gauge("sweep.stage.order.ns_per_particle")
        .set(static_cast<double>(order_build_ns.load()) /
             static_cast<double>(order_build_particles.load()));
    // Which sort path the ordering stage's record counts selected:
    // mirrors the calibrated (or overridden) threaded-radix cutoff next
    // to the per-particle cost it gates.
    obs::Registry::instance()
        .gauge("sweep.stage.order.radix_threshold")
        .set(static_cast<double>(util::detail::threaded_radix_min()));
  }
  return result;
}

/// The from-scratch path: the legacy per-cell pipeline in the same grid
/// order — the equivalence oracle and the speedup baseline.
StudyResult run_direct(const Study& s, const SweepOptions& o) {
  StudyResult result;
  result.study = s;
  result.cells.assign(s.cell_count(), AcdCell{});
  result.stats.assign(s.cell_count(), AcdCellStats{});

  util::ThreadPool* pool = o.pool;
  const double trials = s.trials;
  const std::size_t nrc = s.processor_order_count();

  for (std::size_t d = 0; d < s.distributions.size(); ++d) {
    for (unsigned t = 0; t < s.trials; ++t) {
      dist::SampleConfig cfg;
      cfg.count = s.particles;
      cfg.level = s.level;
      cfg.seed = util::substream_seed(s.seed, t);
      const auto particles =
          dist::sample_particles<2>(s.distributions[d], cfg);
      for (std::size_t pc = 0; pc < s.particle_curves.size(); ++pc) {
        const auto curve = make_curve<2>(s.particle_curves[pc]);
        const AcdInstance<2> instance(particles, s.level, *curve);
        for (std::size_t pi = 0; pi < s.proc_counts.size(); ++pi) {
          const topo::Rank procs = s.proc_counts[pi];
          const fmm::Partition part(instance.particles().size(), procs);
          for (std::size_t rc = 0; rc < nrc; ++rc) {
            const std::size_t rc_index = s.paired_curves() ? pc : rc;
            const CurveKind rkind = s.paired_curves()
                                        ? s.particle_curves[pc]
                                        : s.processor_curves[rc];
            const auto ranking = make_curve<2>(rkind);
            for (std::size_t ti = 0; ti < s.topologies.size(); ++ti) {
              const std::uint64_t t0 = obs::now_ns();
              const auto net = topo::make_topology<2>(s.topologies[ti],
                                                      procs, ranking.get());
              const std::size_t index = result.index(d, pc, pi, rc, ti);
              if (s.near_field) {
                const double acd =
                    instance.nfi(part, *net, s.radius, s.norm, pool).acd();
                result.cells[index].nfi_acd += acd / trials;
                result.stats[index].nfi.add(acd);
              }
              if (s.far_field) {
                const double acd =
                    instance.ffi(part, *net, pool).total().acd();
                result.cells[index].ffi_acd += acd / trials;
                result.stats[index].ffi.add(acd);
              }
              if (o.progress) {
                o.progress(StudyCellRef{d, t, pc, pi, rc_index, ti},
                           static_cast<double>(obs::now_ns() - t0) / 1e6);
              }
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

StudyResult run_study(const Study& study, const SweepOptions& options) {
  return options.reuse ? run_reuse(study, options)
                       : run_direct(study, options);
}

// ----------------------------------------------------------------- dynamics

namespace {

/// Everything run_dynamics caches per step (one kDelta artifact).
struct DynamicsStepArtifact {
  DynamicsStepResult result;
};

/// Scenario half of the delta-stage key: every parameter the trajectory
/// depends on. The step loop then chains each batch's (index, target)
/// pairs on top, so a key names one exact prefix of one exact trajectory.
std::uint64_t dynamics_base_key(const DynamicsStudy& s) {
  return key_of({s.particles, s.level, s.radius,
                 static_cast<std::uint64_t>(s.norm), s.seed,
                 static_cast<std::uint64_t>(s.curve),
                 static_cast<std::uint64_t>(s.topology),
                 static_cast<std::uint64_t>(s.distribution), s.procs,
                 std::bit_cast<std::uint64_t>(s.move_fraction),
                 std::bit_cast<std::uint64_t>(s.repartition_threshold)});
}

}  // namespace

DynamicsResult run_dynamics(const DynamicsStudy& study,
                            const DynamicsOptions& options) {
  DynamicsResult result;
  result.study = study;
  result.steps.reserve(study.steps);

  const auto curve = make_curve<2>(study.curve);
  const auto net =
      topo::make_topology<2>(study.topology, study.procs, curve.get());

  dist::SampleConfig cfg;
  cfg.count = study.particles;
  cfg.level = study.level;
  cfg.seed = study.seed;
  const std::vector<Point2> sample =
      dist::sample_particles<2>(study.distribution, cfg);

  // Current positions in the *frozen* order — the order DynamicAcd's
  // constructor produces and, with re-partitioning disabled, keeps.
  // Maintained by plain assignment so fully cached steps never pay for
  // an engine at all.
  std::vector<Point2> positions =
      sort_by_curve<2>(sample, study.level, *curve);

  DynamicAcd<2>::Options frozen_opts;
  frozen_opts.radius = study.radius;
  frozen_opts.norm = study.norm;
  frozen_opts.repartition_threshold = 2.0;  // never re-partition
  DynamicAcd<2>::Options lazy_opts = frozen_opts;
  lazy_opts.repartition_threshold = study.repartition_threshold;

  std::optional<DynamicAcd<2>> frozen;
  std::optional<DynamicAcd<2>> lazy;
  // Batches applied so far (frozen index space), replayed if the first
  // cache miss arrives mid-trajectory.
  std::vector<std::vector<ParticleMove2>> history;

  // Apply one frozen-order batch to both engines. The lazy engine's array
  // order diverges once it re-partitions, so its copy of the batch is
  // re-keyed through the pre-move positions (a move is physically
  // position-keyed; frozen->particles() holds the pre-move state because
  // translation happens before either engine applies the batch).
  const auto apply_batch = [&](const std::vector<ParticleMove2>& batch) {
    std::vector<ParticleMove2> lazy_batch;
    lazy_batch.reserve(batch.size());
    for (const ParticleMove2& mv : batch) {
      const std::int32_t idx = lazy->index_at(frozen->particles()[mv.index]);
      lazy_batch.push_back({static_cast<std::uint32_t>(idx), mv.to});
    }
    frozen->move_particles(batch, options.pool);
    lazy->move_particles(lazy_batch, options.pool);
  };

  const auto materialize = [&]() {
    if (frozen) return;
    frozen.emplace(sample, study.level, *curve, study.procs, frozen_opts,
                   options.pool);
    lazy.emplace(sample, study.level, *curve, study.procs, lazy_opts,
                 options.pool);
    for (const auto& batch : history) apply_batch(batch);
  };

  std::uint64_t chain = dynamics_base_key(study);
  for (unsigned s = 0; s < study.steps; ++s) {
    const std::vector<ParticleMove2> moves = drift_moves<2>(
        positions, study.level, study.seed, s, study.move_fraction);
    for (const ParticleMove2& mv : moves) {
      chain = sweep_key(chain, mv.index);
      chain = sweep_key(chain, pack(mv.to, study.level));
    }
    const std::uint64_t step_key = sweep_key(chain, s);

    std::shared_ptr<const DynamicsStepArtifact> art;
    if (options.cache != nullptr) {
      art = options.cache->find<DynamicsStepArtifact>(SweepStage::kDelta,
                                                      step_key);
    }
    if (!art) {
      const obs::Span span(stage_span_name(SweepStage::kDelta));
      materialize();
      apply_batch(moves);
      auto built = std::make_shared<DynamicsStepArtifact>();
      DynamicsStepResult& r = built->result;
      r.moves = moves.size();
      r.frozen_nfi = frozen->nfi(*net);
      r.frozen_ffi = frozen->ffi(*net);
      r.lazy_nfi = lazy->nfi(*net);
      r.lazy_ffi = lazy->ffi(*net);
      r.frozen_displaced = frozen->displaced_fraction();
      r.lazy_displaced = lazy->displaced_fraction();
      r.lazy_repartitions = lazy->repartitions();
      // The re-sort-every-step baseline: a from-scratch AcdInstance of
      // the post-move configuration.
      const AcdInstance<2> inst(frozen->particles(), study.level, *curve);
      const fmm::Partition part(study.particles, study.procs);
      r.reorder_nfi =
          inst.nfi(part, *net, study.radius, study.norm, options.pool);
      r.reorder_ffi = inst.ffi(part, *net, options.pool);
      if (options.cache != nullptr) {
        options.cache->put<DynamicsStepArtifact>(
            SweepStage::kDelta, step_key, built,
            sizeof(DynamicsStepArtifact));
      }
      art = built;
    }

    for (const ParticleMove2& mv : moves) positions[mv.index] = mv.to;
    history.push_back(moves);
    result.steps.push_back(art->result);
  }

  if (options.cache != nullptr) {
    result.sweep = options.cache->stats();
    publish_sweep_metrics(result.sweep);
  }
  return result;
}

}  // namespace sfc::core
