#include "core/sweep.hpp"

#include <atomic>
#include <bit>
#include <initializer_list>
#include <optional>

#include "core/dynamic_acd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/radix_sort.hpp"
#include "util/rng.hpp"

namespace sfc::core {

std::string_view sweep_stage_name(SweepStage stage) noexcept {
  switch (stage) {
    case SweepStage::kSample:
      return "sample";
    case SweepStage::kCanonical:
      return "canonical";
    case SweepStage::kOrdering:
      return "ordering";
    case SweepStage::kInstance:
      return "instance";
    case SweepStage::kNfiHistogram:
      return "nfi_histogram";
    case SweepStage::kFfiHistogram:
      return "ffi_histogram";
    case SweepStage::kTopology:
      return "topology";
    case SweepStage::kDelta:
      return "delta";
    case SweepStage::kFold:
      return "fold";
  }
  return "unknown";
}

std::shared_ptr<const void> ArtifactCache::lookup(SweepStage stage,
                                                 std::uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.stage(stage).misses;
    return nullptr;
  }
  ++stats_.stage(stage).hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  // Touch timestamps exist only for the eviction-age histogram, so the
  // clock read follows the metrics gate (same discipline as the pool).
  if (obs::metrics_enabled()) it->second.last_touch_ns = obs::now_ns();
  return it->second.value;
}

void ArtifactCache::insert(SweepStage stage, std::uint64_t key,
                           std::shared_ptr<const void> value,
                           std::size_t bytes) {
  const bool metrics = obs::metrics_enabled();
  lru_.push_front(key);
  map_[key] = Entry{std::move(value), bytes, stage,
                    metrics ? obs::now_ns() : 0, lru_.begin()};
  stats_.bytes += bytes;
  stats_.stage_bytes[static_cast<unsigned>(stage)] += bytes;
  if (stats_.bytes > stats_.peak_bytes) stats_.peak_bytes = stats_.bytes;
  // Walk the cold end of the LRU until within budget. The entry just
  // inserted sits at the hot end and is never the victim; an over-budget
  // artifact simply leaves the cache holding only itself.
  while (stats_.bytes > budget_ && lru_.size() > 1) {
    const std::uint64_t victim = lru_.back();
    const auto vit = map_.find(victim);
    stats_.bytes -= vit->second.bytes;
    stats_.stage_bytes[static_cast<unsigned>(vit->second.stage)] -=
        vit->second.bytes;
    if (metrics && vit->second.last_touch_ns != 0) {
      // How long the victim sat cold: small ages mean the budget is
      // thrashing artifacts that were just used.
      obs::Registry::instance()
          .histogram("sweep.cache.eviction_age_ns")
          .record(obs::now_ns() - vit->second.last_touch_ns);
    }
    map_.erase(vit);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

namespace {

/// Chain a field list into one 64-bit content key.
std::uint64_t key_of(std::initializer_list<std::uint64_t> fields) {
  std::uint64_t h = 0x5fc4a51b9ce2ad17ull;
  for (const std::uint64_t v : fields) h = sweep_key(h, v);
  return h;
}

/// Publish the run's cache accounting into the metrics registry: resident
/// and peak bytes, evictions, and one hit-ratio gauge per pipeline stage.
/// Gauges are set (not accumulated), so the snapshot always describes the
/// most recent run in this process.
void publish_sweep_metrics(const SweepStats& stats) {
  if (!obs::metrics_enabled()) return;
  obs::Registry& reg = obs::Registry::instance();
  reg.gauge("sweep.cache.bytes").set(static_cast<double>(stats.bytes));
  reg.gauge("sweep.cache.peak_bytes")
      .set(static_cast<double>(stats.peak_bytes));
  reg.gauge("sweep.cache.evictions")
      .set(static_cast<double>(stats.evictions));
  for (unsigned i = 0; i < kSweepStageCount; ++i) {
    const auto stage = static_cast<SweepStage>(i);
    const StageCounters& c = stats.stage(stage);
    if (c.hits + c.misses == 0) continue;  // stage never ran in this study
    const std::string base =
        "sweep.stage." + std::string(sweep_stage_name(stage));
    reg.gauge(base + ".hit_ratio").set(c.hit_ratio());
  }
  for (unsigned i = 0; i < kSweepStageCount; ++i) {
    const auto stage = static_cast<SweepStage>(i);
    if (stats.bytes_of(stage) == 0) continue;
    reg.gauge("sweep.cache.stage." +
              std::string(sweep_stage_name(stage)) + ".bytes")
        .set(static_cast<double>(stats.bytes_of(stage)));
  }
}

/// Span names per cached stage (string literals: obs::Span requires
/// static lifetime). Indexed like SweepStats::stages.
constexpr const char* kStageSpanNames[kSweepStageCount] = {
    "sweep/sample",        "sweep/canonical",     "sweep/ordering",
    "sweep/instance",      "sweep/nfi_histogram", "sweep/ffi_histogram",
    "sweep/topology",      "sweep/delta",         "sweep/fold",
};

constexpr const char* stage_span_name(SweepStage stage) noexcept {
  return kStageSpanNames[static_cast<unsigned>(stage)];
}

/// Sentinel ranking field for topologies with a natural labeling (the
/// paper applies SFC ranking only to mesh/torus) — their artifacts are
/// shared across processor-order curves.
constexpr std::uint64_t kNoRanking = ~std::uint64_t{0};

bool topology_uses_ranking(topo::TopologyKind kind) noexcept {
  return kind == topo::TopologyKind::kMesh ||
         kind == topo::TopologyKind::kTorus;
}

using Sample2 = std::vector<Point2>;

/// Cell-sorted copy of a sample plus its occupancy grid: the
/// curve-independent spatial state shared by every NFI histogram and
/// instance build of one (distribution, trial).
struct CanonicalSample2 {
  std::vector<Point2> particles;
  fmm::OccupancyGrid<2> grid;
  CanonicalSample2(std::vector<Point2> pts, unsigned level)
      : particles(std::move(pts)), grid(particles, level) {}
  std::size_t memory_bytes() const noexcept {
    return particles.capacity() * sizeof(Point2) + grid.memory_bytes();
  }
};

/// Argsort policy: the dense scatter walks the whole 4^level slot array
/// (a memset plus a full scan), so it only pays while the grid is within
/// a small factor of the sample size; past that — and always beyond the
/// dense-bits cap — a radix argsort over just the occupied keys is the
/// linear-time path.
bool dense_argsort_pays(unsigned level, std::size_t n) noexcept {
  if (2u * level > fmm::OccupancyGrid<2>::kDenseBits) return false;
  const std::uint64_t cells = grid_size<2>(level);
  return cells <= (std::uint64_t{1} << 16) || cells <= 4 * std::uint64_t{n};
}

/// Particles of `raw` sorted by row-major packed cell id. The samplers
/// place every particle in a distinct cell, so the order is unique — a
/// linear dense scatter by cell id on compact grids, a (threaded) stable
/// radix sort of (key, index) pairs beyond. Both produce the same unique
/// permutation, so the canonical artifact is independent of the path and
/// of the thread count.
std::vector<Point2> canonical_order(const Sample2& raw, unsigned level,
                                    util::ThreadPool* pool) {
  std::vector<Point2> out;
  out.reserve(raw.size());
  if (dense_argsort_pays(level, raw.size())) {
    std::vector<std::int32_t> slot(
        static_cast<std::size_t>(grid_size<2>(level)), -1);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      slot[pack(raw[i], level)] = static_cast<std::int32_t>(i);
    }
    for (const std::int32_t i : slot) {
      if (i >= 0) out.push_back(raw[static_cast<std::size_t>(i)]);
    }
    return out;
  }
  std::vector<util::KeyIndex> items(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    items[i] = util::KeyIndex{pack(raw[i], level),
                              static_cast<std::uint32_t>(i)};
  }
  {
    const obs::Span span("sweep/canonical/radix");
    util::radix_sort_pairs(items, pool);
  }
  for (const util::KeyIndex& it : items) out.push_back(raw[it.index]);
  return out;
}

/// Rank table of one curve over a canonical sample: rank[i] is the
/// position canonical particle i occupies in the curve-sorted order.
struct Ordering2 {
  std::vector<std::uint32_t> rank;
  std::size_t memory_bytes() const noexcept {
    return rank.capacity() * sizeof(std::uint32_t);
  }
};

/// Curve indices are a bijection between cells and [0, 4^level), and the
/// particles occupy distinct cells, so the argsort is unique and equals
/// the stable_sort the sorting AcdInstance constructor performs. Keys
/// come from the batched encode (one virtual call for the whole sample);
/// the argsort is a dense scatter + scan on compact grids and a stable
/// LSD radix sort of (key, index) pairs beyond. Serial radix on purpose:
/// ordering builds already fan out across curves on the pool, and a
/// nested threaded sort would fight them for workers.
Ordering2 make_ordering(const std::vector<Point2>& canonical, unsigned level,
                        const Curve<2>& curve) {
  const std::vector<std::uint64_t> keys = indices_of(curve, canonical, level);
  Ordering2 out;
  out.rank.resize(canonical.size());
  if (dense_argsort_pays(level, canonical.size())) {
    std::vector<std::int32_t> slot(
        static_cast<std::size_t>(grid_size<2>(level)), -1);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      slot[keys[i]] = static_cast<std::int32_t>(i);
    }
    std::uint32_t next = 0;
    for (const std::int32_t i : slot) {
      if (i >= 0) out.rank[static_cast<std::size_t>(i)] = next++;
    }
    return out;
  }
  std::vector<util::KeyIndex> items(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    items[i] = util::KeyIndex{keys[i], static_cast<std::uint32_t>(i)};
  }
  {
    const obs::Span span("sweep/order/radix");
    util::radix_sort_pairs(items);
  }
  for (std::uint32_t k = 0; k < items.size(); ++k) {
    out.rank[items[k].index] = k;
  }
  return out;
}

/// One cell's fold inputs, pinned by the coordinator before the fold is
/// scheduled: worker tasks never touch the cache.
struct CellJob {
  std::size_t index = 0;
  StudyCellRef ref;
  std::shared_ptr<const RankPairAccumulator> nfi;
  std::shared_ptr<const fmm::FfiHistograms> ffi;
  std::shared_ptr<const topo::Topology> net;
};

/// The artifact-reusing engine path.
StudyResult run_reuse(const Study& s, const SweepOptions& o) {
  StudyResult result;
  result.study = s;
  result.cells.assign(s.cell_count(), AcdCell{});
  result.stats.assign(s.cell_count(), AcdCellStats{});

  ArtifactCache cache(o.cache_bytes);
  util::ThreadPool* pool = o.pool;
  const bool parallel = pool != nullptr && pool->size() > 1;
  const double trials = s.trials;
  const std::size_t nrc = s.processor_order_count();

  // Ordering-stage throughput accounting for the
  // sweep.stage.order.ns_per_particle gauge: every cache-miss ordering
  // build adds its span-clock wall time and particle count.
  std::atomic<std::uint64_t> order_build_ns{0};
  std::atomic<std::uint64_t> order_build_particles{0};

  std::vector<CellJob> jobs;
  for (std::size_t d = 0; d < s.distributions.size(); ++d) {
    for (unsigned t = 0; t < s.trials; ++t) {
      const std::uint64_t sample_key =
          key_of({static_cast<std::uint64_t>(s.distributions[d]), s.particles,
                  s.level, s.seed, t});

      // Canonical spatial state for this (distribution, trial): the
      // cell-sorted sample and its occupancy grid, which every curve of
      // the row shares.
      const auto canonical = cache.get<CanonicalSample2>(
          SweepStage::kCanonical, sample_key, [&] {
            const obs::Span span(stage_span_name(SweepStage::kCanonical));
            const auto sample =
                cache.get<Sample2>(SweepStage::kSample, sample_key, [&] {
                  const obs::Span sample_span(
                      stage_span_name(SweepStage::kSample));
                  dist::SampleConfig cfg;
                  cfg.count = s.particles;
                  cfg.level = s.level;
                  cfg.seed = util::substream_seed(s.seed, t);
                  auto pts = std::make_shared<const Sample2>(
                      dist::sample_particles<2>(s.distributions[d], cfg));
                  const std::size_t bytes = pts->capacity() * sizeof(Point2);
                  return std::pair{pts, bytes};
                });
            auto canon = std::make_shared<const CanonicalSample2>(
                canonical_order(*sample, s.level, pool), s.level);
            return std::pair{canon, canon->memory_bytes()};
          });

      // Ordering (and, for FFI studies, instance) prefetch: the cache
      // lookups run on the coordinator in pc order (the counter sequence
      // is identical to building inline), while the misses — the most
      // expensive serial artifacts of the whole sweep — build
      // concurrently on the pool. Construction is deterministic, so
      // scheduling never changes the artifacts.
      const std::size_t npc = s.particle_curves.size();
      std::vector<std::shared_ptr<const Ordering2>> orderings(npc);
      {
        struct OrderingBuild {
          std::size_t pc = 0;
          std::uint64_t key = 0;
          std::shared_ptr<const Ordering2> built;
        };
        std::vector<OrderingBuild> builds;
        for (std::size_t pc = 0; pc < npc; ++pc) {
          const std::uint64_t order_key = sweep_key(
              sample_key, static_cast<std::uint64_t>(s.particle_curves[pc]));
          orderings[pc] =
              cache.find<Ordering2>(SweepStage::kOrdering, order_key);
          if (orderings[pc] == nullptr) {
            builds.push_back(OrderingBuild{pc, order_key, nullptr});
          }
        }
        for (OrderingBuild& b : builds) {
          const CurveKind pkind = s.particle_curves[b.pc];
          auto construct = [&b, &canonical, pkind, level = s.level,
                            &order_build_ns, &order_build_particles] {
            const obs::Span span(stage_span_name(SweepStage::kOrdering));
            const std::uint64_t t0 = obs::now_ns();
            const auto curve = make_curve<2>(pkind);
            b.built = std::make_shared<const Ordering2>(
                make_ordering(canonical->particles, level, *curve));
            order_build_ns.fetch_add(obs::now_ns() - t0,
                                     std::memory_order_relaxed);
            order_build_particles.fetch_add(canonical->particles.size(),
                                            std::memory_order_relaxed);
          };
          if (parallel) {
            pool->submit(construct);
          } else {
            construct();
          }
        }
        if (parallel) pool->wait_idle();
        for (OrderingBuild& b : builds) {
          cache.put<Ordering2>(SweepStage::kOrdering, b.key, b.built,
                               b.built->memory_bytes());
          orderings[b.pc] = std::move(b.built);
        }
      }

      // The FFI tree walk is the one consumer that needs the particles
      // physically in curve order; scatter them through the rank table
      // instead of re-sorting (the sequence is identical). Near-field-
      // only studies never build an instance at all.
      std::vector<std::shared_ptr<const AcdInstance<2>>> instances(
          s.far_field ? npc : 0);
      if (s.far_field) {
        struct InstanceBuild {
          std::size_t pc = 0;
          std::uint64_t key = 0;
          std::shared_ptr<const AcdInstance<2>> built;
        };
        std::vector<InstanceBuild> builds;
        for (std::size_t pc = 0; pc < npc; ++pc) {
          const std::uint64_t instance_key = sweep_key(
              sample_key, static_cast<std::uint64_t>(s.particle_curves[pc]));
          instances[pc] =
              cache.find<AcdInstance<2>>(SweepStage::kInstance, instance_key);
          if (instances[pc] == nullptr) {
            builds.push_back(InstanceBuild{pc, instance_key, nullptr});
          }
        }
        for (InstanceBuild& b : builds) {
          const std::shared_ptr<const Ordering2>& ordering = orderings[b.pc];
          auto construct = [&b, &canonical, &ordering, level = s.level] {
            const obs::Span span(stage_span_name(SweepStage::kInstance));
            std::vector<Point2> sorted(canonical->particles.size());
            for (std::size_t i = 0; i < sorted.size(); ++i) {
              sorted[ordering->rank[i]] = canonical->particles[i];
            }
            b.built = std::make_shared<const AcdInstance<2>>(
                AcdInstance<2>::from_sorted(std::move(sorted), level));
          };
          if (parallel) {
            pool->submit(construct);
          } else {
            construct();
          }
        }
        if (parallel) pool->wait_idle();
        for (InstanceBuild& b : builds) {
          cache.put<AcdInstance<2>>(SweepStage::kInstance, b.key, b.built,
                                    b.built->memory_bytes());
          instances[b.pc] = std::move(b.built);
        }
      }

      for (std::size_t pc = 0; pc < npc; ++pc) {
        const CurveKind pkind = s.particle_curves[pc];
        const std::uint64_t instance_key =
            sweep_key(sample_key, static_cast<std::uint64_t>(pkind));
        const std::shared_ptr<const Ordering2>& ordering = orderings[pc];

        for (std::size_t pi = 0; pi < s.proc_counts.size(); ++pi) {
          const topo::Rank procs = s.proc_counts[pi];
          const fmm::Partition part(canonical->particles.size(), procs);

          // Prefetch/build this group's fold inputs on the coordinator
          // (cache traffic stays deterministic; make_topology's argument
          // validation throws here, never inside a pool task).
          jobs.clear();
          for (std::size_t rc = 0; rc < nrc; ++rc) {
            const std::size_t rc_index = s.paired_curves() ? pc : rc;
            const CurveKind rkind =
                s.paired_curves() ? pkind : s.processor_curves[rc];
            for (std::size_t ti = 0; ti < s.topologies.size(); ++ti) {
              const topo::TopologyKind tkind = s.topologies[ti];
              // The planned fold strategy is part of the cache identity:
              // a strategy change (new kernel, budget change) must not
              // resurrect payloads sized for the old plan.
              const topo::FoldStrategy planned =
                  topo::planned_fold_strategy(tkind, procs);
              const std::uint64_t topo_key =
                  key_of({static_cast<std::uint64_t>(tkind), procs,
                          topology_uses_ranking(tkind)
                              ? static_cast<std::uint64_t>(rkind)
                              : kNoRanking,
                          static_cast<std::uint64_t>(planned)});
              CellJob job;
              job.index = result.index(d, pc, pi, rc, ti);
              job.ref = StudyCellRef{d, t, pc, pi, rc_index, ti};
              job.net = cache.get<topo::Topology>(
                  SweepStage::kTopology, topo_key, [&] {
                    const obs::Span span(
                        stage_span_name(SweepStage::kTopology));
                    const auto ranking = make_curve<2>(rkind);
                    std::shared_ptr<const topo::Topology> net =
                        topo::make_topology<2>(tkind, procs, ranking.get());
                    // Payload estimate: per-rank coordinates plus the hop
                    // table only a dense-strategy fold would materialize
                    // (factorized kernels never touch p×p state).
                    std::size_t bytes =
                        static_cast<std::size_t>(procs) * 2 * sizeof(topo::Rank);
                    if (planned == topo::FoldStrategy::kDense) {
                      bytes += static_cast<std::size_t>(procs) * procs *
                               sizeof(std::uint32_t);
                    }
                    return std::pair{net, bytes};
                  });
              if (s.near_field) {
                const std::uint64_t nfi_key =
                    key_of({instance_key, procs, s.radius,
                            static_cast<std::uint64_t>(s.norm)});
                job.nfi = cache.get<RankPairAccumulator>(
                    SweepStage::kNfiHistogram, nfi_key, [&] {
                      const obs::Span span(
                          stage_span_name(SweepStage::kNfiHistogram));
                      // Owner of canonical particle i: the partition
                      // chunk its curve rank falls in.
                      const std::vector<topo::Rank> by_rank =
                          part.owner_table();
                      std::vector<topo::Rank> owners(
                          canonical->particles.size());
                      for (std::size_t i = 0; i < owners.size(); ++i) {
                        owners[i] = by_rank[ordering->rank[i]];
                      }
                      auto hist = std::make_shared<const RankPairAccumulator>(
                          fmm::nfi_histogram_owners<2>(
                              canonical->particles, canonical->grid, owners,
                              procs, s.radius, s.norm, pool));
                      hist->seal();
                      return std::pair{hist, hist->memory_bytes()};
                    });
              }
              if (s.far_field) {
                const std::uint64_t ffi_key = key_of({instance_key, procs});
                job.ffi = cache.get<fmm::FfiHistograms>(
                    SweepStage::kFfiHistogram, ffi_key, [&] {
                      const obs::Span span(
                          stage_span_name(SweepStage::kFfiHistogram));
                      auto hist = std::make_shared<const fmm::FfiHistograms>(
                          fmm::ffi_histograms<2>(instances[pc]->tree(), part,
                                                 pool));
                      hist->interpolation.seal();
                      hist->interaction.seal();
                      return std::pair{hist, hist->memory_bytes()};
                    });
              }
              jobs.push_back(std::move(job));
            }
          }

          // Fold every cell of the group. Distinct cells write distinct
          // slots; the wait_idle barrier below orders the trials of each
          // cell, so the float accumulation order matches the direct
          // path exactly. Each fold's wall time is measured on the obs
          // span clock and handed to the progress sink after the barrier.
          std::vector<double> fold_ms(jobs.size(), 0.0);
          for (std::size_t k = 0; k < jobs.size(); ++k) {
            const CellJob& job = jobs[k];
            if (job.nfi != nullptr) cache.count_fold();
            if (job.ffi != nullptr) cache.count_fold();
            auto fold_cell = [&result, job, trials, ms = &fold_ms[k]] {
              const std::uint64_t t0 = obs::now_ns();
              const obs::Span span(stage_span_name(SweepStage::kFold));
              if (job.nfi != nullptr) {
                const double acd = job.net->fold(job.nfi->view()).acd();
                result.cells[job.index].nfi_acd += acd / trials;
                result.stats[job.index].nfi.add(acd);
              }
              if (job.ffi != nullptr) {
                const double acd =
                    fmm::ffi_fold(*job.ffi, *job.net).total().acd();
                result.cells[job.index].ffi_acd += acd / trials;
                result.stats[job.index].ffi.add(acd);
              }
              *ms = static_cast<double>(obs::now_ns() - t0) / 1e6;
            };
            if (parallel) {
              pool->submit(fold_cell);
            } else {
              fold_cell();
            }
          }
          if (parallel) pool->wait_idle();
          if (o.progress) {
            for (std::size_t k = 0; k < jobs.size(); ++k) {
              o.progress(jobs[k].ref, fold_ms[k]);
            }
          }
        }
      }
    }
  }
  result.sweep = cache.stats();
  publish_sweep_metrics(result.sweep);
  if (obs::metrics_enabled() && order_build_particles.load() > 0) {
    obs::Registry::instance()
        .gauge("sweep.stage.order.ns_per_particle")
        .set(static_cast<double>(order_build_ns.load()) /
             static_cast<double>(order_build_particles.load()));
    // Which sort path the ordering stage's record counts selected:
    // mirrors the calibrated (or overridden) threaded-radix cutoff next
    // to the per-particle cost it gates.
    obs::Registry::instance()
        .gauge("sweep.stage.order.radix_threshold")
        .set(static_cast<double>(util::detail::threaded_radix_min()));
  }
  return result;
}

/// The from-scratch path: the legacy per-cell pipeline in the same grid
/// order — the equivalence oracle and the speedup baseline.
StudyResult run_direct(const Study& s, const SweepOptions& o) {
  StudyResult result;
  result.study = s;
  result.cells.assign(s.cell_count(), AcdCell{});
  result.stats.assign(s.cell_count(), AcdCellStats{});

  util::ThreadPool* pool = o.pool;
  const double trials = s.trials;
  const std::size_t nrc = s.processor_order_count();

  for (std::size_t d = 0; d < s.distributions.size(); ++d) {
    for (unsigned t = 0; t < s.trials; ++t) {
      dist::SampleConfig cfg;
      cfg.count = s.particles;
      cfg.level = s.level;
      cfg.seed = util::substream_seed(s.seed, t);
      const auto particles =
          dist::sample_particles<2>(s.distributions[d], cfg);
      for (std::size_t pc = 0; pc < s.particle_curves.size(); ++pc) {
        const auto curve = make_curve<2>(s.particle_curves[pc]);
        const AcdInstance<2> instance(particles, s.level, *curve);
        for (std::size_t pi = 0; pi < s.proc_counts.size(); ++pi) {
          const topo::Rank procs = s.proc_counts[pi];
          const fmm::Partition part(instance.particles().size(), procs);
          for (std::size_t rc = 0; rc < nrc; ++rc) {
            const std::size_t rc_index = s.paired_curves() ? pc : rc;
            const CurveKind rkind = s.paired_curves()
                                        ? s.particle_curves[pc]
                                        : s.processor_curves[rc];
            const auto ranking = make_curve<2>(rkind);
            for (std::size_t ti = 0; ti < s.topologies.size(); ++ti) {
              const std::uint64_t t0 = obs::now_ns();
              const auto net = topo::make_topology<2>(s.topologies[ti],
                                                      procs, ranking.get());
              const std::size_t index = result.index(d, pc, pi, rc, ti);
              if (s.near_field) {
                const double acd =
                    instance.nfi(part, *net, s.radius, s.norm, pool).acd();
                result.cells[index].nfi_acd += acd / trials;
                result.stats[index].nfi.add(acd);
              }
              if (s.far_field) {
                const double acd =
                    instance.ffi(part, *net, pool).total().acd();
                result.cells[index].ffi_acd += acd / trials;
                result.stats[index].ffi.add(acd);
              }
              if (o.progress) {
                o.progress(StudyCellRef{d, t, pc, pi, rc_index, ti},
                           static_cast<double>(obs::now_ns() - t0) / 1e6);
              }
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace

StudyResult run_study(const Study& study, const SweepOptions& options) {
  return options.reuse ? run_reuse(study, options)
                       : run_direct(study, options);
}

// ----------------------------------------------------------------- dynamics

namespace {

/// Everything run_dynamics caches per step (one kDelta artifact).
struct DynamicsStepArtifact {
  DynamicsStepResult result;
};

/// Scenario half of the delta-stage key: every parameter the trajectory
/// depends on. The step loop then chains each batch's (index, target)
/// pairs on top, so a key names one exact prefix of one exact trajectory.
std::uint64_t dynamics_base_key(const DynamicsStudy& s) {
  return key_of({s.particles, s.level, s.radius,
                 static_cast<std::uint64_t>(s.norm), s.seed,
                 static_cast<std::uint64_t>(s.curve),
                 static_cast<std::uint64_t>(s.topology),
                 static_cast<std::uint64_t>(s.distribution), s.procs,
                 std::bit_cast<std::uint64_t>(s.move_fraction),
                 std::bit_cast<std::uint64_t>(s.repartition_threshold)});
}

}  // namespace

DynamicsResult run_dynamics(const DynamicsStudy& study,
                            const DynamicsOptions& options) {
  DynamicsResult result;
  result.study = study;
  result.steps.reserve(study.steps);

  const auto curve = make_curve<2>(study.curve);
  const auto net =
      topo::make_topology<2>(study.topology, study.procs, curve.get());

  dist::SampleConfig cfg;
  cfg.count = study.particles;
  cfg.level = study.level;
  cfg.seed = study.seed;
  const std::vector<Point2> sample =
      dist::sample_particles<2>(study.distribution, cfg);

  // Current positions in the *frozen* order — the order DynamicAcd's
  // constructor produces and, with re-partitioning disabled, keeps.
  // Maintained by plain assignment so fully cached steps never pay for
  // an engine at all.
  std::vector<Point2> positions =
      sort_by_curve<2>(sample, study.level, *curve);

  DynamicAcd<2>::Options frozen_opts;
  frozen_opts.radius = study.radius;
  frozen_opts.norm = study.norm;
  frozen_opts.repartition_threshold = 2.0;  // never re-partition
  DynamicAcd<2>::Options lazy_opts = frozen_opts;
  lazy_opts.repartition_threshold = study.repartition_threshold;

  std::optional<DynamicAcd<2>> frozen;
  std::optional<DynamicAcd<2>> lazy;
  // Batches applied so far (frozen index space), replayed if the first
  // cache miss arrives mid-trajectory.
  std::vector<std::vector<ParticleMove2>> history;

  // Apply one frozen-order batch to both engines. The lazy engine's array
  // order diverges once it re-partitions, so its copy of the batch is
  // re-keyed through the pre-move positions (a move is physically
  // position-keyed; frozen->particles() holds the pre-move state because
  // translation happens before either engine applies the batch).
  const auto apply_batch = [&](const std::vector<ParticleMove2>& batch) {
    std::vector<ParticleMove2> lazy_batch;
    lazy_batch.reserve(batch.size());
    for (const ParticleMove2& mv : batch) {
      const std::int32_t idx = lazy->index_at(frozen->particles()[mv.index]);
      lazy_batch.push_back({static_cast<std::uint32_t>(idx), mv.to});
    }
    frozen->move_particles(batch, options.pool);
    lazy->move_particles(lazy_batch, options.pool);
  };

  const auto materialize = [&]() {
    if (frozen) return;
    frozen.emplace(sample, study.level, *curve, study.procs, frozen_opts,
                   options.pool);
    lazy.emplace(sample, study.level, *curve, study.procs, lazy_opts,
                 options.pool);
    for (const auto& batch : history) apply_batch(batch);
  };

  std::uint64_t chain = dynamics_base_key(study);
  for (unsigned s = 0; s < study.steps; ++s) {
    const std::vector<ParticleMove2> moves = drift_moves<2>(
        positions, study.level, study.seed, s, study.move_fraction);
    for (const ParticleMove2& mv : moves) {
      chain = sweep_key(chain, mv.index);
      chain = sweep_key(chain, pack(mv.to, study.level));
    }
    const std::uint64_t step_key = sweep_key(chain, s);

    std::shared_ptr<const DynamicsStepArtifact> art;
    if (options.cache != nullptr) {
      art = options.cache->find<DynamicsStepArtifact>(SweepStage::kDelta,
                                                      step_key);
    }
    if (!art) {
      const obs::Span span(stage_span_name(SweepStage::kDelta));
      materialize();
      apply_batch(moves);
      auto built = std::make_shared<DynamicsStepArtifact>();
      DynamicsStepResult& r = built->result;
      r.moves = moves.size();
      r.frozen_nfi = frozen->nfi(*net);
      r.frozen_ffi = frozen->ffi(*net);
      r.lazy_nfi = lazy->nfi(*net);
      r.lazy_ffi = lazy->ffi(*net);
      r.frozen_displaced = frozen->displaced_fraction();
      r.lazy_displaced = lazy->displaced_fraction();
      r.lazy_repartitions = lazy->repartitions();
      // The re-sort-every-step baseline: a from-scratch AcdInstance of
      // the post-move configuration.
      const AcdInstance<2> inst(frozen->particles(), study.level, *curve);
      const fmm::Partition part(study.particles, study.procs);
      r.reorder_nfi =
          inst.nfi(part, *net, study.radius, study.norm, options.pool);
      r.reorder_ffi = inst.ffi(part, *net, options.pool);
      if (options.cache != nullptr) {
        options.cache->put<DynamicsStepArtifact>(
            SweepStage::kDelta, step_key, built,
            sizeof(DynamicsStepArtifact));
      }
      art = built;
    }

    for (const ParticleMove2& mv : moves) positions[mv.index] = mv.to;
    history.push_back(moves);
    result.steps.push_back(art->result);
  }

  if (options.cache != nullptr) {
    result.sweep = options.cache->stats();
    publish_sweep_metrics(result.sweep);
  }
  return result;
}

}  // namespace sfc::core
