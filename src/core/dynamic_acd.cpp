#include "core/dynamic_acd.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "distribution/distribution.hpp"
#include "fmm/nfi_window.hpp"
#include "util/rng.hpp"

namespace sfc::core {
namespace {

/// Below this many movers the per-step delta runs on the calling thread:
/// the shard zeroing + merge costs more than the window scans it would
/// parallelize.
constexpr std::size_t kParallelMoverCutoff = 512;

}  // namespace

template <int D>
DynamicAcd<D>::DynamicAcd(std::vector<Point<D>> particles, unsigned level,
                          const Curve<D>& curve, topo::Rank procs,
                          Options opts, util::ThreadPool* pool)
    : curve_(&curve),
      level_(level),
      procs_(procs),
      opts_(opts),
      positions_(sort_by_curve<D>(std::move(particles), level, curve)),
      part_(positions_.size(), procs),
      owners_(part_.owner_table()),
      grid_(positions_, level),
      tree_(positions_, level),
      nfi_acc_(procs),
      ffi_(procs),
      nfi_deltas_(procs),
      ffi_interp_deltas_(procs),
      ffi_inter_deltas_(procs) {
  build(pool);
}

template <int D>
void DynamicAcd<D>::build(util::ThreadPool* pool) {
  // NFI: the *directed* event multiset — one event per ordered window
  // pair, recorded from the source side. The static fast path compresses
  // the mirror event into a count-2 entry on one orientation; the
  // incremental algebra instead needs every per-pair count to stay
  // individually consistent under retraction, and by hop-distance
  // symmetry both representations fold to identical totals.
  nfi_acc_ = RankPairAccumulator(procs_);
  const std::int32_t* cells = grid_.dense_cells();
  const std::int64_t r = opts_.radius;
  const bool cheb = opts_.norm == fmm::NeighborNorm::kChebyshev;
  auto range = [&](RankPairAccumulator& acc, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const topo::Rank src = owners_[i];
      fmm::visit_window_neighbors<D>(
          grid_, cells, positions_[i], r, cheb,
          [&](std::size_t j) { acc.add(src, owners_[j]); });
    }
  };
  if (pool == nullptr || pool->size() <= 1) {
    range(nfi_acc_, 0, positions_.size());
  } else {
    RankPairShards shards(procs_, pool->size());
    util::parallel_for_chunks(*pool, 0, positions_.size(), util::kAutoGrain,
                              [&](std::size_t lo, std::size_t hi) {
                                range(shards.local(), lo, hi);
                              });
    shards.merge_into(nfi_acc_);
  }

  // FFI: ffi_histograms already records the true directed multiset
  // (every interpolation and interaction-list event once, from its
  // source side), so the static builder seeds the dynamic state as-is.
  ffi_ = fmm::ffi_histograms<D>(fmm::CellTree<D>(positions_, level_), part_,
                                pool);

  // Freeze each chunk's curve-key interval for displacement tracking.
  const std::vector<std::uint64_t> keys =
      indices_of<D>(*curve_, positions_, level_);
  chunk_keys_.assign(procs_, {1, 0});  // empty interval
  for (topo::Rank c = 0; c < procs_; ++c) {
    const std::size_t lo = part_.chunk_begin(c);
    const std::size_t hi = part_.chunk_begin(c + 1);
    if (lo < hi) chunk_keys_[c] = {keys[lo], keys[hi - 1]};
  }
  displaced_.assign(positions_.size(), 0);
  displaced_count_ = 0;
}

template <int D>
void DynamicAcd<D>::rebuild(util::ThreadPool* pool) {
  positions_ = sort_by_curve<D>(std::move(positions_), level_, *curve_);
  grid_ = fmm::OccupancyGrid<D>(positions_, level_);
  tree_ = fmm::DynamicCellTree<D>(positions_, level_);
  ++repartitions_;
  // The partition and owner table depend only on (n, p) — unchanged.
  build(pool);
}

template <int D>
template <class Sink>
void DynamicAcd<D>::nfi_scan(Sink& acc,
                             const std::vector<ParticleMove<D>>& movers,
                             bool retract, std::size_t lo, std::size_t hi) {
  const std::int32_t* cells = grid_.dense_cells();
  const std::int64_t r = opts_.radius;
  const bool cheb = opts_.norm == fmm::NeighborNorm::kChebyshev;
  for (std::size_t k = lo; k < hi; ++k) {
    const std::uint32_t m = movers[k].index;
    const topo::Rank sm = owners_[m];
    const bool faulted = retract && opts_.fault_stale_subtraction && k == 0;
    // Both phases scan the window around the mover's *current* cell:
    // positions_ holds the old cell during retract and the new one
    // during assert. Each mover handles its own outgoing events; the
    // incoming mirror is handled by the stationary neighbor's side here,
    // or by the other mover's own outgoing scan when both ends move —
    // so every directed event is touched exactly once per phase.
    fmm::visit_window_neighbors<D>(
        grid_, cells, positions_[m], r, cheb, [&](std::size_t j) {
          const topo::Rank sj = owners_[j];
          if (retract) {
            if (!faulted) acc.sub(sm, sj);
            if (!mover_flag_[j]) acc.sub(sj, sm);
          } else {
            acc.add(sm, sj);
            if (!mover_flag_[j]) acc.add(sj, sm);
          }
        });
  }
}

template <int D>
void DynamicAcd<D>::nfi_phase(const std::vector<ParticleMove<D>>& movers,
                              bool retract, util::ThreadPool* pool) {
  if (!nfi_acc_.dense()) {
    // Sparse mode: net the phase's events in the scratch (serially —
    // PairDeltas is single-writer; the scan is a small share of a sparse
    // step) instead of staging every raw event for a compaction sort.
    nfi_scan(nfi_deltas_, movers, retract, 0, movers.size());
    return;
  }
  if (pool == nullptr || pool->size() <= 1 ||
      movers.size() < kParallelMoverCutoff) {
    nfi_scan(nfi_acc_, movers, retract, 0, movers.size());
    return;
  }
  // Shards hold the phase's deltas (retractions wrap modularly); the
  // merge nets them into the live histogram. Counts commute, so the
  // result is independent of scheduling — serial == threaded.
  RankPairShards shards(procs_, pool->size());
  util::parallel_for_chunks(*pool, 0, movers.size(), util::kAutoGrain,
                            [&](std::size_t lo, std::size_t hi) {
                              nfi_scan(shards.local(), movers, retract, lo,
                                       hi);
                            });
  shards.merge_into(nfi_acc_);
}

template <int D>
std::vector<std::unordered_set<std::uint64_t>> DynamicAcd<D>::touched_cells(
    const std::vector<ParticleMove<D>>& movers) const {
  // The cells whose occupant set — and therefore owner (the min particle
  // index over unchanged indices) — can change: each mover's old and new
  // ancestors, at every level *below the point where the two chains
  // merge*. Once old and new share an ancestor, every coarser cell keeps
  // its occupant set verbatim, so its events are identical pre/post and
  // retract/assert would only cancel — a one-cell drift step touches
  // O(1) cells instead of one per level, which is most of the delta
  // path's speed.
  std::vector<std::unordered_set<std::uint64_t>> sets(level_ + 1);
  for (const ParticleMove<D>& mv : movers) {
    std::uint64_t a = fmm::cell_key(positions_[mv.index]);
    std::uint64_t b = fmm::cell_key(mv.to);
    for (unsigned l = level_ + 1; l-- > 0 && a != b;) {
      sets[l].insert(a);
      sets[l].insert(b);
      a >>= D;
      b >>= D;
    }
  }
  return sets;
}

template <int D>
std::uint32_t DynamicAcd<D>::pre_owner(unsigned level,
                                       std::uint64_t key) const {
  // Only meaningful for touched cells (the snapshot writes nothing
  // else); untouched cells keep their owner, so callers read the tree.
  const std::vector<std::uint32_t>& arr = pre_owner_dense_[level];
  if (!arr.empty()) return arr[key];
  return pre_owner_map_[level].at(key);
}

template <int D>
void DynamicAcd<D>::ffi_snapshot(
    const std::vector<std::unordered_set<std::uint64_t>>& touched) {
  // Capture every touched cell's pre-move owner so the FFI delta can be
  // emitted by a single walk after the update. O(touched cells) tree
  // queries replace a full pre-state enumeration of the touched events.
  if (pre_owner_dense_.empty()) {
    pre_owner_dense_.resize(level_ + 1);
    pre_owner_map_.resize(level_ + 1);
    for (unsigned l = 0; l <= level_; ++l) {
      if (D * l <= fmm::DynamicCellTree<D>::kDenseOwnerCap) {
        // Values are gated by touched_bits_, so stale entries from
        // earlier batches are never read — no per-batch clearing.
        pre_owner_dense_[l].resize(std::size_t{1} << (D * l));
      }
    }
  }
  for (unsigned l = 0; l <= level_; ++l) {
    std::vector<std::uint32_t>& arr = pre_owner_dense_[l];
    if (arr.empty()) {
      pre_owner_map_[l].clear();
      for (const std::uint64_t key : touched[l]) {
        pre_owner_map_[l].emplace(key, tree_.owner_or_none(l, key));
      }
    } else {
      for (const std::uint64_t key : touched[l]) {
        arr[key] = tree_.owner_or_none(l, key);
      }
    }
  }
}

template <int D>
void DynamicAcd<D>::ffi_diff(
    const std::vector<std::unordered_set<std::uint64_t>>& touched) {
  if (ffi_.interpolation.dense() && ffi_.interaction.dense()) {
    ffi_diff_walk(touched, ffi_.interpolation, ffi_.interaction);
  } else {
    // Sparse mode: net the batch's events in the scratches instead of
    // staging every raw event for a compaction sort.
    ffi_diff_walk(touched, ffi_interp_deltas_, ffi_inter_deltas_);
  }
}

template <int D>
template <class Sink>
void DynamicAcd<D>::ffi_diff_walk(
    const std::vector<std::unordered_set<std::uint64_t>>& touched,
    Sink& interp, Sink& inter) {
  // One post-update walk over the touched sets emits each affected FFI
  // event as a retract/assert pair: subtract it with the pre-move owners
  // (ffi_snapshot for touched cells, the live tree for untouched ones —
  // their occupant sets are unchanged) and re-add it with the post-move
  // owners. Responsibility is keyed to *changed* cells (pre owner !=
  // post owner):
  //   * a changed cell emits its own interpolation send, the sends of
  //     its unchanged children, and its interaction pairs;
  //   * an unchanged cell — touched or not — emits nothing: every event
  //     it participates in either has no changed endpoint (identical
  //     pre/post, the pair would only cancel) or is emitted by the
  //     changed partner;
  //   * a changed-changed interaction pair is emitted by the smaller key.
  constexpr std::uint32_t kNone = fmm::DynamicCellTree<D>::kNoParticle;
  const unsigned finest = level_;
  for (unsigned l = 0; l <= finest; ++l) {
    for (const std::uint64_t key : touched[l]) {
      const std::uint32_t pre = pre_owner(l, key);
      const std::uint32_t post = tree_.owner_or_none(l, key);
      if (pre == post) continue;  // unchanged: partners emit any diffs
      if (l >= 1) {
        // The parent is occupied whenever the child is, in the matching
        // state; an untouched parent keeps its owner across the update.
        const std::uint64_t pk = key >> D;
        const bool pt = is_touched(touched, l - 1, pk);
        if (pre != kNone) {
          const std::uint32_t pp =
              pt ? pre_owner(l - 1, pk) : tree_.owner_particle(l - 1, pk);
          interp.sub(owners_[pre], owners_[pp]);
        }
        if (post != kNone) {
          interp.add(owners_[post], owners_[tree_.owner_particle(l - 1, pk)]);
        }
      }
      if (l < finest) {
        for (std::uint64_t c = 0; c < (std::uint64_t{1} << D); ++c) {
          const std::uint64_t ck = (key << D) | c;
          const std::uint32_t oc = tree_.owner_or_none(l + 1, ck);
          if (is_touched(touched, l + 1, ck)) {
            // A changed child emits its own send (it sees this cell's
            // pre/post owners); an unchanged one is emitted here.
            if (pre_owner(l + 1, ck) != oc) continue;
          }
          if (oc == kNone) continue;
          if (pre != kNone) interp.sub(owners_[oc], owners_[pre]);
          if (post != kNone) interp.add(owners_[oc], owners_[post]);
        }
      }
      if (l >= 2) {
        const Point<D> cell = morton_point<D>(key);
        fmm::for_each_interaction_keys<D>(cell, l, [&](std::uint64_t qk) {
          const std::uint32_t q_post = tree_.owner_or_none(l, qk);
          std::uint32_t q_pre = q_post;
          if (is_touched(touched, l, qk)) {
            q_pre = pre_owner(l, qk);
            // A changed partner with the smaller key owns the pair.
            if (q_pre != q_post && qk < key) return;
          }
          if (pre != kNone && q_pre != kNone) {
            inter.sub(owners_[q_pre], owners_[pre]);
            inter.sub(owners_[pre], owners_[q_pre]);
          }
          if (post != kNone && q_post != kNone) {
            inter.add(owners_[q_post], owners_[post]);
            inter.add(owners_[post], owners_[q_post]);
          }
        });
      }
    }
  }
}

template <int D>
void DynamicAcd<D>::track_displacement(std::uint32_t index,
                                       const Point<D>& to) {
  const std::uint64_t key = curve_->index(to, level_);
  const auto& [lo, hi] = chunk_keys_[owners_[index]];
  const bool now = key < lo || key > hi;
  if (now == static_cast<bool>(displaced_[index])) return;
  displaced_[index] = now ? 1 : 0;
  if (now) {
    ++displaced_count_;
  } else {
    --displaced_count_;
  }
}

template <int D>
void DynamicAcd<D>::move_particles(std::span<const ParticleMove<D>> moves,
                                   util::ThreadPool* pool) {
  const std::size_t n = positions_.size();

  // Validate and keep the effective movers (position actually changes).
  std::vector<ParticleMove<D>> movers;
  movers.reserve(moves.size());
  std::unordered_set<std::uint32_t> indices;
  indices.reserve(moves.size() * 2);
  for (const ParticleMove<D>& mv : moves) {
    if (mv.index >= n) {
      throw std::invalid_argument("move_particles: index out of range");
    }
    if (!in_grid(mv.to, level_)) {
      throw std::invalid_argument("move_particles: target off the grid");
    }
    if (!indices.insert(mv.index).second) {
      throw std::invalid_argument("move_particles: duplicate particle index");
    }
    if (mv.to == positions_[mv.index]) continue;
    movers.push_back(mv);
  }
  if (movers.empty()) return;
  // Final cells must be distinct: targets pairwise distinct, and a target
  // occupied in the pre-state must be vacated by this very batch — by an
  // *effective* mover; a no-op entry stays put and keeps its cell.
  {
    std::unordered_set<std::uint32_t> vacating;
    vacating.reserve(movers.size() * 2);
    for (const ParticleMove<D>& mv : movers) vacating.insert(mv.index);
    std::unordered_set<std::uint64_t> dests;
    dests.reserve(movers.size() * 2);
    for (const ParticleMove<D>& mv : movers) {
      if (!dests.insert(pack(mv.to, level_)).second) {
        throw std::invalid_argument("move_particles: duplicate target cell");
      }
      const std::int32_t occ = grid_.particle_at(mv.to);
      if (occ != fmm::OccupancyGrid<D>::kEmpty &&
          vacating.count(static_cast<std::uint32_t>(occ)) == 0) {
        throw std::invalid_argument(
            "move_particles: target cell occupied by a stationary particle");
      }
    }
  }

  if (mover_flag_.size() != n) mover_flag_.assign(n, 0);
  for (const ParticleMove<D>& mv : movers) mover_flag_[mv.index] = 1;

  // Retract against the pre-move state.
  nfi_phase(movers, /*retract=*/true, pool);
  const auto touched = touched_cells(movers);
  if (touched_bits_.empty()) {
    touched_bits_.resize(level_ + 1);
    for (unsigned l = 0; l <= level_; ++l) {
      if (D * l <= fmm::DynamicCellTree<D>::kDenseBitsCap) {
        touched_bits_[l].assign((std::size_t{1} << (D * l)) / 64 + 1, 0);
      }
    }
  }
  for (unsigned l = 0; l <= level_; ++l) {
    if (touched_bits_[l].empty()) continue;
    for (const std::uint64_t key : touched[l]) {
      touched_bits_[l][key >> 6] |= std::uint64_t{1} << (key & 63);
    }
  }
  ffi_snapshot(touched);

  // Apply the batch. The grid is slot-exclusive, so all movers vacate
  // before any fills; the cell tree's per-level records are multisets
  // whose mutations commute, so each mover relocates in one pass that
  // stops at its own ancestor-merge point.
  std::vector<Point<D>> old_pos(movers.size());
  for (std::size_t k = 0; k < movers.size(); ++k) {
    old_pos[k] = positions_[movers[k].index];
    positions_[movers[k].index] = movers[k].to;
  }
  for (std::size_t k = 0; k < movers.size(); ++k) grid_.erase(old_pos[k]);
  for (const ParticleMove<D>& mv : movers) {
    grid_.insert(mv.to, static_cast<std::int32_t>(mv.index));
  }
  for (std::size_t k = 0; k < movers.size(); ++k) {
    tree_.move_particle(movers[k].index, old_pos[k], movers[k].to);
  }
  for (const ParticleMove<D>& mv : movers) {
    track_displacement(mv.index, mv.to);
  }
  moves_applied_ += movers.size();

  // Assert against the post-move state.
  nfi_phase(movers, /*retract=*/false, pool);
  ffi_diff(touched);

  // Net the batch's deltas into the live histograms (no-ops for the
  // sinks the dense paths wrote directly). Folds between batches must
  // see fully-applied state, so the scratches never persist past here.
  nfi_deltas_.flush_into(nfi_acc_);
  ffi_interp_deltas_.flush_into(ffi_.interpolation);
  ffi_inter_deltas_.flush_into(ffi_.interaction);

  for (const ParticleMove<D>& mv : movers) mover_flag_[mv.index] = 0;
  for (unsigned l = 0; l <= level_; ++l) {
    if (touched_bits_[l].empty()) continue;
    for (const std::uint64_t key : touched[l]) {
      touched_bits_[l][key >> 6] &= ~(std::uint64_t{1} << (key & 63));
    }
  }

  if (static_cast<double>(displaced_count_) >
      opts_.repartition_threshold * static_cast<double>(n)) {
    rebuild(pool);
  }
}

template <int D>
std::vector<ParticleMove<D>> drift_moves(const std::vector<Point<D>>& positions,
                                         unsigned level, std::uint64_t seed,
                                         std::uint64_t step, double fraction) {
  std::vector<ParticleMove<D>> moves;
  const std::size_t n = positions.size();
  if (n == 0) return moves;

  if (fraction >= 1.0) {
    // Exactly dist::drift_particles, expressed as a move batch.
    std::vector<Point<D>> drifted = positions;
    dist::drift_particles<D>(drifted, level, seed, step);
    for (std::size_t i = 0; i < n; ++i) {
      if (drifted[i] != positions[i]) {
        moves.push_back({static_cast<std::uint32_t>(i), drifted[i]});
      }
    }
    return moves;
  }

  // Same step/rejection dynamics, restricted to ⌈fraction·n⌉ evenly
  // spread particles. Moves are validated against an evolving occupancy
  // set, so the batch's final cells are distinct by construction.
  const std::size_t want = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(n)));
  util::Xoshiro256pp rng(util::substream_seed(seed, 0x5EED0000ull + step));
  std::unordered_set<std::uint64_t> occupied;
  occupied.reserve(n * 2);
  for (const Point<D>& p : positions) occupied.insert(pack(p, level));
  const std::int64_t side = 1ll << level;
  for (std::size_t k = 0; k < want; ++k) {
    const std::size_t i = k * n / want;  // strictly increasing for want <= n
    const Point<D>& p = positions[i];
    Point<D> candidate = p;
    bool zero = true;
    for (int d = 0; d < D; ++d) {
      const auto o = static_cast<std::int64_t>(util::bounded_u64(rng, 3)) - 1;
      const std::int64_t v = static_cast<std::int64_t>(p[d]) + o;
      if (o != 0) zero = false;
      if (v < 0 || v >= side) {
        zero = true;  // off-grid: rejected
        break;
      }
      candidate[d] = static_cast<std::uint32_t>(v);
    }
    if (zero) continue;
    if (!occupied.insert(pack(candidate, level)).second) continue;
    occupied.erase(pack(p, level));
    moves.push_back({static_cast<std::uint32_t>(i), candidate});
  }
  return moves;
}

template class DynamicAcd<2>;
template class DynamicAcd<3>;
template std::vector<ParticleMove<2>> drift_moves<2>(
    const std::vector<Point<2>>&, unsigned, std::uint64_t, std::uint64_t,
    double);
template std::vector<ParticleMove<3>> drift_moves<3>(
    const std::vector<Point<3>>&, unsigned, std::uint64_t, std::uint64_t,
    double);

}  // namespace sfc::core
