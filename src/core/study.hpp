// study.hpp — the paper's experimental designs as named sweep presets.
//
// The declarative core::Study grammar plus run_study (core/sweep.hpp) is
// the primary API: each table/figure family is one Study value. The
// run_*_study functions below are retained as deprecated compatibility
// wrappers — they translate their legacy config structs into a Study,
// execute it on the sweep engine, and reshape the results, so existing
// tests and examples compile unchanged and produce bit-identical values:
//   * run_combination_study — Tables I & II: all {particle-order,
//     processor-order} SFC pairs, per input distribution, on one topology;
//   * run_topology_study    — Figure 6: topology comparison with the same
//     SFC in both roles;
//   * run_scaling_study     — Figure 7: ACD as a function of the processor
//     count, per SFC;
//   * run_anns_study        — Figure 5: neighbor stretch vs resolution
//     (not an ACD sweep; unchanged).
// New code should build a Study and call run_study directly.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/acd.hpp"
#include "core/anns.hpp"
#include "core/sweep.hpp"
#include "util/stats.hpp"

namespace sfc::core {

/// Optional progress sink (long paper-scale runs report per-cell progress).
using ProgressFn = std::function<void(const std::string&)>;

// ---------------------------------------------------------------- Tables I/II
struct CombinationStudyConfig {
  std::size_t particles = 250000;
  unsigned level = 10;       // 1024 x 1024 spatial resolution
  topo::Rank procs = 65536;  // 256 x 256 torus
  topo::TopologyKind topology = topo::TopologyKind::kTorus;
  unsigned radius = 1;
  std::uint64_t seed = 1;
  unsigned trials = 1;
  bool near_field = true;  ///< evaluate the NFI model (Table I)
  bool far_field = true;   ///< evaluate the FFI model (Table II)
  std::vector<dist::DistKind> distributions{dist::kAllDistributions,
                                            dist::kAllDistributions + 3};
  std::vector<CurveKind> curves{kPaperCurves, kPaperCurves + 4};
};

struct CombinationStudyResult {
  CombinationStudyConfig config;
  /// cells[d][proc_curve][particle_curve], indices into config vectors.
  /// Values are across-trial means.
  std::vector<std::vector<std::vector<AcdCell>>> cells;
  /// Matching across-trial statistics (same indexing).
  std::vector<std::vector<std::vector<AcdCellStats>>> stats;
};

/// Deprecated compatibility wrapper: translates the config into a Study
/// (both curve roles swept) and runs it on the sweep engine.
CombinationStudyResult run_combination_study(
    const CombinationStudyConfig& config, util::ThreadPool* pool = nullptr,
    const ProgressFn& progress = {});

// ---------------------------------------------------------------- Figure 6
struct TopologyStudyConfig {
  std::size_t particles = 1000000;
  unsigned level = 12;  // 4096 x 4096
  topo::Rank procs = 65536;
  unsigned radius = 4;
  dist::DistKind distribution = dist::DistKind::kUniform;
  std::uint64_t seed = 1;
  unsigned trials = 1;
  std::vector<topo::TopologyKind> topologies{topo::kAllTopologies,
                                             topo::kAllTopologies + 6};
  std::vector<CurveKind> curves{kPaperCurves, kPaperCurves + 4};
};

struct TopologyStudyResult {
  TopologyStudyConfig config;
  /// cells[topology][curve].
  std::vector<std::vector<AcdCell>> cells;
};

/// Deprecated compatibility wrapper: translates the config into a Study
/// (paired curves, topology axis swept) and runs it on the sweep engine.
TopologyStudyResult run_topology_study(const TopologyStudyConfig& config,
                                       util::ThreadPool* pool = nullptr,
                                       const ProgressFn& progress = {});

// ---------------------------------------------------------------- Figure 7
struct ScalingStudyConfig {
  std::size_t particles = 1000000;
  unsigned level = 12;
  std::vector<topo::Rank> proc_counts{64,   256,   1024,
                                      4096, 16384, 65536};
  topo::TopologyKind topology = topo::TopologyKind::kTorus;
  unsigned radius = 1;
  dist::DistKind distribution = dist::DistKind::kUniform;
  std::uint64_t seed = 1;
  unsigned trials = 1;
  std::vector<CurveKind> curves{kPaperCurves, kPaperCurves + 4};
};

struct ScalingStudyResult {
  ScalingStudyConfig config;
  /// cells[curve][proc_count_index].
  std::vector<std::vector<AcdCell>> cells;
};

/// Deprecated compatibility wrapper: translates the config into a Study
/// (paired curves, processor-count axis swept) and runs it on the engine.
ScalingStudyResult run_scaling_study(const ScalingStudyConfig& config,
                                     util::ThreadPool* pool = nullptr,
                                     const ProgressFn& progress = {});

// ---------------------------------------------------------------- Figure 5
struct AnnsStudyConfig {
  std::vector<unsigned> levels{1, 2, 3, 4, 5, 6, 7, 8, 9};  // 2x2 .. 512x512
  unsigned radius = 1;
  std::vector<CurveKind> curves{kPaperCurves, kPaperCurves + 4};
};

struct AnnsStudyResult {
  AnnsStudyConfig config;
  /// stats[curve][level_index].
  std::vector<std::vector<StretchStats>> stats;
};

AnnsStudyResult run_anns_study(const AnnsStudyConfig& config,
                               util::ThreadPool* pool = nullptr,
                               const ProgressFn& progress = {});

}  // namespace sfc::core
