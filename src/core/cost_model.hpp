// cost_model.hpp — from hop counts to estimated communication time.
//
// ACD is a pure distance metric; to "arrive at an estimate for the
// expected communication delay" (paper abstract) it must be combined with
// a machine model. This module implements the standard alpha-beta(-hop)
// model:
//
//   T(message) = alpha + hops * per_hop + bytes / bandwidth
//
// summed over a communication set, with message sizes derived from the FMM
// payloads: a near-field message carries one particle record, a far-field
// message carries a truncated multipole/local expansion. The result is an
// *aggregate serial* cost — no overlap or contention — which is precisely
// the fidelity level the ACD metric operates at; use core/contention.hpp
// when link serialization matters.
#pragma once

#include <cstdint>

#include "core/acd.hpp"
#include "core/rank_pair.hpp"
#include "fmm/ffi.hpp"

namespace sfc::core {

struct CostParams {
  double alpha_us = 1.0;        ///< per-message launch latency (microseconds)
  double per_hop_us = 0.05;     ///< additional latency per network hop
  double bandwidth_bytes_per_us = 10000.0;  ///< ~10 GB/s default
  std::uint32_t particle_bytes = 32;   ///< payload of one NFI message
  std::uint32_t expansion_terms = 12;  ///< multipole order p (FFI payload)

  /// Bytes of one far-field message: p+1 complex<double> coefficients.
  std::uint32_t expansion_bytes() const noexcept {
    return (expansion_terms + 1) * 16;
  }
};

struct CostEstimate {
  double nfi_us = 0.0;
  double ffi_us = 0.0;
  double total_us() const noexcept { return nfi_us + ffi_us; }
};

/// Cost of a generic communication set with fixed message size.
double communication_cost_us(const CommTotals& totals,
                             std::uint32_t message_bytes,
                             const CostParams& params);

/// Cost of a rank-pair histogram folded through `net`'s kernel — the
/// million-rank entry point: the fold never materializes p×p state.
double communication_cost_us(const RankPairAccumulator& pairs,
                             const topo::Topology& net,
                             std::uint32_t message_bytes,
                             const CostParams& params);

/// Cost of a full FMM iteration's communication (NFI + FFI).
CostEstimate fmm_cost_estimate(const CommTotals& nfi,
                               const fmm::FfiTotals& ffi,
                               const CostParams& params);

/// Same, from the topology-independent histograms (folds via net).
CostEstimate fmm_cost_estimate(const RankPairAccumulator& nfi,
                               const fmm::FfiHistograms& ffi,
                               const topo::Topology& net,
                               const CostParams& params);

}  // namespace sfc::core
