// acd.hpp — the Average Communicated Distance pipeline (paper Section IV).
//
// Given a particle set, the pipeline is:
//   1. order the particles with the particle-order SFC,
//   2. cut the order into p consecutive chunks (fmm::Partition),
//   3. rank the processors with the processor-order SFC (mesh/torus only),
//   4. ship chunk i to processor i,
// after which the NFI and FFI models count every pairwise communication and
// its hop distance. AcdInstance holds the p-independent preprocessing
// (sorted particles, occupancy grid, occupied-cell tree) so one instance
// can be evaluated against many topologies and processor counts — exactly
// what the paper's Figure 6/7 sweeps need.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/totals.hpp"
#include "distribution/distribution.hpp"
#include "fmm/ffi.hpp"
#include "fmm/nfi.hpp"
#include "fmm/occupancy.hpp"
#include "fmm/partition.hpp"
#include "sfc/curve.hpp"
#include "topology/factory.hpp"
#include "topology/topology.hpp"

namespace sfc::core {

/// A fully specified experimental configuration (one cell of a paper table).
template <int D>
struct Scenario {
  std::size_t particles = 0;
  unsigned level = 0;  ///< spatial resolution: 2^level per dimension
  topo::Rank procs = 1;
  CurveKind particle_curve = CurveKind::kHilbert;
  CurveKind processor_curve = CurveKind::kHilbert;
  topo::TopologyKind topology = topo::TopologyKind::kTorus;
  dist::DistKind distribution = dist::DistKind::kUniform;
  unsigned radius = 1;  ///< near-field Chebyshev radius
  std::uint64_t seed = 1;
};

using Scenario2 = Scenario<2>;
using Scenario3 = Scenario<3>;

struct AcdResult {
  CommTotals nfi;
  fmm::FfiTotals ffi;

  double nfi_acd() const noexcept { return nfi.acd(); }
  double ffi_acd() const noexcept { return ffi.total().acd(); }
};

/// Preprocessed particle-side state: particles sorted by the particle-order
/// SFC, plus the occupancy grid (NFI) and occupied-cell tree (FFI).
/// Everything here is independent of the processor count and topology.
template <int D>
class AcdInstance {
 public:
  AcdInstance(std::vector<Point<D>> particles, unsigned level,
              const Curve<D>& particle_curve);

  /// Adopt an already curve-sorted particle sequence (the exact order the
  /// sorting constructor would produce). The sweep engine builds the
  /// sorted sequence by scattering through a cached rank table, which
  /// skips the per-curve key computation and comparison sort.
  static AcdInstance from_sorted(std::vector<Point<D>> sorted,
                                 unsigned level) {
    return AcdInstance(FromSortedTag{}, std::move(sorted), level);
  }

  unsigned level() const noexcept { return level_; }
  const std::vector<Point<D>>& particles() const noexcept {
    return particles_;
  }
  const fmm::OccupancyGrid<D>& grid() const noexcept { return grid_; }
  const fmm::CellTree<D>& tree() const noexcept { return tree_; }

  /// Bytes held by the preprocessed state (sweep-cache accounting).
  std::size_t memory_bytes() const noexcept {
    return particles_.capacity() * sizeof(Point<D>) + grid_.memory_bytes() +
           tree_.memory_bytes();
  }

  /// Near-field totals for a processor count/topology choice.
  CommTotals nfi(const fmm::Partition& part, const topo::Topology& net,
                 unsigned radius,
                 fmm::NeighborNorm norm = fmm::NeighborNorm::kChebyshev,
                 util::ThreadPool* pool = nullptr) const;

  /// Far-field totals for a processor count/topology choice.
  fmm::FfiTotals ffi(const fmm::Partition& part, const topo::Topology& net,
                     util::ThreadPool* pool = nullptr) const;

 private:
  struct FromSortedTag {};
  AcdInstance(FromSortedTag, std::vector<Point<D>> sorted, unsigned level)
      : level_(level),
        particles_(std::move(sorted)),
        grid_(particles_, level),
        tree_(particles_, level) {}

  unsigned level_;
  std::vector<Point<D>> particles_;
  fmm::OccupancyGrid<D> grid_;
  fmm::CellTree<D> tree_;
};

/// Sort particles by their position on the given curve (batched encode +
/// stable radix argsort). This is the exact order AcdInstance's sorting
/// constructor produces; the incremental dynamics engine calls it when a
/// re-partition triggers, so a rebuilt state matches a freshly ordered
/// instance bit-for-bit.
template <int D>
std::vector<Point<D>> sort_by_curve(std::vector<Point<D>> particles,
                                    unsigned level, const Curve<D>& curve);

/// One-shot evaluation of a scenario: sample, order, distribute, count.
template <int D>
AcdResult compute_acd(const Scenario<D>& scenario,
                      util::ThreadPool* pool = nullptr);

extern template class AcdInstance<2>;
extern template class AcdInstance<3>;
extern template std::vector<Point<2>> sort_by_curve<2>(std::vector<Point<2>>,
                                                       unsigned,
                                                       const Curve<2>&);
extern template std::vector<Point<3>> sort_by_curve<3>(std::vector<Point<3>>,
                                                       unsigned,
                                                       const Curve<3>&);
extern template AcdResult compute_acd<2>(const Scenario<2>&,
                                         util::ThreadPool*);
extern template AcdResult compute_acd<3>(const Scenario<3>&,
                                         util::ThreadPool*);

}  // namespace sfc::core
