#include "core/cost_model.hpp"

namespace sfc::core {

double communication_cost_us(const CommTotals& totals,
                             std::uint32_t message_bytes,
                             const CostParams& params) {
  const double messages = static_cast<double>(totals.count);
  const double hops = static_cast<double>(totals.hops);
  return messages * params.alpha_us + hops * params.per_hop_us +
         messages * static_cast<double>(message_bytes) /
             params.bandwidth_bytes_per_us;
}

double communication_cost_us(const RankPairAccumulator& pairs,
                             const topo::Topology& net,
                             std::uint32_t message_bytes,
                             const CostParams& params) {
  return communication_cost_us(net.fold(pairs.view()), message_bytes, params);
}

CostEstimate fmm_cost_estimate(const CommTotals& nfi,
                               const fmm::FfiTotals& ffi,
                               const CostParams& params) {
  CostEstimate est;
  est.nfi_us = communication_cost_us(nfi, params.particle_bytes, params);
  est.ffi_us =
      communication_cost_us(ffi.total(), params.expansion_bytes(), params);
  return est;
}

CostEstimate fmm_cost_estimate(const RankPairAccumulator& nfi,
                               const fmm::FfiHistograms& ffi,
                               const topo::Topology& net,
                               const CostParams& params) {
  return fmm_cost_estimate(net.fold(nfi.view()), fmm::ffi_fold(ffi, net),
                           params);
}

}  // namespace sfc::core
