// contention.hpp — link-level congestion analysis (paper future-work i).
//
// The ACD metric is contention-unaware by design: it prices a
// communication by its path length only. This extension routes every
// message of the NFI/FFI communication sets over the mesh/torus links with
// deterministic dimension-order (X-then-Y) routing and reports per-link
// load statistics — the max-loaded link is the standard proxy for the
// serialization bottleneck the paper's Section VI caveats mention for the
// hypercube and quadtree results.
//
// The model deliberately stays simple (static routing, unit message size,
// no temporal schedule); it answers the paper's open question "does the
// SFC ordering that minimizes ACD also keep the worst link cool?".
#pragma once

#include <cstdint>
#include <vector>

#include "core/acd.hpp"
#include "topology/grid.hpp"

namespace sfc::core {

struct CongestionStats {
  std::uint64_t messages = 0;    ///< messages routed (zero-hop included)
  std::uint64_t hops = 0;        ///< total link traversals (== ACD * messages)
  std::uint64_t max_link_load = 0;
  std::uint64_t links_used = 0;  ///< directed links with nonzero load
  std::uint64_t total_links = 0; ///< directed links in the network

  /// Mean load over the links that carried traffic.
  double mean_used_load() const noexcept {
    return links_used == 0
               ? 0.0
               : static_cast<double>(hops) / static_cast<double>(links_used);
  }

  /// Max-to-mean imbalance; 0 when nothing was routed.
  double imbalance() const noexcept {
    const double mean = mean_used_load();
    return mean == 0.0 ? 0.0 : static_cast<double>(max_link_load) / mean;
  }
};

/// Per-link load accumulator for a 2-D mesh or torus with dimension-order
/// routing (X first, then Y; on the torus each axis takes its shorter way
/// around, breaking ties toward the positive direction).
class LinkLoadMap {
 public:
  /// `level`: the grid is 2^level x 2^level processors. `wrap`: torus.
  LinkLoadMap(unsigned level, bool wrap);

  /// Route `count` identical messages between processor grid coordinates
  /// in one link walk (loads are additive, so this is exactly `count`
  /// unit routes). The congestion models aggregate their communication
  /// sets into per-rank-pair counts first (fmm::nfi_pair_counts /
  /// ffi_pair_counts) and call this once per distinct pair.
  void route(const Point2& from, const Point2& to, std::uint64_t count = 1);

  CongestionStats stats() const;
  void reset();

  /// Load on the directed link leaving (x, y) in direction `dir`
  /// (0:+x, 1:-x, 2:+y, 3:-y). Exposed for tests.
  std::uint64_t link_load(std::uint32_t x, std::uint32_t y,
                          unsigned dir) const;

 private:
  unsigned level_;
  std::uint32_t side_;
  bool wrap_;
  std::uint64_t messages_ = 0;
  std::vector<std::uint64_t> load_;  // [ (y*side + x) * 4 + dir ]
};

/// Congestion of the near-field communication set of a prepared instance
/// on an SFC-ranked grid topology.
CongestionStats nfi_congestion(const AcdInstance<2>& instance,
                               const fmm::Partition& part,
                               const topo::GridTopologyBase<2>& net,
                               bool wrap, unsigned radius,
                               fmm::NeighborNorm norm =
                                   fmm::NeighborNorm::kChebyshev);

/// Congestion of the far-field communication set.
CongestionStats ffi_congestion(const AcdInstance<2>& instance,
                               const fmm::Partition& part,
                               const topo::GridTopologyBase<2>& net,
                               bool wrap);

}  // namespace sfc::core
