#include "core/anns.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sfc/point.hpp"
#include "util/rng.hpp"

namespace sfc::core {
namespace {

struct StretchAccum {
  double sum = 0.0;
  double max = 0.0;
  std::uint64_t pairs = 0;

  StretchAccum& operator+=(const StretchAccum& o) noexcept {
    sum += o.sum;
    max = std::max(max, o.max);
    pairs += o.pairs;
    return *this;
  }
};

}  // namespace

StretchStats neighbor_stretch(const Curve<2>& curve, unsigned level,
                              unsigned radius, util::ThreadPool* pool) {
  if (radius == 0) throw std::invalid_argument("radius must be >= 1");
  if (level > 12) {
    throw std::invalid_argument("neighbor_stretch supports level <= 12");
  }
  const std::uint32_t side = 1u << level;
  const std::uint64_t n = grid_size<2>(level);

  // Precompute the curve index of every grid point, addressed row-major.
  std::vector<std::uint64_t> index(n);
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      index[static_cast<std::uint64_t>(y) * side + x] =
          curve.index(make_point(x, y), level);
    }
  }

  const std::int64_t r = radius;
  const std::int64_t s = side;

  // Count each unordered pair once, from its lexicographically smaller
  // endpoint: offsets with dy > 0, or dy == 0 and dx > 0.
  auto row_range = [&](std::size_t y_lo, std::size_t y_hi) {
    StretchAccum acc;
    for (std::int64_t y = static_cast<std::int64_t>(y_lo);
         y < static_cast<std::int64_t>(y_hi); ++y) {
      for (std::int64_t x = 0; x < s; ++x) {
        const std::uint64_t ix = index[static_cast<std::uint64_t>(y * s + x)];
        for (std::int64_t dy = 0; dy <= r; ++dy) {
          const std::int64_t ny = y + dy;
          if (ny >= s) break;
          const std::int64_t dx_lo = dy == 0 ? 1 : -(r - dy);
          const std::int64_t dx_hi = r - dy;
          for (std::int64_t dx = dx_lo; dx <= dx_hi; ++dx) {
            const std::int64_t nx = x + dx;
            if (nx < 0 || nx >= s) continue;
            const std::uint64_t iy =
                index[static_cast<std::uint64_t>(ny * s + nx)];
            const std::uint64_t linear = ix > iy ? ix - iy : iy - ix;
            const std::int64_t spatial = dy + (dx < 0 ? -dx : dx);
            const double stretch = static_cast<double>(linear) /
                                   static_cast<double>(spatial);
            acc.sum += stretch;
            acc.max = std::max(acc.max, stretch);
            ++acc.pairs;
          }
        }
      }
    }
    return acc;
  };

  StretchAccum acc;
  if (pool != nullptr && pool->size() > 1 && side >= 64) {
    acc = util::parallel_reduce_chunks(*pool, 0, side, 8, StretchAccum{},
                                       row_range);
  } else {
    acc = row_range(0, side);
  }

  StretchStats stats;
  stats.pairs = acc.pairs;
  stats.maximum = acc.max;
  stats.average = acc.pairs == 0 ? 0.0 : acc.sum / static_cast<double>(acc.pairs);
  return stats;
}

}  // namespace sfc::core

namespace sfc::core {

StretchStats all_pairs_stretch(const Curve<2>& curve, unsigned level,
                               std::uint64_t sample_pairs,
                               std::uint64_t seed) {
  if (level > max_level<2>()) {
    throw std::invalid_argument("level too large");
  }
  const std::uint64_t side = 1ull << level;
  util::Xoshiro256pp rng(util::substream_seed(seed, 17));

  StretchStats stats;
  double sum = 0.0;
  for (std::uint64_t s = 0; s < sample_pairs; ++s) {
    Point2 a{}, b{};
    do {
      a = make_point(static_cast<std::uint32_t>(util::bounded_u64(rng, side)),
                     static_cast<std::uint32_t>(util::bounded_u64(rng, side)));
      b = make_point(static_cast<std::uint32_t>(util::bounded_u64(rng, side)),
                     static_cast<std::uint32_t>(util::bounded_u64(rng, side)));
    } while (a == b);
    const std::uint64_t ia = curve.index(a, level);
    const std::uint64_t ib = curve.index(b, level);
    const double stretch =
        static_cast<double>(ia > ib ? ia - ib : ib - ia) /
        static_cast<double>(manhattan(a, b));
    sum += stretch;
    stats.maximum = std::max(stats.maximum, stretch);
    ++stats.pairs;
  }
  stats.average = stats.pairs == 0 ? 0.0 : sum / static_cast<double>(stats.pairs);
  return stats;
}

}  // namespace sfc::core
