// advisor.hpp — the paper's recommendations (Sections VI, VIII) as code.
//
// Given what a practitioner knows about the workload — the input
// distribution, the network topology, and whether communication is
// dominated by near-field or far-field traffic — the advisor returns the
// particle-order and processor-order SFCs the paper's data favors, with the
// supporting observation spelled out. This is the "design guide for
// algorithm developers" the paper's introduction promises.
#pragma once

#include <string>

#include "distribution/distribution.hpp"
#include "sfc/curve.hpp"
#include "topology/topology.hpp"

namespace sfc::core {

enum class Workload {
  kNearFieldDominant,  // dense local interactions (large n, large radius)
  kFarFieldDominant,   // hierarchy-heavy (deep trees, sparse domains)
  kBalanced,
};

struct Recommendation {
  CurveKind particle_curve;
  CurveKind processor_curve;
  std::string rationale;  // the observation(s) backing the choice
};

/// Recommend SFCs for the given setting.
Recommendation recommend(dist::DistKind distribution,
                         topo::TopologyKind topology, Workload workload);

}  // namespace sfc::core
