#include "core/report.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace sfc::core {
namespace {

std::vector<std::string> curve_header(const std::vector<CurveKind>& curves,
                                      const std::string& first) {
  std::vector<std::string> header = {first};
  for (const CurveKind c : curves) header.emplace_back(curve_name(c));
  return header;
}

}  // namespace

util::Table combination_table(const CombinationStudyResult& result,
                              std::size_t dist_index, bool far_field) {
  const auto& cfg = result.config;
  util::Table table(std::string(dist_name(cfg.distributions[dist_index])) +
                    " distribution (" + (far_field ? "FFI" : "NFI") + ")");
  table.set_header(curve_header(cfg.curves, "Processor Order v"));
  table.mark_minima(true);
  for (std::size_t rc = 0; rc < cfg.curves.size(); ++rc) {
    std::vector<double> row;
    for (std::size_t pc = 0; pc < cfg.curves.size(); ++pc) {
      const auto& cell = result.cells[dist_index][rc][pc];
      row.push_back(far_field ? cell.ffi_acd : cell.nfi_acd);
    }
    table.add_row(std::string(curve_name(cfg.curves[rc])), std::move(row));
  }
  return table;
}

util::Table topology_table(const TopologyStudyResult& result,
                           bool far_field) {
  const auto& cfg = result.config;
  util::Table table(far_field ? "far-field ACD per topology"
                              : "near-field ACD per topology");
  table.set_header(curve_header(cfg.curves, "topology"));
  table.mark_minima(true);
  for (std::size_t t = 0; t < cfg.topologies.size(); ++t) {
    std::vector<double> row;
    for (std::size_t c = 0; c < cfg.curves.size(); ++c) {
      row.push_back(far_field ? result.cells[t][c].ffi_acd
                              : result.cells[t][c].nfi_acd);
    }
    table.add_row(std::string(topology_name(cfg.topologies[t])),
                  std::move(row));
  }
  return table;
}

util::Table scaling_table(const ScalingStudyResult& result, bool far_field) {
  const auto& cfg = result.config;
  util::Table table(far_field ? "far-field ACD vs processor count"
                              : "near-field ACD vs processor count");
  table.set_header(curve_header(cfg.curves, "processors"));
  table.mark_minima(true);
  for (std::size_t p = 0; p < cfg.proc_counts.size(); ++p) {
    std::vector<double> row;
    for (std::size_t c = 0; c < cfg.curves.size(); ++c) {
      row.push_back(far_field ? result.cells[c][p].ffi_acd
                              : result.cells[c][p].nfi_acd);
    }
    table.add_row("p=" + std::to_string(cfg.proc_counts[p]), std::move(row));
  }
  return table;
}

util::Table anns_table(const AnnsStudyResult& result, bool maxima) {
  const auto& cfg = result.config;
  util::Table table(maxima
                        ? "maximum stretch vs resolution"
                        : "average stretch vs resolution (radius " +
                              std::to_string(cfg.radius) + ")");
  table.set_header(curve_header(cfg.curves, "resolution"));
  for (std::size_t l = 0; l < cfg.levels.size(); ++l) {
    std::vector<double> row;
    for (std::size_t c = 0; c < cfg.curves.size(); ++c) {
      row.push_back(maxima ? result.stats[c][l].maximum
                           : result.stats[c][l].average);
    }
    const unsigned side = 1u << cfg.levels[l];
    table.add_row(std::to_string(side) + "x" + std::to_string(side),
                  std::move(row));
  }
  return table;
}

util::Table combination_table(const StudyResult& result,
                              std::size_t dist_index, bool far_field) {
  const Study& s = result.study;
  util::Table table(std::string(dist_name(s.distributions[dist_index])) +
                    " distribution (" + (far_field ? "FFI" : "NFI") + ")");
  table.set_header(curve_header(s.particle_curves, "Processor Order v"));
  table.mark_minima(true);
  for (std::size_t rc = 0; rc < s.processor_order_count(); ++rc) {
    std::vector<double> row;
    for (std::size_t pc = 0; pc < s.particle_curves.size(); ++pc) {
      const AcdCell& cell = result.cell(dist_index, pc, 0, rc, 0);
      row.push_back(far_field ? cell.ffi_acd : cell.nfi_acd);
    }
    const CurveKind rkind = s.paired_curves() ? s.particle_curves[rc]
                                              : s.processor_curves[rc];
    table.add_row(std::string(curve_name(rkind)), std::move(row));
  }
  return table;
}

util::Table topology_table(const StudyResult& result, bool far_field) {
  const Study& s = result.study;
  util::Table table(far_field ? "far-field ACD per topology"
                              : "near-field ACD per topology");
  table.set_header(curve_header(s.particle_curves, "topology"));
  table.mark_minima(true);
  for (std::size_t ti = 0; ti < s.topologies.size(); ++ti) {
    std::vector<double> row;
    for (std::size_t c = 0; c < s.particle_curves.size(); ++c) {
      const AcdCell& cell = result.cell(0, c, 0, 0, ti);
      row.push_back(far_field ? cell.ffi_acd : cell.nfi_acd);
    }
    table.add_row(std::string(topology_name(s.topologies[ti])),
                  std::move(row));
  }
  return table;
}

util::Table scaling_table(const StudyResult& result, bool far_field) {
  const Study& s = result.study;
  util::Table table(far_field ? "far-field ACD vs processor count"
                              : "near-field ACD vs processor count");
  table.set_header(curve_header(s.particle_curves, "processors"));
  table.mark_minima(true);
  for (std::size_t pi = 0; pi < s.proc_counts.size(); ++pi) {
    std::vector<double> row;
    for (std::size_t c = 0; c < s.particle_curves.size(); ++c) {
      const AcdCell& cell = result.cell(0, c, pi, 0, 0);
      row.push_back(far_field ? cell.ffi_acd : cell.nfi_acd);
    }
    table.add_row("p=" + std::to_string(s.proc_counts[pi]), std::move(row));
  }
  return table;
}

std::string study_json(const StudyResult& result) {
  const Study& s = result.study;
  std::ostringstream os;
  os << std::setprecision(17);

  auto string_array = [&os](const auto& items, auto name_of) {
    os << '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) os << ',';
      os << '"' << util::json_escape(std::string(name_of(items[i]))) << '"';
    }
    os << ']';
  };

  os << "{\"study\":{\"name\":\"" << util::json_escape(s.name) << '"'
     << ",\"particles\":" << s.particles << ",\"level\":" << s.level
     << ",\"radius\":" << s.radius << ",\"seed\":" << s.seed
     << ",\"trials\":" << s.trials
     << ",\"near_field\":" << (s.near_field ? "true" : "false")
     << ",\"far_field\":" << (s.far_field ? "true" : "false")
     << ",\"distributions\":";
  string_array(s.distributions, [](dist::DistKind k) { return dist_name(k); });
  os << ",\"particle_curves\":";
  string_array(s.particle_curves, [](CurveKind k) { return curve_name(k); });
  os << ",\"processor_curves\":";
  string_array(s.processor_curves, [](CurveKind k) { return curve_name(k); });
  os << ",\"topologies\":";
  string_array(s.topologies,
               [](topo::TopologyKind k) { return topology_name(k); });
  os << ",\"proc_counts\":[";
  for (std::size_t i = 0; i < s.proc_counts.size(); ++i) {
    if (i) os << ',';
    os << s.proc_counts[i];
  }
  os << "]},\"cells\":[";

  bool first = true;
  for (std::size_t d = 0; d < s.distributions.size(); ++d) {
    for (std::size_t pc = 0; pc < s.particle_curves.size(); ++pc) {
      for (std::size_t pi = 0; pi < s.proc_counts.size(); ++pi) {
        for (std::size_t rc = 0; rc < s.processor_order_count(); ++rc) {
          const CurveKind rkind = s.paired_curves() ? s.particle_curves[pc]
                                                    : s.processor_curves[rc];
          for (std::size_t ti = 0; ti < s.topologies.size(); ++ti) {
            const AcdCell& cell = result.cell(d, pc, pi, rc, ti);
            const AcdCellStats& stats = result.cell_stats(d, pc, pi, rc, ti);
            if (!first) os << ',';
            first = false;
            os << "{\"distribution\":\"" << dist_name(s.distributions[d])
               << "\",\"particle_curve\":\""
               << curve_name(s.particle_curves[pc]) << "\",\"procs\":"
               << s.proc_counts[pi] << ",\"processor_curve\":\""
               << curve_name(rkind) << "\",\"topology\":\""
               << topology_name(s.topologies[ti]) << '"';
            if (s.near_field) {
              os << ",\"nfi_acd\":" << cell.nfi_acd
                 << ",\"nfi_ci95\":" << stats.nfi.ci95_halfwidth();
            }
            if (s.far_field) {
              os << ",\"ffi_acd\":" << cell.ffi_acd
                 << ",\"ffi_ci95\":" << stats.ffi.ci95_halfwidth();
            }
            os << '}';
          }
        }
      }
    }
  }

  os << "],\"sweep\":{\"stages\":{";
  for (unsigned i = 0; i < kSweepStageCount; ++i) {
    if (i) os << ',';
    const auto stage = static_cast<SweepStage>(i);
    os << '"' << sweep_stage_name(stage) << "\":{\"hits\":"
       << result.sweep.stage(stage).hits
       << ",\"misses\":" << result.sweep.stage(stage).misses << '}';
  }
  os << "},\"hits\":" << result.sweep.total_hits()
     << ",\"misses\":" << result.sweep.total_misses()
     << ",\"evictions\":" << result.sweep.evictions
     << ",\"bytes\":" << result.sweep.bytes
     << ",\"peak_bytes\":" << result.sweep.peak_bytes << "}}";
  return os.str();
}

void write_file(const std::string& path, const util::Table& table,
                util::TableStyle style) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  table.print(os, style);
}

}  // namespace sfc::core
