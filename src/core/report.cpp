#include "core/report.hpp"

#include <fstream>
#include <stdexcept>

namespace sfc::core {
namespace {

std::vector<std::string> curve_header(const std::vector<CurveKind>& curves,
                                      const std::string& first) {
  std::vector<std::string> header = {first};
  for (const CurveKind c : curves) header.emplace_back(curve_name(c));
  return header;
}

}  // namespace

util::Table combination_table(const CombinationStudyResult& result,
                              std::size_t dist_index, bool far_field) {
  const auto& cfg = result.config;
  util::Table table(std::string(dist_name(cfg.distributions[dist_index])) +
                    " distribution (" + (far_field ? "FFI" : "NFI") + ")");
  table.set_header(curve_header(cfg.curves, "Processor Order v"));
  table.mark_minima(true);
  for (std::size_t rc = 0; rc < cfg.curves.size(); ++rc) {
    std::vector<double> row;
    for (std::size_t pc = 0; pc < cfg.curves.size(); ++pc) {
      const auto& cell = result.cells[dist_index][rc][pc];
      row.push_back(far_field ? cell.ffi_acd : cell.nfi_acd);
    }
    table.add_row(std::string(curve_name(cfg.curves[rc])), std::move(row));
  }
  return table;
}

util::Table topology_table(const TopologyStudyResult& result,
                           bool far_field) {
  const auto& cfg = result.config;
  util::Table table(far_field ? "far-field ACD per topology"
                              : "near-field ACD per topology");
  table.set_header(curve_header(cfg.curves, "topology"));
  table.mark_minima(true);
  for (std::size_t t = 0; t < cfg.topologies.size(); ++t) {
    std::vector<double> row;
    for (std::size_t c = 0; c < cfg.curves.size(); ++c) {
      row.push_back(far_field ? result.cells[t][c].ffi_acd
                              : result.cells[t][c].nfi_acd);
    }
    table.add_row(std::string(topology_name(cfg.topologies[t])),
                  std::move(row));
  }
  return table;
}

util::Table scaling_table(const ScalingStudyResult& result, bool far_field) {
  const auto& cfg = result.config;
  util::Table table(far_field ? "far-field ACD vs processor count"
                              : "near-field ACD vs processor count");
  table.set_header(curve_header(cfg.curves, "processors"));
  table.mark_minima(true);
  for (std::size_t p = 0; p < cfg.proc_counts.size(); ++p) {
    std::vector<double> row;
    for (std::size_t c = 0; c < cfg.curves.size(); ++c) {
      row.push_back(far_field ? result.cells[c][p].ffi_acd
                              : result.cells[c][p].nfi_acd);
    }
    table.add_row("p=" + std::to_string(cfg.proc_counts[p]), std::move(row));
  }
  return table;
}

util::Table anns_table(const AnnsStudyResult& result, bool maxima) {
  const auto& cfg = result.config;
  util::Table table(maxima
                        ? "maximum stretch vs resolution"
                        : "average stretch vs resolution (radius " +
                              std::to_string(cfg.radius) + ")");
  table.set_header(curve_header(cfg.curves, "resolution"));
  for (std::size_t l = 0; l < cfg.levels.size(); ++l) {
    std::vector<double> row;
    for (std::size_t c = 0; c < cfg.curves.size(); ++c) {
      row.push_back(maxima ? result.stats[c][l].maximum
                           : result.stats[c][l].average);
    }
    const unsigned side = 1u << cfg.levels[l];
    table.add_row(std::to_string(side) + "x" + std::to_string(side),
                  std::move(row));
  }
  return table;
}

void write_file(const std::string& path, const util::Table& table,
                util::TableStyle style) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  table.print(os, style);
}

}  // namespace sfc::core
