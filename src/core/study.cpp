#include "core/study.hpp"

#include <sstream>

namespace sfc::core {
namespace {

void report(const ProgressFn& progress, const std::string& msg) {
  if (progress) progress(msg);
}

/// Adapt a legacy string-message progress sink to the engine's
/// structured per-cell callback, reproducing the historical phrasing.
CellProgressFn legacy_progress(const Study& study, const ProgressFn& progress,
                               const char* style) {
  if (!progress) return {};
  const std::string fmt = style;
  return [&study, progress, fmt](const StudyCellRef& ref, double) {
    std::ostringstream msg;
    if (fmt == "combination") {
      msg << dist_name(study.distributions[ref.distribution]) << " trial "
          << ref.trial + 1 << "/" << study.trials << ": particle "
          << curve_name(study.particle_curves[ref.particle_curve])
          << " x processor "
          << curve_name(study.processor_curves[ref.processor_curve])
          << " done";
    } else if (fmt == "topology") {
      msg << "trial " << ref.trial + 1 << "/" << study.trials << ": "
          << topology_name(study.topologies[ref.topology]) << " x "
          << curve_name(study.particle_curves[ref.particle_curve]) << " done";
    } else {  // scaling
      msg << "trial " << ref.trial + 1 << "/" << study.trials << ": "
          << curve_name(study.particle_curves[ref.particle_curve])
          << " @ p=" << study.proc_counts[ref.proc_count] << " done";
    }
    progress(msg.str());
  };
}

}  // namespace

CombinationStudyResult run_combination_study(
    const CombinationStudyConfig& config, util::ThreadPool* pool,
    const ProgressFn& progress) {
  Study study;
  study.name = "combination";
  study.particles = config.particles;
  study.level = config.level;
  study.radius = config.radius;
  study.seed = config.seed;
  study.trials = config.trials;
  study.near_field = config.near_field;
  study.far_field = config.far_field;
  study.distributions = config.distributions;
  study.particle_curves = config.curves;
  study.processor_curves = config.curves;
  study.topologies = {config.topology};
  study.proc_counts = {config.procs};

  SweepOptions options;
  options.pool = pool;
  options.progress = legacy_progress(study, progress, "combination");
  const StudyResult run = run_study(study, options);

  const std::size_t nd = config.distributions.size();
  const std::size_t nc = config.curves.size();
  CombinationStudyResult result;
  result.config = config;
  result.cells.assign(
      nd, std::vector<std::vector<AcdCell>>(nc, std::vector<AcdCell>(nc)));
  result.stats.assign(nd, std::vector<std::vector<AcdCellStats>>(
                              nc, std::vector<AcdCellStats>(nc)));
  for (std::size_t d = 0; d < nd; ++d) {
    for (std::size_t pc = 0; pc < nc; ++pc) {
      for (std::size_t rc = 0; rc < nc; ++rc) {
        result.cells[d][rc][pc] = run.cell(d, pc, 0, rc, 0);
        result.stats[d][rc][pc] = run.cell_stats(d, pc, 0, rc, 0);
      }
    }
  }
  return result;
}

TopologyStudyResult run_topology_study(const TopologyStudyConfig& config,
                                       util::ThreadPool* pool,
                                       const ProgressFn& progress) {
  Study study;
  study.name = "topology";
  study.particles = config.particles;
  study.level = config.level;
  study.radius = config.radius;
  study.seed = config.seed;
  study.trials = config.trials;
  study.distributions = {config.distribution};
  study.particle_curves = config.curves;
  study.processor_curves = {};  // paired: the same SFC in both roles
  study.topologies = config.topologies;
  study.proc_counts = {config.procs};

  SweepOptions options;
  options.pool = pool;
  options.progress = legacy_progress(study, progress, "topology");
  const StudyResult run = run_study(study, options);

  const std::size_t nt = config.topologies.size();
  const std::size_t nc = config.curves.size();
  TopologyStudyResult result;
  result.config = config;
  result.cells.assign(nt, std::vector<AcdCell>(nc));
  for (std::size_t ti = 0; ti < nt; ++ti) {
    for (std::size_t c = 0; c < nc; ++c) {
      result.cells[ti][c] = run.cell(0, c, 0, 0, ti);
    }
  }
  return result;
}

ScalingStudyResult run_scaling_study(const ScalingStudyConfig& config,
                                     util::ThreadPool* pool,
                                     const ProgressFn& progress) {
  Study study;
  study.name = "scaling";
  study.particles = config.particles;
  study.level = config.level;
  study.radius = config.radius;
  study.seed = config.seed;
  study.trials = config.trials;
  study.distributions = {config.distribution};
  study.particle_curves = config.curves;
  study.processor_curves = {};  // paired
  study.topologies = {config.topology};
  study.proc_counts = config.proc_counts;

  SweepOptions options;
  options.pool = pool;
  options.progress = legacy_progress(study, progress, "scaling");
  const StudyResult run = run_study(study, options);

  const std::size_t nc = config.curves.size();
  const std::size_t np = config.proc_counts.size();
  ScalingStudyResult result;
  result.config = config;
  result.cells.assign(nc, std::vector<AcdCell>(np));
  for (std::size_t c = 0; c < nc; ++c) {
    for (std::size_t pi = 0; pi < np; ++pi) {
      result.cells[c][pi] = run.cell(0, c, pi, 0, 0);
    }
  }
  return result;
}

AnnsStudyResult run_anns_study(const AnnsStudyConfig& config,
                               util::ThreadPool* pool,
                               const ProgressFn& progress) {
  const std::size_t nc = config.curves.size();
  const std::size_t nl = config.levels.size();

  AnnsStudyResult result;
  result.config = config;
  result.stats.assign(nc, std::vector<StretchStats>(nl));

  for (std::size_t c = 0; c < nc; ++c) {
    const auto curve = make_curve<2>(config.curves[c]);
    for (std::size_t l = 0; l < nl; ++l) {
      result.stats[c][l] =
          neighbor_stretch(*curve, config.levels[l], config.radius, pool);
      std::ostringstream msg;
      msg << curve_name(config.curves[c]) << " @ level " << config.levels[l]
          << " done";
      report(progress, msg.str());
    }
  }
  return result;
}

}  // namespace sfc::core
