#include "core/study.hpp"

#include <memory>
#include <sstream>

namespace sfc::core {
namespace {

void report(const ProgressFn& progress, const std::string& msg) {
  if (progress) progress(msg);
}

std::vector<Point2> sample_trial(dist::DistKind kind, std::size_t particles,
                                 unsigned level, std::uint64_t seed,
                                 unsigned trial) {
  dist::SampleConfig cfg;
  cfg.count = particles;
  cfg.level = level;
  cfg.seed = util::substream_seed(seed, trial);
  return dist::sample_particles<2>(kind, cfg);
}

}  // namespace

CombinationStudyResult run_combination_study(
    const CombinationStudyConfig& config, util::ThreadPool* pool,
    const ProgressFn& progress) {
  const std::size_t nd = config.distributions.size();
  const std::size_t nc = config.curves.size();

  CombinationStudyResult result;
  result.config = config;
  result.cells.assign(
      nd, std::vector<std::vector<AcdCell>>(nc, std::vector<AcdCell>(nc)));
  result.stats.assign(nd, std::vector<std::vector<AcdCellStats>>(
                              nc, std::vector<AcdCellStats>(nc)));

  // Topologies depend only on the processor-order curve; build them once.
  std::vector<std::unique_ptr<topo::Topology>> nets;
  nets.reserve(nc);
  for (const CurveKind pk : config.curves) {
    const auto ranking = make_curve<2>(pk);
    nets.push_back(
        topo::make_topology<2>(config.topology, config.procs, ranking.get()));
  }

  const double trials = config.trials;
  for (std::size_t d = 0; d < nd; ++d) {
    for (unsigned t = 0; t < config.trials; ++t) {
      auto particles = sample_trial(config.distributions[d], config.particles,
                                    config.level, config.seed, t);
      const fmm::Partition part(particles.size(), config.procs);
      for (std::size_t pc = 0; pc < nc; ++pc) {
        const auto particle_curve = make_curve<2>(config.curves[pc]);
        const AcdInstance<2> instance(particles, config.level,
                                      *particle_curve);
        for (std::size_t rc = 0; rc < nc; ++rc) {
          if (config.near_field) {
            const auto nfi =
                instance.nfi(part, *nets[rc], config.radius,
                             fmm::NeighborNorm::kChebyshev, pool);
            result.cells[d][rc][pc].nfi_acd += nfi.acd() / trials;
            result.stats[d][rc][pc].nfi.add(nfi.acd());
          }
          if (config.far_field) {
            const auto ffi = instance.ffi(part, *nets[rc], pool);
            result.cells[d][rc][pc].ffi_acd += ffi.total().acd() / trials;
            result.stats[d][rc][pc].ffi.add(ffi.total().acd());
          }
          std::ostringstream msg;
          msg << dist_name(config.distributions[d]) << " trial " << t + 1
              << "/" << config.trials << ": particle "
              << curve_name(config.curves[pc]) << " x processor "
              << curve_name(config.curves[rc]) << " done";
          report(progress, msg.str());
        }
      }
    }
  }
  return result;
}

TopologyStudyResult run_topology_study(const TopologyStudyConfig& config,
                                       util::ThreadPool* pool,
                                       const ProgressFn& progress) {
  const std::size_t nt = config.topologies.size();
  const std::size_t nc = config.curves.size();

  TopologyStudyResult result;
  result.config = config;
  result.cells.assign(nt, std::vector<AcdCell>(nc));

  const double trials = config.trials;
  for (unsigned t = 0; t < config.trials; ++t) {
    // The paper uses a fixed input set per trial across all 24 sub-cases.
    auto particles = sample_trial(config.distribution, config.particles,
                                  config.level, config.seed, t);
    const fmm::Partition part(particles.size(), config.procs);
    for (std::size_t c = 0; c < nc; ++c) {
      const auto curve = make_curve<2>(config.curves[c]);
      const AcdInstance<2> instance(particles, config.level, *curve);
      for (std::size_t ti = 0; ti < nt; ++ti) {
        // Mesh/torus take the same SFC as processor order; the others have
        // a natural labeling and ignore the ranking argument.
        const auto net = topo::make_topology<2>(config.topologies[ti],
                                                config.procs, curve.get());
        const auto nfi = instance.nfi(part, *net, config.radius,
                                      fmm::NeighborNorm::kChebyshev, pool);
        const auto ffi = instance.ffi(part, *net, pool);
        result.cells[ti][c].nfi_acd += nfi.acd() / trials;
        result.cells[ti][c].ffi_acd += ffi.total().acd() / trials;
        std::ostringstream msg;
        msg << "trial " << t + 1 << "/" << config.trials << ": "
            << topology_name(config.topologies[ti]) << " x "
            << curve_name(config.curves[c]) << " done";
        report(progress, msg.str());
      }
    }
  }
  return result;
}

ScalingStudyResult run_scaling_study(const ScalingStudyConfig& config,
                                     util::ThreadPool* pool,
                                     const ProgressFn& progress) {
  const std::size_t nc = config.curves.size();
  const std::size_t np = config.proc_counts.size();

  ScalingStudyResult result;
  result.config = config;
  result.cells.assign(nc, std::vector<AcdCell>(np));

  const double trials = config.trials;
  for (unsigned t = 0; t < config.trials; ++t) {
    auto particles = sample_trial(config.distribution, config.particles,
                                  config.level, config.seed, t);
    for (std::size_t c = 0; c < nc; ++c) {
      const auto curve = make_curve<2>(config.curves[c]);
      const AcdInstance<2> instance(particles, config.level, *curve);
      for (std::size_t pi = 0; pi < np; ++pi) {
        const topo::Rank procs = config.proc_counts[pi];
        const fmm::Partition part(instance.particles().size(), procs);
        const auto net =
            topo::make_topology<2>(config.topology, procs, curve.get());
        const auto nfi = instance.nfi(part, *net, config.radius,
                                      fmm::NeighborNorm::kChebyshev, pool);
        const auto ffi = instance.ffi(part, *net, pool);
        result.cells[c][pi].nfi_acd += nfi.acd() / trials;
        result.cells[c][pi].ffi_acd += ffi.total().acd() / trials;
        std::ostringstream msg;
        msg << "trial " << t + 1 << "/" << config.trials << ": "
            << curve_name(config.curves[c]) << " @ p=" << procs << " done";
        report(progress, msg.str());
      }
    }
  }
  return result;
}

AnnsStudyResult run_anns_study(const AnnsStudyConfig& config,
                               util::ThreadPool* pool,
                               const ProgressFn& progress) {
  const std::size_t nc = config.curves.size();
  const std::size_t nl = config.levels.size();

  AnnsStudyResult result;
  result.config = config;
  result.stats.assign(nc, std::vector<StretchStats>(nl));

  for (std::size_t c = 0; c < nc; ++c) {
    const auto curve = make_curve<2>(config.curves[c]);
    for (std::size_t l = 0; l < nl; ++l) {
      result.stats[c][l] =
          neighbor_stretch(*curve, config.levels[l], config.radius, pool);
      std::ostringstream msg;
      msg << curve_name(config.curves[c]) << " @ level " << config.levels[l]
          << " done";
      report(progress, msg.str());
    }
  }
  return result;
}

}  // namespace sfc::core
