#include "core/advisor.hpp"

namespace sfc::core {

Recommendation recommend(dist::DistKind distribution,
                         topo::TopologyKind topology, Workload workload) {
  Recommendation rec;
  rec.particle_curve = CurveKind::kHilbert;
  rec.processor_curve = CurveKind::kHilbert;

  const bool sfc_ranked = topology == topo::TopologyKind::kMesh ||
                          topology == topo::TopologyKind::kTorus;

  if (sfc_ranked) {
    rec.rationale =
        "Processor ranking: the Hilbert curve wins on mesh and torus for "
        "every particle ordering and every distribution (Tables I-II). ";
  } else {
    rec.rationale =
        "This topology has a natural processor labeling; the paper applies "
        "SFC ranking only to mesh and torus, so the processor-order choice "
        "is moot and Hilbert is reported for uniformity. ";
  }

  // Particle ordering. Near-field: Hilbert is unanimous across
  // distributions (Table I). Far-field: with a non-uniform distribution
  // and a Z/Gray processor ranking the Z-curve edges out Hilbert
  // (Table II b/c), but with Hilbert ranking — which is what we just
  // recommended — Hilbert stays best or tied, so Hilbert remains the
  // particle-order pick; Z is flagged as an equal-cost alternative.
  switch (workload) {
    case Workload::kNearFieldDominant:
      rec.particle_curve = CurveKind::kHilbert;
      rec.rationale +=
          "Particle ordering: for near-field traffic the Hilbert order is "
          "unanimously best in every row of Table I.";
      break;
    case Workload::kFarFieldDominant:
      if (distribution != dist::DistKind::kUniform && !sfc_ranked) {
        rec.particle_curve = CurveKind::kMorton;
        rec.rationale +=
            "Particle ordering: for far-field traffic under non-uniform "
            "distributions the Z-curve is comparable to or slightly better "
            "than Hilbert (Table II, Normal/Exponential).";
      } else {
        rec.particle_curve = CurveKind::kHilbert;
        rec.rationale +=
            "Particle ordering: with Hilbert processor ranking, Hilbert "
            "particle ordering is the most communication-effective choice; "
            "the Z-curve is a comparably good alternative (Section VI-A).";
      }
      break;
    case Workload::kBalanced:
      rec.particle_curve = CurveKind::kHilbert;
      rec.rationale +=
          "Particle ordering: {Hilbert ~ Z} < Gray << Row-major is the "
          "paper's overall efficacy ordering; Hilbert is the safe default.";
      break;
  }

  if (distribution == dist::DistKind::kNormal) {
    rec.rationale +=
        " Note: centrally clustered (normal) inputs roughly double near-"
        "field ACD versus uniform for the recursive curves, because the "
        "cluster straddles the largest discontinuities of every recursive "
        "SFC — but the relative ordering of the curves is unchanged, so "
        "there is no incentive to reorder between FMM iterations.";
  }
  return rec;
}

}  // namespace sfc::core
