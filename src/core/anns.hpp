// anns.hpp — Average Nearest Neighbor Stretch (Xu & Tirthapura, IPDPS'12)
// and the paper's generalization to larger Manhattan radii (Section V).
//
// For a curve at level k, the stretch of a point pair (x, y) is the
// distance between their positions in the linear ordering divided by their
// Manhattan distance in space. ANNS averages the stretch over all pairs at
// Manhattan distance exactly 1; the generalized metric averages over all
// pairs within Manhattan distance r (the paper reports r = 6 in Fig. 5b).
// Every grid point participates — this metric is exact, not sampled — and
// is application- and topology-independent.
#pragma once

#include <cstdint>

#include "sfc/curve.hpp"
#include "util/thread_pool.hpp"

namespace sfc::core {

struct StretchStats {
  double average = 0.0;      ///< mean stretch over all counted pairs
  double maximum = 0.0;      ///< max stretch (MNNS when radius == 1)
  std::uint64_t pairs = 0;   ///< number of unordered pairs counted
};

/// Exact stretch statistics over the full 2^level x 2^level grid.
/// `radius` >= 1 is the Manhattan radius; radius 1 reproduces ANNS/MNNS.
/// Levels up to 12 are supported (the index table is 8 * 4^level bytes).
StretchStats neighbor_stretch(const Curve<2>& curve, unsigned level,
                              unsigned radius,
                              util::ThreadPool* pool = nullptr);

/// Closed-form ANNS of the row-major order on an N x N grid, N = 2^level:
/// horizontal neighbor pairs stretch 1, vertical pairs stretch N, in equal
/// numbers, so ANNS = (N + 1) / 2. Used as a test oracle.
constexpr double rowmajor_anns_closed_form(unsigned level) noexcept {
  const double n = static_cast<double>(1u << level);
  return (n + 1.0) / 2.0;
}

/// The remaining Xu–Tirthapura metric: the *all-pairs* stretch, i.e. the
/// average of |index(x) - index(y)| / manhattan(x, y) over uniformly
/// random distinct point pairs of the grid (exact evaluation is O(n^2) in
/// the grid size, so this is Monte-Carlo with a deterministic seed).
StretchStats all_pairs_stretch(const Curve<2>& curve, unsigned level,
                               std::uint64_t sample_pairs,
                               std::uint64_t seed = 1);

}  // namespace sfc::core
