// totals.hpp — the accumulator behind the ACD metric.
//
// ACD (paper Definition 1) is the average shortest-path hop count over
// every pairwise communication an application instance performs, so every
// model in this library reduces to one of these: a (sum of hops, number of
// communications) pair. Integer sums commute, which makes parallel
// accumulation bit-deterministic.
#pragma once

#include <cstdint>

namespace sfc::core {

struct CommTotals {
  std::uint64_t hops = 0;   ///< sum of hop distances over all communications
  std::uint64_t count = 0;  ///< number of communications (zero-hop included)

  constexpr CommTotals& operator+=(const CommTotals& o) noexcept {
    hops += o.hops;
    count += o.count;
    return *this;
  }

  friend constexpr CommTotals operator+(CommTotals a,
                                        const CommTotals& b) noexcept {
    a += b;
    return a;
  }

  /// Average Communicated Distance; 0 when no communication occurred.
  constexpr double acd() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(hops) / static_cast<double>(count);
  }

  friend constexpr bool operator==(const CommTotals&,
                                   const CommTotals&) = default;
};

}  // namespace sfc::core
