#include "core/rank_pair.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace sfc::core {

RankPairAccumulator::RankPairAccumulator(topo::Rank procs,
                                         std::size_t dense_budget)
    : p_(procs),
      is_dense_(static_cast<std::size_t>(procs) * procs <= dense_budget) {
  if (is_dense_) {
    dense_.assign(static_cast<std::size_t>(p_) * p_, 0u);
  }
}

RankPairAccumulator::RankPairAccumulator(topo::Rank procs,
                                         const topo::Topology& net,
                                         std::size_t dense_budget)
    : p_(procs),
      is_dense_(pick_dense(procs, dense_budget, net.fold_strategy())) {
  assert(net.size() == procs);
  if (is_dense_) {
    dense_.assign(static_cast<std::size_t>(p_) * p_, 0u);
  }
}

void RankPairAccumulator::add_sparse(topo::Rank src, topo::Rank dst,
                                     std::uint64_t count) {
  staging_.emplace_back(static_cast<std::uint64_t>(src) * p_ + dst, count);
  if (staging_.size() >= kStagingCap) compact();
}

void RankPairAccumulator::compact() const {
  if (staging_.empty()) return;
  std::sort(staging_.begin(), staging_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged;
  merged.reserve(sorted_.size() + staging_.size());
  std::size_t i = 0, j = 0;
  auto push = [&merged](std::uint64_t key, std::uint64_t count) {
    if (!merged.empty() && merged.back().first == key) {
      merged.back().second += count;
    } else {
      merged.emplace_back(key, count);
    }
  };
  while (i < sorted_.size() && j < staging_.size()) {
    if (sorted_[i].first <= staging_[j].first) {
      push(sorted_[i].first, sorted_[i].second);
      ++i;
    } else {
      push(staging_[j].first, staging_[j].second);
      ++j;
    }
  }
  for (; i < sorted_.size(); ++i) push(sorted_[i].first, sorted_[i].second);
  for (; j < staging_.size(); ++j) push(staging_[j].first, staging_[j].second);
  // Drop fully retracted pairs: sub() stages modular negatives, and a
  // pair whose adds and subs cancel must not survive as a zero entry —
  // for_each/view promise nonzero counts, and the dynamic path would
  // otherwise grow the sorted list with every touched-then-restored pair.
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const auto& e) { return e.second == 0; }),
               merged.end());
  sorted_.swap(merged);
  staging_.clear();
}

RankPairAccumulator& RankPairAccumulator::operator+=(
    const RankPairAccumulator& o) {
  o.for_each([this](topo::Rank a, topo::Rank b, std::uint64_t count) {
    add(a, b, count);
  });
  return *this;
}

CommTotals RankPairAccumulator::fold(const topo::DistanceTable& table) const {
  CommTotals totals;
  if (is_dense_) {
    std::size_t k = 0;
    for (topo::Rank a = 0; a < p_; ++a) {
      const std::uint32_t* row = table.row(a);
      for (topo::Rank b = 0; b < p_; ++b, ++k) {
        const std::uint64_t c = dense_[k];
        if (c == 0) continue;
        totals.hops += c * row[b];
        totals.count += c;
      }
    }
    return totals;
  }
  compact();
  for (const auto& [key, count] : sorted_) {
    totals.hops += count * table(static_cast<std::uint32_t>(key / p_),
                                 static_cast<std::uint32_t>(key % p_));
    totals.count += count;
  }
  return totals;
}

CommTotals RankPairAccumulator::fold(const topo::Topology& net) const {
  CommTotals totals;
  for_each([&totals, &net](topo::Rank a, topo::Rank b, std::uint64_t count) {
    totals.hops += count * net.distance(a, b);
    totals.count += count;
  });
  return totals;
}

namespace {

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t buf[8];
  std::memcpy(buf, &v, sizeof buf);
  out.insert(out.end(), buf, buf + sizeof buf);
}

bool read_u64(const std::uint8_t* data, std::size_t size, std::size_t& offset,
              std::uint64_t& v) {
  if (offset > size || size - offset < 8) return false;
  std::memcpy(&v, data + offset, 8);
  offset += 8;
  return true;
}

}  // namespace

void rank_pairs_serialize(const RankPairAccumulator& acc,
                          std::vector<std::uint8_t>& out) {
  acc.seal();
  append_u64(out, acc.procs());
  append_u64(out, acc.dense() ? 1 : 0);
  std::uint64_t pairs = 0;
  acc.for_each([&pairs](topo::Rank, topo::Rank, std::uint64_t) { ++pairs; });
  append_u64(out, pairs);
  out.reserve(out.size() + pairs * 16);
  const std::uint64_t p = acc.procs();
  acc.for_each([&out, p](topo::Rank a, topo::Rank b, std::uint64_t count) {
    append_u64(out, static_cast<std::uint64_t>(a) * p + b);
    append_u64(out, count);
  });
}

std::optional<RankPairAccumulator> rank_pairs_deserialize(
    const std::uint8_t* data, std::size_t size, std::size_t& offset) {
  std::uint64_t procs = 0, mode = 0, pairs = 0;
  if (!read_u64(data, size, offset, procs) ||
      !read_u64(data, size, offset, mode) ||
      !read_u64(data, size, offset, pairs)) {
    return std::nullopt;
  }
  if (procs == 0 || procs > 0xffffffffull || mode > 1) return std::nullopt;
  if (pairs > (size - offset) / 16) return std::nullopt;
  const bool dense = mode == 1;
  const std::uint64_t p2 = procs * procs;
  // A dense record implies the producer actually held the p² array, so
  // p² is bounded by the dense budget plus whatever enlarged budget a
  // caller can pass — refuse anything that would be an absurd allocation.
  if (dense && p2 > (std::uint64_t{1} << 28)) return std::nullopt;
  RankPairAccumulator acc(static_cast<topo::Rank>(procs),
                          dense ? static_cast<std::size_t>(p2) : 0);
  const auto p = static_cast<std::uint64_t>(procs);
  for (std::uint64_t i = 0; i < pairs; ++i) {
    std::uint64_t key = 0, count = 0;
    if (!read_u64(data, size, offset, key) ||
        !read_u64(data, size, offset, count)) {
      return std::nullopt;
    }
    if (key >= p2) return std::nullopt;
    acc.add(static_cast<topo::Rank>(key / p), static_cast<topo::Rank>(key % p),
            count);
  }
  acc.seal();
  return acc;
}

std::uint64_t RankPairAccumulator::events() const {
  std::uint64_t n = 0;
  for_each([&n](topo::Rank, topo::Rank, std::uint64_t count) { n += count; });
  return n;
}

}  // namespace sfc::core
