// dynamic_acd.hpp — incremental ACD under particle motion (paper
// Section VI-A, ROADMAP item 2).
//
// AcdInstance answers "what does this frozen snapshot cost?"; DynamicAcd
// answers "what does the trajectory cost?" without paying a full
// O(all pairs) recompute per timestep. It keeps the particle assignment
// frozen (array order, partition, and owner ranks fixed at the last
// (re)build — exactly the paper's no-reorder regime) and maintains the
// NFI/FFI rank-pair histograms by an event algebra over the moved
// particles:
//
//   retract  — with the *pre-move* state, subtract every pair event a
//              mover participates in (NFI window pairs; FFI interpolation
//              / interaction events of every tree cell whose occupant set
//              or owner can change);
//   update   — apply the moves to the positions, occupancy grid, and
//              occupied-cell hierarchy;
//   assert   — mirror of retract with the *post-move* state, adding.
//
// Every event the move set does not touch is never re-enumerated, so a
// timestep costs O(moved particles · window + touched cells), and the
// resulting totals are bit-identical to a full recompute of the frozen
// order — the pbt_dynamics_diff suite pins this across curves,
// topologies, and move patterns. A batch is applied atomically: all
// movers vacate their old cells before any fills its new one, so swaps
// and displacement chains are valid move sets.
//
// Re-partitioning is lazy: each move tracks whether the particle's new
// curve key still falls inside its frozen chunk's key interval, and only
// when the displaced fraction crosses Options::repartition_threshold is
// the state re-sorted and rebuilt (the "how often must you re-order?"
// advisor in bench/ext_dynamics counts these).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/acd.hpp"
#include "fmm/dynamic_cells.hpp"

namespace sfc::core {

/// One relocation: the particle at array position `index` (in the
/// engine's *current* sorted order) moves to finest-level cell `to`.
template <int D>
struct ParticleMove {
  std::uint32_t index = 0;
  Point<D> to{};

  friend constexpr bool operator==(const ParticleMove&,
                                   const ParticleMove&) = default;
};

using ParticleMove2 = ParticleMove<2>;
using ParticleMove3 = ParticleMove<3>;

template <int D>
class DynamicAcd {
 public:
  struct Options {
    unsigned radius = 1;  ///< near-field window radius
    fmm::NeighborNorm norm = fmm::NeighborNorm::kChebyshev;
    /// Displaced-particle fraction beyond which move_particles re-sorts
    /// the particles and rebuilds the frozen assignment. Set above 1
    /// (e.g. infinity) to keep the initial order forever.
    double repartition_threshold = 0.25;
    /// Test hook for the differential suite's self-test: skip the
    /// outgoing NFI retraction of each batch's first mover, simulating
    /// the classic stale-subtraction bug an incremental path can hide.
    bool fault_stale_subtraction = false;
  };

  /// Sorts `particles` by `curve` (identical order to AcdInstance) and
  /// builds the mutable state plus both histograms. `curve` must outlive
  /// the engine; it re-keys particles on every move and re-sorts on
  /// re-partition.
  DynamicAcd(std::vector<Point<D>> particles, unsigned level,
             const Curve<D>& curve, topo::Rank procs, Options opts = {},
             util::ThreadPool* pool = nullptr);

  // The cell tree points into positions_; keep the engine in place.
  DynamicAcd(const DynamicAcd&) = delete;
  DynamicAcd& operator=(const DynamicAcd&) = delete;

  /// Apply one batch of moves (all vacate, then all fill). Requirements:
  /// indices in range and distinct, targets on the grid, and the final
  /// cells distinct — a mover's target may be another mover's old cell
  /// (swaps, chains), but never a stationary particle's cell. Throws
  /// std::invalid_argument on a violation, leaving the state unchanged.
  /// Moves whose target equals the current position are ignored.
  void move_particles(std::span<const ParticleMove<D>> moves,
                      util::ThreadPool* pool = nullptr);

  /// Near-field totals of the current positions under the frozen
  /// assignment — bit-identical to AcdInstance-from-frozen-order nfi().
  CommTotals nfi(const topo::Topology& net) const {
    return net.fold(nfi_acc_.view());
  }

  /// Far-field totals of the current positions under the frozen
  /// assignment — bit-identical to AcdInstance-from-frozen-order ffi().
  fmm::FfiTotals ffi(const topo::Topology& net) const {
    return fmm::ffi_fold(ffi_, net);
  }

  unsigned level() const noexcept { return level_; }
  topo::Rank procs() const noexcept { return procs_; }
  const Options& options() const noexcept { return opts_; }

  /// Current positions in the engine's sorted order. A re-partition
  /// permutes this array (and therefore the meaning of move indices).
  const std::vector<Point<D>>& particles() const noexcept {
    return positions_;
  }
  const fmm::Partition& partition() const noexcept { return part_; }

  /// Array index of the particle occupying finest-level `cell`, or -1 if
  /// the cell is empty. Lets a driver translate position-keyed moves into
  /// this engine's current index space (two engines over the same physical
  /// trajectory diverge in order once one of them re-partitions).
  std::int32_t index_at(const Point<D>& cell) const noexcept {
    return grid_.particle_at(cell);
  }

  /// Fraction of particles whose current curve key has left their frozen
  /// chunk's key interval — the re-partition trigger metric.
  double displaced_fraction() const noexcept {
    return positions_.empty() ? 0.0
                              : static_cast<double>(displaced_count_) /
                                    static_cast<double>(positions_.size());
  }

  /// Re-sorts performed so far (the advisor's re-order count).
  std::size_t repartitions() const noexcept { return repartitions_; }

  /// Cumulative moves applied (no-ops excluded).
  std::uint64_t moves_applied() const noexcept { return moves_applied_; }

 private:
  void build(util::ThreadPool* pool);
  void rebuild(util::ThreadPool* pool);
  void nfi_phase(const std::vector<ParticleMove<D>>& movers, bool retract,
                 util::ThreadPool* pool);
  template <class Sink>  // RankPairAccumulator, a shard, or PairDeltas
  void nfi_scan(Sink& acc, const std::vector<ParticleMove<D>>& movers,
                bool retract, std::size_t lo, std::size_t hi);
  std::vector<std::unordered_set<std::uint64_t>> touched_cells(
      const std::vector<ParticleMove<D>>& movers) const;
  void ffi_snapshot(
      const std::vector<std::unordered_set<std::uint64_t>>& touched);
  void ffi_diff(const std::vector<std::unordered_set<std::uint64_t>>& touched);
  template <class Sink>  // RankPairAccumulator or PairDeltas
  void ffi_diff_walk(
      const std::vector<std::unordered_set<std::uint64_t>>& touched,
      Sink& interp, Sink& inter);
  std::uint32_t pre_owner(unsigned level, std::uint64_t key) const;
  bool is_touched(
      const std::vector<std::unordered_set<std::uint64_t>>& touched,
      unsigned level, std::uint64_t key) const noexcept {
    const std::vector<std::uint64_t>& bits = touched_bits_[level];
    if (!bits.empty()) return (bits[key >> 6] >> (key & 63)) & 1u;
    return touched[level].count(key) != 0;
  }
  void track_displacement(std::uint32_t index, const Point<D>& to);

  const Curve<D>* curve_;
  unsigned level_;
  topo::Rank procs_;
  Options opts_;
  std::vector<Point<D>> positions_;  // current positions, frozen order
  fmm::Partition part_;
  std::vector<topo::Rank> owners_;
  fmm::OccupancyGrid<D> grid_;
  fmm::DynamicCellTree<D> tree_;
  RankPairAccumulator nfi_acc_;  // true directed NFI event multiset
  fmm::FfiHistograms ffi_;
  // Per-batch (src, dst) delta scratches, flushed into the histograms at
  // the end of every move_particles call (empty between batches). The
  // delta walks hit the same few rank pairs thousands of times per step;
  // netting them here first keeps the sparse accumulators' staging
  // buffers — and their compaction sorts — off the incremental hot path,
  // and lets a retract/assert pair with unchanged owners vanish without
  // ever reaching the histogram. NFI uses its scratch only in sparse
  // mode (dense adds are a single array update; the threaded dense path
  // keeps its shards).
  PairDeltas nfi_deltas_;
  PairDeltas ffi_interp_deltas_;
  PairDeltas ffi_inter_deltas_;
  // Per-chunk [first, last] curve-key interval at the last (re)build.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chunk_keys_;
  std::vector<std::uint8_t> displaced_;
  std::size_t displaced_count_ = 0;
  std::size_t repartitions_ = 0;
  std::uint64_t moves_applied_ = 0;
  std::vector<std::uint8_t> mover_flag_;  // scratch, zero outside batches
  // Dense per-level mirrors of the touched sets for the delta walk's
  // membership tests (same cap as the cell tree's occupancy bitmaps);
  // zero outside batches — set before the snapshot, sparsely cleared
  // after the diff walk.
  std::vector<std::vector<std::uint64_t>> touched_bits_;
  // Pre-move owner of every touched cell, captured before the update so
  // the single post-update FFI walk can emit retract/assert event pairs
  // in one enumeration. Levels within the cell tree's dense-owner cap
  // use flat arrays (values gated by touched_bits_, so they need no
  // clearing); deeper levels fall back to a per-batch map.
  std::vector<std::vector<std::uint32_t>> pre_owner_dense_;
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>>
      pre_owner_map_;
};

/// Derive a valid move batch from the drift dynamics of
/// dist::drift_particles. fraction >= 1 reproduces that function exactly
/// (every particle attempts one step; the moves are the diff); a smaller
/// fraction lets only ⌈fraction·n⌉ evenly spread particles attempt a
/// step, modeling the slow configuration change of an almost-settled
/// system. Deterministic in (positions, level, seed, step, fraction).
template <int D>
std::vector<ParticleMove<D>> drift_moves(const std::vector<Point<D>>& positions,
                                         unsigned level, std::uint64_t seed,
                                         std::uint64_t step,
                                         double fraction = 1.0);

extern template class DynamicAcd<2>;
extern template class DynamicAcd<3>;
extern template std::vector<ParticleMove<2>> drift_moves<2>(
    const std::vector<Point<2>>&, unsigned, std::uint64_t, std::uint64_t,
    double);
extern template std::vector<ParticleMove<3>> drift_moves<3>(
    const std::vector<Point<3>>&, unsigned, std::uint64_t, std::uint64_t,
    double);

}  // namespace sfc::core
