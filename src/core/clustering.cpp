#include "core/clustering.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sfc/point.hpp"

namespace sfc::core {
namespace {

/// Collect the curve indices of every cell in the query, sort, and count
/// breaks. A break between consecutive sorted indices means a new run.
std::uint64_t count_runs(const Curve<2>& curve, unsigned level,
                         const QueryRect& q,
                         std::vector<std::uint64_t>& scratch) {
  scratch.clear();
  for (std::uint32_t dy = 0; dy < q.h; ++dy) {
    for (std::uint32_t dx = 0; dx < q.w; ++dx) {
      scratch.push_back(curve.index(make_point(q.x0 + dx, q.y0 + dy), level));
    }
  }
  std::sort(scratch.begin(), scratch.end());
  std::uint64_t runs = scratch.empty() ? 0 : 1;
  for (std::size_t i = 1; i < scratch.size(); ++i) {
    if (scratch[i] != scratch[i - 1] + 1) ++runs;
  }
  return runs;
}

}  // namespace

std::uint64_t cluster_count(const Curve<2>& curve, unsigned level,
                            const QueryRect& query) {
  const std::uint64_t side = 1ull << level;
  if (query.w == 0 || query.h == 0) {
    throw std::invalid_argument("query must be non-empty");
  }
  if (query.x0 + query.w > side || query.y0 + query.h > side) {
    throw std::invalid_argument("query exceeds the grid");
  }
  std::vector<std::uint64_t> scratch;
  scratch.reserve(static_cast<std::size_t>(query.w) * query.h);
  return count_runs(curve, level, query, scratch);
}

ClusteringStats average_clusters(const Curve<2>& curve, unsigned level,
                                 std::uint32_t w, std::uint32_t h,
                                 util::ThreadPool* pool) {
  const std::uint32_t side = 1u << level;
  if (w == 0 || h == 0 || w > side || h > side) {
    throw std::invalid_argument("window does not fit the grid");
  }
  const std::uint32_t nx = side - w + 1;
  const std::uint32_t ny = side - h + 1;

  struct Accum {
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t queries = 0;
    Accum& operator+=(const Accum& o) noexcept {
      sum += o.sum;
      max = std::max(max, o.max);
      queries += o.queries;
      return *this;
    }
  };

  auto row_range = [&](std::size_t y_lo, std::size_t y_hi) {
    Accum acc;
    std::vector<std::uint64_t> scratch;
    scratch.reserve(static_cast<std::size_t>(w) * h);
    for (std::size_t y = y_lo; y < y_hi; ++y) {
      for (std::uint32_t x = 0; x < nx; ++x) {
        QueryRect q{x, static_cast<std::uint32_t>(y), w, h};
        const std::uint64_t runs = count_runs(curve, level, q, scratch);
        acc.sum += runs;
        acc.max = std::max(acc.max, runs);
        ++acc.queries;
      }
    }
    return acc;
  };

  Accum acc;
  if (pool != nullptr && pool->size() > 1 && ny >= 32) {
    acc = util::parallel_reduce_chunks(*pool, 0, ny, 4, Accum{}, row_range);
  } else {
    acc = row_range(0, ny);
  }

  ClusteringStats stats;
  stats.queries = acc.queries;
  stats.maximum = acc.max;
  stats.average =
      acc.queries == 0 ? 0.0
                       : static_cast<double>(acc.sum) /
                             static_cast<double>(acc.queries);
  return stats;
}

}  // namespace sfc::core
