// distribution.hpp — random particle placement (paper Section II-C).
//
// Particles live on the 2^k x 2^k (x 2^k) grid of finest-resolution cells,
// at most one particle per cell (the paper's FMM analysis assumption), so
// sampling is draw-and-reject: draw a cell from the distribution, reject it
// if occupied or off-grid, repeat. Three distributions are modeled:
//   * uniform      — every cell equally likely (Fig. 2a),
//   * normal       — symmetric bivariate normal about the grid center,
//                    modeling centrally clustered inputs (Fig. 2b),
//   * exponential  — independent exponential per axis, clustering the mass
//                    into one corner quadrant (Fig. 2c).
// The paper does not state the normal's sigma or the exponential's rate; we
// default to sigma = 0.2 * side and mean = 0.25 * side, which visually
// match Fig. 2 and keep rejection cheap (documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sfc/point.hpp"
#include "util/rng.hpp"

namespace sfc::dist {

enum class DistKind {
  kUniform,
  kNormal,
  kExponential,
  // Extensions beyond the paper's three, for realistic n-body inputs:
  kClusters,  // mixture of Gaussian blobs at seeded random centers
  kPlummer,   // Plummer sphere (the classic stellar-cluster model),
              // projected onto the grid's dimensionality
  kBoundary,  // mass pressed against the domain faces (boundary-layer
              // style inputs from the hierarchical n-body literature):
              // uniform along a random face, exponential depth inward
  kSkewed,    // independent power-law per axis, piling the mass into
              // one corner far harder than kExponential
};

/// The paper's three input distributions (Section II-C).
inline constexpr DistKind kAllDistributions[] = {
    DistKind::kUniform, DistKind::kNormal, DistKind::kExponential};

/// Every implemented distribution, extensions included.
inline constexpr DistKind kExtendedDistributions[] = {
    DistKind::kUniform,  DistKind::kNormal,   DistKind::kExponential,
    DistKind::kClusters, DistKind::kPlummer,  DistKind::kBoundary,
    DistKind::kSkewed};

std::string_view dist_name(DistKind kind) noexcept;
std::optional<DistKind> parse_dist(std::string_view name) noexcept;

struct SampleConfig {
  std::size_t count = 0;       ///< number of particles (distinct cells)
  unsigned level = 0;          ///< grid side is 2^level per dimension
  std::uint64_t seed = 1;      ///< master RNG seed (fully deterministic)
  double normal_sigma_frac = 0.20;  ///< sigma as a fraction of the side
  double exp_mean_frac = 0.35;      ///< exponential mean as a fraction
  unsigned cluster_count = 8;          ///< blobs in the kClusters mixture
  double cluster_sigma_frac = 0.04;    ///< per-blob sigma fraction
  double plummer_radius_frac = 0.15;   ///< Plummer scale radius fraction
  double boundary_depth_frac = 0.05;   ///< kBoundary mean depth fraction
  double skew_exponent = 3.0;          ///< kSkewed per-axis u^k exponent
};

/// Draw `cfg.count` particles in distinct cells. Throws std::runtime_error
/// if the grid cannot hold them or rejection fails to converge (which the
/// default parameters cannot trigger at the paper's densities).
template <int D>
std::vector<Point<D>> sample_particles(DistKind kind, const SampleConfig& cfg);

/// One timestep of particle drift: every particle attempts one move to a
/// uniformly random Chebyshev-adjacent cell; moves off the grid or into an
/// occupied cell are rejected (the particle stays put), preserving the
/// one-particle-per-cell invariant. Deterministic in (seed, step).
/// Models the slow configuration change between n-body iterations that
/// the paper's Section VI-A discusses ("dynamically changing particle
/// distribution profile").
template <int D>
void drift_particles(std::vector<Point<D>>& particles, unsigned level,
                     std::uint64_t seed, std::uint64_t step);

extern template void drift_particles<2>(std::vector<Point<2>>&, unsigned,
                                        std::uint64_t, std::uint64_t);
extern template void drift_particles<3>(std::vector<Point<3>>&, unsigned,
                                        std::uint64_t, std::uint64_t);

extern template std::vector<Point<2>> sample_particles<2>(DistKind,
                                                          const SampleConfig&);
extern template std::vector<Point<3>> sample_particles<3>(DistKind,
                                                          const SampleConfig&);

}  // namespace sfc::dist
