#include "distribution/distribution.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <string>

namespace sfc::dist {

std::string_view dist_name(DistKind kind) noexcept {
  switch (kind) {
    case DistKind::kUniform:
      return "Uniform";
    case DistKind::kNormal:
      return "Normal";
    case DistKind::kExponential:
      return "Exponential";
    case DistKind::kClusters:
      return "Clusters";
    case DistKind::kPlummer:
      return "Plummer";
    case DistKind::kBoundary:
      return "Boundary";
    case DistKind::kSkewed:
      return "Skewed";
  }
  return "?";
}

std::optional<DistKind> parse_dist(std::string_view name) noexcept {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "uniform" || lower == "u") return DistKind::kUniform;
  if (lower == "normal" || lower == "gaussian" || lower == "n")
    return DistKind::kNormal;
  if (lower == "exponential" || lower == "exp" || lower == "e")
    return DistKind::kExponential;
  if (lower == "clusters" || lower == "blobs" || lower == "mixture")
    return DistKind::kClusters;
  if (lower == "plummer") return DistKind::kPlummer;
  if (lower == "boundary" || lower == "wall" || lower == "b")
    return DistKind::kBoundary;
  if (lower == "skewed" || lower == "skew" || lower == "powerlaw")
    return DistKind::kSkewed;
  return std::nullopt;
}

namespace {

/// Seeded state shared by every candidate draw (the blob centers of the
/// mixture distribution are fixed per sample run).
template <int D>
struct DrawContext {
  std::vector<std::array<double, static_cast<std::size_t>(D)>> centers;
};

template <int D>
DrawContext<D> make_context(DistKind kind, double side,
                            util::Xoshiro256pp& rng,
                            const SampleConfig& cfg) {
  DrawContext<D> ctx;
  if (kind == DistKind::kClusters) {
    ctx.centers.resize(std::max(1u, cfg.cluster_count));
    for (auto& center : ctx.centers) {
      for (int i = 0; i < D; ++i) {
        // Keep blob centers away from the boundary so most of each blob
        // lands on the grid.
        center[static_cast<std::size_t>(i)] =
            side * (0.15 + 0.7 * util::uniform01(rng));
      }
    }
  }
  return ctx;
}

/// Draw one candidate cell (may be off-grid for the unbounded
/// distributions; the caller rejects those).
template <int D>
bool draw_cell(DistKind kind, double side, util::Xoshiro256pp& rng,
               util::NormalSampler& normal, const SampleConfig& cfg,
               const DrawContext<D>& ctx, Point<D>& out) {
  double v[4] = {};  // D <= 4

  switch (kind) {
    case DistKind::kUniform:
      for (int i = 0; i < D; ++i) v[i] = util::uniform01(rng) * side;
      break;
    case DistKind::kNormal:
      for (int i = 0; i < D; ++i) {
        v[i] = side * 0.5 + cfg.normal_sigma_frac * side * normal(rng);
      }
      break;
    case DistKind::kExponential:
      for (int i = 0; i < D; ++i) {
        v[i] = util::exponential(rng, cfg.exp_mean_frac * side);
      }
      break;
    case DistKind::kClusters: {
      const auto& center =
          ctx.centers[util::bounded_u64(rng, ctx.centers.size())];
      for (int i = 0; i < D; ++i) {
        v[i] = center[static_cast<std::size_t>(i)] +
               cfg.cluster_sigma_frac * side * normal(rng);
      }
      break;
    }
    case DistKind::kPlummer: {
      // Sample a 3-D Plummer sphere (inverse-CDF radius, isotropic
      // direction) and keep the first D coordinates — the projection onto
      // the simulation plane for D = 2.
      double u = util::uniform01(rng);
      while (u <= 0.0) u = util::uniform01(rng);
      const double a = cfg.plummer_radius_frac * side;
      const double r = a / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
      const double z = 2.0 * util::uniform01(rng) - 1.0;
      const double phi = 2.0 * 3.14159265358979323846 * util::uniform01(rng);
      const double s = std::sqrt(1.0 - z * z);
      const double dir[3] = {s * std::cos(phi), s * std::sin(phi), z};
      for (int i = 0; i < D; ++i) {
        v[i] = side * 0.5 + r * dir[i < 3 ? i : 0];
      }
      break;
    }
    case DistKind::kBoundary: {
      // A random face of the domain, uniform along it, exponential depth
      // into the interior — a boundary-layer input. 2·D faces; the face
      // index picks the axis and which side of it.
      const std::uint64_t face =
          util::bounded_u64(rng, 2ull * static_cast<std::uint64_t>(D));
      const int axis = static_cast<int>(face >> 1);
      const bool high = (face & 1) != 0;
      for (int i = 0; i < D; ++i) v[i] = util::uniform01(rng) * side;
      const double depth =
          util::exponential(rng, cfg.boundary_depth_frac * side);
      v[axis] = high ? side - depth : depth;
      break;
    }
    case DistKind::kSkewed:
      // Independent power law per axis: side · u^k concentrates the mass
      // near the low corner with density ∝ x^(1/k - 1) — much harder
      // skew than the exponential for the default k = 3.
      for (int i = 0; i < D; ++i) {
        v[i] = side * std::pow(util::uniform01(rng), cfg.skew_exponent);
      }
      break;
  }

  for (int i = 0; i < D; ++i) {
    if (v[i] < 0.0 || v[i] >= side) return false;
    out[i] = static_cast<std::uint32_t>(v[i]);
  }
  return true;
}

}  // namespace

template <int D>
std::vector<Point<D>> sample_particles(DistKind kind, const SampleConfig& cfg) {
  if (cfg.level > max_level<D>()) {
    throw std::runtime_error("sample_particles: level too large");
  }
  const std::uint64_t cells = grid_size<D>(cfg.level);
  if (cfg.count > cells) {
    throw std::runtime_error(
        "sample_particles: more particles than finest-resolution cells");
  }

  util::Xoshiro256pp rng(util::substream_seed(cfg.seed, 0));
  util::NormalSampler normal;
  const double side = static_cast<double>(1ull << cfg.level);
  const DrawContext<D> ctx = make_context<D>(kind, side, rng, cfg);

  std::vector<Point<D>> particles;
  particles.reserve(cfg.count);
  std::unordered_set<std::uint64_t> occupied;
  occupied.reserve(cfg.count * 2);

  // Generous rejection budget: the default parameters keep the acceptance
  // rate well above 1/3 even at the paper's densest setting (250k normal
  // particles on a 1024^2 grid).
  const std::uint64_t max_attempts = 200ull * cfg.count + 100000ull;
  std::uint64_t attempts = 0;
  while (particles.size() < cfg.count) {
    if (++attempts > max_attempts) {
      throw std::runtime_error(
          "sample_particles: rejection sampling did not converge; "
          "lower the density or widen the distribution");
    }
    Point<D> p{};
    if (!draw_cell<D>(kind, side, rng, normal, cfg, ctx, p)) continue;
    if (occupied.insert(pack(p, cfg.level)).second) {
      particles.push_back(p);
    }
  }
  return particles;
}

template std::vector<Point<2>> sample_particles<2>(DistKind,
                                                   const SampleConfig&);
template std::vector<Point<3>> sample_particles<3>(DistKind,
                                                   const SampleConfig&);

template <int D>
void drift_particles(std::vector<Point<D>>& particles, unsigned level,
                     std::uint64_t seed, std::uint64_t step) {
  util::Xoshiro256pp rng(
      util::substream_seed(seed, 0x5EED0000ull + step));
  std::unordered_set<std::uint64_t> occupied;
  occupied.reserve(particles.size() * 2);
  for (const auto& p : particles) occupied.insert(pack(p, level));

  const std::int64_t side = 1ll << level;
  for (auto& p : particles) {
    // Random offset in {-1,0,1}^D \ {0}.
    Point<D> candidate = p;
    bool zero = true;
    for (int i = 0; i < D; ++i) {
      const auto o =
          static_cast<std::int64_t>(util::bounded_u64(rng, 3)) - 1;
      const std::int64_t v = static_cast<std::int64_t>(p[i]) + o;
      if (o != 0) zero = false;
      if (v < 0 || v >= side) {
        zero = true;  // off-grid: treat as a rejected move
        break;
      }
      candidate[i] = static_cast<std::uint32_t>(v);
    }
    if (zero) continue;
    const std::uint64_t to = pack(candidate, level);
    if (!occupied.insert(to).second) continue;  // destination occupied
    occupied.erase(pack(p, level));
    p = candidate;
  }
}

template void drift_particles<2>(std::vector<Point<2>>&, unsigned,
                                 std::uint64_t, std::uint64_t);
template void drift_particles<3>(std::vector<Point<3>>&, unsigned,
                                 std::uint64_t, std::uint64_t);

}  // namespace sfc::dist
