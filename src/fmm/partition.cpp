#include "fmm/partition.hpp"

#include <numeric>

namespace sfc::fmm {

Partition Partition::weighted(const std::vector<double>& weights,
                              topo::Rank processors) {
  assert(processors > 0);
  Partition part(weights.size(), processors);
  part.begins_.assign(processors + 1u, weights.size());
  part.begins_[0] = 0;

  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double ideal = total / static_cast<double>(processors);

  // Greedy sweep: close chunk r as soon as the running weight reaches
  // (r+1) * ideal, but never let a later chunk start past the end (ranks
  // beyond the cut simply receive empty ranges).
  double running = 0.0;
  topo::Rank next_cut = 1;
  for (std::size_t i = 0; i < weights.size() && next_cut < processors; ++i) {
    running += weights[i];
    while (next_cut < processors &&
           running >= ideal * static_cast<double>(next_cut)) {
      part.begins_[next_cut++] = i + 1;
    }
  }
  // Any unassigned cuts collapse to the end (empty chunks).
  return part;
}

double Partition::imbalance(const std::vector<double>& weights) const {
  assert(weights.size() == n_);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) return 1.0;
  const double ideal = total / static_cast<double>(p_);
  double heaviest = 0.0;
  for (topo::Rank r = 0; r < p_; ++r) {
    double w = 0.0;
    for (std::size_t i = chunk_begin(r); i < chunk_begin(r + 1); ++i) {
      w += weights[i];
    }
    heaviest = std::max(heaviest, w);
  }
  return heaviest / ideal;
}

}  // namespace sfc::fmm
