// laplace_fmm.hpp — a working 2-D Laplace Fast Multipole Method solver.
//
// The paper models the FMM's *communication* structure; this module is the
// computation that structure carries, included so the reproduction's
// communication counts are demonstrably those of a real solver: the
// upward pass (P2M + M2M) is the paper's "interpolation", the downward
// pass (L2L + L2P) its "anterpolation", the M2L translations follow
// exactly the interaction lists of fmm/cells.hpp, and the near-field P2P
// visits exactly the Chebyshev-1 neighbor cells of the NFI model.
//
// Kernel: point charges q_i at z_i in [0,1)^2 with potential
//   phi(z) = sum_i q_i * ln|z - z_i|
// computed via the classical complex-variable expansions
// (Greengard & Rokhlin 1987; Beatson & Greengard's short course):
//   multipole  a_0 log(z-zc) + sum_k a_k / (z-zc)^k
//   local      sum_l b_l (z-zl)^l
// with the standard P2M / M2M / M2L / L2L / L2P translations.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace sfc::fmm {

/// A point charge in the unit square.
struct Charge {
  double x = 0.0;
  double y = 0.0;
  double q = 0.0;
};

struct FmmSolverConfig {
  unsigned tree_level = 4;  ///< leaf level: 4^level leaf cells
  unsigned terms = 12;      ///< expansion order p (error ~ 0.35^p)
};

/// Reference O(n^2) direct summation; potentials exclude the self term.
std::vector<double> direct_potentials(const std::vector<Charge>& charges);

/// A 2-D field/force vector.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Reference O(n^2) fields: E(z_i) = sum_j q_j (z_i - z_j) / |z_i - z_j|^2
/// (the gradient of the log potential), self term excluded.
std::vector<Vec2> direct_fields(const std::vector<Charge>& charges);

/// The FMM solver. Construction builds the tree and runs the upward,
/// translation and downward passes; `potentials()` returns phi at every
/// charge location (self term excluded), in input order.
class LaplaceFmm2D {
 public:
  LaplaceFmm2D(std::vector<Charge> charges, const FmmSolverConfig& config);

  const std::vector<double>& potentials() const noexcept {
    return potentials_;
  }

  /// Field at each charge location (gradient of the potential), from the
  /// derivative of the same local expansions plus the near-field pass.
  const std::vector<Vec2>& fields() const noexcept { return fields_; }

  /// Diagnostics: how many of each translation the run performed. These
  /// are the communication counts the ACD model prices.
  struct PassCounts {
    std::uint64_t p2m = 0;
    std::uint64_t m2m = 0;
    std::uint64_t m2l = 0;
    std::uint64_t l2l = 0;
    std::uint64_t l2p = 0;
    std::uint64_t p2p_pairs = 0;
  };
  const PassCounts& pass_counts() const noexcept { return counts_; }

 private:
  void build_tree(const std::vector<Charge>& charges);
  void upward_pass();
  void translate_pass();
  void downward_pass();
  void near_field_pass();

  using C = std::complex<double>;

  /// Flat per-level coefficient storage: cell c of level l owns
  /// [c * (terms+1), (c+1) * (terms+1)).
  std::vector<C>& multipole(unsigned level) { return multipole_[level]; }
  std::vector<C>& local(unsigned level) { return local_[level]; }

  double binom(unsigned n, unsigned k) const {
    return binom_[n * (2 * terms_ + 2) + k];
  }

  FmmSolverConfig config_;
  unsigned terms_;
  unsigned leaf_level_;
  std::vector<Charge> charges_;

  // Leaf occupancy: charges sorted by leaf cell, CSR-style offsets.
  std::vector<std::uint32_t> order_;        // sorted charge indices
  std::vector<std::uint32_t> leaf_offset_;  // size 4^L + 1

  std::vector<std::vector<C>> multipole_;  // [level][cell * (p+1) + k]
  std::vector<std::vector<C>> local_;
  std::vector<double> binom_;  // Pascal triangle up to 2p+1
  std::vector<double> potentials_;
  std::vector<Vec2> fields_;
  PassCounts counts_;
};

}  // namespace sfc::fmm
