// cells.hpp — quadtree/octree cell geometry for the FMM model.
//
// The spatial domain is a 2^k x 2^k (x 2^k) grid of finest-resolution
// cells. A cell at level L (0 = root, k = finest) has coordinates in
// [0, 2^L)^D; its children at level L+1 double each coordinate. Cells are
// keyed by their Morton code, which makes the parent key a simple shift —
// the property the far-field pass uses to coarsen occupied-cell lists
// without re-sorting.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/morton.hpp"
#include "sfc/point.hpp"
#include "util/bits.hpp"

namespace sfc::fmm {

/// Cell containing a finest-level point, viewed at a coarser level.
template <int D>
constexpr Point<D> cell_at_level(const Point<D>& finest, unsigned finest_level,
                                 unsigned level) noexcept {
  Point<D> c{};
  const unsigned shift = finest_level - level;
  for (int i = 0; i < D; ++i) c[i] = finest[i] >> shift;
  return c;
}

template <int D>
constexpr Point<D> parent_cell(const Point<D>& cell) noexcept {
  Point<D> p{};
  for (int i = 0; i < D; ++i) p[i] = cell[i] >> 1;
  return p;
}

/// True iff the two same-level cells share an edge or corner (Chebyshev
/// distance exactly 1). A cell is not adjacent to itself.
template <int D>
constexpr bool are_adjacent(const Point<D>& a, const Point<D>& b) noexcept {
  return chebyshev(a, b) == 1;
}

/// All same-level cells at Chebyshev distance 1 that lie on the level grid
/// (up to 3^D - 1 of them; fewer at the boundary).
template <int D>
void neighbors(const Point<D>& cell, unsigned level,
               std::vector<Point<D>>& out) {
  out.clear();
  const std::int64_t side = 1ll << level;
  Point<D> q{};
  // Odometer over the {-1,0,1}^D offsets.
  int off[4];  // D <= 4 (static_assert in Point)
  for (int i = 0; i < D; ++i) off[i] = -1;
  for (;;) {
    bool zero = true;
    bool in = true;
    for (int i = 0; i < D; ++i) {
      if (off[i] != 0) zero = false;
      const std::int64_t v = static_cast<std::int64_t>(cell[i]) + off[i];
      if (v < 0 || v >= side) {
        in = false;
        break;
      }
      q[i] = static_cast<std::uint32_t>(v);
    }
    if (!zero && in) out.push_back(q);
    int d = 0;
    while (d < D && off[d] == 1) off[d++] = -1;
    if (d == D) break;
    ++off[d];
  }
}

/// Visit the FMM interaction list of `cell` at `level` (paper Section
/// III, Fig. 4) without materializing it: fn(child) for every same-level
/// child of the parent's neighbors that is not adjacent to (and distinct
/// from) `cell`. Empty at levels 0 and 1, where the parent has no
/// neighbors; at most 27 visits in 2-D, 189 in 3-D. Allocation-free —
/// the FFI hot loop calls this once per occupied cell, so the candidate
/// cells go straight from the offset odometer into the key lookup.
template <int D, typename Fn>
void for_each_interaction(const Point<D>& cell, unsigned level, Fn&& fn) {
  if (level < 2) return;
  const Point<D> par = parent_cell(cell);
  const std::int64_t side = 1ll << (level - 1);
  Point<D> pn{};
  int off[4];  // D <= 4 (static_assert in Point)
  for (int i = 0; i < D; ++i) off[i] = -1;
  for (;;) {
    bool in = true;
    for (int i = 0; i < D; ++i) {
      const std::int64_t v = static_cast<std::int64_t>(par[i]) + off[i];
      if (v < 0 || v >= side) {
        in = false;
        break;
      }
      pn[i] = static_cast<std::uint32_t>(v);
    }
    if (in) {
      // Enumerate pn's 2^D children (the self-neighbor contributes the
      // cell's own siblings; the chebyshev filter drops the adjacent
      // ones, so no explicit zero-offset test is needed).
      for (std::uint32_t mask = 0; mask < (1u << D); ++mask) {
        Point<D> child{};
        for (int i = 0; i < D; ++i) {
          child[i] = (pn[i] << 1) | ((mask >> i) & 1u);
        }
        if (chebyshev(child, cell) > 1) fn(child);
      }
    }
    int d = 0;
    while (d < D && off[d] == 1) off[d++] = -1;
    if (d == D) break;
    ++off[d];
  }
}

/// Key-level sibling of for_each_interaction: fn(child_key) over the same
/// candidate set (enumeration order may differ), without materializing
/// points or Morton-encoding each candidate. The parent-neighbor key is
/// assembled from per-dimension spread components and each child key is
/// then (neighbor_key << D) | child_mask — Morton's low D bits *are* the
/// per-dimension low coordinate bits. The FFI delta path probes every
/// candidate of every touched cell, so the per-candidate encode this
/// removes is its hottest instruction stream.
template <int D, typename Fn>
void for_each_interaction_keys(const Point<D>& cell, unsigned level,
                               Fn&& fn) {
  if (level < 2) return;
  if constexpr (D != 2 && D != 3) {
    for_each_interaction<D>(cell, level,
                            [&](const Point<D>& q) { fn(cell_key<D>(q)); });
    return;
  } else {
    const Point<D> par = parent_cell(cell);
    const std::int64_t side = 1ll << (level - 1);
    // Per dimension and parent offset in {-1,0,1}: bounds, spread key
    // component, and whether each child bit lands within Chebyshev
    // distance 1 of `cell` along that dimension.
    bool in[D][3] = {};
    std::uint64_t comp[D][3] = {};
    bool adj[D][3][2] = {};
    for (int i = 0; i < D; ++i) {
      for (int o = 0; o < 3; ++o) {
        const std::int64_t v = static_cast<std::int64_t>(par[i]) + (o - 1);
        in[i][o] = v >= 0 && v < side;
        if (!in[i][o]) continue;
        const auto u = static_cast<std::uint32_t>(v);
        comp[i][o] = (D == 2 ? util::part1_by1(u) : util::part1_by2(u)) << i;
        for (int b = 0; b < 2; ++b) {
          const std::int64_t d = 2 * v + b - static_cast<std::int64_t>(cell[i]);
          adj[i][o][b] = d >= -1 && d <= 1;
        }
      }
    }
    int off[D];
    for (int i = 0; i < D; ++i) off[i] = 0;
    for (;;) {
      bool bounded = true;
      std::uint64_t pnk = 0;
      for (int i = 0; i < D; ++i) {
        if (!in[i][off[i]]) {
          bounded = false;
          break;
        }
        pnk |= comp[i][off[i]];
      }
      if (bounded) {
        for (std::uint32_t mask = 0; mask < (1u << D); ++mask) {
          bool adjacent = true;
          for (int i = 0; i < D; ++i) {
            adjacent &= adj[i][off[i]][(mask >> i) & 1u];
          }
          // Adjacent (or identical) children are near-field, not
          // interaction-list members — same filter as chebyshev > 1.
          if (!adjacent) fn((pnk << D) | mask);
        }
      }
      int d = 0;
      while (d < D && off[d] == 2) off[d++] = 0;
      if (d == D) break;
      ++off[d];
    }
  }
}

/// Materialized interaction list (same enumeration order as
/// for_each_interaction; the reference FFI path and the tests use this
/// form).
template <int D>
void interaction_list(const Point<D>& cell, unsigned level,
                      std::vector<Point<D>>& out) {
  out.clear();
  for_each_interaction<D>(cell, level,
                          [&out](const Point<D>& child) { out.push_back(child); });
}

/// Morton key of a cell (level-agnostic; level only bounds coordinates).
template <int D>
constexpr std::uint64_t cell_key(const Point<D>& cell) noexcept {
  return morton_index(cell);
}

template <int D>
constexpr std::uint64_t parent_key(std::uint64_t key) noexcept {
  return key >> D;
}

}  // namespace sfc::fmm
