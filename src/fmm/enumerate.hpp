// enumerate.hpp — visitor-style enumeration of the FMM communication sets.
//
// nfi_totals/ffi_totals reduce the communication sets to (hops, count)
// pairs on their hot paths; extensions that need the individual messages —
// link-contention analysis, hop histograms, trace export — use these
// visitors instead. The tests pin the visitors to the reducers: both must
// enumerate exactly the same communications.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rank_pair.hpp"
#include "fmm/cells.hpp"
#include "fmm/ffi.hpp"
#include "fmm/nfi.hpp"
#include "fmm/occupancy.hpp"

namespace sfc::fmm {

/// Invoke fn(i, j) for every ordered near-field pair: particle i receives
/// from particle j (both indices into the sorted particle vector).
template <int D, typename Fn>
void nfi_visit(const std::vector<Point<D>>& particles,
               const OccupancyGrid<D>& grid, unsigned radius,
               NeighborNorm norm, Fn&& fn) {
  const std::int64_t side = 1ll << grid.level();
  const std::int64_t r = radius;
  Point<D> q{};
  std::int64_t off[4] = {};  // D <= 4
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const Point<D>& x = particles[i];
    for (int d = 0; d < D; ++d) off[d] = -r;
    for (;;) {
      bool zero = true;
      bool in = true;
      std::int64_t l1 = 0;
      for (int d = 0; d < D; ++d) {
        if (off[d] != 0) zero = false;
        l1 += off[d] < 0 ? -off[d] : off[d];
        const std::int64_t v = static_cast<std::int64_t>(x[d]) + off[d];
        if (v < 0 || v >= side) {
          in = false;
          break;
        }
        q[d] = static_cast<std::uint32_t>(v);
      }
      const bool within = norm == NeighborNorm::kChebyshev || l1 <= r;
      if (!zero && in && within) {
        const std::int32_t j = grid.particle_at(q);
        if (j != OccupancyGrid<D>::kEmpty) {
          fn(i, static_cast<std::size_t>(j));
        }
      }
      int d = 0;
      while (d < D && off[d] == r) off[d++] = -r;
      if (d == D) break;
      ++off[d];
    }
  }
}

enum class FfiComponent {
  kInterpolation,  // child owner -> parent owner
  kAnterpolation,  // parent owner -> child owner
  kInteraction,    // interaction-list source owner -> cell owner
};

/// Invoke fn(from_particle, to_particle, component) for every far-field
/// communication, in the same order ffi_totals counts them.
template <int D, typename Fn>
void ffi_visit(const CellTree<D>& tree, Fn&& fn) {
  for (unsigned l = 1; l <= tree.finest_level(); ++l) {
    const auto& cells = tree.cells(l);
    for (const auto& cell : cells) {
      const auto idx = tree.find(l - 1, parent_key<D>(cell.key));
      const auto& parent = tree.cells(l - 1)[static_cast<std::size_t>(idx)];
      fn(cell.min_particle, parent.min_particle,
         FfiComponent::kInterpolation);
      fn(parent.min_particle, cell.min_particle,
         FfiComponent::kAnterpolation);
    }
  }
  std::vector<Point<D>> il;
  for (unsigned l = 2; l <= tree.finest_level(); ++l) {
    const auto& cells = tree.cells(l);
    for (const auto& cell : cells) {
      const Point<D> c = morton_point<D>(cell.key);
      interaction_list(c, l, il);
      for (const Point<D>& d : il) {
        const auto idx = tree.find(l, cell_key(d));
        if (idx < 0) continue;
        const auto& dc = tree.cells(l)[static_cast<std::size_t>(idx)];
        fn(dc.min_particle, cell.min_particle, FfiComponent::kInteraction);
      }
    }
  }
}

/// Per-rank-pair traffic histogram of the NFI communication set, keyed
/// (sender rank, receiver rank). The observability companion to
/// nfi_totals: contention models route each distinct pair once with its
/// multiplicity instead of once per event.
template <int D>
core::RankPairAccumulator nfi_pair_counts(
    const std::vector<Point<D>>& particles, const OccupancyGrid<D>& grid,
    const Partition& part, unsigned radius,
    NeighborNorm norm = NeighborNorm::kChebyshev) {
  core::RankPairAccumulator acc(part.processors());
  const std::vector<topo::Rank> owners = part.owner_table();
  nfi_visit<D>(particles, grid, radius, norm,
               [&](std::size_t i, std::size_t j) {
                 // Particle i receives from particle j.
                 acc.add(owners[j], owners[i]);
               });
  return acc;
}

/// Per-rank-pair traffic histogram of the FFI communication set (all
/// three families), keyed (sender rank, receiver rank).
template <int D>
core::RankPairAccumulator ffi_pair_counts(const CellTree<D>& tree,
                                          const Partition& part) {
  core::RankPairAccumulator acc(part.processors());
  const std::vector<topo::Rank> owners = part.owner_table();
  ffi_visit<D>(tree, [&](std::uint32_t from, std::uint32_t to,
                         FfiComponent) { acc.add(owners[from], owners[to]); });
  return acc;
}

}  // namespace sfc::fmm
