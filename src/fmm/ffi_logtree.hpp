// ffi_logtree.hpp — the paper's *literal* Section IV far-field
// accumulation, as an alternative to the occupied-cell-tree model.
//
// Paper Section IV, FFI steps 5-7: "For each quadrant containing at least
// one particle, compute an ordered list of all of the processors that
// contain at least one particle in that quadrant. Construct a log-tree
// (quadtree in 2-D) connecting the processors in each quadrant," and
// count the parent-child communications of interpolation/anterpolation.
//
// We realize the log-tree as the implicit complete 2^D-ary heap over the
// quadrant's ascending processor list (position i's parent is
// (i-1) / 2^D), which satisfies every stated property: 2^D-ary, log
// depth, and rooted at the quadrant's lowest-ranked processor — the
// paper's ownership convention. The main model (fmm/ffi.hpp) instead
// accumulates through the spatial cell hierarchy; bench/ext_ffi_model
// shows the two agree on every qualitative conclusion, which is why the
// reproduction's tables use the cell-tree variant (it also covers the
// level-by-level collection the paper's Section III describes).
#pragma once

#include <vector>

#include "core/totals.hpp"
#include "fmm/partition.hpp"
#include "sfc/point.hpp"
#include "topology/topology.hpp"

namespace sfc::fmm {

/// Accumulation (interpolation + anterpolation) totals under the
/// per-quadrant processor log-tree model. `particles` must be the
/// SFC-sorted list the partition refers to; `level` is the finest
/// resolution (quadrants are the level-1 cells).
template <int D>
core::CommTotals logtree_accumulation_totals(
    const std::vector<Point<D>>& particles, unsigned level,
    const Partition& part, const topo::Topology& net);

/// The per-quadrant ascending processor lists themselves (exposed for
/// tests and diagnostics). Index: quadrant Morton digit (0 .. 2^D-1).
template <int D>
std::vector<std::vector<topo::Rank>> quadrant_processor_lists(
    const std::vector<Point<D>>& particles, unsigned level,
    const Partition& part);

extern template core::CommTotals logtree_accumulation_totals<2>(
    const std::vector<Point<2>>&, unsigned, const Partition&,
    const topo::Topology&);
extern template core::CommTotals logtree_accumulation_totals<3>(
    const std::vector<Point<3>>&, unsigned, const Partition&,
    const topo::Topology&);
extern template std::vector<std::vector<topo::Rank>>
quadrant_processor_lists<2>(const std::vector<Point<2>>&, unsigned,
                            const Partition&);
extern template std::vector<std::vector<topo::Rank>>
quadrant_processor_lists<3>(const std::vector<Point<3>>&, unsigned,
                            const Partition&);

}  // namespace sfc::fmm
