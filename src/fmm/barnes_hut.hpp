// barnes_hut.hpp — the Barnes–Hut tree code, the FMM's classical baseline.
//
// Two roles here:
//  1. a working solver (monopole approximation with the theta opening
//     criterion, adaptive quadtree) validated against direct summation —
//     the algorithm the paper's n-body motivation usually starts from; and
//  2. a second *communication model* for the ACD metric: unlike the FMM's
//     symmetric interaction lists, a Barnes–Hut traversal makes every
//     particle's processor fetch each tree cell it accepts, so the
//     communication volume and structure differ — a concrete Section VII
//     demonstration that ACD can rank SFCs for other algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "core/totals.hpp"
#include "fmm/ffi.hpp"
#include "fmm/laplace_fmm.hpp"  // Charge
#include "fmm/partition.hpp"
#include "topology/topology.hpp"

namespace sfc::fmm {

struct BhConfig {
  double theta = 0.5;        ///< opening criterion: accept if side/dist < theta
  unsigned max_level = 10;   ///< deepest subdivision
  unsigned leaf_capacity = 4;  ///< split cells holding more charges
};

/// Barnes–Hut potentials (phi(z) = sum q ln|z - z_i|, self excluded) for
/// charges in the unit square. theta = 0 degenerates to exact direct
/// summation (every cell is opened down to the leaves).
class BarnesHut2D {
 public:
  BarnesHut2D(std::vector<Charge> charges, const BhConfig& config);

  const std::vector<double>& potentials() const noexcept {
    return potentials_;
  }

  struct Stats {
    std::uint64_t nodes = 0;        ///< tree nodes built
    std::uint64_t cell_evals = 0;   ///< accepted (far) cell interactions
    std::uint64_t point_evals = 0;  ///< direct particle-particle evals
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Node {
    double cx = 0.0, cy = 0.0;      ///< geometric center
    double half = 0.0;              ///< half side length
    double mx = 0.0, my = 0.0;      ///< charge-weighted centroid
    double q = 0.0;                 ///< total charge
    double abs_q = 0.0;             ///< sum |q| (centroid weighting)
    std::int32_t child[4] = {-1, -1, -1, -1};
    std::uint32_t begin = 0, end = 0;  ///< charge range (leaves)
    bool leaf = true;
  };

  std::int32_t build(double cx, double cy, double half, std::uint32_t begin,
                     std::uint32_t end, unsigned level);
  double evaluate(const Node& node, double x, double y,
                  std::uint32_t self) const;

  BhConfig config_;
  std::vector<Charge> charges_;
  std::vector<std::uint32_t> order_;
  std::vector<Node> nodes_;
  std::vector<double> potentials_;
  mutable Stats stats_;
};

/// The Barnes–Hut *communication model* on the ACD pipeline's occupied
/// cell tree: every particle traverses the tree; an accepted cell costs
/// one communication from the cell owner's processor to the particle's
/// processor; opened finest-level cells cost one direct communication per
/// occupant. Zero-hop communications are counted, the particle's own cell
/// is skipped (self-interaction).
core::CommTotals bh_comm_totals(const std::vector<Point2>& particles,
                                const CellTree<2>& tree,
                                const Partition& part,
                                const topo::Topology& net, double theta);

}  // namespace sfc::fmm
