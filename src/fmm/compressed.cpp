#include "fmm/compressed.hpp"

#include <algorithm>
#include <unordered_map>

#include "fmm/cells.hpp"

namespace sfc::fmm {

template <int D>
CompressedCellTree<D>::CompressedCellTree(const CellTree<D>& tree) {
  const unsigned finest = tree.finest_level();

  // Count occupied children per cell: children of key k at level l occupy
  // the key range [k << D, (k + 1) << D) at level l + 1; both lists are
  // sorted, so one merge-style sweep per level suffices.
  std::vector<std::vector<std::uint32_t>> child_count(finest + 1);
  for (unsigned l = 0; l < finest; ++l) {
    child_count[l].assign(tree.cells(l).size(), 0);
    const auto& coarse = tree.cells(l);
    const auto& fine = tree.cells(l + 1);
    std::size_t ci = 0;
    for (const auto& cell : fine) {
      const std::uint64_t pk = parent_key<D>(cell.key);
      while (coarse[ci].key != pk) ++ci;  // parents of sorted children are sorted
      ++child_count[l][ci];
    }
  }

  // Representatives: root, finest-level cells, internal cells with >= 2
  // occupied children. Nodes are emitted level by level, so a parent
  // always precedes its descendants.
  std::vector<std::unordered_map<std::uint64_t, std::int32_t>> index_of(
      finest + 1);
  auto is_rep = [&](unsigned level, std::size_t i) {
    if (level == 0 || level == finest) return true;
    return child_count[level][i] >= 2;
  };

  for (unsigned l = 0; l <= finest; ++l) {
    const auto& cells = tree.cells(l);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!is_rep(l, i)) continue;
      // Nearest representative proper ancestor: walk parent keys upward
      // until one is indexed (the root always is, once emitted).
      std::int32_t parent = -1;
      if (l > 0) {
        std::uint64_t key = cells[i].key;
        for (unsigned al = l; al-- > 0;) {
          key = parent_key<D>(key);
          const auto it = index_of[al].find(key);
          if (it != index_of[al].end()) {
            parent = it->second;
            break;
          }
        }
      }
      index_of[l].emplace(cells[i].key,
                          static_cast<std::int32_t>(nodes_.size()));
      nodes_.push_back(Node{l, cells[i].key, cells[i].min_particle, parent});
    }
  }
}

template <int D>
core::CommTotals compressed_accumulation_totals(
    const CompressedCellTree<D>& tree, const Partition& part,
    const topo::Topology& net) {
  core::CommTotals totals;
  for (const auto& node : tree.nodes()) {
    if (node.parent < 0) continue;
    const auto& parent =
        tree.nodes()[static_cast<std::size_t>(node.parent)];
    totals.hops += net.distance(part.proc_of(node.min_particle),
                                part.proc_of(parent.min_particle));
    ++totals.count;
  }
  return totals;
}

template class CompressedCellTree<2>;
template class CompressedCellTree<3>;
template core::CommTotals compressed_accumulation_totals<2>(
    const CompressedCellTree<2>&, const Partition&, const topo::Topology&);
template core::CommTotals compressed_accumulation_totals<3>(
    const CompressedCellTree<3>&, const Partition&, const topo::Topology&);

}  // namespace sfc::fmm
