// compressed.hpp — the compressed quadtree/octree (paper Section III,
// after Hariharan & Aluru and Sundar et al.).
//
// The paper describes the spatial domain as a *compressed* quadtree: every
// chain of internal cells with a single occupied child is collapsed to one
// link. Representatives are the root, the occupied finest-level cells, and
// every internal cell with two or more occupied children; each node's
// parent pointer jumps to its nearest representative ancestor.
//
// For the communication model the collapse is exactly the removal of the
// zero-hop accumulation traffic: along a singleton chain every cell has
// the same lowest-particle owner, so the uncompressed model's chain links
// contribute count but never hops. Hence the invariant (unit-tested):
// compressed accumulation hops == uncompressed interpolation hops, with a
// strictly smaller message count for any input with empty regions — i.e.
// the *representation* changes ACD's denominator, a subtlety worth
// surfacing when comparing against other implementations of the metric.
#pragma once

#include <cstdint>
#include <vector>

#include "core/totals.hpp"
#include "fmm/ffi.hpp"
#include "fmm/partition.hpp"
#include "topology/topology.hpp"

namespace sfc::fmm {

template <int D>
class CompressedCellTree {
 public:
  struct Node {
    unsigned level;              ///< refinement level of the cell
    std::uint64_t key;           ///< Morton key at that level
    std::uint32_t min_particle;  ///< owner (lowest sorted particle inside)
    std::int32_t parent;         ///< index into nodes(), -1 for the root
  };

  explicit CompressedCellTree(const CellTree<D>& tree);

  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Compression ratio: uncompressed occupied cells / compressed nodes.
  double compression(const CellTree<D>& tree) const noexcept {
    return nodes_.empty() ? 1.0
                          : static_cast<double>(tree.total_cells()) /
                                static_cast<double>(nodes_.size());
  }

 private:
  std::vector<Node> nodes_;
};

/// Upward-accumulation communications on the compressed tree: one message
/// per non-root node to its parent representative.
template <int D>
core::CommTotals compressed_accumulation_totals(
    const CompressedCellTree<D>& tree, const Partition& part,
    const topo::Topology& net);

extern template class CompressedCellTree<2>;
extern template class CompressedCellTree<3>;
extern template core::CommTotals compressed_accumulation_totals<2>(
    const CompressedCellTree<2>&, const Partition&, const topo::Topology&);
extern template core::CommTotals compressed_accumulation_totals<3>(
    const CompressedCellTree<3>&, const Partition&, const topo::Topology&);

}  // namespace sfc::fmm
