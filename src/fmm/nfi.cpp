#include "fmm/nfi.hpp"

namespace sfc::fmm {
namespace {

/// Accumulate the near-field communications of particles [lo, hi).
template <int D>
core::CommTotals nfi_range(const std::vector<Point<D>>& particles,
                           const OccupancyGrid<D>& grid, const Partition& part,
                           const topo::Topology& net, unsigned radius,
                           NeighborNorm norm, std::size_t lo, std::size_t hi) {
  core::CommTotals totals;
  const std::int64_t side = 1ll << grid.level();
  const std::int64_t r = radius;

  Point<D> q{};
  std::int64_t off[4] = {};  // D <= 4 (static_assert in Point)
  for (std::size_t i = lo; i < hi; ++i) {
    const Point<D>& x = particles[i];
    const topo::Rank px = part.proc_of(i);
    // Odometer over the (2r+1)^D window around x.
    for (int d = 0; d < D; ++d) off[d] = -r;
    for (;;) {
      bool zero = true;
      bool in = true;
      std::int64_t l1 = 0;
      for (int d = 0; d < D; ++d) {
        if (off[d] != 0) zero = false;
        l1 += off[d] < 0 ? -off[d] : off[d];
        const std::int64_t v = static_cast<std::int64_t>(x[d]) + off[d];
        if (v < 0 || v >= side) {
          in = false;
          break;
        }
        q[d] = static_cast<std::uint32_t>(v);
      }
      const bool within =
          norm == NeighborNorm::kChebyshev || l1 <= r;  // window is the L∞ ball
      if (!zero && in && within) {
        const std::int32_t j = grid.particle_at(q);
        if (j != OccupancyGrid<D>::kEmpty) {
          totals.hops +=
              net.distance(px, part.proc_of(static_cast<std::size_t>(j)));
          ++totals.count;
        }
      }
      int d = 0;
      while (d < D && off[d] == r) off[d++] = -r;
      if (d == D) break;
      ++off[d];
    }
  }
  return totals;
}

}  // namespace

template <int D>
core::CommTotals nfi_totals(const std::vector<Point<D>>& particles,
                            const OccupancyGrid<D>& grid,
                            const Partition& part, const topo::Topology& net,
                            unsigned radius, NeighborNorm norm,
                            util::ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    return nfi_range<D>(particles, grid, part, net, radius, norm, 0,
                        particles.size());
  }
  return util::parallel_reduce_chunks(
      *pool, 0, particles.size(), 1024, core::CommTotals{},
      [&](std::size_t lo, std::size_t hi) {
        return nfi_range<D>(particles, grid, part, net, radius, norm, lo, hi);
      });
}

template core::CommTotals nfi_totals<2>(const std::vector<Point<2>>&,
                                        const OccupancyGrid<2>&,
                                        const Partition&,
                                        const topo::Topology&, unsigned,
                                        NeighborNorm, util::ThreadPool*);
template core::CommTotals nfi_totals<3>(const std::vector<Point<3>>&,
                                        const OccupancyGrid<3>&,
                                        const Partition&,
                                        const topo::Topology&, unsigned,
                                        NeighborNorm, util::ThreadPool*);

}  // namespace sfc::fmm
