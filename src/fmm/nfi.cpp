#include "fmm/nfi.hpp"

#include <algorithm>
#include <utility>

#include "core/rank_pair.hpp"
#include "fmm/nfi_window.hpp"
#include "obs/trace.hpp"
#include "util/simd.hpp"

namespace sfc::fmm {
namespace {

/// Reference path: accumulate the near-field communications of particles
/// [lo, hi) with one virtual distance() dispatch per event. Kept as the
/// oracle the aggregated path must bit-match (and for topologies/grids
/// the fast kernel does not cover).
template <int D>
core::CommTotals nfi_range_direct(const std::vector<Point<D>>& particles,
                                  const OccupancyGrid<D>& grid,
                                  const Partition& part,
                                  const topo::Topology& net, unsigned radius,
                                  NeighborNorm norm, std::size_t lo,
                                  std::size_t hi) {
  core::CommTotals totals;
  const std::int64_t side = 1ll << grid.level();
  const std::int64_t r = radius;

  Point<D> q{};
  std::int64_t off[4] = {};  // D <= 4 (static_assert in Point)
  for (std::size_t i = lo; i < hi; ++i) {
    const Point<D>& x = particles[i];
    const topo::Rank px = part.proc_of(i);
    // Odometer over the (2r+1)^D window around x.
    for (int d = 0; d < D; ++d) off[d] = -r;
    for (;;) {
      bool zero = true;
      bool in = true;
      std::int64_t l1 = 0;
      for (int d = 0; d < D; ++d) {
        if (off[d] != 0) zero = false;
        l1 += off[d] < 0 ? -off[d] : off[d];
        const std::int64_t v = static_cast<std::int64_t>(x[d]) + off[d];
        if (v < 0 || v >= side) {
          in = false;
          break;
        }
        q[d] = static_cast<std::uint32_t>(v);
      }
      const bool within =
          norm == NeighborNorm::kChebyshev || l1 <= r;  // window is the L∞ ball
      if (!zero && in && within) {
        const std::int32_t j = grid.particle_at(q);
        if (j != OccupancyGrid<D>::kEmpty) {
          totals.hops +=
              net.distance(px, part.proc_of(static_cast<std::size_t>(j)));
          ++totals.count;
        }
      }
      int d = 0;
      while (d < D && off[d] == r) off[d++] = -r;
      if (d == D) break;
      ++off[d];
    }
  }
  return totals;
}

/// The shared window visitor (fmm/nfi_window.hpp) takes the norm as a
/// bool so the header need not depend on this file's enum; adapt here.
template <int D, typename Fn>
inline void visit_neighbors(const OccupancyGrid<D>& grid,
                            const std::int32_t* cells, const Point<D>& x,
                            std::int64_t r, NeighborNorm norm, Fn&& fn) {
  visit_window_neighbors<D>(grid, cells, x, r,
                            norm == NeighborNorm::kChebyshev,
                            std::forward<Fn>(fn));
}

/// 2-D dense-grid kernel exploiting pair symmetry: every unordered
/// particle pair within the ball produces the two directed events
/// (own[i], own[j]) and (own[j], own[i]), so scanning only the
/// lexicographically-positive half of each window (rows above, plus the
/// right half of the center row) and recording both events per occupied
/// neighbor halves the probed cells. Each unordered pair is seen by
/// exactly one of its endpoints regardless of chunk boundaries, so the
/// chunked reduction still enumerates the exact event multiset of the
/// reference path — and integer sums commute, so totals are bit-equal.
template <typename Push>
inline void halfwindow_dense2(const std::int32_t* cells, unsigned level,
                              const Point<2>& x, std::int64_t r,
                              NeighborNorm norm, Push&& push) {
  const std::int64_t side = std::int64_t{1} << level;
  const std::int64_t x0 = x[0];
  const std::int64_t y0 = x[1];
  // Center row: dx in [1, r] (identical under both norms).
  {
    const std::int64_t xhi = x0 + r < side - 1 ? x0 + r : side - 1;
    const std::int32_t* row = cells + (static_cast<std::uint64_t>(y0) << level);
    for (std::int64_t xx = x0 + 1; xx <= xhi; ++xx) {
      const std::int32_t j = row[xx];
      if (j != OccupancyGrid<2>::kEmpty) push(j);
    }
  }
  // Rows above: dy in [1, r], x-extent clamped to the norm ball.
  const std::int64_t yhi = y0 + r < side - 1 ? y0 + r : side - 1;
  for (std::int64_t yy = y0 + 1; yy <= yhi; ++yy) {
    const std::int64_t budget =
        norm == NeighborNorm::kChebyshev ? r : r - (yy - y0);
    const std::int64_t xlo = x0 - budget > 0 ? x0 - budget : 0;
    const std::int64_t xhi = x0 + budget < side - 1 ? x0 + budget : side - 1;
    const std::int32_t* row = cells + (static_cast<std::uint64_t>(yy) << level);
    for (std::int64_t xx = xlo; xx <= xhi; ++xx) {
      const std::int32_t j = row[xx];
      if (j != OccupancyGrid<2>::kEmpty) push(j);
    }
  }
}

/// Histogram the near-field events of particles [lo, hi) into `acc` as
/// (src rank, dst rank) → count entries. The partition assigns contiguous
/// chunks, so the walk proceeds rank run by rank run — the source rank
/// and its histogram row are loop invariants hoisted out of the
/// per-particle window scans.
template <int D>
void nfi_range_into(const std::vector<Point<D>>& particles,
                    const OccupancyGrid<D>& grid, const Partition& part,
                    const std::vector<topo::Rank>& owners,
                    core::RankPairAccumulator& acc, unsigned radius,
                    NeighborNorm norm, std::size_t lo, std::size_t hi) {
  const std::int32_t* cells = grid.dense_cells();
  const std::int64_t r = radius;
  const topo::Rank* own = owners.data();

  // SIMD half-window compaction for the 2-D dense kernel: one scratch
  // buffer sized to the largest half-window, reused across every
  // particle of the range. r == 1 windows hold at most 4 cells — too
  // short to fill vector lanes — so the per-cell scan stays.
  decltype(util::simd::kernels().nfi_halfwindow2) collect = nullptr;
  std::vector<std::int32_t> scratch;
  if constexpr (D == 2) {
    if (cells != nullptr && r >= 2) {
      collect = util::simd::kernels().nfi_halfwindow2;
      if (collect != nullptr) {
        scratch.resize(static_cast<std::size_t>(2 * r * r + 2 * r + 7));
      }
    }
  }

  std::size_t i = lo;
  topo::Rank src = owners[lo];
  while (i < hi) {
    const std::size_t run_end = std::min(hi, part.chunk_begin(src + 1));
    if (run_end <= i) {
      ++src;
      continue;
    }
    std::uint64_t* row = acc.row(src);
    if constexpr (D == 2) {
      if (cells != nullptr) {
        // Hop distance is symmetric (the interconnects are undirected;
        // the metric-property tests assert it), so the directed events
        // (src, dst) and (dst, src) fold to the same 2·d(src, dst) as a
        // single count-2 entry on src's row — which keeps every update
        // on the hoisted row instead of scattering across the histogram.
        const unsigned level = grid.level();
        auto scan = [&](const Point<2>& p, auto&& push) {
          if (collect != nullptr) {
            // Same rows, same in-row order, same ids as
            // halfwindow_dense2 — the event multiset is identical.
            const std::size_t m =
                collect(cells, level, p[0], p[1],
                        static_cast<std::uint32_t>(r),
                        norm == NeighborNorm::kChebyshev, scratch.data());
            for (std::size_t k = 0; k < m; ++k) push(scratch[k]);
          } else {
            halfwindow_dense2(cells, level, p, r, norm, push);
          }
        };
        if (row != nullptr) {
          for (; i < run_end; ++i) {
            scan(particles[i], [&](std::int32_t j) {
              row[own[static_cast<std::size_t>(j)]] += 2;
            });
          }
        } else {
          for (; i < run_end; ++i) {
            scan(particles[i], [&](std::int32_t j) {
              acc.add(src, own[static_cast<std::size_t>(j)], 2);
            });
          }
        }
        ++src;
        continue;
      }
    }
    if (row != nullptr) {
      for (; i < run_end; ++i) {
        visit_neighbors<D>(grid, cells, particles[i], r, norm,
                           [&](std::size_t j) { ++row[own[j]]; });
      }
    } else {
      for (; i < run_end; ++i) {
        visit_neighbors<D>(grid, cells, particles[i], r, norm,
                           [&](std::size_t j) { acc.add(src, own[j]); });
      }
    }
    ++src;
  }
}

/// nfi_range_into for particles in arbitrary array order: the source rank
/// comes from the owner table per particle instead of the contiguous
/// partition runs, so there is no run to hoist — but the emitted event
/// multiset is identical for the identical particle/owner assignment
/// (every event is (owner of x, owner of y) over the same spatial pairs,
/// and the half-window orientation is spatial, not positional).
template <int D>
void nfi_range_into_owners(const std::vector<Point<D>>& particles,
                           const OccupancyGrid<D>& grid,
                           const std::vector<topo::Rank>& owners,
                           core::RankPairAccumulator& acc, unsigned radius,
                           NeighborNorm norm, std::size_t lo, std::size_t hi) {
  const std::int32_t* cells = grid.dense_cells();
  const std::int64_t r = radius;
  const topo::Rank* own = owners.data();

  if constexpr (D == 2) {
    if (cells != nullptr) {
      const unsigned level = grid.level();
      // Same SIMD compaction setup as nfi_range_into.
      decltype(util::simd::kernels().nfi_halfwindow2) collect = nullptr;
      std::vector<std::int32_t> scratch;
      if (r >= 2) {
        collect = util::simd::kernels().nfi_halfwindow2;
        if (collect != nullptr) {
          scratch.resize(static_cast<std::size_t>(2 * r * r + 2 * r + 7));
        }
      }
      auto scan = [&](const Point<2>& p, auto&& push) {
        if (collect != nullptr) {
          const std::size_t m =
              collect(cells, level, p[0], p[1], static_cast<std::uint32_t>(r),
                      norm == NeighborNorm::kChebyshev, scratch.data());
          for (std::size_t k = 0; k < m; ++k) push(scratch[k]);
        } else {
          halfwindow_dense2(cells, level, p, r, norm, push);
        }
      };
      for (std::size_t i = lo; i < hi; ++i) {
        const topo::Rank src = own[i];
        std::uint64_t* row = acc.row(src);
        if (row != nullptr) {
          scan(particles[i], [&](std::int32_t j) {
            row[own[static_cast<std::size_t>(j)]] += 2;
          });
        } else {
          scan(particles[i], [&](std::int32_t j) {
            acc.add(src, own[static_cast<std::size_t>(j)], 2);
          });
        }
      }
      return;
    }
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const topo::Rank src = own[i];
    visit_neighbors<D>(grid, cells, particles[i], r, norm,
                       [&](std::size_t j) { acc.add(src, own[j]); });
  }
}

/// Aggregated path for particles [lo, hi): populate a (src, dst) → count
/// histogram, then hand it to the topology's fold kernel (factorized
/// closed form, dense table, or streamed — the topology's choice).
template <int D>
core::CommTotals nfi_range_aggregated(
    const std::vector<Point<D>>& particles, const OccupancyGrid<D>& grid,
    const Partition& part, const std::vector<topo::Rank>& owners,
    const topo::Topology& net, unsigned radius, NeighborNorm norm,
    std::size_t lo, std::size_t hi) {
  core::RankPairAccumulator acc(part.processors(), net);
  nfi_range_into<D>(particles, grid, part, owners, acc, radius, norm, lo, hi);
  return net.fold(acc.view());
}

}  // namespace

template <int D>
core::CommTotals nfi_totals(const std::vector<Point<D>>& particles,
                            const OccupancyGrid<D>& grid,
                            const Partition& part, const topo::Topology& net,
                            unsigned radius, NeighborNorm norm,
                            util::ThreadPool* pool) {
  if (particles.empty()) return {};
  // Build the shared rank-of-particle array once, outside the parallel
  // region; each chunk folds through the topology's own kernel.
  const std::vector<topo::Rank> owners = part.owner_table();
  auto chunk = [&](std::size_t lo, std::size_t hi) {
    return nfi_range_aggregated<D>(particles, grid, part, owners, net, radius,
                                   norm, lo, hi);
  };
  if (pool == nullptr || pool->size() <= 1) {
    return chunk(0, particles.size());
  }
  return util::parallel_reduce_chunks(*pool, 0, particles.size(),
                                      util::kAutoGrain, core::CommTotals{},
                                      chunk);
}

template <int D>
core::RankPairAccumulator nfi_histogram(const std::vector<Point<D>>& particles,
                                        const OccupancyGrid<D>& grid,
                                        const Partition& part, unsigned radius,
                                        NeighborNorm norm,
                                        util::ThreadPool* pool) {
  core::RankPairAccumulator acc(part.processors());
  if (particles.empty()) return acc;
  const std::vector<topo::Rank> owners = part.owner_table();
  if (pool == nullptr || pool->size() <= 1) {
    nfi_range_into<D>(particles, grid, part, owners, acc, radius, norm, 0,
                      particles.size());
    return acc;
  }
  // Per-worker shards written without synchronization, merged once:
  // counts are integers and addition commutes, so the merged multiset —
  // and every fold of it — is identical regardless of scheduling order.
  core::RankPairShards shards(part.processors(), pool->size());
  util::parallel_for_chunks(
      *pool, 0, particles.size(), util::kAutoGrain,
      [&](std::size_t lo, std::size_t hi) {
        nfi_range_into<D>(particles, grid, part, owners, shards.local(),
                          radius, norm, lo, hi);
      });
  shards.merge_into(acc);
  return acc;
}

template <int D>
core::RankPairAccumulator nfi_histogram_owners(
    const std::vector<Point<D>>& particles, const OccupancyGrid<D>& grid,
    const std::vector<topo::Rank>& owners, topo::Rank procs, unsigned radius,
    NeighborNorm norm, util::ThreadPool* pool) {
  const obs::Span span("nfi/enumerate");
  core::RankPairAccumulator acc(procs);
  if (particles.empty()) return acc;
  if (pool == nullptr || pool->size() <= 1) {
    nfi_range_into_owners<D>(particles, grid, owners, acc, radius, norm, 0,
                             particles.size());
    return acc;
  }
  core::RankPairShards shards(procs, pool->size());
  util::parallel_for_chunks(
      *pool, 0, particles.size(), util::kAutoGrain,
      [&](std::size_t lo, std::size_t hi) {
        nfi_range_into_owners<D>(particles, grid, owners, shards.local(),
                                 radius, norm, lo, hi);
      });
  shards.merge_into(acc);
  return acc;
}

template <int D>
core::CommTotals nfi_totals_direct(const std::vector<Point<D>>& particles,
                                   const OccupancyGrid<D>& grid,
                                   const Partition& part,
                                   const topo::Topology& net, unsigned radius,
                                   NeighborNorm norm, util::ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) {
    return nfi_range_direct<D>(particles, grid, part, net, radius, norm, 0,
                               particles.size());
  }
  return util::parallel_reduce_chunks(
      *pool, 0, particles.size(), util::kAutoGrain, core::CommTotals{},
      [&](std::size_t lo, std::size_t hi) {
        return nfi_range_direct<D>(particles, grid, part, net, radius, norm,
                                   lo, hi);
      });
}

template core::CommTotals nfi_totals<2>(const std::vector<Point<2>>&,
                                        const OccupancyGrid<2>&,
                                        const Partition&,
                                        const topo::Topology&, unsigned,
                                        NeighborNorm, util::ThreadPool*);
template core::CommTotals nfi_totals<3>(const std::vector<Point<3>>&,
                                        const OccupancyGrid<3>&,
                                        const Partition&,
                                        const topo::Topology&, unsigned,
                                        NeighborNorm, util::ThreadPool*);
template core::CommTotals nfi_totals_direct<2>(const std::vector<Point<2>>&,
                                               const OccupancyGrid<2>&,
                                               const Partition&,
                                               const topo::Topology&, unsigned,
                                               NeighborNorm,
                                               util::ThreadPool*);
template core::CommTotals nfi_totals_direct<3>(const std::vector<Point<3>>&,
                                               const OccupancyGrid<3>&,
                                               const Partition&,
                                               const topo::Topology&, unsigned,
                                               NeighborNorm,
                                               util::ThreadPool*);
template core::RankPairAccumulator nfi_histogram<2>(
    const std::vector<Point<2>>&, const OccupancyGrid<2>&, const Partition&,
    unsigned, NeighborNorm, util::ThreadPool*);
template core::RankPairAccumulator nfi_histogram<3>(
    const std::vector<Point<3>>&, const OccupancyGrid<3>&, const Partition&,
    unsigned, NeighborNorm, util::ThreadPool*);
template core::RankPairAccumulator nfi_histogram_owners<2>(
    const std::vector<Point<2>>&, const OccupancyGrid<2>&,
    const std::vector<topo::Rank>&, topo::Rank, unsigned, NeighborNorm,
    util::ThreadPool*);
template core::RankPairAccumulator nfi_histogram_owners<3>(
    const std::vector<Point<3>>&, const OccupancyGrid<3>&,
    const std::vector<topo::Rank>&, topo::Rank, unsigned, NeighborNorm,
    util::ThreadPool*);

}  // namespace sfc::fmm
