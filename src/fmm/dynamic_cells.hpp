// dynamic_cells.hpp — a mutable occupied-cell hierarchy for the
// incremental dynamics path.
//
// CellTree (ffi.hpp) is an immutable snapshot: sorted per-level cell
// lists whose min_particle fields implement the paper's lowest-particle
// ownership convention. Under particle motion those lists would need a
// re-sort per timestep, so the dynamics engine keeps this mutable mirror
// instead, tuned for the delta walk's access pattern:
//   * occupancy — the walk probes ~27 interaction candidates per touched
//     cell and most are empty, so each level keeps a dense bitmap (while
//     the key space fits kDenseBitsCap) answering occupied() in one
//     cache-resident bit test; deeper levels fall back to the hash map;
//   * ownership — per occupied cell a (count, cached owner, lazy min-heap
//     of particle indices) record. The owner cache is maintained in O(1)
//     per mutation (insert takes a min; erase of the owner marks the cell
//     dirty) and a dirty cell re-derives its owner by popping stale heap
//     tops on demand — erase never searches the heap;
//   * motion — move_particle() walks the old and new ancestor chains only
//     until they merge: above that point the cell's occupant *indices*
//     are unchanged, so count, owner, and the index-keyed heap entries
//     all remain valid untouched.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fmm/cells.hpp"
#include "sfc/point.hpp"

namespace sfc::fmm {

template <int D>
class DynamicCellTree {
 public:
  /// Sentinel for "no particle": unoccupied cells (owner_or_none) and
  /// dirty owner caches.
  static constexpr std::uint32_t kNoParticle = 0xFFFFFFFFu;
  /// A level keeps a dense occupancy bitmap while its keys need at most
  /// this many bits (matches OccupancyGrid's dense policy; 2^26 bits is
  /// an 8 MiB map at the deepest dense level).
  static constexpr unsigned kDenseBitsCap = 26;
  /// Levels at most this many key bits also mirror each cell's cached
  /// owner in a flat array (4 bytes per cell, 16 MiB at the cap), so the
  /// common owner query is a bit test plus one array read — no hash find.
  static constexpr unsigned kDenseOwnerCap = 22;

  /// `positions` is the particle array the tree mirrors; the tree keeps a
  /// pointer and reads it on every ownership query, so the caller must
  /// mutate positions and tree in step (erase with the old position while
  /// the entry is still current is fine — erase never reads positions).
  DynamicCellTree(const std::vector<Point<D>>& positions,
                  unsigned finest_level)
      : positions_(&positions), finest_(finest_level) {
    levels_.resize(finest_ + 1);
    bits_.resize(finest_ + 1);
    owner_mirror_.resize(finest_ + 1);
    for (unsigned l = 0; l <= finest_; ++l) {
      if (D * l <= kDenseBitsCap) {
        bits_[l].assign((std::size_t{1} << (D * l)) / 64 + 1, 0);
      }
      if (D * l <= kDenseOwnerCap) {
        owner_mirror_[l].assign(std::size_t{1} << (D * l), kNoParticle);
      }
    }
    for (std::size_t i = 0; i < positions.size(); ++i) {
      insert_particle(static_cast<std::uint32_t>(i), positions[i]);
    }
  }

  unsigned finest_level() const noexcept { return finest_; }

  /// Morton key of the level-`level` ancestor of a finest-level position.
  std::uint64_t ancestor_key(const Point<D>& finest,
                             unsigned level) const noexcept {
    return cell_key(finest) >> (D * (finest_ - level));
  }

  bool occupied(unsigned level, std::uint64_t key) const noexcept {
    const std::vector<std::uint64_t>& bits = bits_[level];
    if (!bits.empty()) {
      return (bits[key >> 6] >> (key & 63)) & 1u;
    }
    const auto it = levels_[level].find(key);
    return it != levels_[level].end() && it->second.count > 0;
  }

  /// Particle count inside the cell (0 when unoccupied).
  std::uint32_t count(unsigned level, std::uint64_t key) const noexcept {
    const auto it = levels_[level].find(key);
    return it == levels_[level].end() ? 0u : it->second.count;
  }

  /// Owner particle of an occupied cell: the smallest particle index whose
  /// level-`level` ancestor is `key` — the same lowest-particle convention
  /// as CellTree::Cell::min_particle.
  std::uint32_t owner_particle(unsigned level, std::uint64_t key) {
    auto it = levels_[level].find(key);
    assert(it != levels_[level].end() && it->second.count > 0);
    return owner_of(it->second, level, key);
  }

  /// owner_particle and occupied in one probe: the owner, or kNoParticle
  /// for an unoccupied cell. The delta walk's workhorse — empty probes
  /// cost one bit test, and occupied probes on mirror-dense levels read
  /// the flat owner mirror; only a dirty cache falls through to the map.
  std::uint32_t owner_or_none(unsigned level, std::uint64_t key) {
    if (!occupied(level, key)) return kNoParticle;
    const std::vector<std::uint32_t>& mirror = owner_mirror_[level];
    if (!mirror.empty()) {
      const std::uint32_t cached = mirror[key];
      if (cached != kNoParticle) return cached;
    }
    return owner_of(levels_[level].find(key)->second, level, key);
  }

  /// Remove particle `index`, previously inserted at `old_pos`, from every
  /// level.
  void erase_particle(std::uint32_t index, const Point<D>& old_pos) {
    std::uint64_t key = cell_key(old_pos);
    for (unsigned l = finest_ + 1; l-- > 0;) {
      erase_at(l, key, index);
      key >>= D;
    }
  }

  /// Add particle `index` at `new_pos` to every level.
  void insert_particle(std::uint32_t index, const Point<D>& new_pos) {
    std::uint64_t key = cell_key(new_pos);
    for (unsigned l = finest_ + 1; l-- > 0;) {
      insert_at(l, key, index);
      key >>= D;
    }
  }

  /// Relocate particle `index` from `old_pos` to `new_pos`, updating only
  /// the levels where the two ancestor chains differ. Above the merge
  /// point the cell keeps the same occupant indices, so its whole record
  /// is already correct. Interleaving relocations of a batch in any order
  /// is safe: counts are multiset increments, and the owner cache rules
  /// hold per mutation.
  void move_particle(std::uint32_t index, const Point<D>& old_pos,
                     const Point<D>& new_pos) {
    std::uint64_t a = cell_key(old_pos);
    std::uint64_t b = cell_key(new_pos);
    for (unsigned l = finest_ + 1; l-- > 0 && a != b;) {
      erase_at(l, a, index);
      insert_at(l, b, index);
      a >>= D;
      b >>= D;
    }
  }

  std::size_t memory_bytes() const noexcept {
    std::size_t bytes = 0;
    for (const auto& cells : levels_) {
      bytes += cells.size() * (sizeof(std::uint64_t) + sizeof(CellRec) +
                               2 * sizeof(void*));
      for (const auto& [key, rec] : cells) {
        bytes += rec.heap.capacity() * sizeof(std::uint32_t);
      }
    }
    for (const auto& bits : bits_) {
      bytes += bits.capacity() * sizeof(std::uint64_t);
    }
    for (const auto& mirror : owner_mirror_) {
      bytes += mirror.capacity() * sizeof(std::uint32_t);
    }
    return bytes;
  }

 private:
  struct CellRec {
    std::uint32_t count = 0;
    std::uint32_t owner = kNoParticle;  // kNoParticle = dirty, re-derive
    std::vector<std::uint32_t> heap;    // min-heap, lazily pruned
  };

  /// Cached owner, or the lazy-deletion heap scan on a dirty cache: stale
  /// tops (particles that have since left the cell) are popped; an entry
  /// duplicated by a leave-and-return never outranks the live copy, and a
  /// nonzero count guarantees a live entry remains.
  std::uint32_t owner_of(CellRec& rec, unsigned level, std::uint64_t key) {
    if (rec.owner != kNoParticle) return rec.owner;
    std::vector<std::uint32_t>& heap = rec.heap;
    for (;;) {
      const std::uint32_t top = heap.front();
      if (ancestor_key((*positions_)[top], level) == key) {
        rec.owner = top;
        mirror_owner(level, key, top);
        return top;
      }
      std::pop_heap(heap.begin(), heap.end(), std::greater<std::uint32_t>{});
      heap.pop_back();
    }
  }

  void erase_at(unsigned level, std::uint64_t key, std::uint32_t index) {
    auto it = levels_[level].find(key);
    assert(it != levels_[level].end() && it->second.count > 0);
    if (--it->second.count == 0) {
      // No live particles left: every remaining heap entry is provably
      // stale, so the record goes away whole.
      levels_[level].erase(it);
      clear_bit(level, key);
      mirror_owner(level, key, kNoParticle);
    } else if (it->second.owner == index) {
      it->second.owner = kNoParticle;  // owner left: re-derive on demand
      mirror_owner(level, key, kNoParticle);
    }
  }

  void insert_at(unsigned level, std::uint64_t key, std::uint32_t index) {
    CellRec& rec = levels_[level][key];
    if (++rec.count == 1) {
      rec.owner = index;
      set_bit(level, key);
      mirror_owner(level, key, index);
    } else if (rec.owner != kNoParticle && index < rec.owner) {
      rec.owner = index;
      mirror_owner(level, key, index);
    }
    rec.heap.push_back(index);
    std::push_heap(rec.heap.begin(), rec.heap.end(),
                   std::greater<std::uint32_t>{});
  }

  /// Keep the flat owner array equal to CellRec::owner on mirror-dense
  /// levels (kNoParticle doubles as "dirty" and "unoccupied"; the
  /// occupancy bitmap disambiguates).
  void mirror_owner(unsigned level, std::uint64_t key,
                    std::uint32_t owner) noexcept {
    std::vector<std::uint32_t>& mirror = owner_mirror_[level];
    if (!mirror.empty()) mirror[key] = owner;
  }

  void set_bit(unsigned level, std::uint64_t key) noexcept {
    std::vector<std::uint64_t>& bits = bits_[level];
    if (!bits.empty()) bits[key >> 6] |= std::uint64_t{1} << (key & 63);
  }
  void clear_bit(unsigned level, std::uint64_t key) noexcept {
    std::vector<std::uint64_t>& bits = bits_[level];
    if (!bits.empty()) bits[key >> 6] &= ~(std::uint64_t{1} << (key & 63));
  }

  const std::vector<Point<D>>* positions_;
  unsigned finest_;
  std::vector<std::unordered_map<std::uint64_t, CellRec>> levels_;
  /// Per-level dense occupancy bitmaps (empty past kDenseBitsCap).
  std::vector<std::vector<std::uint64_t>> bits_;
  /// Per-level flat owner mirrors (empty past kDenseOwnerCap).
  std::vector<std::vector<std::uint32_t>> owner_mirror_;
};

}  // namespace sfc::fmm
