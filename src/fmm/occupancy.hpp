// occupancy.hpp — finest-level cell -> particle lookup.
//
// The near-field pass probes every cell in a Chebyshev window around each
// particle, so the lookup is the hottest operation in the NFI model. For
// grids up to 2^26 cells we store a dense array (4 bytes/cell); beyond
// that we fall back to a hash map keyed by the packed cell.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sfc/point.hpp"

namespace sfc::fmm {

template <int D>
class OccupancyGrid {
 public:
  static constexpr std::int32_t kEmpty = -1;
  static constexpr unsigned kDenseBits = 26;  // dense storage up to 256 MiB/4

  /// `particles` must occupy distinct cells (the samplers guarantee it);
  /// the stored value is the particle's position in the given vector, so
  /// build this from the SFC-sorted particle list.
  OccupancyGrid(const std::vector<Point<D>>& particles, unsigned level)
      : level_(level) {
    const std::uint64_t cells = grid_size<D>(level);
    dense_ = static_cast<unsigned>(D) * level <= kDenseBits;
    if (dense_) {
      grid_.assign(cells, kEmpty);
      for (std::size_t i = 0; i < particles.size(); ++i) {
        grid_[pack(particles[i], level_)] = static_cast<std::int32_t>(i);
      }
    } else {
      map_.reserve(particles.size() * 2);
      for (std::size_t i = 0; i < particles.size(); ++i) {
        map_.emplace(pack(particles[i], level_), static_cast<std::int32_t>(i));
      }
    }
  }

  unsigned level() const noexcept { return level_; }

  /// Sorted-particle index occupying `cell`, or kEmpty.
  std::int32_t particle_at(const Point<D>& cell) const noexcept {
    const std::uint64_t key = pack(cell, level_);
    if (dense_) return grid_[key];
    const auto it = map_.find(key);
    return it == map_.end() ? kEmpty : it->second;
  }

  /// Remove the occupant of `cell` (no-op when already empty). Mutation
  /// pair for the incremental dynamics path: a move batch erases every
  /// mover's old cell, then inserts every new cell, so swaps and chains
  /// of movers never transiently collide.
  void erase(const Point<D>& cell) {
    const std::uint64_t key = pack(cell, level_);
    if (dense_) {
      grid_[key] = kEmpty;
    } else {
      map_.erase(key);
    }
  }

  /// Place particle `index` into `cell` (which must be empty — the batch
  /// protocol above guarantees it for valid move sets).
  void insert(const Point<D>& cell, std::int32_t index) {
    const std::uint64_t key = pack(cell, level_);
    if (dense_) {
      grid_[key] = index;
    } else {
      map_[key] = index;
    }
  }

  /// Bytes held by the lookup structure (sweep-cache accounting). The
  /// map-backed estimate charges each entry its node payload; bucket
  /// overhead is ignored.
  std::size_t memory_bytes() const noexcept {
    return grid_.capacity() * sizeof(std::int32_t) +
           map_.size() * (sizeof(std::uint64_t) + sizeof(std::int32_t) +
                          2 * sizeof(void*));
  }

  /// Raw dense cell array indexed by pack(cell, level), or nullptr when
  /// the grid is map-backed. pack() keeps coordinate 0 in the low bits,
  /// so a window's x-extent is contiguous memory — the aggregated NFI
  /// kernel scans it linearly instead of re-packing per cell.
  const std::int32_t* dense_cells() const noexcept {
    return dense_ ? grid_.data() : nullptr;
  }

 private:
  unsigned level_;
  bool dense_;
  std::vector<std::int32_t> grid_;
  std::unordered_map<std::uint64_t, std::int32_t> map_;
};

}  // namespace sfc::fmm
