// partition.hpp — chunked distribution of SFC-ordered particles.
//
// Paper Section IV, steps 2 and 4: the linearly ordered particles are cut
// into p consecutive chunks of n/p each, and chunk i goes to processor i.
// When p does not divide n the first (n mod p) chunks take one extra
// particle, so chunk sizes differ by at most one; when p > n the first n
// processors get one particle each and the rest stay empty.
//
// Partition::weighted implements the SFC load-balancing variant of Aluru &
// Sevilgen (paper reference [4]): chunks are still consecutive in the
// curve order, but the cut points equalize per-particle *work* instead of
// particle counts — the standard way SFC partitioning is deployed when
// computational load varies across the domain.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace sfc::fmm {

class Partition {
 public:
  /// Equal-count chunking (the paper's step 2).
  Partition(std::size_t particles, topo::Rank processors)
      : n_(particles), p_(processors) {
    assert(processors > 0);
    quot_ = n_ / p_;
    rem_ = n_ % p_;
  }

  /// Weight-balanced chunking: greedy cuts at the points where the running
  /// weight passes each multiple of total/p. weights[i] belongs to sorted
  /// particle i and must be non-negative.
  static Partition weighted(const std::vector<double>& weights,
                            topo::Rank processors);

  std::size_t particles() const noexcept { return n_; }
  topo::Rank processors() const noexcept { return p_; }
  bool is_weighted() const noexcept { return !begins_.empty(); }

  /// Processor owning the particle at sorted position `i`.
  topo::Rank proc_of(std::size_t i) const noexcept {
    assert(i < n_);
    if (!begins_.empty()) {
      // First chunk whose begin exceeds i, minus one.
      const auto it =
          std::upper_bound(begins_.begin(), begins_.end(), i);
      return static_cast<topo::Rank>(it - begins_.begin() - 1);
    }
    const std::size_t big = rem_ * (quot_ + 1);  // particles in oversized chunks
    if (quot_ == 0 || i < big) {
      return static_cast<topo::Rank>(i / (quot_ + 1));
    }
    return static_cast<topo::Rank>(rem_ + (i - big) / quot_);
  }

  /// Sorted position of processor r's first particle (== end of r-1's
  /// range). r may equal processors() to get n as the final sentinel.
  std::size_t chunk_begin(topo::Rank r) const noexcept {
    assert(r <= p_);
    if (!begins_.empty()) return begins_[r];
    const std::size_t rr = r;
    if (rr <= rem_) return rr * (quot_ + 1);
    return rem_ * (quot_ + 1) + (rr - rem_) * quot_;
  }

  std::size_t chunk_size(topo::Rank r) const noexcept {
    return chunk_begin(r + 1) - chunk_begin(r);
  }

  /// Dense rank-of-particle table: result[i] == proc_of(i). Because
  /// chunks are consecutive it fills in one O(n) sweep; the hot loops
  /// trade proc_of's arithmetic (or binary search, in weighted mode) per
  /// event for a single indexed load.
  std::vector<topo::Rank> owner_table() const {
    std::vector<topo::Rank> owners(n_);
    for (topo::Rank r = 0; r < p_; ++r) {
      const std::size_t lo = chunk_begin(r);
      const std::size_t hi = chunk_begin(r + 1);
      std::fill(owners.begin() + static_cast<std::ptrdiff_t>(lo),
                owners.begin() + static_cast<std::ptrdiff_t>(hi), r);
    }
    return owners;
  }

  /// Load imbalance of this partition under the given weights: the
  /// heaviest chunk's weight divided by the ideal (total/p). 1.0 is
  /// perfect balance; equal-count chunking of skewed weights exceeds it.
  double imbalance(const std::vector<double>& weights) const;

 private:
  std::size_t n_;
  topo::Rank p_;
  std::size_t quot_ = 0;
  std::size_t rem_ = 0;
  std::vector<std::size_t> begins_;  // weighted mode: p+1 cut positions
};

}  // namespace sfc::fmm
