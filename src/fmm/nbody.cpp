#include "fmm/nbody.hpp"

#include <cmath>
#include <stdexcept>

namespace sfc::fmm {

NbodyIntegrator::NbodyIntegrator(std::vector<Charge> bodies,
                                 std::vector<Vec2> velocities,
                                 const NbodyConfig& config)
    : config_(config),
      bodies_(std::move(bodies)),
      velocities_(std::move(velocities)) {
  if (config_.dt <= 0.0) {
    throw std::invalid_argument("dt must be positive");
  }
  for (const Charge& b : bodies_) {
    if (b.q <= 0.0) {
      throw std::invalid_argument("n-body masses must be positive");
    }
  }
  velocities_.resize(bodies_.size(), Vec2{});
  accel_ = accelerations();
}

std::vector<Vec2> NbodyIntegrator::accelerations() const {
  std::vector<Vec2> field;
  if (config_.use_fmm && bodies_.size() > 16) {
    const LaplaceFmm2D solver(bodies_, config_.fmm);
    field = solver.fields();
  } else {
    field = direct_fields(bodies_);
  }
  // Attractive convention: a_i = -E_i (mass cancels: F = -m E, a = F / m).
  for (auto& f : field) {
    f.x = -f.x;
    f.y = -f.y;
  }
  return field;
}

void NbodyIntegrator::apply_walls() {
  if (!config_.reflect_walls) return;
  constexpr double kLo = 1e-12;
  constexpr double kHi = 1.0 - 1e-12;
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    auto reflect = [&](double& x, double& v) {
      if (x < kLo) {
        x = 2.0 * kLo - x;
        v = -v;
        ++bounces_;
      } else if (x > kHi) {
        x = 2.0 * kHi - x;
        v = -v;
        ++bounces_;
      }
    };
    reflect(bodies_[i].x, velocities_[i].x);
    reflect(bodies_[i].y, velocities_[i].y);
  }
}

void NbodyIntegrator::step(unsigned n) {
  const double dt = config_.dt;
  for (unsigned s = 0; s < n; ++s) {
    // Kick-drift-kick; accel_ holds a(x_t) from the previous step.
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      velocities_[i].x += 0.5 * dt * accel_[i].x;
      velocities_[i].y += 0.5 * dt * accel_[i].y;
      bodies_[i].x += dt * velocities_[i].x;
      bodies_[i].y += dt * velocities_[i].y;
    }
    apply_walls();
    accel_ = accelerations();
    for (std::size_t i = 0; i < bodies_.size(); ++i) {
      velocities_[i].x += 0.5 * dt * accel_[i].x;
      velocities_[i].y += 0.5 * dt * accel_[i].y;
    }
    ++steps_;
  }
}

void NbodyIntegrator::reverse() {
  for (auto& v : velocities_) {
    v.x = -v.x;
    v.y = -v.y;
  }
}

double NbodyIntegrator::kinetic_energy() const {
  double e = 0.0;
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    e += 0.5 * bodies_[i].q *
         (velocities_[i].x * velocities_[i].x +
          velocities_[i].y * velocities_[i].y);
  }
  return e;
}

double NbodyIntegrator::potential_energy() const {
  std::vector<double> phi;
  if (config_.use_fmm && bodies_.size() > 16) {
    const LaplaceFmm2D solver(bodies_, config_.fmm);
    phi = solver.potentials();
  } else {
    phi = direct_potentials(bodies_);
  }
  // Attractive convention (a = -E): pair energy +m_i m_j ln r counted
  // once, so U = +1/2 sum m_i phi_i (ln r grows with separation, so
  // minimizing U pulls bodies together).
  double u = 0.0;
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    u += 0.5 * bodies_[i].q * phi[i];
  }
  return u;
}

Vec2 NbodyIntegrator::momentum() const {
  Vec2 p{};
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    p.x += bodies_[i].q * velocities_[i].x;
    p.y += bodies_[i].q * velocities_[i].y;
  }
  return p;
}

}  // namespace sfc::fmm
