// nfi_window.hpp — the near-field window visitor shared by the static
// and incremental NFI paths.
//
// Extracted from nfi.cpp so the dynamics engine (core/dynamic_acd.hpp)
// can enumerate exactly the same occupied-neighbor sets when it retracts
// and re-asserts a moved particle's pair events: the incremental == full
// recompute guarantee rests on both paths walking one shared enumeration,
// not two implementations that merely agree today.
#pragma once

#include <cstdint>

#include "fmm/occupancy.hpp"
#include "sfc/point.hpp"

namespace sfc::fmm {

/// Invoke fn(j) for every occupied cell j inside the radius-r window of x
/// (the particle's own cell excluded). When the grid is dense, the window
/// is walked as rows: pack() keeps coordinate 0 in the low bits, so each
/// row's x-extent is one linear scan of the cell array with no per-cell
/// packing or odometer branches. Map-backed grids fall back to the
/// generic odometer. Enumeration order is an implementation detail; the
/// aggregated totals are order-independent (integer sums commute).
/// `cells` must be grid.dense_cells() (nullptr selects the map path).
/// `norm` true = Chebyshev ball, false = Manhattan (L1) ball.
template <int D, typename Fn>
inline void visit_window_neighbors(const OccupancyGrid<D>& grid,
                                   const std::int32_t* cells,
                                   const Point<D>& x, std::int64_t r,
                                   bool chebyshev_norm, Fn&& fn) {
  const unsigned level = grid.level();
  const std::int64_t side = 1ll << level;
  if (cells != nullptr) {
    std::int64_t off[4] = {};  // offsets of dimensions 1..D-1
    for (int d = 1; d < D; ++d) off[d] = -r;
    for (;;) {
      bool in = true;
      bool zero_outer = true;
      std::int64_t l1_outer = 0;
      std::uint64_t base = 0;
      for (int d = D - 1; d >= 1; --d) {
        const std::int64_t v = static_cast<std::int64_t>(x[d]) + off[d];
        if (v < 0 || v >= side) {
          in = false;
          break;
        }
        if (off[d] != 0) zero_outer = false;
        l1_outer += off[d] < 0 ? -off[d] : off[d];
        base = (base << level) | static_cast<std::uint64_t>(v);
      }
      if (in) {
        // Largest |x-offset| still inside the norm ball for this row.
        const std::int64_t budget = chebyshev_norm ? r : r - l1_outer;
        if (budget >= 0) {
          const std::int64_t x0 = static_cast<std::int64_t>(x[0]);
          const std::int64_t xlo = x0 - budget > 0 ? x0 - budget : 0;
          const std::int64_t xhi =
              x0 + budget < side - 1 ? x0 + budget : side - 1;
          const std::int32_t* row = cells + (base << level);
          for (std::int64_t xx = xlo; xx <= xhi; ++xx) {
            if (zero_outer && xx == x0) continue;  // the particle itself
            const std::int32_t j = row[xx];
            if (j != OccupancyGrid<D>::kEmpty) {
              fn(static_cast<std::size_t>(j));
            }
          }
        }
      }
      int d = 1;
      while (d < D && off[d] == r) off[d++] = -r;
      if (d == D) break;
      ++off[d];
    }
    return;
  }
  // Map-backed grid: generic per-cell odometer.
  Point<D> q{};
  std::int64_t off[4] = {};
  for (int d = 0; d < D; ++d) off[d] = -r;
  for (;;) {
    bool zero = true;
    bool in = true;
    std::int64_t l1 = 0;
    for (int d = 0; d < D; ++d) {
      if (off[d] != 0) zero = false;
      l1 += off[d] < 0 ? -off[d] : off[d];
      const std::int64_t v = static_cast<std::int64_t>(x[d]) + off[d];
      if (v < 0 || v >= side) {
        in = false;
        break;
      }
      q[d] = static_cast<std::uint32_t>(v);
    }
    const bool within = chebyshev_norm || l1 <= r;
    if (!zero && in && within) {
      const std::int32_t j = grid.particle_at(q);
      if (j != OccupancyGrid<D>::kEmpty) fn(static_cast<std::size_t>(j));
    }
    int d = 0;
    while (d < D && off[d] == r) off[d++] = -r;
    if (d == D) break;
    ++off[d];
  }
}

}  // namespace sfc::fmm
