// ffi.hpp — the far-field interaction (FFI) communication model.
//
// Paper Sections III–IV. The domain quadtree (octree in 3-D) is restricted
// to its *occupied* cells: a cell at any resolution participates iff it
// contains at least one particle. Each occupied cell is represented on the
// network by an owner processor — by the paper's convention, the processor
// holding the cell's lowest particle in the particle-order SFC's linear
// ordering. Three communication families are counted:
//
//   * interpolation  — upward accumulation: every occupied non-root cell
//     sends to its parent (child owner -> parent owner);
//   * anterpolation  — downward accumulation: the mirror of interpolation
//     (parent owner -> child owner), identical distances;
//   * interaction lists — every occupied cell c receives from each occupied
//     cell d in its FMM interaction list (owner(d) -> owner(c)).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/rank_pair.hpp"
#include "core/totals.hpp"
#include "fmm/partition.hpp"
#include "sfc/point.hpp"
#include "topology/topology.hpp"
#include "util/thread_pool.hpp"

namespace sfc::fmm {

/// The occupied-cell hierarchy. Cells at each level are kept sorted by
/// Morton key, so a parent's key is the child's key shifted right by D and
/// coarsening is a single linear grouping pass.
template <int D>
class CellTree {
 public:
  struct Cell {
    std::uint64_t key;           ///< Morton key of the cell at its level
    std::uint32_t min_particle;  ///< smallest sorted-particle index inside
  };

  /// `particles` must be sorted by the particle-order SFC (the min_particle
  /// fields implement the paper's lowest-particle ownership convention).
  CellTree(const std::vector<Point<D>>& particles, unsigned level);

  unsigned finest_level() const noexcept { return finest_; }

  /// Occupied cells at `level` (0 = root), sorted by key.
  const std::vector<Cell>& cells(unsigned level) const noexcept {
    return levels_[level];
  }

  /// Index of `key` in cells(level), or -1 if that cell is unoccupied.
  /// O(1) via a dense per-level table up to 2^24 cells per level, binary
  /// search beyond (the interaction-list pass makes ~27 of these lookups
  /// per occupied cell, so this is the FFI model's hottest operation).
  std::int64_t find(unsigned level, std::uint64_t key) const noexcept {
    if (level < dense_.size() && !dense_[level].empty()) {
      return dense_[level][key];
    }
    return find_sparse(level, key);
  }

  /// Total occupied cells over all levels (root included).
  std::size_t total_cells() const noexcept;

  /// Bytes held by the level lists and dense lookup tables
  /// (sweep-cache accounting).
  std::size_t memory_bytes() const noexcept {
    std::size_t bytes = 0;
    for (const auto& l : levels_) bytes += l.capacity() * sizeof(Cell);
    for (const auto& d : dense_) bytes += d.capacity() * sizeof(std::int32_t);
    return bytes;
  }

 private:
  std::int64_t find_sparse(unsigned level, std::uint64_t key) const noexcept;

  unsigned finest_;
  std::vector<std::vector<Cell>> levels_;  // index = level
  // dense_[l][morton key] = index into levels_[l], or -1. Only built for
  // levels whose full grid fits the memory budget.
  std::vector<std::vector<std::int32_t>> dense_;
};

struct FfiTotals {
  core::CommTotals interpolation;
  core::CommTotals anterpolation;
  core::CommTotals interaction;

  core::CommTotals total() const noexcept {
    return interpolation + anterpolation + interaction;
  }
};

/// Evaluate the FFI model on a prepared cell tree. Hot path: each range
/// histograms its (src rank, dst rank) pairs (core/rank_pair.hpp) and
/// hands the histograms to the topology's fold kernel — no per-edge
/// distance dispatch. Bit-identical to ffi_totals_direct.
template <int D>
FfiTotals ffi_totals(const CellTree<D>& tree, const Partition& part,
                     const topo::Topology& net,
                     util::ThreadPool* pool = nullptr);

/// Reference implementation with one virtual distance() call per
/// communication; the equivalence tests pin ffi_totals to this path.
template <int D>
FfiTotals ffi_totals_direct(const CellTree<D>& tree, const Partition& part,
                            const topo::Topology& net,
                            util::ThreadPool* pool = nullptr);

/// Topology-independent stage of ffi_totals: the rank-pair histograms of
/// the two distinct FFI communication families. Anterpolation is the
/// exact mirror of interpolation (same pair counts, symmetric hop
/// distances), so it carries no histogram of its own — ffi_fold copies
/// the folded interpolation totals.
struct FfiHistograms {
  core::RankPairAccumulator interpolation;
  core::RankPairAccumulator interaction;

  explicit FfiHistograms(topo::Rank procs)
      : interpolation(procs), interaction(procs) {}

  std::size_t memory_bytes() const noexcept {
    return interpolation.memory_bytes() + interaction.memory_bytes();
  }
};

/// Artifact-store codec for FfiHistograms: the two rank-pair records
/// back to back (core::rank_pairs_serialize format).
inline void ffi_histograms_serialize(const FfiHistograms& hist,
                                     std::vector<std::uint8_t>& out) {
  core::rank_pairs_serialize(hist.interpolation, out);
  core::rank_pairs_serialize(hist.interaction, out);
}

/// Decode at `offset`, advancing past both records; nullopt on malformed
/// bytes or mismatched processor counts.
inline std::optional<FfiHistograms> ffi_histograms_deserialize(
    const std::uint8_t* data, std::size_t size, std::size_t& offset) {
  auto interpolation = core::rank_pairs_deserialize(data, size, offset);
  if (!interpolation) return std::nullopt;
  auto interaction = core::rank_pairs_deserialize(data, size, offset);
  if (!interaction) return std::nullopt;
  if (interpolation->procs() != interaction->procs()) return std::nullopt;
  FfiHistograms hist(interpolation->procs());
  hist.interpolation = std::move(*interpolation);
  hist.interaction = std::move(*interaction);
  return hist;
}

/// Build the FFI histograms for a prepared cell tree. The sweep engine
/// caches one of these per (sample, particle order, p) and folds it
/// against every topology / processor order that shares those inputs —
/// ffi_fold(histograms, net) is bit-identical to ffi_totals over the
/// same inputs. Deterministic with or without `pool`.
template <int D>
FfiHistograms ffi_histograms(const CellTree<D>& tree, const Partition& part,
                             util::ThreadPool* pool = nullptr);

/// Fold prebuilt FFI histograms against a topology (cached hop table when
/// p fits the table budget, per-pair distance() beyond it).
FfiTotals ffi_fold(const FfiHistograms& hist, const topo::Topology& net);

extern template class CellTree<2>;
extern template class CellTree<3>;
extern template FfiTotals ffi_totals<2>(const CellTree<2>&, const Partition&,
                                        const topo::Topology&,
                                        util::ThreadPool*);
extern template FfiTotals ffi_totals<3>(const CellTree<3>&, const Partition&,
                                        const topo::Topology&,
                                        util::ThreadPool*);
extern template FfiTotals ffi_totals_direct<2>(const CellTree<2>&,
                                               const Partition&,
                                               const topo::Topology&,
                                               util::ThreadPool*);
extern template FfiTotals ffi_totals_direct<3>(const CellTree<3>&,
                                               const Partition&,
                                               const topo::Topology&,
                                               util::ThreadPool*);
extern template FfiHistograms ffi_histograms<2>(const CellTree<2>&,
                                                const Partition&,
                                                util::ThreadPool*);
extern template FfiHistograms ffi_histograms<3>(const CellTree<3>&,
                                                const Partition&,
                                                util::ThreadPool*);

}  // namespace sfc::fmm
