#include "fmm/ffi.hpp"

#include <algorithm>
#include <mutex>

#include "fmm/cells.hpp"
#include "obs/trace.hpp"

namespace sfc::fmm {

template <int D>
CellTree<D>::CellTree(const std::vector<Point<D>>& particles, unsigned level)
    : finest_(level), levels_(level + 1) {
  // Finest level: one entry per occupied cell, keyed by Morton code.
  auto& finest = levels_[level];
  finest.reserve(particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    finest.push_back(
        Cell{cell_key(particles[i]), static_cast<std::uint32_t>(i)});
  }
  std::sort(finest.begin(), finest.end(),
            [](const Cell& a, const Cell& b) { return a.key < b.key; });
  // Particles occupy distinct cells, but be robust: merge duplicates by
  // minimum particle index (the list is key-sorted, not index-sorted).
  auto dedup = [](std::vector<Cell>& cells) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < cells.size(); ++r) {
      if (w > 0 && cells[w - 1].key == cells[r].key) {
        cells[w - 1].min_particle =
            std::min(cells[w - 1].min_particle, cells[r].min_particle);
      } else {
        cells[w++] = cells[r];
      }
    }
    cells.resize(w);
  };
  dedup(finest);

  // Coarsen: the parent key is key >> D, and shifting preserves the sorted
  // order, so each coarser level is one grouping pass.
  for (unsigned l = level; l > 0; --l) {
    const auto& fine = levels_[l];
    auto& coarse = levels_[l - 1];
    coarse.reserve(fine.size() / 2 + 1);
    for (const Cell& c : fine) {
      const std::uint64_t pk = parent_key<D>(c.key);
      if (!coarse.empty() && coarse.back().key == pk) {
        coarse.back().min_particle =
            std::min(coarse.back().min_particle, c.min_particle);
      } else {
        coarse.push_back(Cell{pk, c.min_particle});
      }
    }
  }

  // Dense lookup tables (find() fast path) for the levels that fit the
  // budget: one int32 per possible cell, up to 2^24 cells per level.
  dense_.resize(levels_.size());
  for (unsigned l = 0; l <= level; ++l) {
    const unsigned bits = static_cast<unsigned>(D) * l;
    if (bits > 24) break;
    dense_[l].assign(1ull << bits, -1);
    const auto& cells = levels_[l];
    for (std::size_t i = 0; i < cells.size(); ++i) {
      dense_[l][cells[i].key] = static_cast<std::int32_t>(i);
    }
  }
}

template <int D>
std::int64_t CellTree<D>::find_sparse(unsigned level,
                                      std::uint64_t key) const noexcept {
  const auto& cells = levels_[level];
  const auto it = std::lower_bound(
      cells.begin(), cells.end(), key,
      [](const Cell& c, std::uint64_t k) { return c.key < k; });
  if (it == cells.end() || it->key != key) return -1;
  return it - cells.begin();
}

template <int D>
std::size_t CellTree<D>::total_cells() const noexcept {
  std::size_t n = 0;
  for (const auto& l : levels_) n += l.size();
  return n;
}

namespace {

/// Interpolation hops for cells [lo, hi) of level `l` (l >= 1): each cell
/// owner sends to its parent's owner. Reference path — one virtual
/// distance() per edge.
template <int D>
core::CommTotals interp_range(const CellTree<D>& tree, const Partition& part,
                              const topo::Topology& net, unsigned l,
                              std::size_t lo, std::size_t hi) {
  core::CommTotals totals;
  const auto& cells = tree.cells(l);
  for (std::size_t i = lo; i < hi; ++i) {
    const auto idx = tree.find(l - 1, parent_key<D>(cells[i].key));
    // The parent of an occupied cell is always occupied.
    const auto& parent = tree.cells(l - 1)[static_cast<std::size_t>(idx)];
    totals.hops += net.distance(part.proc_of(cells[i].min_particle),
                                part.proc_of(parent.min_particle));
    ++totals.count;
  }
  return totals;
}

/// Interaction-list hops for cells [lo, hi) of level `l` (l >= 2).
/// Reference path.
template <int D>
core::CommTotals il_range(const CellTree<D>& tree, const Partition& part,
                          const topo::Topology& net, unsigned l,
                          std::size_t lo, std::size_t hi) {
  core::CommTotals totals;
  const auto& cells = tree.cells(l);
  std::vector<Point<D>> il;
  il.reserve(64);
  for (std::size_t i = lo; i < hi; ++i) {
    const Point<D> c = morton_point<D>(cells[i].key);
    const topo::Rank owner = part.proc_of(cells[i].min_particle);
    interaction_list(c, l, il);
    for (const Point<D>& d : il) {
      const auto idx = tree.find(l, cell_key(d));
      if (idx < 0) continue;  // unoccupied cells do not communicate
      const auto& dc = tree.cells(l)[static_cast<std::size_t>(idx)];
      totals.hops += net.distance(part.proc_of(dc.min_particle), owner);
      ++totals.count;
    }
  }
  return totals;
}

/// Shared lookup state of the aggregated path, built once per evaluation.
struct FoldContext {
  const std::vector<topo::Rank>& owners;
  const topo::DistanceTable* table;  // nullptr beyond the entry budget
  const topo::Topology& net;
  topo::Rank procs;

  core::CommTotals fold(const core::RankPairAccumulator& acc) const {
    return table != nullptr ? acc.fold(*table) : acc.fold(net);
  }
};

/// Histogram the (child owner, parent owner) interpolation pairs of
/// cells [lo, hi) at level `l` into `acc`.
template <int D>
void interp_range_into(const CellTree<D>& tree, const topo::Rank* own,
                       core::RankPairAccumulator& acc, unsigned l,
                       std::size_t lo, std::size_t hi) {
  const auto& cells = tree.cells(l);
  for (std::size_t i = lo; i < hi; ++i) {
    const auto idx = tree.find(l - 1, parent_key<D>(cells[i].key));
    const auto& parent = tree.cells(l - 1)[static_cast<std::size_t>(idx)];
    acc.add(own[cells[i].min_particle], own[parent.min_particle]);
  }
}

/// Histogram the (source owner, cell owner) interaction-list pairs of
/// cells [lo, hi) at level `l` into `acc`.
template <int D>
void il_range_into(const CellTree<D>& tree, const topo::Rank* own,
                   core::RankPairAccumulator& acc, unsigned l, std::size_t lo,
                   std::size_t hi) {
  const auto& cells = tree.cells(l);
  std::vector<Point<D>> il;
  il.reserve(64);
  for (std::size_t i = lo; i < hi; ++i) {
    const Point<D> c = morton_point<D>(cells[i].key);
    const topo::Rank owner = own[cells[i].min_particle];
    interaction_list(c, l, il);
    for (const Point<D>& d : il) {
      const auto idx = tree.find(l, cell_key(d));
      if (idx < 0) continue;  // unoccupied cells do not communicate
      const auto& dc = tree.cells(l)[static_cast<std::size_t>(idx)];
      acc.add(own[dc.min_particle], owner);
    }
  }
}

/// Aggregated interpolation: histogram the (child owner, parent owner)
/// rank pairs and fold once.
template <int D>
core::CommTotals interp_range_aggregated(const CellTree<D>& tree,
                                         const FoldContext& ctx, unsigned l,
                                         std::size_t lo, std::size_t hi) {
  core::RankPairAccumulator acc(ctx.procs);
  interp_range_into<D>(tree, ctx.owners.data(), acc, l, lo, hi);
  return ctx.fold(acc);
}

/// Aggregated interaction lists: histogram the (source owner, cell owner)
/// rank pairs and fold once.
template <int D>
core::CommTotals il_range_aggregated(const CellTree<D>& tree,
                                     const FoldContext& ctx, unsigned l,
                                     std::size_t lo, std::size_t hi) {
  core::RankPairAccumulator acc(ctx.procs);
  il_range_into<D>(tree, ctx.owners.data(), acc, l, lo, hi);
  return ctx.fold(acc);
}

/// Accumulate one communication family's histogram over all levels
/// [first_level, finest]: sequential fill below the parallel cutoff,
/// per-chunk local histograms merged under a mutex above it. Counts are
/// integers and addition commutes, so the merged multiset is independent
/// of chunking and scheduling order.
template <int D, typename IntoFn>
void histogram_levels(util::ThreadPool* pool, const CellTree<D>& tree,
                      unsigned first_level, topo::Rank procs,
                      core::RankPairAccumulator& acc, IntoFn into) {
  std::mutex merge_mutex;
  for (unsigned l = first_level; l <= tree.finest_level(); ++l) {
    const std::size_t n = tree.cells(l).size();
    if (pool == nullptr || pool->size() <= 1 || n < 4096) {
      into(acc, l, std::size_t{0}, n);
      continue;
    }
    util::parallel_for_chunks(*pool, 0, n, util::kAutoGrain,
                              [&, l](std::size_t lo, std::size_t hi) {
                                core::RankPairAccumulator local(procs);
                                into(local, l, lo, hi);
                                const std::lock_guard<std::mutex> lock(
                                    merge_mutex);
                                acc += local;
                              });
  }
}

template <int D, typename RangeFn>
core::CommTotals reduce_level(util::ThreadPool* pool, std::size_t n,
                              RangeFn fn) {
  if (pool == nullptr || pool->size() <= 1 || n < 4096) {
    return fn(std::size_t{0}, n);
  }
  return util::parallel_reduce_chunks(*pool, 0, n, util::kAutoGrain,
                                      core::CommTotals{}, fn);
}

}  // namespace

template <int D>
FfiTotals ffi_totals(const CellTree<D>& tree, const Partition& part,
                     const topo::Topology& net, util::ThreadPool* pool) {
  const topo::DistanceTable* table =
      topo::distance_table_fits(part.processors()) ? &net.table() : nullptr;
  const std::vector<topo::Rank> owners = part.owner_table();
  const FoldContext ctx{owners, table, net, part.processors()};

  FfiTotals totals;
  for (unsigned l = 1; l <= tree.finest_level(); ++l) {
    totals.interpolation += reduce_level<D>(
        pool, tree.cells(l).size(), [&, l](std::size_t lo, std::size_t hi) {
          return interp_range_aggregated<D>(tree, ctx, l, lo, hi);
        });
  }
  // Anterpolation mirrors interpolation (parent -> child, same distances).
  totals.anterpolation = totals.interpolation;

  for (unsigned l = 2; l <= tree.finest_level(); ++l) {
    totals.interaction += reduce_level<D>(
        pool, tree.cells(l).size(), [&, l](std::size_t lo, std::size_t hi) {
          return il_range_aggregated<D>(tree, ctx, l, lo, hi);
        });
  }
  return totals;
}

template <int D>
FfiHistograms ffi_histograms(const CellTree<D>& tree, const Partition& part,
                             util::ThreadPool* pool) {
  const std::vector<topo::Rank> owners = part.owner_table();
  const topo::Rank* own = owners.data();
  FfiHistograms h(part.processors());
  {
    const obs::Span span("ffi/interpolation");
    histogram_levels<D>(pool, tree, 1, part.processors(), h.interpolation,
                        [&](core::RankPairAccumulator& acc, unsigned l,
                            std::size_t lo, std::size_t hi) {
                          interp_range_into<D>(tree, own, acc, l, lo, hi);
                        });
  }
  {
    const obs::Span span("ffi/interaction");
    histogram_levels<D>(pool, tree, 2, part.processors(), h.interaction,
                        [&](core::RankPairAccumulator& acc, unsigned l,
                            std::size_t lo, std::size_t hi) {
                          il_range_into<D>(tree, own, acc, l, lo, hi);
                        });
  }
  return h;
}

FfiTotals ffi_fold(const FfiHistograms& hist, const topo::Topology& net) {
  FfiTotals totals;
  totals.interpolation = hist.interpolation.fold_auto(net);
  totals.anterpolation = totals.interpolation;
  totals.interaction = hist.interaction.fold_auto(net);
  return totals;
}

template <int D>
FfiTotals ffi_totals_direct(const CellTree<D>& tree, const Partition& part,
                            const topo::Topology& net,
                            util::ThreadPool* pool) {
  FfiTotals totals;
  for (unsigned l = 1; l <= tree.finest_level(); ++l) {
    totals.interpolation += reduce_level<D>(
        pool, tree.cells(l).size(), [&, l](std::size_t lo, std::size_t hi) {
          return interp_range<D>(tree, part, net, l, lo, hi);
        });
  }
  totals.anterpolation = totals.interpolation;

  for (unsigned l = 2; l <= tree.finest_level(); ++l) {
    totals.interaction += reduce_level<D>(
        pool, tree.cells(l).size(), [&, l](std::size_t lo, std::size_t hi) {
          return il_range<D>(tree, part, net, l, lo, hi);
        });
  }
  return totals;
}

template class CellTree<2>;
template class CellTree<3>;
template FfiTotals ffi_totals<2>(const CellTree<2>&, const Partition&,
                                 const topo::Topology&, util::ThreadPool*);
template FfiTotals ffi_totals<3>(const CellTree<3>&, const Partition&,
                                 const topo::Topology&, util::ThreadPool*);
template FfiTotals ffi_totals_direct<2>(const CellTree<2>&, const Partition&,
                                        const topo::Topology&,
                                        util::ThreadPool*);
template FfiTotals ffi_totals_direct<3>(const CellTree<3>&, const Partition&,
                                        const topo::Topology&,
                                        util::ThreadPool*);
template FfiHistograms ffi_histograms<2>(const CellTree<2>&, const Partition&,
                                         util::ThreadPool*);
template FfiHistograms ffi_histograms<3>(const CellTree<3>&, const Partition&,
                                         util::ThreadPool*);

}  // namespace sfc::fmm
