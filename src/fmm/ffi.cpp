#include "fmm/ffi.hpp"

#include <algorithm>

#include "fmm/cells.hpp"
#include "obs/trace.hpp"
#include "util/radix_sort.hpp"

namespace sfc::fmm {

template <int D>
CellTree<D>::CellTree(const std::vector<Point<D>>& particles, unsigned level)
    : finest_(level), levels_(level + 1) {
  // Finest level: one entry per occupied cell, keyed by Morton code.
  auto& finest = levels_[level];
  finest.reserve(particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    finest.push_back(
        Cell{cell_key(particles[i]), static_cast<std::uint32_t>(i)});
  }
  util::radix_sort_by_key(finest, [](const Cell& c) { return c.key; });
  // Particles occupy distinct cells, but be robust: merge duplicates by
  // minimum particle index (the list is key-sorted, not index-sorted).
  auto dedup = [](std::vector<Cell>& cells) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < cells.size(); ++r) {
      if (w > 0 && cells[w - 1].key == cells[r].key) {
        cells[w - 1].min_particle =
            std::min(cells[w - 1].min_particle, cells[r].min_particle);
      } else {
        cells[w++] = cells[r];
      }
    }
    cells.resize(w);
  };
  dedup(finest);

  // Coarsen: the parent key is key >> D, and shifting preserves the sorted
  // order, so each coarser level is one grouping pass.
  for (unsigned l = level; l > 0; --l) {
    const auto& fine = levels_[l];
    auto& coarse = levels_[l - 1];
    coarse.reserve(fine.size() / 2 + 1);
    for (const Cell& c : fine) {
      const std::uint64_t pk = parent_key<D>(c.key);
      if (!coarse.empty() && coarse.back().key == pk) {
        coarse.back().min_particle =
            std::min(coarse.back().min_particle, c.min_particle);
      } else {
        coarse.push_back(Cell{pk, c.min_particle});
      }
    }
  }

  // Dense lookup tables (find() fast path) for the levels that fit the
  // budget: one int32 per possible cell, up to 2^24 cells per level.
  dense_.resize(levels_.size());
  for (unsigned l = 0; l <= level; ++l) {
    const unsigned bits = static_cast<unsigned>(D) * l;
    if (bits > 24) break;
    dense_[l].assign(1ull << bits, -1);
    const auto& cells = levels_[l];
    for (std::size_t i = 0; i < cells.size(); ++i) {
      dense_[l][cells[i].key] = static_cast<std::int32_t>(i);
    }
  }
}

template <int D>
std::int64_t CellTree<D>::find_sparse(unsigned level,
                                      std::uint64_t key) const noexcept {
  const auto& cells = levels_[level];
  const auto it = std::lower_bound(
      cells.begin(), cells.end(), key,
      [](const Cell& c, std::uint64_t k) { return c.key < k; });
  if (it == cells.end() || it->key != key) return -1;
  return it - cells.begin();
}

template <int D>
std::size_t CellTree<D>::total_cells() const noexcept {
  std::size_t n = 0;
  for (const auto& l : levels_) n += l.size();
  return n;
}

namespace {

/// Interpolation hops for cells [lo, hi) of level `l` (l >= 1): each cell
/// owner sends to its parent's owner. Reference path — one virtual
/// distance() per edge.
template <int D>
core::CommTotals interp_range(const CellTree<D>& tree, const Partition& part,
                              const topo::Topology& net, unsigned l,
                              std::size_t lo, std::size_t hi) {
  core::CommTotals totals;
  const auto& cells = tree.cells(l);
  for (std::size_t i = lo; i < hi; ++i) {
    const auto idx = tree.find(l - 1, parent_key<D>(cells[i].key));
    // The parent of an occupied cell is always occupied.
    const auto& parent = tree.cells(l - 1)[static_cast<std::size_t>(idx)];
    totals.hops += net.distance(part.proc_of(cells[i].min_particle),
                                part.proc_of(parent.min_particle));
    ++totals.count;
  }
  return totals;
}

/// Interaction-list hops for cells [lo, hi) of level `l` (l >= 2).
/// Reference path.
template <int D>
core::CommTotals il_range(const CellTree<D>& tree, const Partition& part,
                          const topo::Topology& net, unsigned l,
                          std::size_t lo, std::size_t hi) {
  core::CommTotals totals;
  const auto& cells = tree.cells(l);
  std::vector<Point<D>> il;
  il.reserve(64);
  for (std::size_t i = lo; i < hi; ++i) {
    const Point<D> c = morton_point<D>(cells[i].key);
    const topo::Rank owner = part.proc_of(cells[i].min_particle);
    interaction_list(c, l, il);
    for (const Point<D>& d : il) {
      const auto idx = tree.find(l, cell_key(d));
      if (idx < 0) continue;  // unoccupied cells do not communicate
      const auto& dc = tree.cells(l)[static_cast<std::size_t>(idx)];
      totals.hops += net.distance(part.proc_of(dc.min_particle), owner);
      ++totals.count;
    }
  }
  return totals;
}

/// Histogram the (child owner, parent owner) interpolation pairs of
/// cells [lo, hi) at level `l` into `acc`.
template <int D>
void interp_range_into(const CellTree<D>& tree, const topo::Rank* own,
                       core::RankPairAccumulator& acc, unsigned l,
                       std::size_t lo, std::size_t hi) {
  if (lo >= hi) return;
  const auto& cells = tree.cells(l);
  const auto& parents = tree.cells(l - 1);
  // Cells are key-sorted and parent_key is a shift, so parent keys are
  // non-decreasing across the range: one lookup seeds a cursor into the
  // parent level and the rest of the range advances it in lockstep —
  // no per-cell table lookup. (The parent of an occupied cell is always
  // occupied, so the cursor always lands on a match.)
  std::size_t j = static_cast<std::size_t>(
      tree.find(l - 1, parent_key<D>(cells[lo].key)));
  for (std::size_t i = lo; i < hi; ++i) {
    const std::uint64_t pk = parent_key<D>(cells[i].key);
    while (parents[j].key != pk) ++j;
    acc.add(own[cells[i].min_particle], own[parents[j].min_particle]);
  }
}

/// Histogram the (source owner, cell owner) interaction-list pairs of
/// cells [lo, hi) at level `l` into `acc`. The candidate cells stream
/// straight from the offset odometer into the key lookup — no
/// materialized interaction list, no per-cell allocation.
template <int D>
void il_range_into(const CellTree<D>& tree, const topo::Rank* own,
                   core::RankPairAccumulator& acc, unsigned l, std::size_t lo,
                   std::size_t hi) {
  const auto& cells = tree.cells(l);
  // Dense-mode fast path: hoist the count-array base so each event is a
  // single indexed increment (row(0) is the array base; src varies per
  // event, so hoisting one row would not help). Sparse mode keeps add().
  std::uint64_t* const counts = acc.row(0);
  const std::size_t p = acc.procs();
  const std::int64_t side = 1ll << (l - 1);
  // Child-digit decode: Morton digit d's child of pn sits at
  // 2·pn + kChild[d], and its key is (key(pn) << D) | d — so the inner
  // loop pays zero per-candidate interleaves.
  Point<D> child_off[1u << D];
  for (std::uint32_t d = 0; d < (1u << D); ++d) {
    child_off[d] = morton_point<D>(d);
  }
  for (std::size_t i = lo; i < hi; ++i) {
    const Point<D> c = morton_point<D>(cells[i].key);
    const Point<D> par = parent_cell(c);
    const topo::Rank owner = own[cells[i].min_particle];
    // Odometer over the parent's neighbors. Two prunes the reference
    // path skips, neither of which changes the event multiset: the zero
    // offset (the cell's own siblings, all Chebyshev-adjacent) and the
    // children of *unoccupied* parent neighbors — one parent lookup in
    // place of 2^D guaranteed-miss child lookups.
    std::int64_t off[4];  // D <= 4 (static_assert in Point)
    for (int k = 0; k < D; ++k) off[k] = -1;
    for (;;) {
      bool in = true;
      bool zero = true;
      Point<D> pn{};
      for (int k = 0; k < D; ++k) {
        const std::int64_t v = static_cast<std::int64_t>(par[k]) + off[k];
        if (v < 0 || v >= side) {
          in = false;
          break;
        }
        if (off[k] != 0) zero = false;
        pn[k] = static_cast<std::uint32_t>(v);
      }
      if (in && !zero) {
        const std::uint64_t pn_key = cell_key(pn);
        if (tree.find(l - 1, pn_key) >= 0) {
          for (std::uint32_t d = 0; d < (1u << D); ++d) {
            Point<D> child{};
            for (int k = 0; k < D; ++k) {
              child[k] = (pn[k] << 1) | child_off[d][k];
            }
            if (chebyshev(child, c) <= 1) continue;
            const auto idx = tree.find(l, (pn_key << D) | d);
            if (idx < 0) continue;  // unoccupied cells do not communicate
            const auto& dc = cells[static_cast<std::size_t>(idx)];
            if (counts != nullptr) {
              ++counts[own[dc.min_particle] * p + owner];
            } else {
              acc.add(own[dc.min_particle], owner);
            }
          }
        }
      }
      int k = 0;
      while (k < D && off[k] == 1) off[k++] = -1;
      if (k == D) break;
      ++off[k];
    }
  }
}

/// Accumulate one communication family's histogram over all levels
/// [first_level, finest]. Serial path: every level goes straight into
/// `acc` — one accumulator for the whole family, folded once by the
/// caller (building and folding a fresh accumulator per chunk per level
/// is what used to cancel the aggregation savings). Parallel path:
/// per-worker shards written without synchronization — each chunk
/// records into the shard of the worker executing it, across all levels
/// — then merged into `acc` exactly once. Counts are integers and
/// addition commutes, so the merged multiset is independent of chunking
/// and scheduling order.
template <int D, typename IntoFn>
void histogram_levels(util::ThreadPool* pool, const CellTree<D>& tree,
                      unsigned first_level, topo::Rank procs,
                      core::RankPairAccumulator& acc, IntoFn into) {
  const unsigned finest = tree.finest_level();
  if (pool == nullptr || pool->size() <= 1) {
    for (unsigned l = first_level; l <= finest; ++l) {
      into(acc, l, std::size_t{0}, tree.cells(l).size());
    }
    return;
  }
  core::RankPairShards shards(procs, pool->size());
  for (unsigned l = first_level; l <= finest; ++l) {
    const std::size_t n = tree.cells(l).size();
    if (n < 4096) {
      // Below the fan-out cutoff the calling thread fills its own shard
      // while no chunks are in flight.
      into(shards.local(), l, std::size_t{0}, n);
      continue;
    }
    util::parallel_for_chunks(*pool, 0, n, util::kAutoGrain,
                              [&, l](std::size_t lo, std::size_t hi) {
                                into(shards.local(), l, lo, hi);
                              });
  }
  {
    const obs::Span span("ffi/merge_shards");
    shards.merge_into(acc);
  }
}

template <int D, typename RangeFn>
core::CommTotals reduce_level(util::ThreadPool* pool, std::size_t n,
                              RangeFn fn) {
  if (pool == nullptr || pool->size() <= 1 || n < 4096) {
    return fn(std::size_t{0}, n);
  }
  return util::parallel_reduce_chunks(*pool, 0, n, util::kAutoGrain,
                                      core::CommTotals{}, fn);
}

}  // namespace

template <int D>
FfiTotals ffi_totals(const CellTree<D>& tree, const Partition& part,
                     const topo::Topology& net, util::ThreadPool* pool) {
  // One histogram per family accumulated across every level and chunk,
  // one fold per family: the fold and accumulator-construction costs are
  // O(pairs) per evaluation instead of O(pairs · levels · chunks) — the
  // overhead that used to hold the aggregated/direct ratio at ~1.1x.
  return ffi_fold(ffi_histograms<D>(tree, part, pool), net);
}

template <int D>
FfiHistograms ffi_histograms(const CellTree<D>& tree, const Partition& part,
                             util::ThreadPool* pool) {
  const std::vector<topo::Rank> owners = part.owner_table();
  const topo::Rank* own = owners.data();
  FfiHistograms h(part.processors());
  {
    const obs::Span span("ffi/interpolation");
    histogram_levels<D>(pool, tree, 1, part.processors(), h.interpolation,
                        [&](core::RankPairAccumulator& acc, unsigned l,
                            std::size_t lo, std::size_t hi) {
                          interp_range_into<D>(tree, own, acc, l, lo, hi);
                        });
  }
  {
    const obs::Span span("ffi/interaction");
    histogram_levels<D>(pool, tree, 2, part.processors(), h.interaction,
                        [&](core::RankPairAccumulator& acc, unsigned l,
                            std::size_t lo, std::size_t hi) {
                          il_range_into<D>(tree, own, acc, l, lo, hi);
                        });
  }
  return h;
}

FfiTotals ffi_fold(const FfiHistograms& hist, const topo::Topology& net) {
  FfiTotals totals;
  totals.interpolation = net.fold(hist.interpolation.view());
  totals.anterpolation = totals.interpolation;
  totals.interaction = net.fold(hist.interaction.view());
  return totals;
}

template <int D>
FfiTotals ffi_totals_direct(const CellTree<D>& tree, const Partition& part,
                            const topo::Topology& net,
                            util::ThreadPool* pool) {
  FfiTotals totals;
  for (unsigned l = 1; l <= tree.finest_level(); ++l) {
    totals.interpolation += reduce_level<D>(
        pool, tree.cells(l).size(), [&, l](std::size_t lo, std::size_t hi) {
          return interp_range<D>(tree, part, net, l, lo, hi);
        });
  }
  totals.anterpolation = totals.interpolation;

  for (unsigned l = 2; l <= tree.finest_level(); ++l) {
    totals.interaction += reduce_level<D>(
        pool, tree.cells(l).size(), [&, l](std::size_t lo, std::size_t hi) {
          return il_range<D>(tree, part, net, l, lo, hi);
        });
  }
  return totals;
}

template class CellTree<2>;
template class CellTree<3>;
template FfiTotals ffi_totals<2>(const CellTree<2>&, const Partition&,
                                 const topo::Topology&, util::ThreadPool*);
template FfiTotals ffi_totals<3>(const CellTree<3>&, const Partition&,
                                 const topo::Topology&, util::ThreadPool*);
template FfiTotals ffi_totals_direct<2>(const CellTree<2>&, const Partition&,
                                        const topo::Topology&,
                                        util::ThreadPool*);
template FfiTotals ffi_totals_direct<3>(const CellTree<3>&, const Partition&,
                                        const topo::Topology&,
                                        util::ThreadPool*);
template FfiHistograms ffi_histograms<2>(const CellTree<2>&, const Partition&,
                                         util::ThreadPool*);
template FfiHistograms ffi_histograms<3>(const CellTree<3>&, const Partition&,
                                         util::ThreadPool*);

}  // namespace sfc::fmm
