#include "fmm/ffi_logtree.hpp"

#include <algorithm>

#include "fmm/cells.hpp"

namespace sfc::fmm {

template <int D>
std::vector<std::vector<topo::Rank>> quadrant_processor_lists(
    const std::vector<Point<D>>& particles, unsigned level,
    const Partition& part) {
  std::vector<std::vector<topo::Rank>> lists(1u << D);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const Point<D> quadrant = cell_at_level(particles[i], level, 1);
    lists[cell_key(quadrant)].push_back(part.proc_of(i));
  }
  for (auto& list : lists) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return lists;
}

template <int D>
core::CommTotals logtree_accumulation_totals(
    const std::vector<Point<D>>& particles, unsigned level,
    const Partition& part, const topo::Topology& net) {
  core::CommTotals totals;
  const auto lists = quadrant_processor_lists<D>(particles, level, part);
  constexpr std::size_t kArity = 1u << D;
  // Flat-table distance lookups when p² fits the budget; per-pair virtual
  // dispatch beyond it.
  const topo::DistanceTable* table = topo::table_if_fits(net);
  for (const auto& procs : lists) {
    for (std::size_t i = 1; i < procs.size(); ++i) {
      const topo::Rank child = procs[i];
      const topo::Rank parent = procs[(i - 1) / kArity];
      const std::uint64_t d =
          table != nullptr ? (*table)(child, parent)
                           : net.distance(child, parent);
      // One upward (interpolation) and one downward (anterpolation)
      // message per tree edge.
      totals.hops += 2 * d;
      totals.count += 2;
    }
  }
  return totals;
}

template core::CommTotals logtree_accumulation_totals<2>(
    const std::vector<Point<2>>&, unsigned, const Partition&,
    const topo::Topology&);
template core::CommTotals logtree_accumulation_totals<3>(
    const std::vector<Point<3>>&, unsigned, const Partition&,
    const topo::Topology&);
template std::vector<std::vector<topo::Rank>> quadrant_processor_lists<2>(
    const std::vector<Point<2>>&, unsigned, const Partition&);
template std::vector<std::vector<topo::Rank>> quadrant_processor_lists<3>(
    const std::vector<Point<3>>&, unsigned, const Partition&);

}  // namespace sfc::fmm
