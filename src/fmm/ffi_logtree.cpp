#include "fmm/ffi_logtree.hpp"

#include <algorithm>

#include "core/rank_pair.hpp"
#include "fmm/cells.hpp"

namespace sfc::fmm {

template <int D>
std::vector<std::vector<topo::Rank>> quadrant_processor_lists(
    const std::vector<Point<D>>& particles, unsigned level,
    const Partition& part) {
  std::vector<std::vector<topo::Rank>> lists(1u << D);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const Point<D> quadrant = cell_at_level(particles[i], level, 1);
    lists[cell_key(quadrant)].push_back(part.proc_of(i));
  }
  for (auto& list : lists) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return lists;
}

template <int D>
core::CommTotals logtree_accumulation_totals(
    const std::vector<Point<D>>& particles, unsigned level,
    const Partition& part, const topo::Topology& net) {
  const auto lists = quadrant_processor_lists<D>(particles, level, part);
  constexpr std::size_t kArity = 1u << D;
  // Histogram the tree edges — one upward (interpolation) and one
  // downward (anterpolation) message each — then hand the histogram to
  // the topology's fold kernel. Same multiset of (pair, distance) events
  // as the old per-edge lookup, so the totals are bit-identical.
  core::RankPairAccumulator acc(part.processors(), net);
  for (const auto& procs : lists) {
    for (std::size_t i = 1; i < procs.size(); ++i) {
      acc.add(procs[i], procs[(i - 1) / kArity], 2);
    }
  }
  return net.fold(acc.view());
}

template core::CommTotals logtree_accumulation_totals<2>(
    const std::vector<Point<2>>&, unsigned, const Partition&,
    const topo::Topology&);
template core::CommTotals logtree_accumulation_totals<3>(
    const std::vector<Point<3>>&, unsigned, const Partition&,
    const topo::Topology&);
template std::vector<std::vector<topo::Rank>> quadrant_processor_lists<2>(
    const std::vector<Point<2>>&, unsigned, const Partition&);
template std::vector<std::vector<topo::Rank>> quadrant_processor_lists<3>(
    const std::vector<Point<3>>&, unsigned, const Partition&);

}  // namespace sfc::fmm
