// nbody.hpp — a complete 2-D n-body mini-app on top of the FMM solver:
// the workload the paper's introduction motivates, runnable end to end.
//
// Dynamics: 2-D "gravity" for the logarithmic kernel. Bodies carry mass
// m = q > 0; the potential energy is U = -G/2 sum_i m_i phi_i with
// phi_i = sum_j m_j ln|z_i - z_j|... sign conventions kept simple by
// defining the force on body i as F_i = -m_i * E_i (attractive for
// positive masses), acceleration a_i = -E_i. Integration is kick-drift-
// kick leapfrog — symplectic and time-reversible, which the tests exploit:
// energy drift stays bounded and integrating forward then backward with
// negated velocities returns to the initial state to floating-point
// accuracy. Walls reflect elastically to keep bodies inside the unit
// square the solver requires.
#pragma once

#include <cstdint>
#include <vector>

#include "fmm/laplace_fmm.hpp"

namespace sfc::fmm {

struct NbodyConfig {
  double dt = 1e-4;            ///< leapfrog timestep
  bool use_fmm = true;         ///< false = O(n^2) direct forces (small n)
  FmmSolverConfig fmm;         ///< solver settings when use_fmm
  bool reflect_walls = true;   ///< elastic bounce at the domain boundary
};

class NbodyIntegrator {
 public:
  /// `bodies` must lie in the unit square with positive charges (masses);
  /// `velocities` parallel to it (zero-filled if shorter).
  NbodyIntegrator(std::vector<Charge> bodies, std::vector<Vec2> velocities,
                  const NbodyConfig& config);

  /// Advance `n` leapfrog steps.
  void step(unsigned n = 1);

  const std::vector<Charge>& bodies() const noexcept { return bodies_; }
  const std::vector<Vec2>& velocities() const noexcept {
    return velocities_;
  }
  std::uint64_t steps_taken() const noexcept { return steps_; }
  std::uint64_t wall_bounces() const noexcept { return bounces_; }

  /// Negate all velocities (for time-reversal experiments).
  void reverse();

  double kinetic_energy() const;
  /// U = 1/2 sum_i m_i phi_i with the attractive sign convention.
  double potential_energy() const;
  double total_energy() const {
    return kinetic_energy() + potential_energy();
  }
  Vec2 momentum() const;

 private:
  std::vector<Vec2> accelerations() const;
  void apply_walls();

  NbodyConfig config_;
  std::vector<Charge> bodies_;
  std::vector<Vec2> velocities_;
  std::vector<Vec2> accel_;  // cached accelerations at current positions
  std::uint64_t steps_ = 0;
  std::uint64_t bounces_ = 0;
};

}  // namespace sfc::fmm
