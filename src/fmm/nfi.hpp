// nfi.hpp — the near-field interaction (NFI) communication model.
//
// Paper Section IV: for each particle x, every particle y within radius r
// induces one communication from the processor holding x to the processor
// holding y; its cost is the network hop distance (zero when co-located,
// still counted). The default neighborhood is the Chebyshev ball —
// "neighbors which share an edge/corner", at most 8 for r=1 in 2-D — with
// the Manhattan ball selectable for ANNS-style studies.
#pragma once

#include <vector>

#include "core/rank_pair.hpp"
#include "core/totals.hpp"
#include "fmm/occupancy.hpp"
#include "fmm/partition.hpp"
#include "sfc/point.hpp"
#include "topology/topology.hpp"
#include "util/thread_pool.hpp"

namespace sfc::fmm {

enum class NeighborNorm {
  kChebyshev,  // edge/corner neighbors (FMM near field)
  kManhattan,  // L1 ball (Xu–Tirthapura nearest-neighbor convention)
};

/// Sum/count of hop distances over all ordered near-field pairs.
/// `particles` must be the SFC-sorted list that `grid` and `part` were
/// built from. Runs on `pool` when provided (deterministic either way).
///
/// Hot path: events are aggregated into a (src rank, dst rank) → count
/// histogram (core/rank_pair.hpp) and folded once against the topology's
/// hop table, so the per-event work is a grid probe plus a count
/// increment — no distance lookup. Bit-identical to nfi_totals_direct.
template <int D>
core::CommTotals nfi_totals(const std::vector<Point<D>>& particles,
                            const OccupancyGrid<D>& grid,
                            const Partition& part, const topo::Topology& net,
                            unsigned radius,
                            NeighborNorm norm = NeighborNorm::kChebyshev,
                            util::ThreadPool* pool = nullptr);

/// Topology-independent stage of nfi_totals: the (src rank, dst rank) →
/// count histogram of the near-field events. The sweep engine caches one
/// of these per (sample, particle order, p, radius, norm) and folds it
/// against every topology / processor order that shares those inputs —
/// net.fold(acc.view()) is bit-identical to nfi_totals over the same
/// inputs. Deterministic with or without `pool`.
template <int D>
core::RankPairAccumulator nfi_histogram(
    const std::vector<Point<D>>& particles, const OccupancyGrid<D>& grid,
    const Partition& part, unsigned radius,
    NeighborNorm norm = NeighborNorm::kChebyshev,
    util::ThreadPool* pool = nullptr);

/// nfi_histogram over particles in *arbitrary* array order: `owners[i]`
/// names the rank holding particles[i] explicitly instead of deriving it
/// from a contiguous Partition of the array. Produces the identical
/// histogram for the identical particle/owner assignment — the event
/// multiset is a function of the particle positions and owners only, not
/// of the array order — which lets the sweep engine enumerate one
/// cell-sorted canonical copy of each sample and re-own it per particle
/// curve instead of materializing a sorted copy per curve.
template <int D>
core::RankPairAccumulator nfi_histogram_owners(
    const std::vector<Point<D>>& particles, const OccupancyGrid<D>& grid,
    const std::vector<topo::Rank>& owners, topo::Rank procs, unsigned radius,
    NeighborNorm norm = NeighborNorm::kChebyshev,
    util::ThreadPool* pool = nullptr);

/// Reference implementation: one virtual distance() dispatch per event.
/// O(events) distance lookups instead of O(p²); the equivalence tests
/// pin nfi_totals to this path bit-for-bit.
template <int D>
core::CommTotals nfi_totals_direct(
    const std::vector<Point<D>>& particles, const OccupancyGrid<D>& grid,
    const Partition& part, const topo::Topology& net, unsigned radius,
    NeighborNorm norm = NeighborNorm::kChebyshev,
    util::ThreadPool* pool = nullptr);

extern template core::CommTotals nfi_totals<2>(const std::vector<Point<2>>&,
                                               const OccupancyGrid<2>&,
                                               const Partition&,
                                               const topo::Topology&, unsigned,
                                               NeighborNorm,
                                               util::ThreadPool*);
extern template core::CommTotals nfi_totals<3>(const std::vector<Point<3>>&,
                                               const OccupancyGrid<3>&,
                                               const Partition&,
                                               const topo::Topology&, unsigned,
                                               NeighborNorm,
                                               util::ThreadPool*);
extern template core::CommTotals nfi_totals_direct<2>(
    const std::vector<Point<2>>&, const OccupancyGrid<2>&, const Partition&,
    const topo::Topology&, unsigned, NeighborNorm, util::ThreadPool*);
extern template core::CommTotals nfi_totals_direct<3>(
    const std::vector<Point<3>>&, const OccupancyGrid<3>&, const Partition&,
    const topo::Topology&, unsigned, NeighborNorm, util::ThreadPool*);
extern template core::RankPairAccumulator nfi_histogram<2>(
    const std::vector<Point<2>>&, const OccupancyGrid<2>&, const Partition&,
    unsigned, NeighborNorm, util::ThreadPool*);
extern template core::RankPairAccumulator nfi_histogram<3>(
    const std::vector<Point<3>>&, const OccupancyGrid<3>&, const Partition&,
    unsigned, NeighborNorm, util::ThreadPool*);
extern template core::RankPairAccumulator nfi_histogram_owners<2>(
    const std::vector<Point<2>>&, const OccupancyGrid<2>&,
    const std::vector<topo::Rank>&, topo::Rank, unsigned, NeighborNorm,
    util::ThreadPool*);
extern template core::RankPairAccumulator nfi_histogram_owners<3>(
    const std::vector<Point<3>>&, const OccupancyGrid<3>&,
    const std::vector<topo::Rank>&, topo::Rank, unsigned, NeighborNorm,
    util::ThreadPool*);

}  // namespace sfc::fmm
