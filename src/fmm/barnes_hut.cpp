#include "fmm/barnes_hut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fmm/cells.hpp"
#include "sfc/morton.hpp"

namespace sfc::fmm {

BarnesHut2D::BarnesHut2D(std::vector<Charge> charges, const BhConfig& config)
    : config_(config), charges_(std::move(charges)) {
  if (config_.theta < 0.0 || config_.theta >= 2.0) {
    throw std::invalid_argument("theta must be in [0, 2)");
  }
  if (config_.leaf_capacity == 0) {
    throw std::invalid_argument("leaf_capacity must be >= 1");
  }
  for (const Charge& c : charges_) {
    if (c.x < 0.0 || c.x >= 1.0 || c.y < 0.0 || c.y >= 1.0) {
      throw std::invalid_argument("charges must lie in the unit square");
    }
  }
  order_.resize(charges_.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  nodes_.reserve(charges_.size() * 2 + 1);
  if (!charges_.empty()) {
    build(0.5, 0.5, 0.5, 0, static_cast<std::uint32_t>(charges_.size()), 0);
  }

  potentials_.assign(charges_.size(), 0.0);
  if (!charges_.empty()) {
    for (std::uint32_t ii = 0; ii < order_.size(); ++ii) {
      const Charge& c = charges_[order_[ii]];
      potentials_[order_[ii]] = evaluate(nodes_[0], c.x, c.y, order_[ii]);
    }
  }
}

std::int32_t BarnesHut2D::build(double cx, double cy, double half,
                                std::uint32_t begin, std::uint32_t end,
                                unsigned level) {
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  ++stats_.nodes;
  {
    Node& n = nodes_.back();
    n.cx = cx;
    n.cy = cy;
    n.half = half;
    n.begin = begin;
    n.end = end;
    for (std::uint32_t i = begin; i < end; ++i) {
      const Charge& c = charges_[order_[i]];
      n.q += c.q;
      const double w = std::abs(c.q);
      n.abs_q += w;
      n.mx += w * c.x;
      n.my += w * c.y;
    }
    if (n.abs_q > 0.0) {
      n.mx /= n.abs_q;
      n.my /= n.abs_q;
    } else {
      n.mx = cx;
      n.my = cy;
    }
  }

  if (end - begin <= config_.leaf_capacity || level >= config_.max_level) {
    return id;  // leaf
  }

  // Partition the range into the four quadrants (stable two-pass split).
  auto quadrant_of = [cx, cy](const Charge& c) {
    return (c.x >= cx ? 1u : 0u) | (c.y >= cy ? 2u : 0u);
  };
  std::uint32_t counts[4] = {0, 0, 0, 0};
  for (std::uint32_t i = begin; i < end; ++i) {
    ++counts[quadrant_of(charges_[order_[i]])];
  }
  std::uint32_t offsets[5] = {begin, 0, 0, 0, 0};
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    offsets[quadrant + 1] =
        offsets[quadrant] + counts[static_cast<std::size_t>(quadrant)];
  }
  {
    std::vector<std::uint32_t> scratch(order_.begin() + begin,
                                       order_.begin() + end);
    std::uint32_t cursor[4] = {offsets[0], offsets[1], offsets[2],
                               offsets[3]};
    for (const std::uint32_t idx : scratch) {
      order_[cursor[quadrant_of(charges_[idx])]++] = idx;
    }
  }

  Node& n = nodes_[static_cast<std::size_t>(id)];
  n.leaf = false;
  const double q = half / 2.0;
  const double child_cx[4] = {cx - q, cx + q, cx - q, cx + q};
  const double child_cy[4] = {cy - q, cy - q, cy + q, cy + q};
  for (unsigned quadrant = 0; quadrant < 4; ++quadrant) {
    if (counts[quadrant] == 0) continue;
    const std::int32_t child =
        build(child_cx[quadrant], child_cy[quadrant], q, offsets[quadrant],
              offsets[quadrant + 1], level + 1);
    nodes_[static_cast<std::size_t>(id)].child[quadrant] = child;
  }
  return id;
}

double BarnesHut2D::evaluate(const Node& node, double x, double y,
                             std::uint32_t self) const {
  const double dx = x - node.mx;
  const double dy = y - node.my;
  const double dist2 = dx * dx + dy * dy;

  // Opening criterion on the full side length.
  const double side = 2.0 * node.half;
  if (!node.leaf &&
      side * side < config_.theta * config_.theta * dist2) {
    ++stats_.cell_evals;
    return node.q * 0.5 * std::log(dist2);
  }
  if (node.leaf) {
    double phi = 0.0;
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      const std::uint32_t j = order_[i];
      if (j == self) continue;
      const Charge& c = charges_[j];
      const double ddx = x - c.x;
      const double ddy = y - c.y;
      phi += c.q * 0.5 * std::log(ddx * ddx + ddy * ddy);
      ++stats_.point_evals;
    }
    return phi;
  }
  double phi = 0.0;
  for (const std::int32_t child : node.child) {
    if (child >= 0) {
      phi += evaluate(nodes_[static_cast<std::size_t>(child)], x, y, self);
    }
  }
  return phi;
}

core::CommTotals bh_comm_totals(const std::vector<Point2>& particles,
                                const CellTree<2>& tree,
                                const Partition& part,
                                const topo::Topology& net, double theta) {
  if (theta < 0.0 || theta >= 2.0) {
    throw std::invalid_argument("theta must be in [0, 2)");
  }
  core::CommTotals totals;
  const unsigned finest = tree.finest_level();

  // Depth-first traversal per particle over the occupied-cell tree.
  // Geometry in finest-cell units: a level-l cell has side 2^(finest-l).
  std::vector<std::pair<unsigned, std::uint64_t>> stack;  // (level, key)
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const double px = particles[i][0] + 0.5;
    const double py = particles[i][1] + 0.5;
    const topo::Rank proc = part.proc_of(i);
    stack.clear();
    stack.emplace_back(0u, 0ull);
    while (!stack.empty()) {
      const auto [level, key] = stack.back();
      stack.pop_back();
      const auto idx = tree.find(level, key);
      if (idx < 0) continue;  // unoccupied subtree
      const auto& cell = tree.cells(level)[static_cast<std::size_t>(idx)];

      const double side = static_cast<double>(1u << (finest - level));
      const Point2 cc = morton_point<2>(key);
      const double cx = (cc[0] + 0.5) * side;
      const double cy = (cc[1] + 0.5) * side;
      const double dx = px - cx;
      const double dy = py - cy;
      const double dist2 = dx * dx + dy * dy;

      if (level == finest) {
        // Direct interaction with the occupant (skip the particle's own
        // cell: one particle per cell means occupant == particle).
        if (cell.min_particle != i) {
          totals.hops += net.distance(part.proc_of(cell.min_particle), proc);
          ++totals.count;
        }
        continue;
      }
      if (side * side < theta * theta * dist2) {
        // Accepted: fetch the cell's summary from its owner.
        totals.hops += net.distance(part.proc_of(cell.min_particle), proc);
        ++totals.count;
        continue;
      }
      for (std::uint64_t child = 0; child < 4; ++child) {
        stack.emplace_back(level + 1, (key << 2) | child);
      }
    }
  }
  return totals;
}

}  // namespace sfc::fmm
