#include "fmm/laplace_fmm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "fmm/cells.hpp"
#include "sfc/morton.hpp"

namespace sfc::fmm {
namespace {

using C = std::complex<double>;

/// Center of cell `cell` (Morton-decoded coordinates) at `level`.
C cell_center(const Point2& cell, unsigned level) {
  const double inv = 1.0 / static_cast<double>(1u << level);
  return {(cell[0] + 0.5) * inv, (cell[1] + 0.5) * inv};
}

}  // namespace

std::vector<double> direct_potentials(const std::vector<Charge>& charges) {
  const std::size_t n = charges.size();
  std::vector<double> phi(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = charges[i].x - charges[j].x;
      const double dy = charges[i].y - charges[j].y;
      const double log_r = 0.5 * std::log(dx * dx + dy * dy);
      phi[i] += charges[j].q * log_r;
      phi[j] += charges[i].q * log_r;
    }
  }
  return phi;
}

std::vector<Vec2> direct_fields(const std::vector<Charge>& charges) {
  const std::size_t n = charges.size();
  std::vector<Vec2> field(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = charges[i].x - charges[j].x;
      const double dy = charges[i].y - charges[j].y;
      const double inv_r2 = 1.0 / (dx * dx + dy * dy);
      field[i].x += charges[j].q * dx * inv_r2;
      field[i].y += charges[j].q * dy * inv_r2;
      field[j].x -= charges[i].q * dx * inv_r2;
      field[j].y -= charges[i].q * dy * inv_r2;
    }
  }
  return field;
}

LaplaceFmm2D::LaplaceFmm2D(std::vector<Charge> charges,
                           const FmmSolverConfig& config)
    : config_(config),
      terms_(config.terms),
      leaf_level_(config.tree_level),
      charges_(std::move(charges)) {
  if (leaf_level_ < 2 || leaf_level_ > 10) {
    throw std::invalid_argument("tree_level must be in [2, 10]");
  }
  if (terms_ < 1 || terms_ > 30) {
    throw std::invalid_argument("terms must be in [1, 30]");
  }
  for (const Charge& c : charges_) {
    if (c.x < 0.0 || c.x >= 1.0 || c.y < 0.0 || c.y >= 1.0) {
      throw std::invalid_argument("charges must lie in the unit square");
    }
  }

  // Pascal's triangle up to 2p+1 (needed by the M2L binomials).
  const unsigned rows = 2 * terms_ + 2;
  binom_.assign(static_cast<std::size_t>(rows) * rows, 0.0);
  for (unsigned n = 0; n < rows; ++n) {
    binom_[n * rows + 0] = 1.0;
    for (unsigned k = 1; k <= n; ++k) {
      binom_[n * rows + k] = binom_[(n - 1) * rows + k - 1] +
                             (k <= n - 1 ? binom_[(n - 1) * rows + k] : 0.0);
    }
  }

  multipole_.resize(leaf_level_ + 1);
  local_.resize(leaf_level_ + 1);
  for (unsigned l = 0; l <= leaf_level_; ++l) {
    const std::size_t cells = 1ull << (2 * l);
    multipole_[l].assign(cells * (terms_ + 1), C{});
    local_[l].assign(cells * (terms_ + 1), C{});
  }

  build_tree(charges_);
  upward_pass();
  translate_pass();
  downward_pass();
  near_field_pass();
}

void LaplaceFmm2D::build_tree(const std::vector<Charge>& charges) {
  const std::uint32_t side = 1u << leaf_level_;
  const std::size_t leaves = 1ull << (2 * leaf_level_);
  std::vector<std::uint64_t> leaf_of(charges.size());
  leaf_offset_.assign(leaves + 1, 0);
  for (std::size_t i = 0; i < charges.size(); ++i) {
    auto cx = static_cast<std::uint32_t>(charges[i].x * side);
    auto cy = static_cast<std::uint32_t>(charges[i].y * side);
    if (cx >= side) cx = side - 1;  // guard against FP rounding at 1.0-eps
    if (cy >= side) cy = side - 1;
    leaf_of[i] = morton_index(make_point(cx, cy));
    ++leaf_offset_[leaf_of[i] + 1];
  }
  for (std::size_t l = 0; l < leaves; ++l) {
    leaf_offset_[l + 1] += leaf_offset_[l];
  }
  order_.resize(charges.size());
  std::vector<std::uint32_t> cursor(leaf_offset_.begin(),
                                    leaf_offset_.end() - 1);
  for (std::size_t i = 0; i < charges.size(); ++i) {
    order_[cursor[leaf_of[i]]++] = static_cast<std::uint32_t>(i);
  }
}

void LaplaceFmm2D::upward_pass() {
  const unsigned p = terms_;
  // P2M: multipole of each occupied leaf about its center.
  auto& leaf_m = multipole_[leaf_level_];
  const std::size_t leaves = 1ull << (2 * leaf_level_);
  for (std::size_t cell = 0; cell < leaves; ++cell) {
    const std::uint32_t begin = leaf_offset_[cell];
    const std::uint32_t end = leaf_offset_[cell + 1];
    if (begin == end) continue;
    const C zc = cell_center(morton_point<2>(cell), leaf_level_);
    C* a = &leaf_m[cell * (p + 1)];
    for (std::uint32_t ii = begin; ii < end; ++ii) {
      const Charge& ch = charges_[order_[ii]];
      const C u = C{ch.x, ch.y} - zc;
      a[0] += ch.q;
      C upow = u;
      for (unsigned k = 1; k <= p; ++k) {
        a[k] -= ch.q * upow / static_cast<double>(k);
        upow *= u;
      }
    }
    ++counts_.p2m;
  }

  // M2M: children -> parents, finest to coarsest.
  for (unsigned l = leaf_level_; l > 0; --l) {
    const auto& child_m = multipole_[l];
    auto& parent_m = multipole_[l - 1];
    const std::size_t cells = 1ull << (2 * l);
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const C* a = &child_m[cell * (p + 1)];
      bool empty = true;
      for (unsigned k = 0; k <= p && empty; ++k) empty = a[k] == C{};
      if (empty) continue;
      const std::size_t parent = cell >> 2;
      const C d = cell_center(morton_point<2>(cell), l) -
                  cell_center(morton_point<2>(parent), l - 1);
      C* b = &parent_m[parent * (p + 1)];
      b[0] += a[0];
      C dl = d;  // d^l
      for (unsigned ll = 1; ll <= p; ++ll) {
        C sum = -a[0] * dl / static_cast<double>(ll);
        C dpow = dl;  // d^(ll-k) walked downward
        for (unsigned k = 1; k <= ll; ++k) {
          dpow /= d;  // now d^(ll-k)
          sum += a[k] * dpow * binom(ll - 1, k - 1);
        }
        b[ll] += sum;
        dl *= d;
      }
      ++counts_.m2m;
    }
  }
}

void LaplaceFmm2D::translate_pass() {
  const unsigned p = terms_;
  std::vector<Point2> il;
  for (unsigned l = 2; l <= leaf_level_; ++l) {
    const auto& m = multipole_[l];
    auto& loc = local_[l];
    const std::size_t cells = 1ull << (2 * l);
    for (std::size_t target = 0; target < cells; ++target) {
      const Point2 tc = morton_point<2>(target);
      const C zl = cell_center(tc, l);
      C* b = &loc[target * (p + 1)];
      interaction_list(tc, l, il);
      for (const Point2& sc : il) {
        const std::size_t source = cell_key(sc);
        const C* a = &m[source * (p + 1)];
        bool empty = true;
        for (unsigned k = 0; k <= p && empty; ++k) empty = a[k] == C{};
        if (empty) continue;

        const C d = cell_center(sc, l) - zl;
        // b_0 += a_0 log(-d) + sum_k a_k (-1)^k / d^k
        C acc = a[0] * std::log(-d);
        C inv_dk = 1.0 / d;  // 1/d^k, walked upward
        double sign = -1.0;
        for (unsigned k = 1; k <= p; ++k) {
          acc += a[k] * sign * inv_dk;
          inv_dk /= d;
          sign = -sign;
        }
        b[0] += acc;
        // b_l += -a_0/(l d^l) + d^-l sum_k a_k (-1)^k C(l+k-1,k-1) / d^k
        C inv_dl = 1.0 / d;  // 1/d^l
        for (unsigned ll = 1; ll <= p; ++ll) {
          C sum = -a[0] / static_cast<double>(ll);
          C inv = 1.0 / d;
          double s = -1.0;
          for (unsigned k = 1; k <= p; ++k) {
            sum += a[k] * s * binom(ll + k - 1, k - 1) * inv;
            inv /= d;
            s = -s;
          }
          b[ll] += sum * inv_dl;
          inv_dl /= d;
        }
        ++counts_.m2l;
      }
    }
  }
}

void LaplaceFmm2D::downward_pass() {
  const unsigned p = terms_;
  for (unsigned l = 2; l < leaf_level_; ++l) {
    const auto& parent_loc = local_[l];
    auto& child_loc = local_[l + 1];
    const std::size_t cells = 1ull << (2 * l);
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const C* b = &parent_loc[cell * (p + 1)];
      bool empty = true;
      for (unsigned k = 0; k <= p && empty; ++k) empty = b[k] == C{};
      if (empty) continue;
      const C zp = cell_center(morton_point<2>(cell), l);
      for (std::size_t j = 0; j < 4; ++j) {
        const std::size_t child = (cell << 2) | j;
        const C d = cell_center(morton_point<2>(child), l + 1) - zp;
        C* out = &child_loc[child * (p + 1)];
        // Shift the polynomial: out_l += sum_{k>=l} b_k C(k,l) d^(k-l).
        for (unsigned ll = 0; ll <= p; ++ll) {
          C sum{};
          C dpow = 1.0;
          for (unsigned k = ll; k <= p; ++k) {
            sum += b[k] * binom(k, ll) * dpow;
            dpow *= d;
          }
          out[ll] += sum;
        }
        ++counts_.l2l;
      }
    }
  }
}

void LaplaceFmm2D::near_field_pass() {
  const unsigned p = terms_;
  potentials_.assign(charges_.size(), 0.0);
  fields_.assign(charges_.size(), Vec2{});
  const std::size_t leaves = 1ull << (2 * leaf_level_);
  const auto& leaf_loc = local_[leaf_level_];
  std::vector<Point2> nbrs;

  for (std::size_t cell = 0; cell < leaves; ++cell) {
    const std::uint32_t begin = leaf_offset_[cell];
    const std::uint32_t end = leaf_offset_[cell + 1];
    if (begin == end) continue;
    const Point2 cc = morton_point<2>(cell);
    const C zl = cell_center(cc, leaf_level_);
    const C* b = &leaf_loc[cell * (p + 1)];

    // L2P: evaluate the local expansion and its complex derivative at
    // every charge (Horner). For analytic W, grad phi = (Re W', -Im W').
    for (std::uint32_t ii = begin; ii < end; ++ii) {
      const Charge& ch = charges_[order_[ii]];
      const C u = C{ch.x, ch.y} - zl;
      C val = b[p];
      C dval{};
      for (unsigned k = p; k > 0; --k) {
        dval = dval * u + val;
        val = val * u + b[k - 1];
      }
      potentials_[order_[ii]] += val.real();
      fields_[order_[ii]].x += dval.real();
      fields_[order_[ii]].y -= dval.imag();
      ++counts_.l2p;
    }

    // P2P within the cell (each unordered pair once).
    for (std::uint32_t ii = begin; ii < end; ++ii) {
      for (std::uint32_t jj = ii + 1; jj < end; ++jj) {
        const Charge& a = charges_[order_[ii]];
        const Charge& c = charges_[order_[jj]];
        const double dx = a.x - c.x;
        const double dy = a.y - c.y;
        const double r2 = dx * dx + dy * dy;
        const double log_r = 0.5 * std::log(r2);
        const double inv_r2 = 1.0 / r2;
        potentials_[order_[ii]] += c.q * log_r;
        potentials_[order_[jj]] += a.q * log_r;
        fields_[order_[ii]].x += c.q * dx * inv_r2;
        fields_[order_[ii]].y += c.q * dy * inv_r2;
        fields_[order_[jj]].x -= a.q * dx * inv_r2;
        fields_[order_[jj]].y -= a.q * dy * inv_r2;
        ++counts_.p2p_pairs;
      }
    }

    // P2P with each neighbor cell; visit each unordered cell pair once by
    // only taking neighbors with a larger Morton key.
    neighbors(cc, leaf_level_, nbrs);
    for (const Point2& nb : nbrs) {
      const std::size_t ncell = cell_key(nb);
      if (ncell <= cell) continue;
      const std::uint32_t nb_begin = leaf_offset_[ncell];
      const std::uint32_t nb_end = leaf_offset_[ncell + 1];
      for (std::uint32_t ii = begin; ii < end; ++ii) {
        const Charge& a = charges_[order_[ii]];
        for (std::uint32_t jj = nb_begin; jj < nb_end; ++jj) {
          const Charge& c = charges_[order_[jj]];
          const double dx = a.x - c.x;
          const double dy = a.y - c.y;
          const double r2 = dx * dx + dy * dy;
          const double log_r = 0.5 * std::log(r2);
          const double inv_r2 = 1.0 / r2;
          potentials_[order_[ii]] += c.q * log_r;
          potentials_[order_[jj]] += a.q * log_r;
          fields_[order_[ii]].x += c.q * dx * inv_r2;
          fields_[order_[ii]].y += c.q * dy * inv_r2;
          fields_[order_[jj]].x -= a.q * dx * inv_r2;
          fields_[order_[jj]].y -= a.q * dy * inv_r2;
          ++counts_.p2p_pairs;
        }
      }
    }
  }
}

}  // namespace sfc::fmm
