// domain.cpp — the topology-case generator (the one domain generator
// with enough branching to deserve a .cpp).
#include "testing/domain.hpp"

namespace sfc::pbt {
namespace {

/// Valid processor counts for `kind`, ascending, capped at max_procs.
/// Mesh/torus need (2^m)^2, quadtree powers of 4, hypercube powers of 2;
/// bus/ring accept anything (a small dense ladder keeps shrinks short).
std::vector<topo::Rank> proc_ladder(topo::TopologyKind kind,
                                    topo::Rank max_procs) {
  std::vector<topo::Rank> out;
  switch (kind) {
    case topo::TopologyKind::kBus:
    case topo::TopologyKind::kRing:
      for (topo::Rank p = 1; p <= max_procs; ++p) out.push_back(p);
      break;
    case topo::TopologyKind::kMesh:
    case topo::TopologyKind::kTorus:
    case topo::TopologyKind::kQuadtree:
      for (topo::Rank p = 1; p <= max_procs; p *= 4) out.push_back(p);
      break;
    case topo::TopologyKind::kHypercube:
      for (topo::Rank p = 1; p <= max_procs; p *= 2) out.push_back(p);
      break;
  }
  return out;
}

}  // namespace

Gen<TopoCase> topology_case(topo::Rank max_procs) {
  const std::vector<topo::TopologyKind> kinds(std::begin(topo::kAllTopologies),
                                              std::end(topo::kAllTopologies));
  const std::vector<CurveKind> curves(std::begin(kAllCurves),
                                      std::end(kAllCurves));
  return Gen<TopoCase>{
      [kinds, curves, max_procs](Rand& r) {
        TopoCase t;
        t.kind = kinds[r.below(kinds.size())];
        const std::vector<topo::Rank> ladder = proc_ladder(t.kind, max_procs);
        t.procs = ladder[r.below(ladder.size())];
        t.ranking = curves[r.below(curves.size())];
        return t;
      },
      [max_procs](const TopoCase& t, std::vector<TopoCase>& out) {
        // Smaller processor count on the same kind's validity ladder.
        for (const topo::Rank p : proc_ladder(t.kind, max_procs)) {
          if (p >= t.procs) break;
          TopoCase c = t;
          c.procs = p;
          out.push_back(c);
        }
        // Simpler kind at the same size (a bus accepts any p).
        if (t.kind != topo::TopologyKind::kBus) {
          TopoCase c = t;
          c.kind = topo::TopologyKind::kBus;
          out.push_back(c);
        }
        // Canonical ranking curve.
        if (t.ranking != CurveKind::kHilbert) {
          TopoCase c = t;
          c.ranking = CurveKind::kHilbert;
          out.push_back(c);
        }
      }};
}

}  // namespace sfc::pbt
