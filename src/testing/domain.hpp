// domain.hpp — repo-specific generators for the property-based suites.
//
// Everything the differential tests randomize lives here: refinement
// levels, lattice points, distinct-cell particle sets (the occupancy
// structures require one particle per cell — the shrinkers preserve the
// invariant), curve kinds, processor counts shaped to each topology's
// validity rule, and whole topology cases. Counterexample printing for
// these types is wired into the runner via Printer specializations, so a
// shrunk failure reads as geometry, not bytes.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "distribution/distribution.hpp"
#include "sfc/curve.hpp"
#include "sfc/point.hpp"
#include "testing/gen.hpp"
#include "testing/property.hpp"
#include "topology/factory.hpp"
#include "topology/topology.hpp"

namespace sfc::pbt {

// ------------------------------------------------------------- geometry

inline Gen<unsigned> level_in(unsigned lo, unsigned hi) {
  return unsigned_in(lo, hi);
}

/// A lattice point on the level-`level` grid, shrinking each coordinate
/// toward zero (one coordinate per candidate, so shrunk failures end up
/// on the axes or at the origin).
template <int D>
Gen<Point<D>> point_on(unsigned level) {
  const std::uint64_t side = std::uint64_t{1} << level;
  return Gen<Point<D>>{
      [side](Rand& r) {
        Point<D> p{};
        for (int i = 0; i < D; ++i) {
          p[i] = static_cast<std::uint32_t>(r.below(side));
        }
        return p;
      },
      [](const Point<D>& p, std::vector<Point<D>>& out) {
        for (int i = 0; i < D; ++i) {
          if (p[i] == 0) continue;
          std::vector<std::uint32_t> cands;
          shrink_integral_toward<std::uint32_t>(0, p[i], cands);
          for (std::uint32_t c : cands) {
            Point<D> q = p;
            q[i] = c;
            out.push_back(q);
          }
        }
      }};
}

namespace detail_domain {

template <int D>
bool all_distinct(const std::vector<Point<D>>& pts, unsigned level) {
  std::set<std::uint64_t> keys;
  for (const auto& p : pts) {
    if (!keys.insert(pack(p, level)).second) return false;
  }
  return keys.size() == pts.size();
}

}  // namespace detail_domain

/// `min_n`..`max_n` particles in *distinct* cells of the level grid (the
/// invariant OccupancyGrid and CellTree require). max_n must leave slack
/// in the grid (max_n <= grid_size/2) so rejection terminates quickly.
/// Shrinks drop particles and move them toward the origin, discarding any
/// candidate that would collide two particles.
template <int D>
Gen<std::vector<Point<D>>> distinct_points(unsigned level, std::size_t min_n,
                                           std::size_t max_n) {
  const Gen<Point<D>> elem = point_on<D>(level);
  return Gen<std::vector<Point<D>>>{
      [elem, level, min_n, max_n](Rand& r) {
        const std::size_t n = r.between(min_n, max_n);
        std::vector<Point<D>> pts;
        std::set<std::uint64_t> keys;
        pts.reserve(n);
        while (pts.size() < n) {
          Point<D> p = elem.sample(r);
          if (keys.insert(pack(p, level)).second) pts.push_back(p);
        }
        return pts;
      },
      [elem, level, min_n](const std::vector<Point<D>>& v,
                           std::vector<std::vector<Point<D>>>& out) {
        std::vector<std::vector<Point<D>>> raw;
        shrink_vector(elem, min_n, v, raw);
        for (auto& cand : raw) {
          if (detail_domain::all_distinct<D>(cand, level)) {
            out.push_back(std::move(cand));
          }
        }
      }};
}

/// `min_n`..`max_n` particles drawn from one of the *implemented particle
/// distributions* (uniform through boundary/skewed) instead of the
/// uniform lattice of distinct_points — property suites that care about
/// realistic clustering (the dynamics differ suite, the sampler tests)
/// draw these so shrunk counterexamples still carry the distribution's
/// shape. Distinctness comes from the sampler's own rejection loop;
/// shrinking only drops particles (repositioning would leave the
/// distribution), preserving the invariant for free.
template <int D>
Gen<std::vector<Point<D>>> distributed_points(dist::DistKind kind,
                                              unsigned level,
                                              std::size_t min_n,
                                              std::size_t max_n) {
  return Gen<std::vector<Point<D>>>{
      [kind, level, min_n, max_n](Rand& r) {
        dist::SampleConfig cfg;
        cfg.count = r.between(min_n, max_n);
        cfg.level = level;
        cfg.seed = r.below(std::uint64_t{1} << 48);
        return dist::sample_particles<D>(kind, cfg);
      },
      [min_n](const std::vector<Point<D>>& v,
              std::vector<std::vector<Point<D>>>& out) {
        // Halve, then drop one element at a time (front/back) — subsets
        // of a distinct set stay distinct.
        if (v.size() > min_n) {
          const std::size_t half = v.size() / 2;
          if (half >= min_n) {
            out.emplace_back(v.begin(), v.begin() + half);
          }
          out.emplace_back(v.begin() + 1, v.end());
          out.emplace_back(v.begin(), v.end() - 1);
        }
      }};
}

// --------------------------------------------------------------- curves

/// Any implemented 2-D curve, shrinking toward Hilbert.
inline Gen<CurveKind> any_curve2() {
  return element_of(std::vector<CurveKind>(std::begin(kAllCurves),
                                           std::end(kAllCurves)));
}

/// The paper's four curves.
inline Gen<CurveKind> paper_curve() {
  return element_of(std::vector<CurveKind>(std::begin(kPaperCurves),
                                           std::end(kPaperCurves)));
}

/// Curves valid in three dimensions (no Moore).
inline Gen<CurveKind> any_curve3() {
  return element_of(std::vector<CurveKind>(std::begin(kCurves3D),
                                           std::end(kCurves3D)));
}

// --------------------------------------------------------- distributions

/// Any implemented particle distribution (extensions included),
/// shrinking toward Uniform.
inline Gen<dist::DistKind> any_distribution() {
  return element_of(std::vector<dist::DistKind>(
      std::begin(dist::kExtendedDistributions),
      std::end(dist::kExtendedDistributions)));
}

// ------------------------------------------------------ processor counts

/// 2^m for m in [0, max_log], shrinking toward 1.
inline Gen<topo::Rank> pow2_procs(unsigned max_log) {
  std::vector<topo::Rank> opts;
  for (unsigned m = 0; m <= max_log; ++m) opts.push_back(topo::Rank{1} << m);
  return element_of(std::move(opts));
}

/// 4^m for m in [0, max_log4], shrinking toward 1 (mesh/torus/quadtree
/// validity in 2-D).
inline Gen<topo::Rank> pow4_procs(unsigned max_log4) {
  std::vector<topo::Rank> opts;
  for (unsigned m = 0; m <= max_log4; ++m) {
    opts.push_back(topo::Rank{1} << (2 * m));
  }
  return element_of(std::move(opts));
}

/// Any processor count in [lo, hi] (bus/ring accept every p).
inline Gen<topo::Rank> any_procs(topo::Rank lo, topo::Rank hi) {
  return integral_in<topo::Rank>(lo, hi);
}

// ------------------------------------------------------- topology cases

/// One fully specified 2-D interconnect: kind, a processor count valid
/// for that kind, and the ranking curve (used by mesh/torus only).
struct TopoCase {
  topo::TopologyKind kind = topo::TopologyKind::kBus;
  topo::Rank procs = 1;
  CurveKind ranking = CurveKind::kHilbert;

  std::unique_ptr<topo::Topology> make() const {
    const std::unique_ptr<Curve<2>> curve = make_curve<2>(ranking);
    return topo::make_topology<2>(kind, procs, curve.get());
  }
};

/// Topology cases with procs <= `max_procs` (every kind's valid ladder is
/// truncated to the cap). Shrinks walk procs down the kind's own ladder,
/// then simplify the kind to a bus of the same size, then the ranking
/// toward Hilbert.
Gen<TopoCase> topology_case(topo::Rank max_procs);

// ----------------------------------------------------- failure printing

namespace detail {

template <int D>
struct Printer<Point<D>> {
  static std::string print(const Point<D>& p) { return to_string(p); }
};

template <typename T>
struct Printer<std::vector<T>> {
  static std::string print(const std::vector<T>& v) {
    std::string s = "[" + std::to_string(v.size()) + " elems:";
    const std::size_t shown = v.size() < 16 ? v.size() : 16;
    for (std::size_t i = 0; i < shown; ++i) {
      s += " " + Printer<T>::print(v[i]);
    }
    if (shown < v.size()) s += " ...";
    return s + "]";
  }
};

template <typename A, typename B>
struct Printer<std::pair<A, B>> {
  static std::string print(const std::pair<A, B>& v) {
    return "(" + Printer<A>::print(v.first) + ", " +
           Printer<B>::print(v.second) + ")";
  }
};

template <>
struct Printer<CurveKind> {
  static std::string print(const CurveKind& k) {
    return std::string(curve_name(k));
  }
};

template <>
struct Printer<dist::DistKind> {
  static std::string print(const dist::DistKind& k) {
    return std::string(dist::dist_name(k));
  }
};

template <>
struct Printer<topo::TopologyKind> {
  static std::string print(const topo::TopologyKind& k) {
    return std::string(topo::topology_name(k));
  }
};

template <>
struct Printer<TopoCase> {
  static std::string print(const TopoCase& t) {
    return "{" + std::string(topo::topology_name(t.kind)) +
           ", p=" + std::to_string(t.procs) + ", ranking=" +
           std::string(curve_name(t.ranking)) + "}";
  }
};

}  // namespace detail

}  // namespace sfc::pbt
