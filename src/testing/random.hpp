// random.hpp — the PBT core's randomness source.
//
// A thin, deterministic façade over util::Xoshiro256pp with the handful
// of draw shapes generators need (bounded integers, biased coins,
// inclusive ranges). Every property-check iteration gets its own Rand
// seeded by util::substream_seed(master, iteration), so a failing case
// is replayed from (master seed, iteration index) alone — no state from
// earlier iterations leaks in.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace sfc::pbt {

class Rand {
 public:
  explicit Rand(std::uint64_t seed) noexcept : rng_(seed), seed_(seed) {}

  /// The seed this source was constructed with (for failure reports).
  std::uint64_t seed() const noexcept { return seed_; }

  std::uint64_t u64() noexcept { return rng_.next(); }

  /// Unbiased draw in [0, bound); bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return util::bounded_u64(rng_, bound);
  }

  /// Unbiased draw in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  double uniform01() noexcept { return util::uniform01(rng_); }

  /// Biased coin: true with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  bool coin() noexcept { return (rng_.next() & 1u) != 0; }

  /// Access to the underlying generator for domain code that needs it
  /// (e.g. to feed the library's samplers).
  util::Xoshiro256pp& engine() noexcept { return rng_; }

 private:
  util::Xoshiro256pp rng_;
  std::uint64_t seed_;
};

}  // namespace sfc::pbt
