// gen.hpp — typed generators with explicit shrinkers.
//
// A Gen<T> couples a sampling function (Rand& -> T) with a shrinker that
// proposes strictly "smaller" candidate values for a failing input. The
// property runner greedily walks the shrink tree: it replaces the current
// counterexample with the first candidate that still fails and repeats
// until no candidate fails, which converges because every shrinker is
// required to propose only values that are smaller under some
// well-founded measure (integers move toward the range minimum, vectors
// lose elements before shrinking them in place).
//
// The combinators here are domain-agnostic; src/testing/domain.hpp builds
// the repo-specific generators (points, grids, curve levels, rank
// counts) on top of them.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <tuple>
#include <utility>
#include <vector>

#include "testing/random.hpp"

namespace sfc::pbt {

template <typename T>
struct Gen {
  using Value = T;

  /// Draw one value.
  std::function<T(Rand&)> sample;

  /// Append strictly-smaller candidates for `v` to `out` (best candidates
  /// first — the runner tries them in order). An empty shrinker is legal:
  /// the value is then reported as-is.
  std::function<void(const T&, std::vector<T>&)> shrink =
      [](const T&, std::vector<T>&) {};

  std::vector<T> shrinks(const T& v) const {
    std::vector<T> out;
    shrink(v, out);
    return out;
  }
};

// ------------------------------------------------------------ primitives

template <typename T>
Gen<T> constant(T v) {
  return Gen<T>{[v](Rand&) { return v; }};
}

/// Append the classic integer shrink ladder toward `lo`: the minimum
/// itself, then candidates approaching `v` by halving the remaining
/// distance (midpoint, 3/4 point, ..., v-1). Aggressive candidates come
/// first, and because the gaps halve, a greedy walk converges to any
/// failure threshold in O(log²) evaluations instead of unit decrements.
template <typename T>
void shrink_integral_toward(T lo, const T& v, std::vector<T>& out) {
  if (v == lo) return;
  out.push_back(lo);
  for (T d = static_cast<T>(static_cast<T>(v - lo) / 2); d > 0;
       d = static_cast<T>(d / 2)) {
    out.push_back(static_cast<T>(v - d));
  }
}

/// Uniform integer in [lo, hi] (inclusive), shrinking toward lo.
template <typename T>
Gen<T> integral_in(T lo, T hi) {
  return Gen<T>{
      [lo, hi](Rand& r) {
        return static_cast<T>(r.between(static_cast<std::uint64_t>(lo),
                                        static_cast<std::uint64_t>(hi)));
      },
      [lo](const T& v, std::vector<T>& out) {
        shrink_integral_toward<T>(lo, v, out);
      }};
}

inline Gen<std::uint64_t> u64_in(std::uint64_t lo, std::uint64_t hi) {
  return integral_in<std::uint64_t>(lo, hi);
}
inline Gen<std::uint32_t> u32_in(std::uint32_t lo, std::uint32_t hi) {
  return integral_in<std::uint32_t>(lo, hi);
}
inline Gen<unsigned> unsigned_in(unsigned lo, unsigned hi) {
  return integral_in<unsigned>(lo, hi);
}
inline Gen<std::size_t> size_in(std::size_t lo, std::size_t hi) {
  return integral_in<std::size_t>(lo, hi);
}

inline Gen<bool> boolean() {
  return Gen<bool>{[](Rand& r) { return r.coin(); },
                   [](const bool& v, std::vector<bool>& out) {
                     if (v) out.push_back(false);
                   }};
}

/// Uniform pick from a fixed list, shrinking toward earlier entries.
template <typename T>
Gen<T> element_of(std::vector<T> options) {
  return Gen<T>{
      [options](Rand& r) { return options[r.below(options.size())]; },
      [options](const T& v, std::vector<T>& out) {
        for (const T& o : options) {
          if (o == v) break;
          out.push_back(o);
        }
      }};
}

// ----------------------------------------------------------- combinators

/// Transform generated values. The mapped generator shrinks by shrinking
/// a *preimage* is impossible in general, so `map` takes an optional
/// shrinker for the image type; omit it for values that need no shrinking
/// beyond what composite generators above them provide.
template <typename T, typename F,
          typename U = std::invoke_result_t<F, const T&>>
Gen<U> map(Gen<T> g, F f,
           std::function<void(const U&, std::vector<U>&)> shrinker =
               [](const U&, std::vector<U>&) {}) {
  return Gen<U>{[g, f](Rand& r) { return f(g.sample(r)); },
                std::move(shrinker)};
}

/// Pair generator: shrinks one component at a time (first component
/// first, so put the "size-like" axis there for fastest descent).
template <typename A, typename B>
Gen<std::pair<A, B>> pair_of(Gen<A> ga, Gen<B> gb) {
  return Gen<std::pair<A, B>>{
      [ga, gb](Rand& r) {
        auto a = ga.sample(r);  // fixed evaluation order
        auto b = gb.sample(r);
        return std::pair<A, B>{std::move(a), std::move(b)};
      },
      [ga, gb](const std::pair<A, B>& v, std::vector<std::pair<A, B>>& out) {
        for (const A& a : ga.shrinks(v.first)) out.push_back({a, v.second});
        for (const B& b : gb.shrinks(v.second)) out.push_back({v.first, b});
      }};
}

/// Fixed-length vector of independent draws; shrinks by dropping halves,
/// then single elements, then shrinking elements in place.
template <typename T>
void shrink_vector(const Gen<T>& elem, std::size_t min_len,
                   const std::vector<T>& v, std::vector<std::vector<T>>& out) {
  const std::size_t n = v.size();
  // Drop chunks: the whole tail half, then quarters, ... then singles.
  for (std::size_t chunk = n / 2; chunk >= 1; chunk /= 2) {
    if (n < chunk || n - chunk < min_len) continue;
    for (std::size_t start = 0; start + chunk <= n; start += chunk) {
      std::vector<T> smaller;
      smaller.reserve(n - chunk);
      smaller.insert(smaller.end(), v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(start));
      smaller.insert(smaller.end(),
                     v.begin() + static_cast<std::ptrdiff_t>(start + chunk),
                     v.end());
      out.push_back(std::move(smaller));
    }
    if (chunk == 1) break;
  }
  // Shrink elements in place (first shrink candidate only, per position,
  // to keep the branching factor bounded).
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<T> cands = elem.shrinks(v[i]);
    if (cands.empty()) continue;
    std::vector<T> smaller = v;
    smaller[i] = cands.front();
    out.push_back(std::move(smaller));
  }
}

template <typename T>
Gen<std::vector<T>> vector_of(Gen<T> elem, std::size_t min_len,
                              std::size_t max_len) {
  return Gen<std::vector<T>>{
      [elem, min_len, max_len](Rand& r) {
        const std::size_t n = r.between(min_len, max_len);
        std::vector<T> v;
        v.reserve(n);
        for (std::size_t i = 0; i < n; ++i) v.push_back(elem.sample(r));
        return v;
      },
      [elem, min_len](const std::vector<T>& v,
                      std::vector<std::vector<T>>& out) {
        shrink_vector(elem, min_len, v, out);
      }};
}

/// Rejection wrapper: resample until `pred` holds (the caller must ensure
/// acceptance is likely; after 1000 rejections the last draw is returned
/// unfiltered so a bad predicate fails loudly in the property instead of
/// hanging the generator). Shrink candidates are filtered by `pred`.
template <typename T, typename Pred>
Gen<T> such_that(Gen<T> g, Pred pred) {
  return Gen<T>{
      [g, pred](Rand& r) {
        T v = g.sample(r);
        for (int attempt = 0; attempt < 1000 && !pred(v); ++attempt) {
          v = g.sample(r);
        }
        return v;
      },
      [g, pred](const T& v, std::vector<T>& out) {
        std::vector<T> raw = g.shrinks(v);
        for (T& c : raw) {
          if (pred(c)) out.push_back(std::move(c));
        }
      }};
}

}  // namespace sfc::pbt
