// property.hpp — the property-check runner: iterate, detect, shrink,
// report, replay.
//
// A property is a callable over a generated value that returns either
// bool (true = holds) or std::optional<std::string> (nullopt = holds,
// string = failure detail). check() draws `iterations` values — each
// iteration seeded independently via util::substream_seed(master, i) —
// and on the first failure greedily shrinks the counterexample through
// the generator's shrinker before reporting.
//
// Replay workflow: every failure report carries the master seed and the
// failing iteration. Setting SFCACD_PBT_SEED re-runs a suite with that
// master seed (the failing case reappears at the same iteration);
// SFCACD_PBT_ITERS scales the iteration budget (CI runs 100, nightly
// runs thousands). docs/testing.md walks through the workflow.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "testing/gen.hpp"
#include "testing/random.hpp"
#include "util/rng.hpp"

namespace sfc::pbt {

/// Iteration/seed budget for one check() call.
struct CheckConfig {
  /// Randomized cases to run. 0 = use the environment default
  /// (SFCACD_PBT_ITERS, or kDefaultIterations when unset).
  std::size_t iterations = 0;
  /// Master seed. 0 = use SFCACD_PBT_SEED, or kDefaultSeed when unset.
  std::uint64_t seed = 0;
  /// Shrink-step budget: total candidate evaluations during shrinking.
  std::size_t max_shrink_steps = 4096;

  /// The resolved configuration (environment applied). Reads the
  /// environment once per call — cheap next to any property body.
  CheckConfig resolved() const;

  /// Scale the (resolved) iteration count for expensive properties, with
  /// a floor of 1. A property using scaled(0.1) still obeys the global
  /// budget knob — nightly runs scale everything up together.
  CheckConfig scaled(double factor) const {
    CheckConfig c = resolved();
    const double n = static_cast<double>(c.iterations) * factor;
    c.iterations = n < 1.0 ? 1 : static_cast<std::size_t>(n);
    return c;
  }
};

inline constexpr std::size_t kDefaultIterations = 1000;
inline constexpr std::uint64_t kDefaultSeed = 0x5fc2'acd0'0000'0001ull;

/// Environment accessors (exposed for the self-tests).
std::size_t env_iterations() noexcept;
std::optional<std::uint64_t> env_seed() noexcept;

/// Outcome of one check() call. `ok` mirrors into gtest via the
/// SFCACD_PBT_CHECK macro; `message` carries the shrunk counterexample
/// and the replay instructions.
struct CheckOutcome {
  bool ok = true;
  std::string message;
  std::size_t iterations_run = 0;
  std::size_t shrink_steps = 0;        ///< candidate evaluations spent
  std::size_t shrink_improvements = 0; ///< accepted (smaller) failures
  std::uint64_t master_seed = 0;
  std::uint64_t failing_iteration = 0;
  std::uint64_t failing_case_seed = 0;
  std::string counterexample;          ///< printed shrunk failing value
};

namespace detail {

/// Print a value for a failure report: operator<< when available,
/// a byte-size placeholder otherwise (domain.hpp streams its types).
template <typename T, typename = void>
struct Printer {
  static std::string print(const T&) {
    return "<unprintable value of " + std::to_string(sizeof(T)) + " bytes>";
  }
};

template <typename T>
struct Printer<T, std::void_t<decltype(std::declval<std::ostream&>()
                                       << std::declval<const T&>())>> {
  static std::string print(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }
};

template <typename T>
std::string print_value(const T& v) {
  return Printer<T>::print(v);
}

/// Normalize the two supported property signatures to
/// optional<string> (nullopt = pass).
template <typename Prop, typename T>
std::optional<std::string> run_property(Prop&& prop, const T& value) {
  using R = std::invoke_result_t<Prop&, const T&>;
  if constexpr (std::is_same_v<R, bool>) {
    if (prop(value)) return std::nullopt;
    return std::string("property returned false");
  } else {
    return prop(value);
  }
}

}  // namespace detail

/// Run `prop` over `cfg.iterations` values drawn from `gen`; on failure,
/// shrink greedily and return a report. Never throws on property
/// failure; exceptions thrown by the property body itself are treated as
/// failures of that case (and participate in shrinking).
template <typename T, typename Prop>
CheckOutcome check(const Gen<T>& gen, Prop&& prop, CheckConfig cfg = {}) {
  cfg = cfg.resolved();
  CheckOutcome out;
  out.master_seed = cfg.seed;

  auto evaluate = [&](const T& value) -> std::optional<std::string> {
    try {
      return detail::run_property(prop, value);
    } catch (const std::exception& e) {
      return std::string("property threw: ") + e.what();
    }
  };

  for (std::size_t iter = 0; iter < cfg.iterations; ++iter) {
    const std::uint64_t case_seed = util::substream_seed(cfg.seed, iter);
    Rand rand(case_seed);
    T value = gen.sample(rand);
    ++out.iterations_run;
    std::optional<std::string> failure = evaluate(value);
    if (!failure) continue;

    // ---- shrink: greedily accept the first still-failing candidate.
    T best = std::move(value);
    std::string best_failure = std::move(*failure);
    bool improved = true;
    while (improved && out.shrink_steps < cfg.max_shrink_steps) {
      improved = false;
      for (T& candidate : gen.shrinks(best)) {
        if (out.shrink_steps >= cfg.max_shrink_steps) break;
        ++out.shrink_steps;
        if (auto f = evaluate(candidate)) {
          best = std::move(candidate);
          best_failure = std::move(*f);
          ++out.shrink_improvements;
          improved = true;
          break;
        }
      }
    }

    out.ok = false;
    out.failing_iteration = iter;
    out.failing_case_seed = case_seed;
    out.counterexample = detail::print_value(best);
    std::ostringstream msg;
    msg << "property failed (iteration " << iter << " of " << cfg.iterations
        << ", case seed 0x" << std::hex << case_seed << std::dec << ")\n"
        << "  counterexample (after " << out.shrink_improvements
        << " shrinks, " << out.shrink_steps << " steps): "
        << out.counterexample << "\n"
        << "  failure: " << best_failure << "\n"
        << "  replay: SFCACD_PBT_SEED=0x" << std::hex << cfg.seed << std::dec
        << " (master seed; the case recurs at iteration " << iter << ")";
    out.message = msg.str();
    return out;
  }
  return out;
}

}  // namespace sfc::pbt
