// gtest.hpp — glue between the PBT runner and GoogleTest.
//
// The core (property.hpp) has no gtest dependency — it returns a
// CheckOutcome — so the library target stays test-framework-free. Test
// files include this header and use the macros, which surface the
// runner's shrunk counterexample and replay line as the gtest failure
// message at the call site.
//
//   TEST(CurveDiff, HilbertLutMatchesCanonical) {
//     SFCACD_PBT_CHECK(gen, [](const Case& c) { ... return ok; });
//   }
//
// SFCACD_PBT_CHECK_CFG takes an explicit pbt::CheckConfig (iteration
// scaling for expensive properties, pinned seeds in self-tests).
#pragma once

#include <gtest/gtest.h>

#include "testing/property.hpp"

#define SFCACD_PBT_CHECK_CFG(gen, cfg, prop)                        \
  do {                                                              \
    const ::sfc::pbt::CheckOutcome sfcacd_pbt_outcome =             \
        ::sfc::pbt::check((gen), (prop), (cfg));                    \
    EXPECT_TRUE(sfcacd_pbt_outcome.ok) << sfcacd_pbt_outcome.message; \
  } while (0)

#define SFCACD_PBT_CHECK(gen, prop) \
  SFCACD_PBT_CHECK_CFG(gen, ::sfc::pbt::CheckConfig{}, prop)
