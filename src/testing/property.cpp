// property.cpp — environment plumbing for the PBT runner.
#include "testing/property.hpp"

#include <cstdlib>
#include <string>

namespace sfc::pbt {
namespace {

/// Parse a non-negative integer with optional 0x prefix; nullopt on any
/// garbage (a typo'd seed must not silently become the default).
std::optional<std::uint64_t> parse_u64(const char* s) noexcept {
  if (s == nullptr || *s == '\0') return std::nullopt;
  try {
    std::size_t pos = 0;
    const std::string str(s);
    const std::uint64_t v = std::stoull(str, &pos, 0);  // base 0: 0x ok
    if (pos != str.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::size_t env_iterations() noexcept {
  const auto v = parse_u64(std::getenv("SFCACD_PBT_ITERS"));
  if (v && *v > 0) return static_cast<std::size_t>(*v);
  return kDefaultIterations;
}

std::optional<std::uint64_t> env_seed() noexcept {
  return parse_u64(std::getenv("SFCACD_PBT_SEED"));
}

CheckConfig CheckConfig::resolved() const {
  CheckConfig c = *this;
  if (c.iterations == 0) c.iterations = env_iterations();
  if (c.seed == 0) c.seed = env_seed().value_or(kDefaultSeed);
  return c;
}

}  // namespace sfc::pbt
