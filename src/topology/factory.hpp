// factory.hpp — construct a topology by kind.
//
// Mesh and torus require a processor-order SFC (the paper applies SFC
// ranking only to those two topologies; the others use their natural
// labeling). The quadtree becomes an octree for D=3.
#pragma once

#include <memory>

#include "sfc/curve.hpp"
#include "topology/topology.hpp"

namespace sfc::topo {

/// Create a topology with `p` processors.
/// * kMesh/kTorus: p must equal (2^m)^D; `ranking` must be non-null and is
///   used as the processor-order SFC.
/// * kQuadtree: p must be a power of 2^D (arity = 2^D).
/// * kHypercube: p must be a power of two.
/// Throws std::invalid_argument on violations.
template <int D>
std::unique_ptr<Topology> make_topology(TopologyKind kind, Rank p,
                                        const Curve<D>* ranking = nullptr);

extern template std::unique_ptr<Topology> make_topology<2>(TopologyKind, Rank,
                                                           const Curve<2>*);
extern template std::unique_ptr<Topology> make_topology<3>(TopologyKind, Rank,
                                                           const Curve<3>*);

/// The fold strategy make_topology's product will report, computable
/// without constructing the topology — the sweep engine folds it into
/// stage cache keys and memory estimates before the build stage runs.
/// Every paper topology has a factorized kernel; the fallback mirrors
/// the base Topology policy (dense while the table fits, else streamed).
FoldStrategy planned_fold_strategy(TopologyKind kind, Rank procs) noexcept;

}  // namespace sfc::topo
