// linear.hpp — the 1-D topologies: bus (linear array) and ring.
//
// The paper treats the "bus" as a chain where "each processor may only
// communicate with two direct neighbors" — i.e. a path graph, not a shared
// medium — so distance is |a - b|; the ring adds the wraparound link.
#pragma once

#include <algorithm>
#include <cassert>

#include "topology/topology.hpp"

namespace sfc::topo {

class BusTopology final : public Topology {
 public:
  explicit BusTopology(Rank size) : size_(size) { assert(size > 0); }

  Rank size() const noexcept override { return size_; }

  std::uint64_t distance(Rank a, Rank b) const noexcept override {
    assert(a < size_ && b < size_);
    return a > b ? a - b : b - a;
  }

  std::uint64_t diameter() const noexcept override { return size_ - 1; }

  TopologyKind kind() const noexcept override { return TopologyKind::kBus; }

  FoldStrategy fold_strategy() const noexcept override {
    return FoldStrategy::kFactorized;
  }

 protected:
  void fill_table(DistanceTable& t) const override {
    for (Rank a = 0; a < size_; ++a) {
      std::uint32_t* row = t.row(a);
      for (Rank b = 0; b < size_; ++b) row[b] = a > b ? a - b : b - a;
    }
  }

  core::CommTotals fold_pairs(const PairCountsView& pairs) const override {
    // |a - b| already is the factorized 1-D line fold: accumulate the
    // closed form directly — no table, no per-pair virtual dispatch.
    core::CommTotals totals;
    pairs.for_each([&totals](Rank a, Rank b, std::uint64_t c) {
      totals.hops += c * (a > b ? a - b : b - a);
      totals.count += c;
    });
    return totals;
  }

 private:
  Rank size_;
};

class RingTopology final : public Topology {
 public:
  explicit RingTopology(Rank size) : size_(size) { assert(size > 0); }

  Rank size() const noexcept override { return size_; }

  std::uint64_t distance(Rank a, Rank b) const noexcept override {
    assert(a < size_ && b < size_);
    const std::uint64_t d = a > b ? a - b : b - a;
    return std::min<std::uint64_t>(d, size_ - d);
  }

  std::uint64_t diameter() const noexcept override { return size_ / 2; }

  TopologyKind kind() const noexcept override { return TopologyKind::kRing; }

  FoldStrategy fold_strategy() const noexcept override {
    return FoldStrategy::kFactorized;
  }

 protected:
  void fill_table(DistanceTable& t) const override {
    for (Rank a = 0; a < size_; ++a) {
      std::uint32_t* row = t.row(a);
      for (Rank b = 0; b < size_; ++b) {
        const Rank d = a > b ? a - b : b - a;
        row[b] = std::min(d, size_ - d);
      }
    }
  }

  core::CommTotals fold_pairs(const PairCountsView& pairs) const override {
    // 1-D ring fold: min(δ, p - δ) per pair, accumulated directly.
    core::CommTotals totals;
    pairs.for_each([&totals, p = size_](Rank a, Rank b, std::uint64_t c) {
      const Rank d = a > b ? a - b : b - a;
      totals.hops += c * std::min(d, p - d);
      totals.count += c;
    });
    return totals;
  }

 private:
  Rank size_;
};

}  // namespace sfc::topo
