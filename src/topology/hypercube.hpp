// hypercube.hpp — the classical hypercube: p = 2^d processors, processor a
// linked to b iff their labels differ in one bit; hop distance is the
// Hamming distance of the labels.
#pragma once

#include <bit>
#include <cassert>
#include <stdexcept>

#include "topology/topology.hpp"
#include "util/bits.hpp"

namespace sfc::topo {

class HypercubeTopology final : public Topology {
 public:
  explicit HypercubeTopology(Rank size) : size_(size) {
    if (!util::is_pow2(size)) {
      throw std::invalid_argument("hypercube size must be a power of two");
    }
    dims_ = util::ilog2(size);
  }

  Rank size() const noexcept override { return size_; }

  std::uint64_t distance(Rank a, Rank b) const noexcept override {
    assert(a < size_ && b < size_);
    return static_cast<std::uint64_t>(std::popcount(a ^ b));
  }

  std::uint64_t diameter() const noexcept override { return dims_; }

  TopologyKind kind() const noexcept override {
    return TopologyKind::kHypercube;
  }

  unsigned dimensions() const noexcept { return dims_; }

  FoldStrategy fold_strategy() const noexcept override {
    return FoldStrategy::kFactorized;
  }

 protected:
  core::CommTotals fold_pairs(const PairCountsView& pairs) const override {
    // Hamming distance takes only dims_ + 1 values: bucket counts by
    // popcount(a ^ b), then fold the tiny bucket histogram.
    std::uint64_t buckets[33] = {};
    core::CommTotals totals;
    pairs.for_each([&buckets, &totals](Rank a, Rank b, std::uint64_t c) {
      buckets[std::popcount(a ^ b)] += c;
      totals.count += c;
    });
    for (unsigned k = 1; k <= dims_; ++k) {
      totals.hops += k * buckets[k];
    }
    return totals;
  }

  void fill_table(DistanceTable& t) const override {
    for (Rank a = 0; a < size_; ++a) {
      std::uint32_t* row = t.row(a);
      for (Rank b = 0; b < size_; ++b) {
        row[b] = static_cast<std::uint32_t>(std::popcount(a ^ b));
      }
    }
  }

 private:
  Rank size_;
  unsigned dims_;
};

}  // namespace sfc::topo
