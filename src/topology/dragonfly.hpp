// dragonfly.hpp — the Dragonfly interconnect (Kim, Dally, Scott &
// Abts, ISCA 2008), the modern counterpart to the paper's six topologies.
//
// A balanced single-rail Dragonfly with `a` routers per group, one global
// port per router, and g = a + 1 groups (p = a * (a + 1) processors, one
// per router). Routers within a group form a complete graph; router i of
// group s owns the global link to group (s + i + 1) mod g, which lands on
// router (s - d - 1) mod g of group d — a bijective pairing, so every
// group pair has exactly one global link. Minimal-path hop distance is
// then at most 3 (local, global, local), computable in closed form and
// validated against the BFS oracle in the tests.
#pragma once

#include <cassert>
#include <stdexcept>

#include "topology/topology.hpp"

namespace sfc::topo {

class DragonflyTopology final : public Topology {
 public:
  /// `routers_per_group` = a >= 1; the balanced group count a + 1 is
  /// implied. One processor per router.
  explicit DragonflyTopology(Rank routers_per_group)
      : a_(routers_per_group), g_(routers_per_group + 1) {
    if (routers_per_group < 1) {
      throw std::invalid_argument("dragonfly needs >= 1 router per group");
    }
  }

  Rank size() const noexcept override { return a_ * g_; }

  std::uint64_t distance(Rank x, Rank y) const noexcept override {
    assert(x < size() && y < size());
    return distance_closed_form(x, y);
  }

  std::uint64_t diameter() const noexcept override {
    // local + global + local; degenerate sizes have smaller diameters.
    return a_ == 1 ? 1 : 3;
  }

  TopologyKind kind() const noexcept override {
    // No dedicated enum entry (the kind enum mirrors the paper's set);
    // report the closest generic label for display purposes.
    return TopologyKind::kHypercube;
  }

  Rank routers_per_group() const noexcept { return a_; }
  Rank groups() const noexcept { return g_; }

  /// Router index within group `s` holding the global link toward group
  /// `d` (s != d). Exposed for the oracle test's edge construction.
  Rank gateway(Rank s, Rank d) const noexcept {
    return (d + g_ - s - 1) % g_;
  }

  FoldStrategy fold_strategy() const noexcept override {
    return FoldStrategy::kFactorized;
  }

 protected:
  core::CommTotals fold_pairs(const PairCountsView& pairs) const override {
    // The minimal-path closed form is a handful of divisions per pair:
    // accumulate it directly, no table.
    core::CommTotals totals;
    pairs.for_each([this, &totals](Rank x, Rank y, std::uint64_t c) {
      totals.hops += c * distance_closed_form(x, y);
      totals.count += c;
    });
    return totals;
  }

  void fill_table(DistanceTable& t) const override {
    const Rank p = size();
    for (Rank x = 0; x < p; ++x) {
      const Rank sx = x / a_, ix = x % a_;
      std::uint32_t* row = t.row(x);
      for (Rank y = 0; y < p; ++y) {
        if (x == y) {
          row[y] = 0;
          continue;
        }
        const Rank sy = y / a_, iy = y % a_;
        if (sx == sy) {
          row[y] = 1;
          continue;
        }
        const Rank gate_src = (sy + g_ - sx - 1) % g_;
        const Rank gate_dst = (sx + g_ - sy - 1) % g_;
        row[y] = 1u + (ix == gate_src ? 0u : 1u) + (iy == gate_dst ? 0u : 1u);
      }
    }
  }

 private:
  std::uint64_t distance_closed_form(Rank x, Rank y) const noexcept {
    if (x == y) return 0;
    const Rank sx = x / a_, ix = x % a_;
    const Rank sy = y / a_, iy = y % a_;
    if (sx == sy) return 1;  // same group: complete graph
    // Gateways of the unique global link between the two groups.
    const Rank gate_src = (sy + g_ - sx - 1) % g_;  // router index in sx
    const Rank gate_dst = (sx + g_ - sy - 1) % g_;  // router index in sy
    return 1u + (ix == gate_src ? 0u : 1u) + (iy == gate_dst ? 0u : 1u);
  }

  Rank a_;
  Rank g_;
};

}  // namespace sfc::topo
