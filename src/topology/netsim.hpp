// netsim.hpp — a cycle-driven store-and-forward network simulation for
// 2-D meshes and tori.
//
// The paper's ACD metric and the static link-load extension
// (core/contention.hpp) both ignore *time*: simultaneous messages on one
// link serialize in reality. This simulator answers the temporal question
// directly: inject a communication set at cycle 0, move one packet per
// directed link per cycle under dimension-order routing, and report the
// makespan and latency distribution. Static max-link-load is a lower bound
// on the makespan (unit-tested), and ACD is a lower bound on the mean
// latency; the simulation shows how close a given SFC placement comes to
// those bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/point.hpp"

namespace sfc::topo {

struct SimMessage {
  Point2 from;
  Point2 to;
};

struct SimResult {
  std::uint64_t messages = 0;       ///< injected messages (zero-hop included)
  std::uint64_t makespan = 0;       ///< cycles until the last delivery
  double mean_latency = 0.0;        ///< average delivery cycle
  std::uint64_t max_latency = 0;    ///< slowest message
  std::uint64_t total_hops = 0;     ///< link traversals performed
  double slowdown = 0.0;            ///< mean latency / mean hop distance
};

/// Simulate the message set on a (2^level)^2 mesh (wrap=false) or torus
/// (wrap=true) with X-then-Y dimension-order routing, one packet per
/// directed link per cycle, unbounded FIFO queues. Zero-hop messages
/// deliver at cycle 0. Deterministic: ties break in message-injection
/// order.
SimResult simulate_store_and_forward(const std::vector<SimMessage>& messages,
                                     unsigned level, bool wrap);

}  // namespace sfc::topo
