#include "topology/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "topology/grid.hpp"
#include "topology/hypercube.hpp"
#include "topology/linear.hpp"
#include "topology/tree.hpp"
#include "util/bits.hpp"

namespace sfc::topo {

std::string_view topology_name(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kBus:
      return "Bus";
    case TopologyKind::kRing:
      return "Ring";
    case TopologyKind::kMesh:
      return "Mesh";
    case TopologyKind::kTorus:
      return "Torus";
    case TopologyKind::kQuadtree:
      return "Quadtree";
    case TopologyKind::kHypercube:
      return "Hypercube";
  }
  return "?";
}

std::optional<TopologyKind> parse_topology(std::string_view name) noexcept {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "bus" || lower == "path" || lower == "linear")
    return TopologyKind::kBus;
  if (lower == "ring") return TopologyKind::kRing;
  if (lower == "mesh" || lower == "grid") return TopologyKind::kMesh;
  if (lower == "torus") return TopologyKind::kTorus;
  if (lower == "quadtree" || lower == "tree" || lower == "octree")
    return TopologyKind::kQuadtree;
  if (lower == "hypercube" || lower == "cube") return TopologyKind::kHypercube;
  return std::nullopt;
}

template <int D>
std::unique_ptr<Topology> make_topology(TopologyKind kind, Rank p,
                                        const Curve<D>* ranking) {
  if (p == 0) throw std::invalid_argument("topology needs >= 1 processor");
  switch (kind) {
    case TopologyKind::kBus:
      return std::make_unique<BusTopology>(p);
    case TopologyKind::kRing:
      return std::make_unique<RingTopology>(p);
    case TopologyKind::kMesh:
    case TopologyKind::kTorus: {
      if (!util::is_pow2(p) || util::ilog2(p) % static_cast<unsigned>(D) != 0) {
        throw std::invalid_argument(
            "mesh/torus size must be a D-th power of a power of two");
      }
      const unsigned level = util::ilog2(p) / static_cast<unsigned>(D);
      if (ranking == nullptr) {
        throw std::invalid_argument(
            "mesh/torus require a processor-order SFC");
      }
      if (kind == TopologyKind::kMesh) {
        return std::make_unique<MeshTopology<D>>(level, *ranking);
      }
      return std::make_unique<TorusTopology<D>>(level, *ranking);
    }
    case TopologyKind::kQuadtree:
      return std::make_unique<TreeTopology>(p, 1u << D);
    case TopologyKind::kHypercube:
      return std::make_unique<HypercubeTopology>(p);
  }
  throw std::invalid_argument("unknown topology kind");
}

template std::unique_ptr<Topology> make_topology<2>(TopologyKind, Rank,
                                                    const Curve<2>*);
template std::unique_ptr<Topology> make_topology<3>(TopologyKind, Rank,
                                                    const Curve<3>*);

FoldStrategy planned_fold_strategy(TopologyKind kind, Rank procs) noexcept {
  switch (kind) {
    case TopologyKind::kBus:
    case TopologyKind::kRing:
    case TopologyKind::kMesh:
    case TopologyKind::kTorus:
    case TopologyKind::kQuadtree:
    case TopologyKind::kHypercube:
      return FoldStrategy::kFactorized;
  }
  return distance_table_fits(procs) ? FoldStrategy::kDense
                                    : FoldStrategy::kStreamed;
}

}  // namespace sfc::topo
