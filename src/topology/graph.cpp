#include "topology/graph.hpp"

#include <cassert>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace sfc::topo {

GraphTopology::GraphTopology(
    std::uint32_t vertices,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
    std::vector<std::uint32_t> rank_to_vertex)
    : adjacency_(vertices), rank_to_vertex_(std::move(rank_to_vertex)) {
  for (const auto& [u, v] : edges) {
    if (u >= vertices || v >= vertices) {
      throw std::invalid_argument("edge endpoint out of range");
    }
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
  }
  if (rank_to_vertex_.empty()) {
    rank_to_vertex_.resize(vertices);
    std::iota(rank_to_vertex_.begin(), rank_to_vertex_.end(), 0u);
  }
  for (const auto v : rank_to_vertex_) {
    if (v >= vertices) {
      throw std::invalid_argument("rank mapped to nonexistent vertex");
    }
  }
}

std::vector<std::uint32_t> GraphTopology::bfs(std::uint32_t src) const {
  std::vector<std::uint32_t> dist(adjacency_.size(), kUnreachable);
  std::queue<std::uint32_t> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (const std::uint32_t v : adjacency_[u]) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

const std::vector<std::vector<std::uint32_t>>& GraphTopology::ensure_apsp()
    const {
  if (apsp_.empty()) {
    apsp_.reserve(rank_to_vertex_.size());
    for (const std::uint32_t v : rank_to_vertex_) {
      apsp_.push_back(bfs(v));
    }
  }
  return apsp_;
}

std::uint64_t GraphTopology::distance(Rank a, Rank b) const noexcept {
  assert(a < rank_to_vertex_.size() && b < rank_to_vertex_.size());
  return ensure_apsp()[a][rank_to_vertex_[b]];
}

void GraphTopology::fill_table(DistanceTable& t) const {
  const auto& apsp = ensure_apsp();
  const Rank p = size();
  for (Rank a = 0; a < p; ++a) {
    const auto& from_a = apsp[a];
    std::uint32_t* row = t.row(a);
    for (Rank b = 0; b < p; ++b) {
      row[b] = from_a[rank_to_vertex_[b]];
    }
  }
}

core::CommTotals GraphTopology::fold_pairs(const PairCountsView& pairs) const {
  if (distance_table_fits(size())) {
    return Topology::fold_pairs(pairs);
  }
  // Streamed path: sparse histograms are sorted by key = a·p + b, so the
  // pairs arrive grouped by source rank and one BFS per distinct source
  // suffices — O(V) live memory, never the all-pairs cache. A remapped
  // view (relabel delegation) can revisit sources out of order; the
  // single-row memo still collapses runs of equal sources and the fold
  // stays correct, just with repeated BFS runs in the worst case.
  core::CommTotals totals;
  Rank memo_src = ~Rank{0};
  std::vector<std::uint32_t> dist;
  pairs.for_each(
      [this, &totals, &memo_src, &dist](Rank a, Rank b, std::uint64_t c) {
        if (a != memo_src) {
          memo_src = a;
          dist = bfs(rank_to_vertex_[a]);
        }
        totals.hops += c * dist[rank_to_vertex_[b]];
        totals.count += c;
      });
  return totals;
}

std::uint64_t GraphTopology::diameter() const noexcept {
  std::uint64_t best = 0;
  for (Rank a = 0; a < size(); ++a) {
    for (Rank b = a + 1; b < size(); ++b) {
      best = std::max(best, distance(a, b));
    }
  }
  return best;
}

GraphTopology build_path_graph(std::uint32_t p) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i + 1 < p; ++i) edges.emplace_back(i, i + 1);
  return GraphTopology(p, std::move(edges));
}

GraphTopology build_ring_graph(std::uint32_t p) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i + 1 < p; ++i) edges.emplace_back(i, i + 1);
  if (p > 2) edges.emplace_back(p - 1, 0u);
  return GraphTopology(p, std::move(edges));
}

GraphTopology build_mesh_graph(
    std::uint32_t side,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& rank_coords,
    bool wrap) {
  const std::uint32_t n = side * side;
  auto vertex = [side](std::uint32_t x, std::uint32_t y) {
    return y * side + x;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      if (x + 1 < side) edges.emplace_back(vertex(x, y), vertex(x + 1, y));
      if (y + 1 < side) edges.emplace_back(vertex(x, y), vertex(x, y + 1));
    }
  }
  if (wrap && side > 2) {
    for (std::uint32_t y = 0; y < side; ++y) {
      edges.emplace_back(vertex(side - 1, y), vertex(0, y));
    }
    for (std::uint32_t x = 0; x < side; ++x) {
      edges.emplace_back(vertex(x, side - 1), vertex(x, 0));
    }
  }
  std::vector<std::uint32_t> rank_to_vertex;
  rank_to_vertex.reserve(rank_coords.size());
  for (const auto& [x, y] : rank_coords) {
    rank_to_vertex.push_back(vertex(x, y));
  }
  return GraphTopology(n, std::move(edges), std::move(rank_to_vertex));
}

GraphTopology build_hypercube_graph(std::uint32_t p) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t i = 0; i < p; ++i) {
    for (std::uint32_t bit = 1; bit < p; bit <<= 1) {
      const std::uint32_t j = i ^ bit;
      if (j > i) edges.emplace_back(i, j);
    }
  }
  return GraphTopology(p, std::move(edges));
}

GraphTopology build_tree_graph(std::uint32_t leaves, std::uint32_t arity) {
  // Vertices: level-order positions of a complete arity-ary tree. The root
  // is vertex 0; children of vertex v are arity*v + 1 ... arity*v + arity.
  std::uint64_t total = 0;
  std::uint64_t level_count = 1;
  std::uint32_t depth = 0;
  while (level_count < leaves) {
    total += level_count;
    level_count *= arity;
    ++depth;
  }
  if (level_count != leaves) {
    throw std::invalid_argument("leaf count must be a power of the arity");
  }
  const std::uint64_t internal = total;
  const std::uint64_t vertices = internal + leaves;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint64_t v = 1; v < vertices; ++v) {
    edges.emplace_back(static_cast<std::uint32_t>(v),
                       static_cast<std::uint32_t>((v - 1) / arity));
  }
  std::vector<std::uint32_t> rank_to_vertex(leaves);
  for (std::uint32_t i = 0; i < leaves; ++i) {
    rank_to_vertex[i] = static_cast<std::uint32_t>(internal + i);
  }
  (void)depth;
  return GraphTopology(static_cast<std::uint32_t>(vertices), std::move(edges),
                       std::move(rank_to_vertex));
}

}  // namespace sfc::topo
