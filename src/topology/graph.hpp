// graph.hpp — an explicit-graph topology with BFS shortest paths.
//
// Production topologies use O(1) closed-form distances; this class is the
// independent oracle: build the interconnect as an adjacency list, run BFS,
// and compare. It also lets users evaluate ACD on arbitrary custom
// networks (irregular machines, partially populated racks, ...).
//
// For topologies with internal switch nodes (the quadtree), the graph has
// more vertices than processors; `rank_to_vertex` maps processor ranks to
// their vertex ids and distance() composes the mapping.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace sfc::topo {

class GraphTopology final : public Topology {
 public:
  /// `vertices`: total vertex count (>= ranks). `rank_to_vertex` maps each
  /// processor rank to a vertex; pass an empty vector for the identity
  /// mapping (every vertex is a processor).
  GraphTopology(std::uint32_t vertices,
                std::vector<std::pair<std::uint32_t, std::uint32_t>> edges,
                std::vector<std::uint32_t> rank_to_vertex = {});

  Rank size() const noexcept override {
    return static_cast<Rank>(rank_to_vertex_.size());
  }

  std::uint64_t distance(Rank a, Rank b) const noexcept override;

  std::uint64_t diameter() const noexcept override;

  TopologyKind kind() const noexcept override {
    // Arbitrary graphs have no dedicated kind; report the closest generic
    // one. The kind is only used for labeling.
    return TopologyKind::kMesh;
  }

  std::uint32_t vertex_count() const noexcept {
    return static_cast<std::uint32_t>(adjacency_.size());
  }

 protected:
  /// Reuses the lazy all-pairs BFS cache: one row copy per rank instead of
  /// p² virtual distance() calls.
  void fill_table(DistanceTable& t) const override;

  /// Small graphs keep the dense table strategy; beyond the table budget
  /// the fold streams one BFS row per distinct source rank in O(V)
  /// memory instead of touching the all-pairs cache.
  core::CommTotals fold_pairs(const PairCountsView& pairs) const override;

 private:
  /// Distances from `src` to every vertex (kUnreachable if disconnected).
  std::vector<std::uint32_t> bfs(std::uint32_t src) const;

  /// Builds the all-pairs cache on first use.
  const std::vector<std::vector<std::uint32_t>>& ensure_apsp() const;

  static constexpr std::uint32_t kUnreachable = ~0u;

  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<std::uint32_t> rank_to_vertex_;
  // Cached all-pairs distances between processor vertices, computed lazily
  // on first query (the oracle only runs on small instances).
  mutable std::vector<std::vector<std::uint32_t>> apsp_;
};

/// Builders mirroring the production topologies. Each returns a graph whose
/// rank r occupies the same physical position as rank r of the closed-form
/// topology, so distances must match exactly.
GraphTopology build_path_graph(std::uint32_t p);
GraphTopology build_ring_graph(std::uint32_t p);
/// 2-D grid of side `side`; `rank_coords[r]` is rank r's (x, y) position.
GraphTopology build_mesh_graph(std::uint32_t side,
                               const std::vector<std::pair<std::uint32_t, std::uint32_t>>& rank_coords,
                               bool wrap);
GraphTopology build_hypercube_graph(std::uint32_t p);
/// Complete tree with `leaves` leaves (power of the arity). Processors are
/// the leaves in left-to-right order.
GraphTopology build_tree_graph(std::uint32_t leaves, std::uint32_t arity);

}  // namespace sfc::topo
