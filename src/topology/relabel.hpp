// relabel.hpp — view a topology through a rank permutation.
//
// RelabeledTopology(net, perm) presents rank r as occupying the physical
// position perm[r] of the underlying interconnect:
//   distance'(a, b) = distance(perm[a], perm[b]).
// This generalizes the mesh/torus "processor-order SFC" idea to every
// topology: any rank placement on any interconnect is a permutation view.
//
// When perm is an automorphism of the interconnect graph the distance
// function is unchanged as a *function* — d'(a, b) == d(a, b) for all
// pairs — which is exactly the invariance the metamorphic ACD suites
// exercise (ring rotations/reflections, hypercube XOR translations,
// torus shifts must leave every ACD total bit-identical).
#pragma once

#include <cassert>
#include <stdexcept>
#include <utility>
#include <vector>

#include "topology/topology.hpp"

namespace sfc::topo {

class RelabeledTopology final : public Topology {
 public:
  /// `perm` must be a permutation of [0, base.size()). The base topology
  /// is borrowed and must outlive the view.
  RelabeledTopology(const Topology& base, std::vector<Rank> perm)
      : base_(base), perm_(std::move(perm)) {
    if (perm_.size() != base_.size()) {
      throw std::invalid_argument("relabel: permutation size != topology");
    }
    std::vector<bool> seen(perm_.size(), false);
    for (const Rank r : perm_) {
      if (r >= perm_.size() || seen[r]) {
        throw std::invalid_argument("relabel: not a permutation");
      }
      seen[r] = true;
    }
  }

  Rank size() const noexcept override { return base_.size(); }

  std::uint64_t distance(Rank a, Rank b) const noexcept override {
    assert(a < perm_.size() && b < perm_.size());
    return base_.distance(perm_[a], perm_[b]);
  }

  std::uint64_t diameter() const noexcept override {
    return base_.diameter();  // a permutation cannot change the diameter
  }

  TopologyKind kind() const noexcept override { return base_.kind(); }

  const std::vector<Rank>& permutation() const noexcept { return perm_; }

  FoldStrategy fold_strategy() const noexcept override {
    return base_.fold_strategy();
  }

 protected:
  core::CommTotals fold_pairs(const PairCountsView& pairs) const override {
    // A permutation view folds for free: reroute the histogram's emitted
    // ranks through perm_ and hand it to the base topology's kernel, so
    // the relabel inherits the base's factorized/streamed strategy with
    // zero copies. A view that is already remapped (nested relabels)
    // needs the tables composed first; the base's fold() bumps the obs
    // counter a second time, which is fine — each delegation is a fold.
    if (pairs.remap() == nullptr) {
      return base_.fold(pairs.remapped(perm_.data()));
    }
    std::vector<Rank> composed(perm_.size());
    const Rank* m = pairs.remap();
    for (std::size_t r = 0; r < composed.size(); ++r) {
      composed[r] = perm_[m[r]];
    }
    return base_.fold(pairs.without_remap().remapped(composed.data()));
  }

  void fill_table(DistanceTable& t) const override {
    // Permute rows/columns of the base's cached table instead of p²
    // virtual dispatches.
    const DistanceTable& base_table = base_.dense_table();
    const Rank p = size();
    for (Rank a = 0; a < p; ++a) {
      const std::uint32_t* src = base_table.row(perm_[a]);
      std::uint32_t* dst = t.row(a);
      for (Rank b = 0; b < p; ++b) dst[b] = src[perm_[b]];
    }
  }

 private:
  const Topology& base_;
  std::vector<Rank> perm_;
};

}  // namespace sfc::topo
