// tree.hpp — the quadtree topology: processors are the leaves of a complete
// arity-ary tree (arity 4 in the paper), and "each communication must
// travel up and down the tree" through internal switch nodes.
//
// With leaves labeled 0..p-1 in tree order, the leaf label written in base
// `arity` spells the root-to-leaf path, so the hop distance between two
// leaves is 2 * (depth - common-prefix-length): up to the lowest common
// ancestor and back down.
#pragma once

#include <bit>
#include <cassert>
#include <stdexcept>

#include "topology/topology.hpp"
#include "util/bits.hpp"

namespace sfc::topo {

class TreeTopology final : public Topology {
 public:
  /// `size` must be arity^depth for some integer depth >= 0.
  explicit TreeTopology(Rank size, unsigned arity = 4)
      : size_(size), arity_(arity) {
    if (arity < 2 || !util::is_pow2(arity)) {
      throw std::invalid_argument("tree arity must be a power of two >= 2");
    }
    digit_bits_ = util::ilog2(arity);
    depth_ = 0;
    Rank n = 1;
    while (n < size) {
      n *= arity;
      ++depth_;
    }
    if (n != size) {
      throw std::invalid_argument("tree size must be a power of the arity");
    }
  }

  Rank size() const noexcept override { return size_; }

  std::uint64_t distance(Rank a, Rank b) const noexcept override {
    assert(a < size_ && b < size_);
    if (a == b) return 0;
    // Levels below the LCA: number of leading base-arity digits where the
    // two labels first differ, counted from the root end.
    unsigned diverge = depth_;
    for (unsigned level = depth_; level > 0; --level) {
      const unsigned shift = (level - 1) * digit_bits_;
      if (((a >> shift) & (arity_ - 1)) != ((b >> shift) & (arity_ - 1))) {
        diverge = level;
        break;
      }
    }
    return 2ull * diverge;
  }

  std::uint64_t diameter() const noexcept override { return 2ull * depth_; }

  TopologyKind kind() const noexcept override {
    return TopologyKind::kQuadtree;
  }

  unsigned depth() const noexcept { return depth_; }
  unsigned arity() const noexcept { return arity_; }

  FoldStrategy fold_strategy() const noexcept override {
    return FoldStrategy::kFactorized;
  }

 protected:
  core::CommTotals fold_pairs(const PairCountsView& pairs) const override {
    // LCA decomposition: the divergence level is the base-arity digit
    // index of the highest set bit of a ^ b, so bucketing counts by
    // ceil(bit_width(a ^ b) / digit_bits) and folding the depth_ + 1
    // buckets against 2·level reproduces the per-pair sum exactly.
    std::uint64_t buckets[33] = {};
    core::CommTotals totals;
    pairs.for_each(
        [&buckets, &totals, bits = digit_bits_](Rank a, Rank b,
                                                std::uint64_t c) {
          const unsigned width =
              static_cast<unsigned>(std::bit_width(a ^ b));
          buckets[width == 0 ? 0 : (width + bits - 1) / bits] += c;
          totals.count += c;
        });
    for (unsigned level = 1; level <= depth_; ++level) {
      totals.hops += 2ull * level * buckets[level];
    }
    return totals;
  }

  void fill_table(DistanceTable& t) const override {
    // One pass per pair with the closed form inlined: d(a, b) is twice the
    // divergence level, i.e. depth minus the length of the common
    // base-arity prefix of the two labels.
    for (Rank a = 0; a < size_; ++a) {
      std::uint32_t* row = t.row(a);
      row[a] = 0;
      for (Rank b = 0; b < size_; ++b) {
        if (a == b) continue;
        unsigned diverge = depth_;
        for (unsigned level = depth_; level > 0; --level) {
          const unsigned shift = (level - 1) * digit_bits_;
          if (((a >> shift) & (arity_ - 1)) != ((b >> shift) & (arity_ - 1))) {
            diverge = level;
            break;
          }
        }
        row[b] = 2u * diverge;
      }
    }
  }

 private:
  Rank size_;
  unsigned arity_;
  unsigned digit_bits_;
  unsigned depth_;
};

}  // namespace sfc::topo
