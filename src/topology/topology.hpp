// topology.hpp — processor network topologies and their hop-distance
// functions.
//
// The ACD metric (paper Definition 1) measures every pairwise communication
// by the shortest-path hop count between the two processors on the network
// interconnect, with no contention modeling. All production topologies
// therefore expose an O(1) closed-form distance; a generic explicit-graph
// topology with BFS shortest paths (graph.hpp) acts as the oracle that
// validates each closed form in the tests.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/totals.hpp"
#include "topology/distance_table.hpp"
#include "topology/fold.hpp"

namespace sfc::topo {

/// Processor rank. Ranks are dense in [0, size()).
using Rank = std::uint32_t;

/// The six topologies evaluated in the paper (Section II-B).
enum class TopologyKind {
  kBus,        // linear array: two direct neighbors, no wraparound
  kRing,       // linear array with wraparound
  kMesh,       // 2-D (or D-D) grid
  kTorus,      // grid with wraparound links
  kQuadtree,   // complete 4-ary tree; processors are leaves
  kHypercube,  // log2(p)-dimensional hypercube
};

inline constexpr TopologyKind kAllTopologies[] = {
    TopologyKind::kBus,      TopologyKind::kRing,
    TopologyKind::kMesh,     TopologyKind::kTorus,
    TopologyKind::kQuadtree, TopologyKind::kHypercube};

std::string_view topology_name(TopologyKind kind) noexcept;
std::optional<TopologyKind> parse_topology(std::string_view name) noexcept;

/// Abstract interconnect: `distance` is the number of hops on a shortest
/// path between two processor ranks.
class Topology {
 public:
  virtual ~Topology() = default;

  virtual Rank size() const noexcept = 0;
  /// Shortest-path hop count between ranks. Must be a metric — in
  /// particular symmetric (the interconnects are undirected graphs); the
  /// aggregated ACD kernels rely on d(a,b) == d(b,a).
  virtual std::uint64_t distance(Rank a, Rank b) const noexcept = 0;
  virtual TopologyKind kind() const noexcept = 0;

  /// Largest distance between any two ranks.
  virtual std::uint64_t diameter() const noexcept = 0;

  std::string_view name() const noexcept { return topology_name(kind()); }

  /// Fold a rank-pair histogram against this interconnect:
  /// Σ count(a, b) · d(a, b) plus the communication count. This is the
  /// one aggregation entry point — the strategy (factorized closed form,
  /// dense hop table, streamed per-pair) is an internal choice reported
  /// by fold_strategy() and counted in the obs registry (topo.fold.*).
  /// Bit-identical across strategies: integer sums commute, so the
  /// totals equal the per-event sum in any enumeration order.
  core::CommTotals fold(const PairCountsView& pairs) const;

  /// The strategy fold() will execute. Closed-form topologies report
  /// kFactorized; the default is kDense while the p×p table fits its
  /// entry budget and kStreamed beyond.
  virtual FoldStrategy fold_strategy() const noexcept;

  /// The internal dense-strategy table (and the escape hatch for tests
  /// that assert table semantics). Callers must check
  /// distance_table_fits(size()) first — construction beyond the entry
  /// budget is a programming error (asserted).
  const DistanceTable& dense_table() const;

 protected:
  /// Table-fill hook. The default loops distance() over all pairs; the
  /// concrete topologies override it with a non-virtual one-pass fill
  /// (closed form, or the BFS cache for explicit graphs).
  virtual void fill_table(DistanceTable& t) const;

  /// Fold kernel hook. Closed-form topologies override it with their
  /// factorized kernel; the default honors the base strategy choice
  /// (dense table while it fits, per-pair distance() beyond).
  virtual core::CommTotals fold_pairs(const PairCountsView& pairs) const;

  /// The default fold_pairs paths, exposed to overriders that keep the
  /// dense strategy for small instances (GraphTopology).
  core::CommTotals fold_with_table(const PairCountsView& pairs) const;
  core::CommTotals fold_streaming(const PairCountsView& pairs) const;

 private:
  mutable std::once_flag table_once_;
  mutable std::unique_ptr<DistanceTable> table_;
};

}  // namespace sfc::topo
