// distance_table.hpp — flat all-pairs hop matrix for a topology.
//
// The ACD hot paths perform one hop-distance lookup per communication
// event; with p processors there are only p² distinct rank pairs, so a
// flat p×p table of 32-bit hop counts turns every lookup into a single
// indexed load with no virtual dispatch. Topologies build the table
// lazily (Topology::table()); closed-form topologies fill it in one pass
// and the BFS-backed graph topology copies its all-pairs cache.
//
// Memory: p² × 4 bytes. `distance_table_fits(p)` gates construction so
// paper-scale runs (p = 65536 → 16 GiB) never allocate one; callers fall
// back to per-pair distance() beyond the budget.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sfc::topo {

/// Entry budget for a distance table: 2^24 entries (64 MiB), i.e. tables
/// are built for p <= 4096 and refused beyond.
inline constexpr std::size_t kDistanceTableEntryBudget = std::size_t{1}
                                                         << 24;

/// True iff a p×p table stays within the entry budget.
constexpr bool distance_table_fits(std::uint32_t procs) noexcept {
  return static_cast<std::size_t>(procs) * procs <= kDistanceTableEntryBudget;
}

/// Row-major p×p matrix of hop counts: (*this)(a, b) is the shortest-path
/// hop distance from rank a to rank b.
class DistanceTable {
 public:
  explicit DistanceTable(std::uint32_t procs)
      : p_(procs), hops_(static_cast<std::size_t>(procs) * procs, 0u) {}

  std::uint32_t procs() const noexcept { return p_; }

  std::uint32_t operator()(std::uint32_t a, std::uint32_t b) const noexcept {
    assert(a < p_ && b < p_);
    return hops_[static_cast<std::size_t>(a) * p_ + b];
  }

  std::uint32_t& at(std::uint32_t a, std::uint32_t b) noexcept {
    assert(a < p_ && b < p_);
    return hops_[static_cast<std::size_t>(a) * p_ + b];
  }

  /// Row pointer for a fixed source rank — hoist out of inner loops.
  const std::uint32_t* row(std::uint32_t a) const noexcept {
    assert(a < p_);
    return hops_.data() + static_cast<std::size_t>(a) * p_;
  }
  std::uint32_t* row(std::uint32_t a) noexcept {
    assert(a < p_);
    return hops_.data() + static_cast<std::size_t>(a) * p_;
  }

 private:
  std::uint32_t p_;
  std::vector<std::uint32_t> hops_;
};

}  // namespace sfc::topo
