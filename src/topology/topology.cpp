#include "topology/topology.hpp"

#include <cassert>

#include "obs/metrics.hpp"

namespace sfc::topo {

std::string_view fold_strategy_name(FoldStrategy s) noexcept {
  switch (s) {
    case FoldStrategy::kDense:
      return "dense";
    case FoldStrategy::kFactorized:
      return "factorized";
    case FoldStrategy::kStreamed:
      return "streamed";
  }
  return "unknown";
}

namespace {

/// One counter per strategy, resolved once: which kernel class served
/// the process's folds (replaces the old one-time stderr fallback
/// notice). Registry handles stay valid for the process lifetime.
void count_fold(FoldStrategy s) {
  static obs::Counter* const counters[3] = {
      &obs::Registry::instance().counter("topo.fold.dense"),
      &obs::Registry::instance().counter("topo.fold.factorized"),
      &obs::Registry::instance().counter("topo.fold.streamed"),
  };
  counters[static_cast<unsigned>(s)]->add();
}

}  // namespace

core::CommTotals Topology::fold(const PairCountsView& pairs) const {
  assert(pairs.procs() == size());
  count_fold(fold_strategy());
  return fold_pairs(pairs);
}

FoldStrategy Topology::fold_strategy() const noexcept {
  return distance_table_fits(size()) ? FoldStrategy::kDense
                                     : FoldStrategy::kStreamed;
}

core::CommTotals Topology::fold_pairs(const PairCountsView& pairs) const {
  return distance_table_fits(size()) ? fold_with_table(pairs)
                                     : fold_streaming(pairs);
}

core::CommTotals Topology::fold_with_table(const PairCountsView& pairs) const {
  const DistanceTable& t = dense_table();
  core::CommTotals totals;
  if (pairs.is_dense() && pairs.remap() == nullptr) {
    // Dense histogram against dense table: one row-major sweep with the
    // table row hoisted.
    pairs.for_each([&totals, &t, row_rank = Rank(~0u),
                    row = static_cast<const std::uint32_t*>(nullptr)](
                       Rank a, Rank b, std::uint64_t c) mutable {
      if (a != row_rank) {
        row_rank = a;
        row = t.row(a);
      }
      totals.hops += c * row[b];
      totals.count += c;
    });
    return totals;
  }
  pairs.for_each([&totals, &t](Rank a, Rank b, std::uint64_t c) {
    totals.hops += c * t(a, b);
    totals.count += c;
  });
  return totals;
}

core::CommTotals Topology::fold_streaming(const PairCountsView& pairs) const {
  core::CommTotals totals;
  pairs.for_each([&totals, this](Rank a, Rank b, std::uint64_t c) {
    totals.hops += c * distance(a, b);
    totals.count += c;
  });
  return totals;
}

const DistanceTable& Topology::dense_table() const {
  std::call_once(table_once_, [this] {
    assert(distance_table_fits(size()));
    auto t = std::make_unique<DistanceTable>(size());
    fill_table(*t);
    table_ = std::move(t);
  });
  return *table_;
}

void Topology::fill_table(DistanceTable& t) const {
  const Rank p = size();
  for (Rank a = 0; a < p; ++a) {
    std::uint32_t* row = t.row(a);
    for (Rank b = 0; b < p; ++b) {
      row[b] = static_cast<std::uint32_t>(distance(a, b));
    }
  }
}

}  // namespace sfc::topo
