#include "topology/topology.hpp"

#include <cassert>
#include <cstdio>

namespace sfc::topo {

const DistanceTable* table_if_fits(const Topology& net) {
  if (distance_table_fits(net.size())) return &net.table();
  static std::once_flag notice_once;
  std::call_once(notice_once, [&net] {
    std::fprintf(stderr,
                 "sfc-acd: note: %u processors exceed the hop-table budget "
                 "(%zu entries); folding with per-pair distance() instead\n",
                 net.size(), kDistanceTableEntryBudget);
  });
  return nullptr;
}

const DistanceTable& Topology::table() const {
  std::call_once(table_once_, [this] {
    assert(distance_table_fits(size()));
    auto t = std::make_unique<DistanceTable>(size());
    fill_table(*t);
    table_ = std::move(t);
  });
  return *table_;
}

void Topology::fill_table(DistanceTable& t) const {
  const Rank p = size();
  for (Rank a = 0; a < p; ++a) {
    std::uint32_t* row = t.row(a);
    for (Rank b = 0; b < p; ++b) {
      row[b] = static_cast<std::uint32_t>(distance(a, b));
    }
  }
}

}  // namespace sfc::topo
