// grid.hpp — mesh and torus topologies with SFC processor ranking.
//
// These are the two topologies where the paper applies a processor-order
// SFC (Section IV, step 3): the physical layout is a side^D grid of
// processors, and the SFC decides which grid position gets which rank.
// Rank -> coordinate is precomputed once, so a distance query is a pair of
// table lookups plus D coordinate deltas (wrapped for the torus).
#pragma once

#include <cassert>
#include <stdexcept>
#include <vector>

#include "sfc/curve.hpp"
#include "topology/topology.hpp"

namespace sfc::topo {

/// Shared base: holds the rank -> grid-coordinate embedding.
template <int D>
class GridTopologyBase : public Topology {
 public:
  /// `level`: grid side is 2^level per dimension, so size() = 2^(D*level).
  /// `ranking`: the processor-order SFC (its level-`level` traversal is the
  /// rank assignment).
  GridTopologyBase(unsigned level, const Curve<D>& ranking) : level_(level) {
    if (level > max_level<D>() || static_cast<unsigned>(D) * level > 31) {
      throw std::invalid_argument("grid topology too large");
    }
    const std::uint64_t n = grid_size<D>(level);
    coords_.reserve(n);
    for (std::uint64_t r = 0; r < n; ++r) {
      coords_.push_back(ranking.point(r, level));
    }
  }

  Rank size() const noexcept override {
    return static_cast<Rank>(coords_.size());
  }

  unsigned level() const noexcept { return level_; }
  std::uint32_t side() const noexcept { return 1u << level_; }

  /// Grid coordinate of a rank (the embedding).
  const Point<D>& coordinate(Rank r) const noexcept {
    assert(r < coords_.size());
    return coords_[r];
  }

  FoldStrategy fold_strategy() const noexcept override {
    return FoldStrategy::kFactorized;
  }

 protected:
  /// The grid fold factorizes over axes: a D-dimensional Manhattan (or
  /// wrapped) distance is the sum of D independent 1-D folds, so one pass
  /// builds D per-axis |Δ| histograms of size `side` and the axis kernel
  /// (line for the mesh, ring for the torus) folds each histogram. O(D·s)
  /// memory regardless of p; bit-identical to the dense table fold because
  /// the uint64 sum is merely reordered.
  template <typename AxisHops>
  core::CommTotals fold_axis_histograms(const PairCountsView& pairs,
                                        AxisHops&& axis_hops) const {
    const std::uint32_t s = side();
    std::vector<std::uint64_t> hist(static_cast<std::size_t>(D) * s, 0);
    core::CommTotals totals;
    pairs.for_each([this, &hist, s, &totals](Rank a, Rank b,
                                             std::uint64_t c) {
      const Point<D>& pa = coords_[a];
      const Point<D>& pb = coords_[b];
      for (int i = 0; i < D; ++i) {
        const std::uint32_t di = pa[i] > pb[i] ? pa[i] - pb[i] : pb[i] - pa[i];
        hist[static_cast<std::size_t>(i) * s + di] += c;
      }
      totals.count += c;
    });
    for (int i = 0; i < D; ++i) {
      const std::uint64_t* h = hist.data() + static_cast<std::size_t>(i) * s;
      for (std::uint32_t d = 1; d < s; ++d) {
        totals.hops += h[d] * axis_hops(d);
      }
    }
    return totals;
  }

  unsigned level_;
  std::vector<Point<D>> coords_;
};

template <int D>
class MeshTopology final : public GridTopologyBase<D> {
 public:
  using GridTopologyBase<D>::GridTopologyBase;

  std::uint64_t distance(Rank a, Rank b) const noexcept override {
    return manhattan(this->coords_[a], this->coords_[b]);
  }

  std::uint64_t diameter() const noexcept override {
    return static_cast<std::uint64_t>(D) * (this->side() - 1);
  }

  TopologyKind kind() const noexcept override { return TopologyKind::kMesh; }

 protected:
  core::CommTotals fold_pairs(const PairCountsView& pairs) const override {
    return this->fold_axis_histograms(
        pairs, [](std::uint32_t d) { return std::uint64_t{d}; });
  }

  void fill_table(DistanceTable& t) const override {
    const Rank p = this->size();
    for (Rank a = 0; a < p; ++a) {
      const Point<D>& pa = this->coords_[a];
      std::uint32_t* row = t.row(a);
      for (Rank b = 0; b < p; ++b) {
        row[b] = static_cast<std::uint32_t>(manhattan(pa, this->coords_[b]));
      }
    }
  }
};

template <int D>
class TorusTopology final : public GridTopologyBase<D> {
 public:
  using GridTopologyBase<D>::GridTopologyBase;

  std::uint64_t distance(Rank a, Rank b) const noexcept override {
    const Point<D>& pa = this->coords_[a];
    const Point<D>& pb = this->coords_[b];
    const std::uint32_t s = this->side();
    std::uint64_t d = 0;
    for (int i = 0; i < D; ++i) {
      const std::uint32_t di = pa[i] > pb[i] ? pa[i] - pb[i] : pb[i] - pa[i];
      d += di < s - di ? di : s - di;
    }
    return d;
  }

  std::uint64_t diameter() const noexcept override {
    return static_cast<std::uint64_t>(D) * (this->side() / 2);
  }

  TopologyKind kind() const noexcept override { return TopologyKind::kTorus; }

 protected:
  core::CommTotals fold_pairs(const PairCountsView& pairs) const override {
    return this->fold_axis_histograms(
        pairs, [s = this->side()](std::uint32_t d) {
          return std::uint64_t{d < s - d ? d : s - d};
        });
  }

  void fill_table(DistanceTable& t) const override {
    const Rank p = this->size();
    const std::uint32_t s = this->side();
    for (Rank a = 0; a < p; ++a) {
      const Point<D>& pa = this->coords_[a];
      std::uint32_t* row = t.row(a);
      for (Rank b = 0; b < p; ++b) {
        const Point<D>& pb = this->coords_[b];
        std::uint32_t d = 0;
        for (int i = 0; i < D; ++i) {
          const std::uint32_t di =
              pa[i] > pb[i] ? pa[i] - pb[i] : pb[i] - pa[i];
          d += di < s - di ? di : s - di;
        }
        row[b] = d;
      }
    }
  }
};

using Mesh2D = MeshTopology<2>;
using Torus2D = TorusTopology<2>;
using Mesh3D = MeshTopology<3>;
using Torus3D = TorusTopology<3>;

}  // namespace sfc::topo
