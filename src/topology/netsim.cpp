#include "topology/netsim.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace sfc::topo {
namespace {

// Directed link ids: (node index) * 4 + direction, 0:+x 1:-x 2:+y 3:-y.
struct Packet {
  std::uint16_t x, y;    // current node
  std::uint16_t dx, dy;  // destination
};

class Fabric {
  // Declared first: queues_ sizes itself from these in the initializer.
  std::uint32_t side_;
  bool wrap_;

 public:
  Fabric(unsigned level, bool wrap)
      : side_(1u << level),
        wrap_(wrap),
        queues_(static_cast<std::size_t>(side_) * side_ * 4) {
    if (level > 8) {
      throw std::invalid_argument("netsim supports up to 256x256 grids");
    }
  }

  std::uint32_t side() const noexcept { return side_; }

  /// Next direction for a packet at (x, y) heading to (dx, dy): X leg
  /// first, shorter way around on the torus (ties toward +).
  unsigned direction(const Packet& p) const noexcept {
    if (p.x != p.dx) {
      if (!wrap_) return p.dx > p.x ? 0u : 1u;
      const std::uint32_t fwd = (p.dx + side_ - p.x) % side_;
      return fwd <= side_ - fwd ? 0u : 1u;
    }
    if (!wrap_) return p.dy > p.y ? 2u : 3u;
    const std::uint32_t fwd = (p.dy + side_ - p.y) % side_;
    return fwd <= side_ - fwd ? 2u : 3u;
  }

  std::size_t link_id(std::uint32_t x, std::uint32_t y,
                      unsigned dir) const noexcept {
    return (static_cast<std::size_t>(y) * side_ + x) * 4 + dir;
  }

  /// Node reached by traversing `dir` from (x, y).
  void step(std::uint32_t& x, std::uint32_t& y, unsigned dir) const noexcept {
    switch (dir) {
      case 0:
        x = wrap_ ? (x + 1) % side_ : x + 1;
        break;
      case 1:
        x = wrap_ ? (x + side_ - 1) % side_ : x - 1;
        break;
      case 2:
        y = wrap_ ? (y + 1) % side_ : y + 1;
        break;
      default:
        y = wrap_ ? (y + side_ - 1) % side_ : y - 1;
        break;
    }
  }

  std::vector<std::deque<Packet>> queues_;
};

}  // namespace

SimResult simulate_store_and_forward(const std::vector<SimMessage>& messages,
                                     unsigned level, bool wrap) {
  Fabric fabric(level, wrap);
  SimResult result;
  result.messages = messages.size();

  // Inject: each packet starts queued on its first link; zero-hop
  // messages deliver immediately.
  std::uint64_t in_flight = 0;
  double latency_sum = 0.0;
  for (const SimMessage& m : messages) {
    if (m.from == m.to) continue;  // latency 0
    Packet p{static_cast<std::uint16_t>(m.from[0]),
             static_cast<std::uint16_t>(m.from[1]),
             static_cast<std::uint16_t>(m.to[0]),
             static_cast<std::uint16_t>(m.to[1])};
    const unsigned dir = fabric.direction(p);
    fabric.queues_[fabric.link_id(p.x, p.y, dir)].push_back(p);
    ++in_flight;
  }

  // Two-phase cycles: pick at most one head packet per link, then apply
  // all moves, so a packet traverses one link per cycle.
  std::vector<std::pair<std::size_t, Packet>> moves;
  std::uint64_t cycle = 0;
  while (in_flight > 0) {
    ++cycle;
    moves.clear();
    for (std::size_t link = 0; link < fabric.queues_.size(); ++link) {
      if (fabric.queues_[link].empty()) continue;
      moves.emplace_back(link, fabric.queues_[link].front());
      fabric.queues_[link].pop_front();
    }
    for (auto& [link, p] : moves) {
      ++result.total_hops;
      std::uint32_t x = p.x;
      std::uint32_t y = p.y;
      const auto dir = static_cast<unsigned>(link % 4);
      fabric.step(x, y, dir);
      p.x = static_cast<std::uint16_t>(x);
      p.y = static_cast<std::uint16_t>(y);
      if (p.x == p.dx && p.y == p.dy) {
        latency_sum += static_cast<double>(cycle);
        result.max_latency = std::max(result.max_latency, cycle);
        --in_flight;
      } else {
        const unsigned next_dir = fabric.direction(p);
        fabric.queues_[fabric.link_id(p.x, p.y, next_dir)].push_back(p);
      }
    }
  }
  result.makespan = cycle;
  result.mean_latency =
      result.messages == 0
          ? 0.0
          : latency_sum / static_cast<double>(result.messages);
  const double mean_hops =
      result.messages == 0
          ? 0.0
          : static_cast<double>(result.total_hops) /
                static_cast<double>(result.messages);
  result.slowdown = mean_hops == 0.0 ? 1.0 : result.mean_latency / mean_hops;
  return result;
}

}  // namespace sfc::topo
