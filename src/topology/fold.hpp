// fold.hpp — the topology↔aggregation fold contract.
//
// The ACD engines reduce every communication set to a rank-pair
// histogram; the topology's job is to fold it: Σ count(a,b) · d(a,b).
// Historically consumers asked the topology for a dense p×p hop table
// (Topology::table()) and folded it themselves, which hard-gated every
// study at p <= 4096. The fold interface inverts that contract: callers
// hand the topology a *view* of their histogram and the topology picks a
// structure-exploiting kernel — closed-form topologies factorize the fold
// (per-axis delta histograms, popcount buckets, LCA depths) and never
// materialize p×p state, so studies run at p = 2^20 and beyond in O(p)
// memory. The dense table survives only as an internal strategy for
// topologies without structure (small explicit graphs).
//
// Every strategy computes the exact same uint64 sums — integer addition
// commutes and multiplication distributes — so folds are bit-identical
// across strategies (enforced by tests/pbt_fold_diff_test.cpp).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

#include "core/totals.hpp"

namespace sfc::topo {

using Rank = std::uint32_t;  // redeclared here to keep this header light

/// How a topology executes a fold. Exposed for cache keys, the obs
/// counters (topo.fold.*), and the accumulator's dense/sparse pick.
enum class FoldStrategy {
  kDense,       ///< build/reuse the p×p hop table, multiply-accumulate
  kFactorized,  ///< closed-form kernel over per-structure histograms
  kStreamed,    ///< per-pair distance (BFS row streaming for graphs)
};

std::string_view fold_strategy_name(FoldStrategy s) noexcept;

/// Non-owning view of a (src rank, dst rank) → count histogram, the sole
/// input of Topology::fold(). Two storage shapes cover both accumulator
/// modes: a dense row-major p×p count array, or entries of
/// (key = a·p + b, count) sorted by key. An optional rank remap lets
/// permutation views (RelabeledTopology) redirect a fold to their base
/// topology without copying the histogram.
class PairCountsView {
 public:
  using Entry = std::pair<std::uint64_t, std::uint64_t>;

  static PairCountsView dense(Rank procs,
                              const std::uint64_t* counts) noexcept {
    PairCountsView v;
    v.procs_ = procs;
    v.dense_ = counts;
    return v;
  }

  static PairCountsView sparse(Rank procs, const Entry* entries,
                               std::size_t size) noexcept {
    PairCountsView v;
    v.procs_ = procs;
    v.entries_ = entries;
    v.size_ = size;
    return v;
  }

  Rank procs() const noexcept { return procs_; }
  bool is_dense() const noexcept { return dense_ != nullptr; }
  const Rank* remap() const noexcept { return remap_; }

  /// Upper bound on distinct nonzero pairs (exact in sparse mode).
  std::size_t distinct_pairs_bound() const noexcept {
    return is_dense() ? static_cast<std::size_t>(procs_) * procs_ : size_;
  }

  /// A copy of this view whose emitted ranks pass through `map` (size
  /// >= procs()). Composition on an already-remapped view is the
  /// caller's job (compose the tables first) — asserted here.
  PairCountsView remapped(const Rank* map) const noexcept {
    assert(remap_ == nullptr && "compose remap tables before nesting");
    PairCountsView v = *this;
    v.remap_ = map;
    return v;
  }

  /// A copy of this view with the remap dropped (for composing tables).
  PairCountsView without_remap() const noexcept {
    PairCountsView v = *this;
    v.remap_ = nullptr;
    return v;
  }

  /// Invoke fn(src, dst, count) for every pair with a nonzero count, in
  /// ascending (src, dst) order of the *stored* ranks (a remap permutes
  /// the emitted ranks but not the iteration order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const Rank* m = remap_;
    if (dense_ != nullptr) {
      std::size_t k = 0;
      for (Rank a = 0; a < procs_; ++a) {
        const Rank ma = m != nullptr ? m[a] : a;
        for (Rank b = 0; b < procs_; ++b, ++k) {
          if (dense_[k] != 0) fn(ma, m != nullptr ? m[b] : b, dense_[k]);
        }
      }
      return;
    }
    for (std::size_t i = 0; i < size_; ++i) {
      const Rank a = static_cast<Rank>(entries_[i].first / procs_);
      const Rank b = static_cast<Rank>(entries_[i].first % procs_);
      if (m != nullptr) {
        fn(m[a], m[b], entries_[i].second);
      } else {
        fn(a, b, entries_[i].second);
      }
    }
  }

 private:
  Rank procs_ = 0;
  const std::uint64_t* dense_ = nullptr;  // dense mode: p×p row-major
  const Entry* entries_ = nullptr;        // sparse mode: sorted by key
  std::size_t size_ = 0;
  const Rank* remap_ = nullptr;
};

}  // namespace sfc::topo
