// rng.hpp — deterministic pseudo-random number generation.
//
// Experiments in this library must be bit-reproducible across platforms and
// standard-library implementations, so we carry our own generator
// (xoshiro256++, seeded through SplitMix64) and our own variate transforms
// (Lemire bounded integers, 53-bit uniforms, Box–Muller normals, inverse-CDF
// exponentials) instead of relying on <random>'s unspecified distributions.
#pragma once

#include <array>
#include <cstdint>

namespace sfc::util {

/// SplitMix64: a tiny, high-quality 64-bit generator used solely for seeding
/// and for deriving independent substreams from a single master seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ (Blackman & Vigna, 2019): the workhorse generator.
/// Period 2^256 - 1; passes BigCrush; extremely fast.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed), per the authors'
  /// recommendation. A zero state is impossible this way.
  explicit Xoshiro256pp(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  result_type operator()() noexcept { return next(); }

  /// Equivalent to 2^128 calls to next(); used to derive non-overlapping
  /// substreams when running independent trials.
  void jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
        0x39ABDC4529B1661Cull};
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (std::uint64_t j : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (j & (1ull << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= s_[static_cast<std::size_t>(i)];
        }
        next();
      }
    }
    s_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// Unbiased bounded integer in [0, bound) via Lemire's multiply-shift
/// rejection method. bound must be nonzero.
std::uint64_t bounded_u64(Xoshiro256pp& rng, std::uint64_t bound) noexcept;

/// Uniform double in [0, 1) with full 53-bit mantissa resolution.
inline double uniform01(Xoshiro256pp& rng) noexcept {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
inline double uniform_range(Xoshiro256pp& rng, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01(rng);
}

/// Standard normal deviates via the Box–Muller transform. Generates pairs
/// and caches the spare, so consecutive calls cost one transform each two.
class NormalSampler {
 public:
  double operator()(Xoshiro256pp& rng) noexcept;

 private:
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Exponential deviate with the given mean (inverse-CDF method).
double exponential(Xoshiro256pp& rng, double mean) noexcept;

/// Derive a fresh, statistically independent seed for substream `index`
/// from `master`. Distinct (master, index) pairs give distinct streams.
inline std::uint64_t substream_seed(std::uint64_t master,
                                    std::uint64_t index) noexcept {
  SplitMix64 sm(master ^ (0x9E3779B97F4A7C15ull * (index + 1)));
  sm.next();
  return sm.next();
}

}  // namespace sfc::util
