// simd.hpp — runtime-dispatched SIMD kernels for the encode → order →
// aggregate hot path.
//
// The batched curve encoders, the radix sort's key pre-scan, and the NFI
// half-window scan all have data-parallel inner loops whose best
// implementation depends on the host ISA (BMI2 pdep/pext interleaves,
// AVX2 8-lane FSM striping, vectorized occupied-cell scans). This header
// is the seam between the portable call sites and those variants:
//
//   * Detection runs once, at first use: CPUID feature probes
//     (__builtin_cpu_supports) pick the widest variant the machine
//     supports, the SFCACD_SIMD environment variable ("off"/"scalar")
//     forces the portable path at runtime, and the -DSFCACD_SIMD=off
//     CMake option compiles the variant TUs out entirely.
//   * Dispatch is one relaxed pointer load: kernels() returns a table of
//     function pointers, where a null entry means "no SIMD variant —
//     run your scalar loop". Call sites keep their scalar code as the
//     always-present fallback, which is also the bit-exactness oracle
//     (pbt_batch_diff / pbt_acd_diff run both paths against each other).
//   * Every kernel is bit-identical to the scalar code it replaces: the
//     curves' outputs feed sweep cache keys and golden ACD numbers, so
//     "fast but off by an ulp" is not a tier the dispatcher offers.
//
// The header itself contains no intrinsics and is safe to include from
// any TU on any architecture; the AVX2+BMI2 definitions live in
// simd_avx2.cpp, compiled with -mavx2 -mbmi2 and only ever entered after
// the CPUID probe has confirmed both features.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sfc::util::simd {

/// The ISA tiers the dispatcher knows. Exactly one is active per
/// process (modulo the test-only ScopedForceScalar override).
enum class Isa {
  kScalar = 0,    // portable C++ everywhere
  kAvx2Bmi2 = 1,  // AVX2 vector kernels + BMI2 pdep/pext interleaves
};

/// Stable short name for provenance stamps ("scalar", "avx2+bmi2").
const char* isa_name(Isa isa) noexcept;

/// The widest tier compiled into this binary (kScalar when the build
/// disabled SFCACD_SIMD or targets a non-x86 architecture).
Isa compiled_isa() noexcept;

/// The tier actually dispatched on this machine: compiled_isa() gated by
/// the CPUID probe and the SFCACD_SIMD environment override. Constant
/// after first call; ScopedForceScalar does NOT change it (provenance
/// should record the machine, not a test harness state).
Isa active_isa() noexcept;

/// 2-D Hilbert/Moore FSM lanes accumulate 2·level index bits in 32-bit
/// lanes, so the vector kernels cover levels up to 16; deeper levels run
/// the scalar state machine (identical table, identical output).
inline constexpr unsigned kFsmMaxLevel = 16;

/// The dispatched kernel table. Coordinates arrive as the raw
/// std::uint32_t array backing a Point<D> batch (Point is standard
/// layout with no padding, so pts[i][d] == xy[D*i + d]); call sites
/// static_assert the layout before casting.
struct Kernels {
  /// out[i] = morton2_encode(xy[2i], xy[2i+1]).
  void (*morton2_batch)(const std::uint32_t* xy, std::uint64_t* out,
                        std::size_t n) = nullptr;
  /// out[i] = gray_decode(morton2_encode(...)).
  void (*gray2_batch)(const std::uint32_t* xy, std::uint64_t* out,
                      std::size_t n) = nullptr;
  /// out[i] = morton3_encode(xyz[3i], xyz[3i+1], xyz[3i+2]).
  void (*morton3_batch)(const std::uint32_t* xyz, std::uint64_t* out,
                        std::size_t n) = nullptr;
  /// out[i] = gray_decode(morton3_encode(...)).
  void (*gray3_batch)(const std::uint32_t* xyz, std::uint64_t* out,
                      std::size_t n) = nullptr;
  /// Batched 2-D Hilbert FSM started in state0: 8 points per vector,
  /// one (state, quadrant) table step per bit plane. `forward` is the
  /// flattened 8×4 step table of hilbert_lut.cpp (entry = digit<<3 |
  /// next_state). Requires level <= kFsmMaxLevel.
  void (*hilbert2_batch)(const std::uint32_t* xy, std::uint64_t* out,
                         std::size_t n, unsigned level, unsigned state0,
                         const unsigned char* forward) = nullptr;
  /// Batched 2-D Moore encode: per-lane quadrant rank + the same FSM
  /// seeded per lane with the quadrant's inverse-transform state.
  /// Requires 1 <= level <= kFsmMaxLevel.
  void (*moore2_batch)(const std::uint32_t* xy, std::uint64_t* out,
                       std::size_t n, unsigned level,
                       const unsigned char* forward) = nullptr;
  /// OR- and AND-reduce the keys of a KeyIndex-shaped record array
  /// (64-bit key at offset 0 of a 16-byte record) — the radix sort's
  /// varying-byte pre-scan.
  void (*key16_or_and)(const unsigned char* records, std::size_t n,
                       std::uint64_t* all_or, std::uint64_t* all_and) =
      nullptr;
  /// The NFI 2-D dense half-window scan (fmm/nfi.cpp halfwindow_dense2):
  /// append the occupied particle ids (cell values != -1, the
  /// OccupancyGrid::kEmpty sentinel) of the radius-r half-window around
  /// (x0, y0) to `out` — center row dx in [1, r], then rows dy in
  /// [1, r] with the x-extent clamped to the L1 ball unless `chebyshev`
  /// — in row order; returns the count. One call covers the whole
  /// window so short rows cost one masked vector op, not a scalar tail,
  /// and each block is compacted branchlessly with a full 8-lane store.
  /// `out` must hold 2r² + 2r + 7 entries (the largest half-window plus
  /// the unconditional store's slack).
  std::size_t (*nfi_halfwindow2)(const std::int32_t* cells, unsigned level,
                                 std::uint32_t x0, std::uint32_t y0,
                                 std::uint32_t r, bool chebyshev,
                                 std::int32_t* out) = nullptr;
};

/// The active kernel table (all-null fields in scalar mode). One relaxed
/// atomic pointer load; hoist the fields you need out of inner loops.
const Kernels& kernels() noexcept;

/// Test/bench hook: dispatch the scalar (all-null) table for the scope's
/// lifetime, so SIMD == scalar equivalence runs in one binary and
/// per-ISA benchmark columns come from one process. Not thread-safe
/// against concurrent scopes; intended for single-threaded harness code.
class ScopedForceScalar {
 public:
  ScopedForceScalar() noexcept;
  ~ScopedForceScalar();
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  const Kernels* saved_;
};

}  // namespace sfc::util::simd
