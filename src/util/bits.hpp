// bits.hpp — low-level bit manipulation primitives shared by the SFC and
// topology modules.
//
// Everything in this header is constexpr and branch-light; these routines
// sit on the hot path of every curve encode/decode, so they are implemented
// with the classic parallel-prefix "magic mask" sequences rather than loops.
#pragma once

#include <bit>
#include <cstdint>

namespace sfc::util {

/// True iff `v` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Floor of log2(v); ilog2(0) is defined as 0 for convenience.
constexpr unsigned ilog2(std::uint64_t v) noexcept {
  return v == 0 ? 0u : 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// Ceil of log2(v); clog2(0) and clog2(1) are 0.
constexpr unsigned clog2(std::uint64_t v) noexcept {
  return v <= 1 ? 0u : ilog2(v - 1) + 1u;
}

/// Spread the low 32 bits of `v` so bit i lands at position 2i.
/// (0b...dcba -> 0b...0d0c0b0a)  Used by the 2-D Morton encoding.
constexpr std::uint64_t part1_by1(std::uint32_t v) noexcept {
  std::uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x;
}

/// Inverse of part1_by1: gather every other bit (positions 0,2,4,...).
constexpr std::uint32_t compact1_by1(std::uint64_t x) noexcept {
  x &= 0x5555555555555555ull;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFull;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFull;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<std::uint32_t>(x);
}

/// Spread the low 21 bits of `v` so bit i lands at position 3i.
/// Used by the 3-D Morton encoding (21 bits * 3 dims = 63 bits).
constexpr std::uint64_t part1_by2(std::uint32_t v) noexcept {
  std::uint64_t x = v & 0x1FFFFFull;  // 21 bits
  x = (x | (x << 32)) & 0x001F00000000FFFFull;
  x = (x | (x << 16)) & 0x001F0000FF0000FFull;
  x = (x | (x << 8)) & 0x100F00F00F00F00Full;
  x = (x | (x << 4)) & 0x10C30C30C30C30C3ull;
  x = (x | (x << 2)) & 0x1249249249249249ull;
  return x;
}

/// Inverse of part1_by2: gather every third bit (positions 0,3,6,...).
constexpr std::uint32_t compact1_by2(std::uint64_t x) noexcept {
  x &= 0x1249249249249249ull;
  x = (x | (x >> 2)) & 0x10C30C30C30C30C3ull;
  x = (x | (x >> 4)) & 0x100F00F00F00F00Full;
  x = (x | (x >> 8)) & 0x001F0000FF0000FFull;
  x = (x | (x >> 16)) & 0x001F00000000FFFFull;
  x = (x | (x >> 32)) & 0x00000000001FFFFFull;
  return static_cast<std::uint32_t>(x);
}

/// 2-D Morton (Z-order) code: interleave x (even bits) and y (odd bits).
constexpr std::uint64_t morton2_encode(std::uint32_t x, std::uint32_t y) noexcept {
  return part1_by1(x) | (part1_by1(y) << 1);
}

constexpr std::uint32_t morton2_decode_x(std::uint64_t code) noexcept {
  return compact1_by1(code);
}

constexpr std::uint32_t morton2_decode_y(std::uint64_t code) noexcept {
  return compact1_by1(code >> 1);
}

/// 3-D Morton code over 21-bit coordinates.
constexpr std::uint64_t morton3_encode(std::uint32_t x, std::uint32_t y,
                                       std::uint32_t z) noexcept {
  return part1_by2(x) | (part1_by2(y) << 1) | (part1_by2(z) << 2);
}

constexpr std::uint32_t morton3_decode_x(std::uint64_t code) noexcept {
  return compact1_by2(code);
}

constexpr std::uint32_t morton3_decode_y(std::uint64_t code) noexcept {
  return compact1_by2(code >> 1);
}

constexpr std::uint32_t morton3_decode_z(std::uint64_t code) noexcept {
  return compact1_by2(code >> 2);
}

/// Binary-reflected Gray code of `v`.
constexpr std::uint64_t gray_encode(std::uint64_t v) noexcept {
  return v ^ (v >> 1);
}

/// Inverse of gray_encode (prefix-XOR fold).
constexpr std::uint64_t gray_decode(std::uint64_t g) noexcept {
  g ^= g >> 32;
  g ^= g >> 16;
  g ^= g >> 8;
  g ^= g >> 4;
  g ^= g >> 2;
  g ^= g >> 1;
  return g;
}

/// Reverse the low `bits` bits of `v` (remaining bits are discarded).
constexpr std::uint64_t reverse_bits(std::uint64_t v, unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | ((v >> i) & 1u);
  }
  return r;
}

/// Extract the `digit`-th base-(2^w) digit of `v`, counting from digit 0 at
/// the least significant end.
constexpr std::uint64_t base_digit(std::uint64_t v, unsigned digit,
                                   unsigned w) noexcept {
  return (v >> (digit * w)) & ((1ull << w) - 1u);
}

}  // namespace sfc::util
