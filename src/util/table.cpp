#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace sfc::util {

std::string format_fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setfill('0') << std::setw(4)
             << static_cast<int>(c);
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Table::add_row(std::string label, std::vector<double> cells) {
  numeric_rows_.push_back({std::move(label), std::move(cells)});
}

void Table::add_text_row(std::vector<std::string> cells) {
  text_rows_.push_back(std::move(cells));
}

std::vector<std::vector<std::string>> Table::render_cells() const {
  std::vector<std::vector<std::string>> out;
  const std::size_t rows = numeric_rows_.size();

  // Locate per-row and per-column minima among numeric rows.
  std::vector<std::size_t> row_min(rows, std::size_t(-1));
  std::vector<std::size_t> col_min;  // row index of min per column
  std::size_t cols = 0;
  for (const auto& r : numeric_rows_) cols = std::max(cols, r.cells.size());
  col_min.assign(cols, std::size_t(-1));
  if (mark_minima_) {
    std::vector<double> col_best(cols, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < rows; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < numeric_rows_[i].cells.size(); ++j) {
        const double v = numeric_rows_[i].cells[j];
        if (v < best) {
          best = v;
          row_min[i] = j;
        }
        if (v < col_best[j]) {
          col_best[j] = v;
          col_min[j] = i;
        }
      }
    }
  }

  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row;
    row.push_back(numeric_rows_[i].label);
    for (std::size_t j = 0; j < numeric_rows_[i].cells.size(); ++j) {
      std::string cell = format_fixed(numeric_rows_[i].cells[j], precision_);
      if (mark_minima_ && row_min[i] == j) cell += '*';
      if (mark_minima_ && j < col_min.size() && col_min[j] == i) cell += '^';
      row.push_back(std::move(cell));
    }
    out.push_back(std::move(row));
  }
  for (const auto& t : text_rows_) out.push_back(t);
  return out;
}

void Table::print(std::ostream& os, TableStyle style) const {
  if (style == TableStyle::kJson) {
    // Structured output: numeric cells stay full-precision numbers (no
    // rounding, no minima markers); labels and text rows are strings.
    os << "{\"title\":\"" << json_escape(title_) << "\",\"columns\":[";
    for (std::size_t i = 0; i < header_.size(); ++i) {
      if (i) os << ',';
      os << '"' << json_escape(header_[i]) << '"';
    }
    os << "],\"rows\":[";
    bool first = true;
    os << std::setprecision(17);
    for (const auto& r : numeric_rows_) {
      if (!first) os << ',';
      first = false;
      os << "[\"" << json_escape(r.label) << '"';
      for (const double v : r.cells) os << ',' << v;
      os << ']';
    }
    for (const auto& t : text_rows_) {
      if (!first) os << ',';
      first = false;
      os << '[';
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i) os << ',';
        os << '"' << json_escape(t[i]) << '"';
      }
      os << ']';
    }
    os << "]}";
    return;
  }

  const auto body = render_cells();

  if (style == TableStyle::kCsv) {
    auto emit = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) os << ',';
        os << cells[i];
      }
      os << '\n';
    };
    if (!header_.empty()) emit(header_);
    for (const auto& r : body) emit(r);
    return;
  }

  // Compute column widths across header and body.
  std::size_t cols = header_.size();
  for (const auto& r : body) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&width](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : body) widen(r);

  const bool md = style == TableStyle::kMarkdown;
  auto emit = [&](const std::vector<std::string>& cells) {
    if (md) os << "| ";
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << std::left << std::setw(static_cast<int>(width[i])) << c;
      if (i + 1 < cols) os << (md ? " | " : "  ");
    }
    if (md) os << " |";
    os << '\n';
  };

  if (!title_.empty() && !md) os << "== " << title_ << " ==\n";
  if (!title_.empty() && md) os << "**" << title_ << "**\n\n";
  if (!header_.empty()) {
    emit(header_);
    if (md) {
      os << '|';
      for (std::size_t i = 0; i < cols; ++i) {
        os << std::string(width[i] + 2, '-') << '|';
      }
      os << '\n';
    } else {
      std::size_t total = 0;
      for (std::size_t i = 0; i < cols; ++i) total += width[i] + (i + 1 < cols ? 2 : 0);
      os << std::string(total, '-') << '\n';
    }
  }
  for (const auto& r : body) emit(r);
}

std::string Table::to_string(TableStyle style) const {
  std::ostringstream os;
  print(os, style);
  return os.str();
}

}  // namespace sfc::util
