// radix_sort.cpp — threaded-path threshold calibration and path metrics
// for the header-only sort (see radix_sort.hpp).
#include "util/radix_sort.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace sfc::util::detail {
namespace {

// Threshold clamp: never thread a sub-4k sort (a single pass is a few
// microseconds), always thread past 1M records (any plausible fan-out
// cost is amortized).
constexpr std::size_t kMinThreshold = std::size_t{1} << 12;
constexpr std::size_t kMaxThreshold = std::size_t{1} << 20;

/// Estimated fixed cost of one threaded pass: two pool fan-out/join
/// barriers (count + scatter) plus the 256×chunks prefix sum. A fixed
/// estimate rather than a measurement because measuring it would need a
/// warm pool at static-init time; the serial side of the ratio is what
/// actually varies across machines.
constexpr double kPassOverheadNs = 150000.0;

/// One-time calibration: time the serial sort of a synthetic batch that
/// matches the common workload shape (20-bit keys → 3 varying bytes,
/// the level-10 ordering case), derive the per-record serial cost, and
/// place the threshold where the serial sort costs ~2 threaded-pass
/// overheads — below that, fan-out latency dominates any speedup.
std::size_t calibrate() {
  constexpr std::size_t kProbe = std::size_t{1} << 15;
  std::vector<KeyIndex> records(kProbe);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < kProbe; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    records[i] = {x & 0xfffffu, static_cast<std::uint32_t>(i)};
  }
  const auto t0 = std::chrono::steady_clock::now();
  radix_sort_pairs(records);  // no pool: cannot recurse into calibration
  const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  // Keep the sorted result observable so the sort cannot be elided.
  if (records.front().key > records.back().key) std::abort();
  const double per_record =
      std::max(0.1, static_cast<double>(dt) / static_cast<double>(kProbe));
  const auto threshold =
      static_cast<std::size_t>(2.0 * kPassOverheadNs / per_record);
  return std::clamp(threshold, kMinThreshold, kMaxThreshold);
}

}  // namespace

std::size_t threaded_radix_min() {
  static obs::Gauge& gauge =
      obs::Registry::instance().gauge("radix.threaded_threshold");
  // The environment override is re-read on every call (the function only
  // runs when a caller passed a pool, so the getenv cost is noise); the
  // calibration result is latched for the process lifetime.
  if (const char* env = std::getenv("SFCACD_RADIX_THREAD_MIN")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      const std::size_t t = std::clamp(static_cast<std::size_t>(v),
                                       kMinThreshold, kMaxThreshold);
      gauge.set(static_cast<double>(t));
      return t;
    }
  }
  static const std::size_t calibrated = calibrate();
  gauge.set(static_cast<double>(calibrated));
  return calibrated;
}

void note_radix_path(bool threaded) {
  static obs::Counter& threaded_count =
      obs::Registry::instance().counter("radix.sort.threaded");
  static obs::Counter& serial_count =
      obs::Registry::instance().counter("radix.sort.serial");
  (threaded ? threaded_count : serial_count).add();
}

}  // namespace sfc::util::detail
