// cli.hpp — a minimal command-line option parser for the bench/example
// binaries. Supports `--name value`, `--name=value`, and boolean flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sfc::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declare a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Declare a valued option with a default.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parse argv. Returns false (and fills error()) on unknown or malformed
  /// arguments. `--help` sets help_requested() and returns true.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t i64(const std::string& name) const;
  double f64(const std::string& name) const;

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  std::string usage() const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace sfc::util
