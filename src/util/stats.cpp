#include "util/stats.hpp"

#include <cmath>

namespace sfc::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace sfc::util
