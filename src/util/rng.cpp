#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace sfc::util {

std::uint64_t bounded_u64(Xoshiro256pp& rng, std::uint64_t bound) noexcept {
  // Lemire 2019: multiply a 64-bit random by the bound and keep the high
  // word; reject the small biased region of the low word.
  std::uint64_t x = rng.next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = rng.next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double NormalSampler::operator()(Xoshiro256pp& rng) noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box–Muller: u1 must be strictly positive for the log.
  double u1 = uniform01(rng);
  while (u1 <= 0.0) u1 = uniform01(rng);
  const double u2 = uniform01(rng);
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double ang = 2.0 * std::numbers::pi * u2;
  spare_ = mag * std::sin(ang);
  has_spare_ = true;
  return mag * std::cos(ang);
}

double exponential(Xoshiro256pp& rng, double mean) noexcept {
  double u = uniform01(rng);
  while (u <= 0.0) u = uniform01(rng);
  return -mean * std::log(u);
}

}  // namespace sfc::util
