// simd.cpp — ISA detection and kernel dispatch (see simd.hpp).
//
// This TU is compiled without any -m flags so it runs on the oldest
// supported baseline; the variant kernels it points at live in TUs that
// carry their own target flags and are only entered after the feature
// probe below has confirmed the machine supports them.
#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sfc::util::simd {

#if defined(SFCACD_SIMD_X86)
// Defined in simd_avx2.cpp (compiled with -mavx2 -mbmi2).
namespace avx2 {
void morton2_batch(const std::uint32_t*, std::uint64_t*, std::size_t);
void gray2_batch(const std::uint32_t*, std::uint64_t*, std::size_t);
void morton3_batch(const std::uint32_t*, std::uint64_t*, std::size_t);
void gray3_batch(const std::uint32_t*, std::uint64_t*, std::size_t);
void hilbert2_batch(const std::uint32_t*, std::uint64_t*, std::size_t,
                    unsigned, unsigned, const unsigned char*);
void moore2_batch(const std::uint32_t*, std::uint64_t*, std::size_t,
                  unsigned, const unsigned char*);
void key16_or_and(const unsigned char*, std::size_t, std::uint64_t*,
                  std::uint64_t*);
std::size_t nfi_halfwindow2(const std::int32_t*, unsigned, std::uint32_t,
                            std::uint32_t, std::uint32_t, bool,
                            std::int32_t*);
}  // namespace avx2
#endif

namespace {

// All-null table: every call site falls through to its scalar loop.
constexpr Kernels kScalarKernels{};

#if defined(SFCACD_SIMD_X86)
constexpr Kernels kAvx2Kernels{
    &avx2::morton2_batch, &avx2::gray2_batch,
    &avx2::morton3_batch, &avx2::gray3_batch,
    &avx2::hilbert2_batch, &avx2::moore2_batch,
    &avx2::key16_or_and,  &avx2::nfi_halfwindow2,
};
#endif

/// SFCACD_SIMD environment override: "off", "scalar", or "0" force the
/// portable path; anything else (including unset) keeps auto-detection.
bool env_forces_scalar() noexcept {
  const char* v = std::getenv("SFCACD_SIMD");
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "scalar") == 0 ||
         std::strcmp(v, "0") == 0;
}

Isa detect_isa() noexcept {
#if defined(SFCACD_SIMD_X86)
  if (env_forces_scalar()) return Isa::kScalar;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2")) {
    return Isa::kAvx2Bmi2;
  }
#endif
  return Isa::kScalar;
}

const Kernels* table_for(Isa isa) noexcept {
#if defined(SFCACD_SIMD_X86)
  if (isa == Isa::kAvx2Bmi2) return &kAvx2Kernels;
#else
  (void)isa;
#endif
  return &kScalarKernels;
}

std::atomic<const Kernels*>& active_table() noexcept {
  static std::atomic<const Kernels*> table{table_for(active_isa())};
  return table;
}

}  // namespace

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2Bmi2:
      return "avx2+bmi2";
  }
  return "?";
}

Isa compiled_isa() noexcept {
#if defined(SFCACD_SIMD_X86)
  return Isa::kAvx2Bmi2;
#else
  return Isa::kScalar;
#endif
}

Isa active_isa() noexcept {
  static const Isa isa = detect_isa();
  return isa;
}

const Kernels& kernels() noexcept {
  return *active_table().load(std::memory_order_relaxed);
}

ScopedForceScalar::ScopedForceScalar() noexcept
    : saved_(active_table().exchange(&kScalarKernels,
                                     std::memory_order_relaxed)) {}

ScopedForceScalar::~ScopedForceScalar() {
  active_table().store(saved_, std::memory_order_relaxed);
}

}  // namespace sfc::util::simd
