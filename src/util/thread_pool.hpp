// thread_pool.hpp — a small fixed-size worker pool with blocking fan-out
// helpers. The ACD engine's inner loops (one network-distance lookup per
// communication) are embarrassingly parallel over particles/cells, so the
// primitives we need are parallel_for over an index range, a deterministic
// parallel_reduce (integer sums commute, so the reduction is
// bit-reproducible regardless of scheduling), and a completion Latch for
// the sweep scheduler's task graph.
//
// Nested-submit safety: the sweep engine runs whole pipeline stages as
// pool tasks, and those stages fan out *again* (threaded radix sort, NFI
// chunking) on the same pool. A worker that blocked inside such a nested
// fan-out would strand its chunks in the queue behind other stage tasks —
// with every worker blocked that is a deadlock. The fan-out helpers
// therefore never sleep when the calling thread may legally execute
// queued tasks: they pop and run tasks (try_run_one) until their own
// chunks are done. Helping is restricted to workers of the *same* pool
// and to non-worker threads (the coordinator): a worker of a different
// pool keeps the old blocking wait, so per-worker shard slots
// (RankPairShards) stay exclusive.
//
// Observability: when obs tracing or metrics are runtime-enabled, every
// task is stamped at submit and the workers record queue-wait and run-time
// histograms (pool.queue_wait_ns / pool.run_ns), per-worker busy-time
// counters (pool.worker.N.busy_ns — utilization is busy/wall), and one
// trace span per executed task. When both are disabled the overhead is a
// single relaxed atomic load per submit and per task.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sfc::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// Pop and run one queued task on the calling thread; false when the
  /// queue was empty. This is the work-helping primitive behind the
  /// deadlock-free nested fan-outs: a thread waiting on a Latch makes
  /// progress on whatever is queued instead of sleeping.
  bool try_run_one();

  /// Whether the calling thread is one of *this* pool's workers.
  bool current_thread_in_pool() const noexcept;

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

  /// Sentinel returned by current_worker_index() off-pool.
  static constexpr unsigned kNotAWorker = ~0u;

  /// Index of the calling thread within the pool that spawned it
  /// (0..size()-1), or kNotAWorker when the caller is not a pool worker
  /// (e.g. the coordinating thread). Fan-out kernels use this to keep
  /// per-worker shards without synchronization: each chunk writes only
  /// the shard of the worker executing it, and the coordinator gets a
  /// slot of its own (see RankPairShards).
  static unsigned current_worker_index() noexcept;

 private:
  /// A queued task plus its submit timestamp (0 when obs is disabled —
  /// the workers then skip all clock sampling).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void worker_loop(unsigned index);
  /// Execute one dequeued task (obs instrumentation included) and settle
  /// the in-flight accounting. Shared by worker_loop and try_run_one.
  void run_task(Task&& task);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Single-use completion latch: count_down() from any thread, wait()
/// until the count reaches zero. wait_and_help() is the form every
/// pool-side join should use — instead of sleeping it drains queued
/// tasks from the pool, so a join executed *on* a pool worker (a nested
/// fan-out) can never deadlock the pool.
class Latch {
 public:
  explicit Latch(std::size_t count) : remaining_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down(std::size_t n = 1) {
    std::lock_guard<std::mutex> lk(mutex_);
    remaining_ -= n;
    if (remaining_ == 0) cv_.notify_all();
  }

  bool done() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return remaining_ == 0;
  }

  void wait() {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_.wait(lk, [this] { return remaining_ == 0; });
  }

  /// Wait for the count to reach zero, running queued tasks from `pool`
  /// while it has any (null pool = plain wait). The short timed sleep
  /// between polls covers the window where the queue is momentarily
  /// empty but running tasks are about to submit more — those submits
  /// carry no latch signal, so an untimed wait could stall.
  void wait_and_help(ThreadPool* pool) {
    if (pool == nullptr) {
      wait();
      return;
    }
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mutex_);
        if (remaining_ == 0) return;
      }
      if (pool->try_run_one()) continue;
      std::unique_lock<std::mutex> lk(mutex_);
      if (remaining_ == 0) return;
      cv_.wait_for(lk, std::chrono::microseconds(200));
    }
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t remaining_;
};

/// Grain sentinel: derive the minimum chunk size from the range length
/// and worker count instead of hardcoding one at the call site.
inline constexpr std::size_t kAutoGrain = 0;

/// Auto-grain policy: aim for ~8 chunks per worker (load balance against
/// skewed per-index cost) but never below a floor that keeps the
/// submit/notify overhead amortized.
inline std::size_t resolve_grain(std::size_t grain, std::size_t n,
                                 std::size_t workers) noexcept {
  if (grain != kAutoGrain) return grain;
  constexpr std::size_t kGrainFloor = 256;
  const std::size_t target = n / (workers * 8 + 1);
  return target > kGrainFloor ? target : kGrainFloor;
}

/// Whether a join on `pool` may run queued tasks while waiting: yes for
/// the pool's own workers and for non-worker threads (each gets a
/// distinct shard slot in the fan-out kernels); no for workers of a
/// *different* pool, whose worker index could collide with this pool's.
inline bool can_help(const ThreadPool& pool) noexcept {
  return pool.current_thread_in_pool() ||
         ThreadPool::current_worker_index() == ThreadPool::kNotAWorker;
}

/// Split [begin, end) into roughly `pool.size() * 4` chunks (but at least
/// `grain` indices each; kAutoGrain picks a size) and run
/// `body(chunk_begin, chunk_end)` on the pool. Blocks until all chunks
/// are done (helping with queued work while it waits, so nested calls
/// from pool tasks are safe). Falls back to a direct call when the range
/// is small or the pool has a single worker.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic sum-reduction over [begin, end): `body` returns the partial
/// value for a chunk; partials are accumulated with operator+= in chunk
/// order. T must be an additive monoid (we use integer/size pairs).
template <typename T, typename ChunkFn>
T parallel_reduce_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain, T init, ChunkFn body) {
  const std::size_t n = end - begin;
  if (n == 0) return init;
  const std::size_t workers = pool.size();
  grain = resolve_grain(grain, n, workers);
  std::size_t chunks = workers == 0 ? 1 : workers * 4;
  std::size_t chunk_size = (n + chunks - 1) / chunks;
  if (chunk_size < grain) chunk_size = grain;
  chunks = (n + chunk_size - 1) / chunk_size;

  if (chunks <= 1 || workers <= 1) {
    T acc = init;
    acc += body(begin, end);
    return acc;
  }

  std::vector<T> partials(chunks, init);
  Latch latch(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = lo + chunk_size < end ? lo + chunk_size : end;
    pool.submit([&, c, lo, hi] {
      partials[c] = body(lo, hi);
      latch.count_down();
    });
  }
  latch.wait_and_help(can_help(pool) ? &pool : nullptr);
  T acc = init;
  for (auto& p : partials) acc += p;
  return acc;
}

}  // namespace sfc::util
