// thread_pool.hpp — a small fixed-size worker pool with blocking fan-out
// helpers. The ACD engine's inner loops (one network-distance lookup per
// communication) are embarrassingly parallel over particles/cells, so the
// only primitives we need are parallel_for over an index range and a
// deterministic parallel_reduce (integer sums commute, so the reduction is
// bit-reproducible regardless of scheduling).
//
// Observability: when obs tracing or metrics are runtime-enabled, every
// task is stamped at submit and the workers record queue-wait and run-time
// histograms (pool.queue_wait_ns / pool.run_ns), per-worker busy-time
// counters (pool.worker.N.busy_ns — utilization is busy/wall), and one
// trace span per executed task. When both are disabled the overhead is a
// single relaxed atomic load per submit and per task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sfc::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

  /// Sentinel returned by current_worker_index() off-pool.
  static constexpr unsigned kNotAWorker = ~0u;

  /// Index of the calling thread within the pool that spawned it
  /// (0..size()-1), or kNotAWorker when the caller is not a pool worker
  /// (e.g. the coordinating thread). Fan-out kernels use this to keep
  /// per-worker shards without synchronization: each chunk writes only
  /// the shard of the worker executing it, and the coordinator gets a
  /// slot of its own (see RankPairShards).
  static unsigned current_worker_index() noexcept;

 private:
  /// A queued task plus its submit timestamp (0 when obs is disabled —
  /// the workers then skip all clock sampling).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void worker_loop(unsigned index);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Grain sentinel: derive the minimum chunk size from the range length
/// and worker count instead of hardcoding one at the call site.
inline constexpr std::size_t kAutoGrain = 0;

/// Auto-grain policy: aim for ~8 chunks per worker (load balance against
/// skewed per-index cost) but never below a floor that keeps the
/// submit/notify overhead amortized.
inline std::size_t resolve_grain(std::size_t grain, std::size_t n,
                                 std::size_t workers) noexcept {
  if (grain != kAutoGrain) return grain;
  constexpr std::size_t kGrainFloor = 256;
  const std::size_t target = n / (workers * 8 + 1);
  return target > kGrainFloor ? target : kGrainFloor;
}

/// Split [begin, end) into roughly `pool.size() * 4` chunks (but at least
/// `grain` indices each; kAutoGrain picks a size) and run
/// `body(chunk_begin, chunk_end)` on the pool. Blocks until all chunks
/// are done. Falls back to a direct call when the range is small or the
/// pool has a single worker.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic sum-reduction over [begin, end): `body` returns the partial
/// value for a chunk; partials are accumulated with operator+= in chunk
/// order. T must be an additive monoid (we use integer/size pairs).
template <typename T, typename ChunkFn>
T parallel_reduce_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain, T init, ChunkFn body) {
  const std::size_t n = end - begin;
  if (n == 0) return init;
  const std::size_t workers = pool.size();
  grain = resolve_grain(grain, n, workers);
  std::size_t chunks = workers == 0 ? 1 : workers * 4;
  std::size_t chunk_size = (n + chunks - 1) / chunks;
  if (chunk_size < grain) chunk_size = grain;
  chunks = (n + chunk_size - 1) / chunk_size;

  if (chunks <= 1 || workers <= 1) {
    T acc = init;
    acc += body(begin, end);
    return acc;
  }

  std::vector<T> partials(chunks, init);
  std::mutex m;
  std::condition_variable cv;
  std::size_t done = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = lo + chunk_size < end ? lo + chunk_size : end;
    pool.submit([&, c, lo, hi] {
      partials[c] = body(lo, hi);
      std::lock_guard<std::mutex> lk(m);
      if (++done == chunks) cv.notify_one();
    });
  }
  {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == chunks; });
  }
  T acc = init;
  for (auto& p : partials) acc += p;
  return acc;
}

}  // namespace sfc::util
