// stats.hpp — streaming statistics used to aggregate experiment trials.
#pragma once

#include <cstddef>
#include <limits>

namespace sfc::util {

/// Welford's online algorithm for numerically stable mean/variance, plus
/// min/max tracking. Suitable for combining many independent trial results.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator into this one (parallel-combine formula).
  void merge(const RunningStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance (zero when fewer than two samples).
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }

  double stddev() const noexcept;

  /// Half-width of an approximate 95% confidence interval on the mean
  /// (normal approximation, 1.96 * stderr). Zero with fewer than 2 samples.
  double ci95_halfwidth() const noexcept;

  double min() const noexcept {
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const noexcept {
    return count_ == 0 ? 0.0 : max_;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace sfc::util
