// table.hpp — formatted table output for benchmark harnesses.
//
// Every experiment binary prints the same rows the paper reports, so the
// table writer supports the styles we need: fixed-width ASCII for the
// terminal, GitHub Markdown for EXPERIMENTS.md, CSV for plotting, and a
// JSON object for structured consumers (scripts/bench_to_json.py). The
// paper highlights the per-row minimum in boldface and the per-column
// minimum in italics; the text styles mark those with '*' and '^'
// suffixes respectively (JSON keeps raw full-precision numbers).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sfc::util {

enum class TableStyle { kAscii, kMarkdown, kCsv, kJson };

/// Escape a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& s);

class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Column headers; the first column is treated as the row label.
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Add a data row: a label plus numeric cells.
  void add_row(std::string label, std::vector<double> cells);

  /// Add a pre-formatted textual row (bypasses numeric formatting).
  void add_text_row(std::vector<std::string> cells);

  /// Number of fractional digits for numeric cells (default 3).
  void set_precision(int digits) { precision_ = digits; }

  /// When enabled, the smallest value in each row gets a '*' suffix and the
  /// smallest value in each column gets a '^' suffix (paper's bold/italics).
  void mark_minima(bool enable) { mark_minima_ = enable; }

  void print(std::ostream& os, TableStyle style = TableStyle::kAscii) const;

  /// Render to a string (convenience for tests).
  std::string to_string(TableStyle style = TableStyle::kAscii) const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return numeric_rows_.size() + text_rows_.size(); }

 private:
  struct NumericRow {
    std::string label;
    std::vector<double> cells;
  };

  std::vector<std::vector<std::string>> render_cells() const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<NumericRow> numeric_rows_;
  std::vector<std::vector<std::string>> text_rows_;  // appended after numeric
  int precision_ = 3;
  bool mark_minima_ = false;
};

/// Format a double with fixed precision (helper shared with examples).
std::string format_fixed(double v, int digits);

}  // namespace sfc::util
