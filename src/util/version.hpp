// version.hpp — library identity and build provenance, for tools, bug
// reports, and attributing recorded benchmark numbers to an exact build.
#pragma once

#include <string>

#include "util/simd.hpp"

namespace sfc {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

/// The paper this library reproduces.
inline constexpr const char* kPaperCitation =
    "D. DeFord and A. Kalyanaraman, \"Empirical Analysis of Space-Filling "
    "Curves for Scientific Computing Applications\", ICPP 2013";

// Build provenance. The CMake build defines SFCACD_GIT_SHA (configure-time
// `git rev-parse --short HEAD`) and SFCACD_BUILD_TYPE ($<CONFIG>); a build
// outside CMake falls back to "unknown".
#ifndef SFCACD_GIT_SHA
#define SFCACD_GIT_SHA "unknown"
#endif
#ifndef SFCACD_BUILD_TYPE
#define SFCACD_BUILD_TYPE "unknown"
#endif

inline constexpr const char* kGitSha = SFCACD_GIT_SHA;
inline constexpr const char* kBuildType = SFCACD_BUILD_TYPE;

inline constexpr const char* kCompiler =
#if defined(__clang__)
    "clang " __clang_version__;
#elif defined(__GNUC__)
    "gcc " __VERSION__;
#else
    "unknown";
#endif

/// One JSON object identifying the build, embedded by the bench harness
/// in every output document so BENCH_acd.json entries are attributable.
/// "simd" is the ISA tier the dispatcher actually selected on this
/// machine (CPUID probe + SFCACD_SIMD override), "simd_compiled" the
/// widest tier in the binary — recorded so cross-machine gate
/// comparisons are diagnosable instead of silently flaky. All other
/// values are compile-time literals that never need escaping.
inline std::string build_info_json() {
  return std::string("{\"version\":\"") + kVersionString +
         "\",\"git_sha\":\"" + kGitSha + "\",\"build_type\":\"" + kBuildType +
         "\",\"compiler\":\"" + kCompiler + "\",\"simd\":\"" +
         util::simd::isa_name(util::simd::active_isa()) +
         "\",\"simd_compiled\":\"" +
         util::simd::isa_name(util::simd::compiled_isa()) + "\"}";
}

}  // namespace sfc
