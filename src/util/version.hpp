// version.hpp — library identity, for tools and bug reports.
#pragma once

namespace sfc {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

/// The paper this library reproduces.
inline constexpr const char* kPaperCitation =
    "D. DeFord and A. Kalyanaraman, \"Empirical Analysis of Space-Filling "
    "Curves for Scientific Computing Applications\", ICPP 2013";

}  // namespace sfc
