#include "util/thread_pool.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sfc::util {
namespace {

/// Obs instrumentation is active when any subsystem is runtime-enabled
/// (tracing wants task spans, metrics wants the latency histograms, the
/// flight recorder wants both feeding its rings).
bool obs_active() noexcept {
  return obs::tracing_enabled() || obs::metrics_enabled() ||
         obs::flight_enabled();
}

obs::Histogram& queue_wait_histogram() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("pool.queue_wait_ns");
  return h;
}

obs::Histogram& run_histogram() {
  static obs::Histogram& h =
      obs::Registry::instance().histogram("pool.run_ns");
  return h;
}

/// Identity of the executing thread within its owning pool. Workers are
/// created by exactly one pool and never migrate, so a plain
/// thread_local set once in worker_loop is enough. The owning pool is
/// recorded alongside so nested fan-outs can tell "worker of this pool"
/// (safe to help) from "worker of another pool" (must block).
thread_local unsigned t_worker_index = ThreadPool::kNotAWorker;
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

unsigned ThreadPool::current_worker_index() noexcept {
  return t_worker_index;
}

bool ThreadPool::current_thread_in_pool() const noexcept {
  return t_worker_pool == this;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::uint64_t enqueue_ns = obs_active() ? obs::now_ns() : 0;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    tasks_.push(Task{std::move(task), enqueue_ns});
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mutex_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

bool ThreadPool::try_run_one() {
  Task task;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  run_task(std::move(task));
  return true;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_task(Task&& task) {
  if (task.enqueue_ns != 0) {
    const std::uint64_t start = obs::now_ns();
    {
      const obs::Span span("pool/task");
      task.fn();
    }
    const std::uint64_t run_ns = obs::now_ns() - start;
    if (obs::metrics_enabled()) {
      queue_wait_histogram().record(start - task.enqueue_ns);
      run_histogram().record(run_ns);
      // Per-worker utilization counters only for actual pool workers; a
      // helping coordinator has no worker slot to attribute to. The
      // instruments are resolved once per worker thread and cached.
      const unsigned index = t_worker_index;
      if (index != kNotAWorker && t_worker_pool == this) {
        thread_local obs::Counter* busy_ns = nullptr;
        thread_local obs::Counter* tasks_run = nullptr;
        if (busy_ns == nullptr) {
          const std::string worker = "pool.worker." + std::to_string(index);
          busy_ns = &obs::Registry::instance().counter(worker + ".busy_ns");
          tasks_run = &obs::Registry::instance().counter(worker + ".tasks");
        }
        busy_ns->add(run_ns);
        tasks_run->add(1);
      }
    }
  } else {
    task.fn();
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (--in_flight_ == 0) cv_idle_.notify_all();
  }
}

void ThreadPool::worker_loop(unsigned index) {
  t_worker_index = index;
  t_worker_pool = this;
  obs::Tracer::instance().set_thread_name("pool-worker-" +
                                          std::to_string(index));
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    run_task(std::move(task));
  }
}

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  const std::size_t workers = pool.size();
  grain = resolve_grain(grain, n, workers);
  std::size_t chunks = workers == 0 ? 1 : workers * 4;
  std::size_t chunk_size = (n + chunks - 1) / chunks;
  if (chunk_size < grain) chunk_size = grain;
  chunks = (n + chunk_size - 1) / chunk_size;

  if (chunks <= 1 || workers <= 1) {
    body(begin, end);
    return;
  }

  Latch latch(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = lo + chunk_size < end ? lo + chunk_size : end;
    pool.submit([&, lo, hi] {
      body(lo, hi);
      latch.count_down();
    });
  }
  latch.wait_and_help(can_help(pool) ? &pool : nullptr);
}

}  // namespace sfc::util
