// radix_sort.hpp — stable LSD radix sort for 64-bit-keyed records.
//
// The sweep engine's ordering stage and the FFI cell tree sort records by
// SFC keys: 64-bit integers whose distribution is dense in the low
// 2·level (or D·level) bits and zero above. A comparison sort pays
// O(n log n) branchy comparisons; least-significant-digit radix sort pays
// O(n) per 8-bit pass and skips passes whose byte is constant across the
// input, so a level-10 ordering (20 varying bits) costs three linear
// scatters. The sort is stable — equal keys keep their input order, the
// same tie-break contract as std::stable_sort with a key projection —
// which is what lets it replace the stable sorts the ACD golden numbers
// were pinned against (see docs/architecture.md, "Ordering stability").
//
// The threaded variant partitions the input into fixed per-worker chunks,
// counts byte occurrences into per-chunk arrays, serializes the (tiny)
// bucket-major prefix sum, and scatters each chunk into disjoint
// destination ranges. Chunk boundaries depend only on (n, worker count),
// so the output permutation is identical to the serial sort's — thread
// scheduling cannot reorder anything.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace sfc::util {

/// The record shape the callers sort: an SFC key plus the index of the
/// element it was computed from (an argsort, in other words).
struct KeyIndex {
  std::uint64_t key = 0;
  std::uint32_t index = 0;
};

/// The KeyIndex key projection as a named type (not a lambda) so the
/// sort can recognize it at compile time and hand the varying-byte
/// pre-scan to the SIMD key16_or_and kernel — a lambda with the same
/// body would be semantically identical but unidentifiable.
struct KeyIndexKey {
  std::uint64_t operator()(const KeyIndex& k) const noexcept { return k.key; }
};

namespace detail {

/// Minimum record count for the threaded sort: below it the fan-out
/// latency of a pass exceeds the pass itself. Resolved per call from the
/// SFCACD_RADIX_THREAD_MIN environment override, else from a one-time
/// calibration of the serial sort's per-record cost (radix_sort.cpp).
std::size_t threaded_radix_min();

/// Bump the radix.sort.threaded / radix.sort.serial path counters.
void note_radix_path(bool threaded);

/// OR- and AND-reduce the projected keys — the pre-scan that finds which
/// key bytes actually vary. Dispatches the SIMD kernel only for the
/// (KeyIndex, KeyIndexKey) pair, where the projection is known to read
/// the u64 at record offset 0 and nothing else.
template <typename T, typename KeyFn>
void key_or_and(const T* items, std::size_t n, KeyFn key_of,
                std::uint64_t& all_or, std::uint64_t& all_and) {
  if constexpr (std::is_same_v<T, KeyIndex> &&
                std::is_same_v<KeyFn, KeyIndexKey>) {
    static_assert(sizeof(KeyIndex) == 16 && offsetof(KeyIndex, key) == 0,
                  "key16_or_and reads a u64 key at offset 0 of a 16-byte "
                  "record");
    if (auto* kernel = simd::kernels().key16_or_and; kernel != nullptr) {
      kernel(reinterpret_cast<const unsigned char*>(items), n, &all_or,
             &all_and);
      return;
    }
  }
  std::uint64_t o = 0;
  std::uint64_t a = ~std::uint64_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = key_of(items[i]);
    o |= k;
    a &= k;
  }
  all_or = o;
  all_and = a;
}

/// Serial passes over the varying bytes, with the counting fused into
/// one scan: a byte-value histogram is a property of the key *multiset*,
/// which the scatters between passes only permute, so histograms taken
/// from the initial array are valid for every pass. A 3-varying-byte
/// sort thus sweeps memory 4 times (1 count + 3 scatters) instead of 6.
template <typename T, typename KeyFn>
void radix_passes_serial(T*& src, T*& dst, std::size_t n,
                         const unsigned* shifts, unsigned nv, KeyFn key_of) {
  std::vector<std::array<std::size_t, 256>> hist(nv);
  for (auto& h : hist) h.fill(0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = key_of(src[i]);
    for (unsigned v = 0; v < nv; ++v) {
      ++hist[v][(k >> shifts[v]) & 0xffu];
    }
  }
  for (unsigned v = 0; v < nv; ++v) {
    auto& count = hist[v];
    std::size_t sum = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    const unsigned shift = shifts[v];
    for (std::size_t i = 0; i < n; ++i) {
      dst[count[(key_of(src[i]) >> shift) & 0xffu]++] = src[i];
    }
    std::swap(src, dst);
  }
}

/// Run `body(chunk, lo, hi)` for `chunks` fixed-size slices of [0, n) on
/// the pool and block until all complete. A bespoke latch instead of
/// parallel_for_chunks because the counting and scatter phases must agree
/// on the chunk -> count-row mapping.
template <typename Body>
void for_fixed_chunks(ThreadPool& pool, std::size_t n, std::size_t chunks,
                      std::size_t chunk_size, const Body& body) {
  std::mutex m;
  std::condition_variable cv;
  std::size_t done = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = lo + chunk_size < n ? lo + chunk_size : n;
    pool.submit([&, c, lo, hi] {
      body(c, lo, hi);
      std::lock_guard<std::mutex> lk(m);
      if (++done == chunks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return done == chunks; });
}

template <typename T, typename KeyFn>
void radix_count_scatter_threaded(ThreadPool& pool, const T* src, T* dst,
                                  std::size_t n, unsigned shift, KeyFn key_of,
                                  std::size_t chunks, std::size_t chunk_size,
                                  std::vector<std::array<std::size_t, 256>>& counts) {
  for_fixed_chunks(pool, n, chunks, chunk_size,
                   [&](std::size_t c, std::size_t lo, std::size_t hi) {
                     auto& count = counts[c];
                     count.fill(0);
                     for (std::size_t i = lo; i < hi; ++i) {
                       ++count[(key_of(src[i]) >> shift) & 0xffu];
                     }
                   });
  // Bucket-major exclusive prefix: all of bucket v's slots precede bucket
  // v+1's, and within a bucket chunk c's slots precede chunk c+1's. That
  // ordering (plus in-chunk scan order below) is exactly what makes the
  // threaded sort stable and bit-identical to the serial one.
  std::size_t sum = 0;
  for (std::size_t v = 0; v < 256; ++v) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t k = counts[c][v];
      counts[c][v] = sum;
      sum += k;
    }
  }
  for_fixed_chunks(pool, n, chunks, chunk_size,
                   [&](std::size_t c, std::size_t lo, std::size_t hi) {
                     auto& offset = counts[c];
                     for (std::size_t i = lo; i < hi; ++i) {
                       dst[offset[(key_of(src[i]) >> shift) & 0xffu]++] = src[i];
                     }
                   });
}

}  // namespace detail

/// Stable LSD radix sort of `items` by `key_of(item)` (any projection to
/// std::uint64_t). Equal keys keep their input order. Passes whose byte
/// is constant across the whole input are skipped, so the cost is one
/// linear count + scatter per *varying* key byte. When `pool` has more
/// than one worker and the input is large enough, counting and
/// scattering fan out over fixed per-chunk slices; the result is
/// bit-identical to the serial path regardless of scheduling. Do not
/// pass a pool from inside one of its own tasks with a single spare
/// worker — like parallel_for_chunks, the call blocks on pool progress.
template <typename T, typename KeyFn>
void radix_sort_by_key(std::vector<T>& items, KeyFn key_of,
                       ThreadPool* pool = nullptr) {
  const std::size_t n = items.size();
  if (n < 2) return;
  std::uint64_t all_or = 0;
  std::uint64_t all_and = ~std::uint64_t{0};
  detail::key_or_and(items.data(), n, key_of, all_or, all_and);
  const std::uint64_t varying = all_or ^ all_and;
  if (varying == 0) return;  // every key equal: already stable-sorted

  unsigned shifts[8];
  unsigned nv = 0;
  for (unsigned byte = 0; byte < 8; ++byte) {
    if (((varying >> (byte * 8)) & 0xffu) != 0) shifts[nv++] = byte * 8;
  }

  std::vector<T> buffer(n);
  T* src = items.data();
  T* dst = buffer.data();

  const bool threaded = pool != nullptr && pool->size() > 1 &&
                        n >= detail::threaded_radix_min();
  detail::note_radix_path(threaded);
  if (threaded) {
    // Per-pass counting is unavoidable here: chunk-local histograms
    // depend on which records each chunk holds, and the scatter between
    // passes re-distributes records across chunks.
    std::size_t chunks = pool->size();
    std::size_t chunk_size = (n + chunks - 1) / chunks;
    chunks = (n + chunk_size - 1) / chunk_size;
    std::vector<std::array<std::size_t, 256>> counts(chunks);
    for (unsigned v = 0; v < nv; ++v) {
      detail::radix_count_scatter_threaded(*pool, src, dst, n, shifts[v],
                                           key_of, chunks, chunk_size, counts);
      std::swap(src, dst);
    }
  } else {
    detail::radix_passes_serial(src, dst, n, shifts, nv, key_of);
  }
  if (src != items.data()) {
    // Odd number of passes: the sorted run lives in the buffer.
    items.swap(buffer);
  }
}

/// Argsort entry point: sort (key, index) pairs by key, ties by input
/// order.
inline void radix_sort_pairs(std::vector<KeyIndex>& items,
                             ThreadPool* pool = nullptr) {
  radix_sort_by_key(items, KeyIndexKey{}, pool);
}

}  // namespace sfc::util
