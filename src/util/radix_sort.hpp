// radix_sort.hpp — stable LSD radix sort for 64-bit-keyed records.
//
// The sweep engine's ordering stage and the FFI cell tree sort records by
// SFC keys: 64-bit integers whose distribution is dense in the low
// 2·level (or D·level) bits and zero above. A comparison sort pays
// O(n log n) branchy comparisons; least-significant-digit radix sort pays
// O(n) per 8-bit pass and skips passes whose byte is constant across the
// input, so a level-10 ordering (20 varying bits) costs three linear
// scatters. The sort is stable — equal keys keep their input order, the
// same tie-break contract as std::stable_sort with a key projection —
// which is what lets it replace the stable sorts the ACD golden numbers
// were pinned against (see docs/architecture.md, "Ordering stability").
//
// The threaded variant partitions the input into fixed per-worker chunks,
// counts byte occurrences into per-chunk arrays, serializes the (tiny)
// bucket-major prefix sum, and scatters each chunk into disjoint
// destination ranges. Chunk boundaries depend only on (n, worker count),
// so the output permutation is identical to the serial sort's — thread
// scheduling cannot reorder anything.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace sfc::util {

/// The record shape the callers sort: an SFC key plus the index of the
/// element it was computed from (an argsort, in other words).
struct KeyIndex {
  std::uint64_t key = 0;
  std::uint32_t index = 0;
};

namespace detail {

/// Below this size the per-pass bookkeeping dominates and the fan-out
/// latency of a threaded sort exceeds the sort itself.
inline constexpr std::size_t kThreadedRadixMin = std::size_t{1} << 15;

template <typename T, typename KeyFn>
void radix_count_scatter_serial(const T* src, T* dst, std::size_t n,
                                unsigned shift, KeyFn key_of) {
  std::array<std::size_t, 256> count{};
  for (std::size_t i = 0; i < n; ++i) {
    ++count[(key_of(src[i]) >> shift) & 0xffu];
  }
  std::size_t sum = 0;
  for (std::size_t v = 0; v < 256; ++v) {
    const std::size_t c = count[v];
    count[v] = sum;
    sum += c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    dst[count[(key_of(src[i]) >> shift) & 0xffu]++] = src[i];
  }
}

/// Run `body(chunk, lo, hi)` for `chunks` fixed-size slices of [0, n) on
/// the pool and block until all complete. A bespoke latch instead of
/// parallel_for_chunks because the counting and scatter phases must agree
/// on the chunk -> count-row mapping.
template <typename Body>
void for_fixed_chunks(ThreadPool& pool, std::size_t n, std::size_t chunks,
                      std::size_t chunk_size, const Body& body) {
  std::mutex m;
  std::condition_variable cv;
  std::size_t done = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = lo + chunk_size < n ? lo + chunk_size : n;
    pool.submit([&, c, lo, hi] {
      body(c, lo, hi);
      std::lock_guard<std::mutex> lk(m);
      if (++done == chunks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return done == chunks; });
}

template <typename T, typename KeyFn>
void radix_count_scatter_threaded(ThreadPool& pool, const T* src, T* dst,
                                  std::size_t n, unsigned shift, KeyFn key_of,
                                  std::size_t chunks, std::size_t chunk_size,
                                  std::vector<std::array<std::size_t, 256>>& counts) {
  for_fixed_chunks(pool, n, chunks, chunk_size,
                   [&](std::size_t c, std::size_t lo, std::size_t hi) {
                     auto& count = counts[c];
                     count.fill(0);
                     for (std::size_t i = lo; i < hi; ++i) {
                       ++count[(key_of(src[i]) >> shift) & 0xffu];
                     }
                   });
  // Bucket-major exclusive prefix: all of bucket v's slots precede bucket
  // v+1's, and within a bucket chunk c's slots precede chunk c+1's. That
  // ordering (plus in-chunk scan order below) is exactly what makes the
  // threaded sort stable and bit-identical to the serial one.
  std::size_t sum = 0;
  for (std::size_t v = 0; v < 256; ++v) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t k = counts[c][v];
      counts[c][v] = sum;
      sum += k;
    }
  }
  for_fixed_chunks(pool, n, chunks, chunk_size,
                   [&](std::size_t c, std::size_t lo, std::size_t hi) {
                     auto& offset = counts[c];
                     for (std::size_t i = lo; i < hi; ++i) {
                       dst[offset[(key_of(src[i]) >> shift) & 0xffu]++] = src[i];
                     }
                   });
}

}  // namespace detail

/// Stable LSD radix sort of `items` by `key_of(item)` (any projection to
/// std::uint64_t). Equal keys keep their input order. Passes whose byte
/// is constant across the whole input are skipped, so the cost is one
/// linear count + scatter per *varying* key byte. When `pool` has more
/// than one worker and the input is large enough, counting and
/// scattering fan out over fixed per-chunk slices; the result is
/// bit-identical to the serial path regardless of scheduling. Do not
/// pass a pool from inside one of its own tasks with a single spare
/// worker — like parallel_for_chunks, the call blocks on pool progress.
template <typename T, typename KeyFn>
void radix_sort_by_key(std::vector<T>& items, KeyFn key_of,
                       ThreadPool* pool = nullptr) {
  const std::size_t n = items.size();
  if (n < 2) return;
  std::uint64_t all_or = 0;
  std::uint64_t all_and = ~std::uint64_t{0};
  for (const T& t : items) {
    const std::uint64_t k = key_of(t);
    all_or |= k;
    all_and &= k;
  }
  const std::uint64_t varying = all_or ^ all_and;
  if (varying == 0) return;  // every key equal: already stable-sorted

  std::vector<T> buffer(n);
  T* src = items.data();
  T* dst = buffer.data();

  const bool threaded = pool != nullptr && pool->size() > 1 &&
                        n >= detail::kThreadedRadixMin;
  std::size_t chunks = 0;
  std::size_t chunk_size = 0;
  std::vector<std::array<std::size_t, 256>> counts;
  if (threaded) {
    chunks = pool->size();
    chunk_size = (n + chunks - 1) / chunks;
    chunks = (n + chunk_size - 1) / chunk_size;
    counts.resize(chunks);
  }

  for (unsigned byte = 0; byte < 8; ++byte) {
    const unsigned shift = byte * 8;
    if (((varying >> shift) & 0xffu) == 0) continue;
    if (threaded) {
      detail::radix_count_scatter_threaded(*pool, src, dst, n, shift, key_of,
                                           chunks, chunk_size, counts);
    } else {
      detail::radix_count_scatter_serial(src, dst, n, shift, key_of);
    }
    std::swap(src, dst);
  }
  if (src != items.data()) {
    // Odd number of passes: the sorted run lives in the buffer.
    items.swap(buffer);
  }
}

/// Argsort entry point: sort (key, index) pairs by key, ties by input
/// order.
inline void radix_sort_pairs(std::vector<KeyIndex>& items,
                             ThreadPool* pool = nullptr) {
  radix_sort_by_key(items, [](const KeyIndex& k) { return k.key; }, pool);
}

}  // namespace sfc::util
