#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace sfc::util {

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, "false", true};
}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_[name] = Spec{help, default_value, false};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end()) {
      error_ = "unknown option: --" + arg;
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        error_ = "flag --" + arg + " does not take a value";
        return false;
      }
      values_[arg] = "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          error_ = "option --" + arg + " requires a value";
          return false;
        }
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
  return true;
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second == "true";
  const auto s = specs_.find(name);
  return s != specs_.end() && s->second.default_value == "true";
}

std::string ArgParser::str(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  const auto s = specs_.find(name);
  return s != specs_.end() ? s->second.default_value : std::string();
}

std::int64_t ArgParser::i64(const std::string& name) const {
  return std::strtoll(str(name).c_str(), nullptr, 10);
}

double ArgParser::f64(const std::string& name) const {
  return std::strtod(str(name).c_str(), nullptr);
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << " <value>";
    os << "\n      " << spec.help;
    if (!spec.is_flag) os << " (default: " << spec.default_value << ")";
    os << '\n';
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace sfc::util
