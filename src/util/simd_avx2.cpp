// simd_avx2.cpp — AVX2 + BMI2 variants of the hot-path kernels.
//
// Compiled with -mavx2 -mbmi2 (see src/CMakeLists.txt); nothing in this
// TU runs unless the CPUID probe in simd.cpp confirmed both features, so
// it must not contain file-scope dynamic initializers (they would
// execute unconditionally at startup).
//
// Bit-exactness contract: every function here reproduces the scalar
// code it replaces exactly — same integer results, same output order.
// The interleaves are the pdep/pext formulation of the magic-mask
// sequences in util/bits.hpp, the FSM kernels run the hilbert_lut.cpp
// step table with 8 points striped across 32-bit lanes, and the scans
// enumerate the same elements in the same order. pbt_batch_diff and
// pbt_acd_diff hold both paths against each other every run.
#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace sfc::util::simd::avx2 {

namespace {

// Interleave masks: x bits land at even (every-2nd / every-3rd)
// positions, matching util::morton2_encode / morton3_encode.
constexpr std::uint64_t kMask2X = 0x5555555555555555ull;
constexpr std::uint64_t kMask2Y = 0xAAAAAAAAAAAAAAAAull;
constexpr std::uint64_t kMask3X = 0x1249249249249249ull;
constexpr std::uint64_t kMask3Y = kMask3X << 1;
constexpr std::uint64_t kMask3Z = kMask3X << 2;

inline std::uint64_t morton2(std::uint64_t xy_pair) noexcept {
  return _pdep_u64(xy_pair & 0xFFFFFFFFull, kMask2X) |
         _pdep_u64(xy_pair >> 32, kMask2Y);
}

/// Prefix-XOR fold, identical to util::gray_decode.
inline std::uint64_t gray_decode(std::uint64_t g) noexcept {
  g ^= g >> 32;
  g ^= g >> 16;
  g ^= g >> 8;
  g ^= g >> 4;
  g ^= g >> 2;
  g ^= g >> 1;
  return g;
}

inline std::uint64_t load_pair(const std::uint32_t* xy, std::size_t i) {
  std::uint64_t pair;
  std::memcpy(&pair, xy + 2 * i, sizeof(pair));
  return pair;
}

/// De-interleave 8 packed (x, y) pairs into xs/ys lane vectors.
inline void load_points8(const std::uint32_t* xy, __m256i& xs, __m256i& ys) {
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  const __m256i a = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(xy));  // x0 y0 .. x3 y3
  const __m256i b = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(xy + 8));  // x4 y4 .. x7 y7
  const __m256i pa = _mm256_permutevar8x32_epi32(a, pick);  // x0..x3 y0..y3
  const __m256i pb = _mm256_permutevar8x32_epi32(b, pick);  // x4..x7 y4..y7
  xs = _mm256_permute2x128_si256(pa, pb, 0x20);
  ys = _mm256_permute2x128_si256(pa, pb, 0x31);
}

/// One FSM table step for 8 lanes: t = state<<2 | xbit<<1 | ybit indexes
/// the flattened 32-entry forward table (two in-register vpshufb halves
/// selected on t>15), yielding entry = digit<<3 | next_state per lane.
struct FsmTables {
  __m256i lo;
  __m256i hi;
};

inline FsmTables fsm_tables(const unsigned char* forward) {
  FsmTables t;
  t.lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(forward)));
  t.hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(forward + 16)));
  return t;
}

/// Run `steps` FSM table steps over the lane-striped points, folding two
/// index bits per step into `idx` (must hold 2*steps more bits; lanes
/// are 32-bit, hence simd::kFsmMaxLevel).
inline __m256i fsm_run(__m256i xs, __m256i ys, __m256i state, __m256i idx,
                       unsigned steps, const FsmTables& tbl) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i seven = _mm256_set1_epi32(7);
  const __m256i fifteen = _mm256_set1_epi32(15);
  const __m256i low_byte = _mm256_set1_epi32(0xFF);
  for (unsigned k = steps; k > 0; --k) {
    const __m128i cnt = _mm_cvtsi32_si128(static_cast<int>(k - 1));
    const __m256i xb = _mm256_and_si256(_mm256_srl_epi32(xs, cnt), one);
    const __m256i yb = _mm256_and_si256(_mm256_srl_epi32(ys, cnt), one);
    const __m256i t = _mm256_or_si256(
        _mm256_slli_epi32(state, 2),
        _mm256_or_si256(_mm256_slli_epi32(xb, 1), yb));
    const __m256i lo = _mm256_shuffle_epi8(tbl.lo, t);
    const __m256i hi = _mm256_shuffle_epi8(tbl.hi, t);
    const __m256i pick_hi = _mm256_cmpgt_epi32(t, fifteen);
    // Bytes 1..3 of each lane indexed entry 0 (t's high bytes are zero);
    // the low_byte mask discards them.
    const __m256i entry = _mm256_and_si256(
        _mm256_blendv_epi8(lo, hi, pick_hi), low_byte);
    idx = _mm256_or_si256(_mm256_slli_epi32(idx, 2),
                          _mm256_srli_epi32(entry, 3));
    state = _mm256_and_si256(entry, seven);
  }
  return idx;
}

/// Zero-extend the 8 32-bit lane results to the u64 output array.
inline void store_idx8(std::uint64_t* out, __m256i idx) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_cvtepu32_epi64(_mm256_castsi256_si128(idx)));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4),
                      _mm256_cvtepu32_epi64(_mm256_extracti128_si256(idx, 1)));
}

/// Scalar FSM step loop — the under-8 tail of the striped kernels. Same
/// table, same arithmetic as hilbert_lut_index_from.
inline std::uint64_t fsm_scalar(std::uint32_t x, std::uint32_t y,
                                unsigned steps, unsigned state,
                                std::uint64_t idx,
                                const unsigned char* forward) {
  for (unsigned k = steps; k > 0; --k) {
    const unsigned q = (((x >> (k - 1)) & 1u) << 1) | ((y >> (k - 1)) & 1u);
    const unsigned entry = forward[(state << 2) | q];
    idx = (idx << 2) | (entry >> 3);
    state = entry & 7u;
  }
  return idx;
}

}  // namespace

void morton2_batch(const std::uint32_t* xy, std::uint64_t* out,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i] = morton2(load_pair(xy, i));
    out[i + 1] = morton2(load_pair(xy, i + 1));
    out[i + 2] = morton2(load_pair(xy, i + 2));
    out[i + 3] = morton2(load_pair(xy, i + 3));
  }
  for (; i < n; ++i) out[i] = morton2(load_pair(xy, i));
}

/// gray_decode on 4 u64 lanes: the same 6-step prefix-XOR fold, with
/// the shifts confined to each lane.
inline __m256i gray_decode4(__m256i g) noexcept {
  g = _mm256_xor_si256(g, _mm256_srli_epi64(g, 32));
  g = _mm256_xor_si256(g, _mm256_srli_epi64(g, 16));
  g = _mm256_xor_si256(g, _mm256_srli_epi64(g, 8));
  g = _mm256_xor_si256(g, _mm256_srli_epi64(g, 4));
  g = _mm256_xor_si256(g, _mm256_srli_epi64(g, 2));
  g = _mm256_xor_si256(g, _mm256_srli_epi64(g, 1));
  return g;
}

void gray2_batch(const std::uint32_t* xy, std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // pdep has no vector form: interleave scalar, fold vectorized.
    const __m256i m = _mm256_setr_epi64x(
        static_cast<long long>(morton2(load_pair(xy, i))),
        static_cast<long long>(morton2(load_pair(xy, i + 1))),
        static_cast<long long>(morton2(load_pair(xy, i + 2))),
        static_cast<long long>(morton2(load_pair(xy, i + 3))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), gray_decode4(m));
  }
  for (; i < n; ++i) out[i] = gray_decode(morton2(load_pair(xy, i)));
}

void morton3_batch(const std::uint32_t* xyz, std::uint64_t* out,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t* p = xyz + 3 * i;
    out[i] = _pdep_u64(p[0], kMask3X) | _pdep_u64(p[1], kMask3Y) |
             _pdep_u64(p[2], kMask3Z);
  }
}

inline std::uint64_t morton3(const std::uint32_t* p) noexcept {
  return _pdep_u64(p[0], kMask3X) | _pdep_u64(p[1], kMask3Y) |
         _pdep_u64(p[2], kMask3Z);
}

void gray3_batch(const std::uint32_t* xyz, std::uint64_t* out,
                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i m = _mm256_setr_epi64x(
        static_cast<long long>(morton3(xyz + 3 * i)),
        static_cast<long long>(morton3(xyz + 3 * (i + 1))),
        static_cast<long long>(morton3(xyz + 3 * (i + 2))),
        static_cast<long long>(morton3(xyz + 3 * (i + 3))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), gray_decode4(m));
  }
  for (; i < n; ++i) out[i] = gray_decode(morton3(xyz + 3 * i));
}

void hilbert2_batch(const std::uint32_t* xy, std::uint64_t* out,
                    std::size_t n, unsigned level, unsigned state0,
                    const unsigned char* forward) {
  const FsmTables tbl = fsm_tables(forward);
  const __m256i st0 = _mm256_set1_epi32(static_cast<int>(state0));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i xs, ys;
    load_points8(xy + 2 * i, xs, ys);
    store_idx8(out + i,
               fsm_run(xs, ys, st0, _mm256_setzero_si256(), level, tbl));
  }
  for (; i < n; ++i) {
    out[i] = fsm_scalar(xy[2 * i], xy[2 * i + 1], level, state0, 0, forward);
  }
}

void moore2_batch(const std::uint32_t* xy, std::uint64_t* out, std::size_t n,
                  unsigned level, const unsigned char* forward) {
  // Quadrant decomposition matching MooreCurve::index_batch: visit order
  // LL(0) UL(1) UR(2) LR(3), left half seeded in FSM state 5 (T1^-1),
  // right half in state 6 (T2^-1), idx initialized to the quadrant rank
  // so rank * 4^(level-1) folds into the same accumulator.
  const FsmTables tbl = fsm_tables(forward);
  const std::uint32_t s = 1u << (level - 1);
  const __m256i smask = _mm256_set1_epi32(static_cast<int>(s - 1));
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i three = _mm256_set1_epi32(3);
  const __m256i five = _mm256_set1_epi32(5);
  const __m256i six = _mm256_set1_epi32(6);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i xs, ys;
    load_points8(xy + 2 * i, xs, ys);
    // Coordinates are < 2^level <= 2^16, so signed compares are exact.
    const __m256i qx = _mm256_cmpgt_epi32(xs, smask);
    const __m256i qy = _mm256_cmpgt_epi32(ys, smask);
    const __m256i qy01 = _mm256_and_si256(qy, one);
    // rank = qx ? 3 - qy : qy
    const __m256i rank =
        _mm256_blendv_epi8(qy01, _mm256_sub_epi32(three, qy01), qx);
    const __m256i st0 =
        _mm256_blendv_epi8(five, six, _mm256_cmpgt_epi32(rank, one));
    store_idx8(out + i, fsm_run(_mm256_and_si256(xs, smask),
                                _mm256_and_si256(ys, smask), st0, rank,
                                level - 1, tbl));
  }
  for (; i < n; ++i) {
    const std::uint32_t x = xy[2 * i];
    const std::uint32_t y = xy[2 * i + 1];
    const unsigned rank = x >= s ? (y >= s ? 2u : 3u) : (y >= s ? 1u : 0u);
    out[i] = fsm_scalar(x & (s - 1), y & (s - 1), level - 1,
                        rank < 2 ? 5u : 6u, rank, forward);
  }
}

void key16_or_and(const unsigned char* records, std::size_t n,
                  std::uint64_t* all_or, std::uint64_t* all_and) {
  __m256i vor = _mm256_setzero_si256();
  __m256i vand = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Two 16-byte records per vector; the key u64s sit in lanes 0 and 2,
    // the index+padding lanes are discarded at the extract below.
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(records + 16 * i));
    vor = _mm256_or_si256(vor, v);
    vand = _mm256_and_si256(vand, v);
  }
  std::uint64_t o = static_cast<std::uint64_t>(_mm256_extract_epi64(vor, 0)) |
                    static_cast<std::uint64_t>(_mm256_extract_epi64(vor, 2));
  std::uint64_t a = static_cast<std::uint64_t>(_mm256_extract_epi64(vand, 0)) &
                    static_cast<std::uint64_t>(_mm256_extract_epi64(vand, 2));
  for (; i < n; ++i) {
    std::uint64_t k;
    std::memcpy(&k, records + 16 * i, sizeof(k));
    o |= k;
    a &= k;
  }
  *all_or = o;
  *all_and = a;
}

namespace {

// Sliding lane mask for tail loads: reading 8 lanes starting at
// kLaneMask + (8 - rem) yields `rem` set lanes followed by zeros.
alignas(32) constexpr std::int32_t kLaneMask[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};

// Left-packing permutation per occupancy mask: kPackLut.idx[m] moves the
// set lanes of m to the front, in order. 256 x 8 lanes = 8 KiB, hot in
// L1 within a few windows.
struct PackLut {
  alignas(32) std::int32_t idx[256][8];
};

constexpr PackLut make_pack_lut() {
  PackLut lut{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int b = 0; b < 8; ++b) {
      if ((m >> b) & 1) lut.idx[m][k++] = b;
    }
    for (; k < 8; ++k) lut.idx[m][k] = 0;
  }
  return lut;
}

constexpr PackLut kPackLut = make_pack_lut();

/// Append the ids of occupied cells (value != -1) in p[0..len) to
/// out[cnt...], in order; returns the new count. Every block — full or
/// masked tail (the tail load never touches memory past p + len) — is
/// compacted branchlessly: occupancy movemask indexes the left-packing
/// shuffle, one full 8-lane store writes the survivors, and popcount
/// advances the cursor. Which lanes are occupied is the one genuinely
/// random bit of this workload, so a data-dependent branch (the obvious
/// find-next-set-bit loop) mispredicts nearly every block; the
/// store-8-advance-popcount form costs the same regardless of the mask.
/// The unconditional store means `out` needs 7 lanes of slack past the
/// worst-case count.
inline std::size_t collect_span(const std::int32_t* p, std::size_t len,
                                std::int32_t* out, std::size_t cnt) {
  const __m256i empty = _mm256_set1_epi32(-1);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, empty)))) ^
        0xFFu;
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPackLut.idx[m]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + cnt),
                        _mm256_permutevar8x32_epi32(v, perm));
    cnt += static_cast<unsigned>(__builtin_popcount(m));
  }
  const std::size_t rem = len - i;
  if (rem != 0) {
    const __m256i lanes = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kLaneMask + (8 - rem)));
    const __m256i v = _mm256_maskload_epi32(p + i, lanes);
    // Masked-off lanes read as 0 (!= -1), so clip to the live lanes.
    const unsigned m = (static_cast<unsigned>(_mm256_movemask_ps(
                            _mm256_castsi256_ps(
                                _mm256_cmpeq_epi32(v, empty)))) ^
                        0xFFu) &
                       ((1u << rem) - 1u);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPackLut.idx[m]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + cnt),
                        _mm256_permutevar8x32_epi32(v, perm));
    cnt += static_cast<unsigned>(__builtin_popcount(m));
  }
  return cnt;
}

}  // namespace

std::size_t nfi_halfwindow2(const std::int32_t* cells, unsigned level,
                            std::uint32_t x0u, std::uint32_t y0u,
                            std::uint32_t ru, bool chebyshev,
                            std::int32_t* out) {
  // Mirrors fmm/nfi.cpp halfwindow_dense2 exactly: same rows, same
  // in-row order, same clamps.
  const std::int64_t side = std::int64_t{1} << level;
  const std::int64_t x0 = x0u;
  const std::int64_t y0 = y0u;
  const std::int64_t r = ru;
  std::size_t cnt = 0;
  {
    const std::int64_t xhi = x0 + r < side - 1 ? x0 + r : side - 1;
    if (xhi > x0) {
      const std::int32_t* row =
          cells + (static_cast<std::uint64_t>(y0) << level);
      cnt = collect_span(row + x0 + 1, static_cast<std::size_t>(xhi - x0),
                         out, cnt);
    }
  }
  const std::int64_t yhi = y0 + r < side - 1 ? y0 + r : side - 1;
  for (std::int64_t yy = y0 + 1; yy <= yhi; ++yy) {
    const std::int64_t budget = chebyshev ? r : r - (yy - y0);
    const std::int64_t xlo = x0 - budget > 0 ? x0 - budget : 0;
    const std::int64_t xhi = x0 + budget < side - 1 ? x0 + budget : side - 1;
    const std::int32_t* row = cells + (static_cast<std::uint64_t>(yy) << level);
    cnt = collect_span(row + xlo, static_cast<std::size_t>(xhi - xlo + 1),
                       out, cnt);
  }
  return cnt;
}

}  // namespace sfc::util::simd::avx2
