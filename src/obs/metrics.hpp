// metrics.hpp — a process-wide registry of named counters, gauges, and
// fixed-bucket histograms.
//
// Handles are registered once (a mutex-guarded map lookup) and then
// updated with relaxed atomics — a counter bump is one fetch_add, a
// histogram record is two fetch_adds plus a bucket increment — so hot
// paths (the ThreadPool's per-task accounting, the sweep engine's cache
// gauges) can keep their handles and update them from any thread without
// serialization. Registry::json() emits one deterministic snapshot
// (names sorted) that the bench harness embeds in its output document
// under --metrics and scripts/bench_to_json.py round-trips.
//
// The g_metrics_enabled flag gates *instrumentation that must pay for a
// clock read* (the ThreadPool samples timestamps only when it is set);
// the atomic update primitives themselves are cheap enough to leave
// unconditional.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sfc::obs {

/// Runtime flag for instrumentation whose cost is dominated by clock
/// sampling rather than the atomic update itself.
inline std::atomic<bool> g_metrics_enabled{false};

inline bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-write-wins scalar (doubles cover ratios and byte counts alike).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency histogram over unsigned values (nanoseconds by convention)
/// with fixed power-of-two bucket boundaries: bucket b counts values
/// whose bit width is b, i.e. v in [2^(b-1), 2^b - 1]. 44 buckets cover
/// every latency up to ~2.4 hours exactly; larger values land in the
/// last bucket. Updates are relaxed atomics; totals are exact (count and
/// sum never lose an update), bucket boundaries are what is fixed.
class Histogram {
 public:
  static constexpr unsigned kBucketCount = 44;

  static constexpr unsigned bucket_of(std::uint64_t v) noexcept {
    const unsigned width = static_cast<unsigned>(std::bit_width(v));
    return width < kBucketCount ? width : kBucketCount - 1;
  }
  /// Inclusive upper bound of bucket b.
  static constexpr std::uint64_t bucket_le(unsigned b) noexcept {
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(unsigned b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur && !min_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// A point-in-time copy of one histogram: exact totals plus the
/// non-empty (inclusive-upper-bound, count) buckets in ascending order.
struct HistogramValues {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< meaningful only when count > 0
  std::uint64_t max = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// A point-in-time copy of every registered instrument. Entries are in
/// ascending name order (the registry's storage order), so two
/// snapshots of the same registrations always enumerate identically —
/// the contract the sampler's ring buffers and every exporter rely on.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramValues> histograms;
};

/// Process-wide named-instrument registry. Lookups by name are
/// mutex-guarded and intended for registration time; the returned
/// references stay valid for the process lifetime, so hot paths resolve
/// once and update through the handle.
class Registry {
 public:
  static Registry& instance();

  void set_enabled(bool on) noexcept {
    g_metrics_enabled.store(on, std::memory_order_relaxed);
  }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{count,sum,min,max,mean,buckets:[{le,count}...]}}}. Key order
  /// is part of the contract: names are emitted in ascending
  /// lexicographic order regardless of registration order, so snapshots
  /// taken in different suites/processes are byte-comparable. Histogram
  /// bucket arrays list only non-empty buckets.
  std::string json() const;

  /// Consistent enumeration of every instrument (ascending name order —
  /// same contract as json()). This is the API the time-series sampler
  /// and the Prometheus exporter are built on.
  MetricsSnapshot snapshot() const;

  /// Zero every registered instrument (registrations survive). Intended
  /// for tests and for harness runs that reuse the process.
  void reset();

  /// Drop every registration so the next snapshot()/json() is empty.
  /// Outstanding handles stay valid (retired instruments are parked, not
  /// destroyed — hot paths may still hold references) but no longer
  /// appear in any export. Test-only: lets telemetry assertions start
  /// from a blank registry instead of depending on which suites ran
  /// first in the process.
  void reset_for_testing();

 private:
  Registry() = default;
};

}  // namespace sfc::obs
