#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/table.hpp"    // util::json_escape (normal-context exports)
#include "util/version.hpp"  // build_info_json

namespace sfc::obs {
namespace {

constexpr unsigned kMaxThreads = 256;
constexpr std::size_t kSnapshotCapacity = std::size_t{64} * 1024;
constexpr std::size_t kPathCapacity = 1024;
constexpr unsigned kStageSlots = 512;

struct FlightRecordPod {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// One thread's flight state: the bounded ring of completed spans, the
/// open-span stack that splits self from child time, and the per-name
/// stage table. Written only by the owning thread; read by exporters
/// under quiescence and by the crash handler best-effort.
struct FlightLog {
  explicit FlightLog(std::uint32_t tid_in) : tid(tid_in) {
    std::snprintf(name, sizeof name, "thread-%u", tid);
  }

  std::uint32_t tid;
  char name[64];

  FlightRecordPod ring[FlightRecorder::kRingCapacity];
  std::atomic<std::uint64_t> head{0};  ///< completed spans ever recorded

  struct Open {
    const char* name = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;
  };
  Open stack[FlightRecorder::kMaxDepth];
  unsigned depth = 0;
  std::uint64_t depth_skipped = 0;  ///< opens beyond kMaxDepth, untimed

  /// Open-addressed per-name aggregate. Keys are the span name pointers
  /// themselves — Span requires static-lifetime strings, so pointer
  /// identity is name identity for literals (interned names likewise).
  struct StageSlot {
    const char* name = nullptr;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
  };
  StageSlot stages[kStageSlots];
  std::uint64_t stage_overflow = 0;

  void accumulate(const char* span_name, std::uint64_t total,
                  std::uint64_t self) noexcept {
    const auto key = reinterpret_cast<std::uintptr_t>(span_name);
    std::size_t slot = (key * 0x9e3779b97f4a7c15ull) >> 55;  // 512 slots
    for (unsigned probe = 0; probe < kStageSlots; ++probe) {
      StageSlot& s = stages[slot];
      if (s.name == span_name || s.name == nullptr) {
        s.name = span_name;
        s.count += 1;
        s.total_ns += total;
        s.self_ns += self;
        return;
      }
      slot = (slot + 1) % kStageSlots;
    }
    ++stage_overflow;
  }
};

/// Heap-allocated and never destroyed (worker threads may record during
/// static destruction). The slots array exists so the crash handler can
/// iterate logs without touching the deque or the mutex.
struct FlightState {
  std::mutex mutex;            ///< registry + exports (never in the handler)
  std::deque<FlightLog> logs;  ///< stable addresses
  std::atomic<FlightLog*> slots[kMaxThreads] = {};
  std::atomic<unsigned> nlogs{0};

  char path[kPathCapacity] = "sfcacd_crash_report.json";
  char build_json[1024] = "{}";
  std::atomic<bool> installed{false};

  /// Double-buffered pre-serialized metrics snapshot: the publisher
  /// fills the inactive buffer and flips the index, so the handler
  /// always reads a complete JSON object.
  char snapshots[2][kSnapshotCapacity];
  std::size_t snapshot_len[2] = {0, 0};
  std::atomic<int> snapshot_active{-1};

  std::atomic<int> in_handler{0};
};

FlightState& fstate() {
  static FlightState* s = new FlightState;
  return *s;
}

thread_local FlightLog* t_flight = nullptr;

FlightLog& local_flight_log() {
  if (t_flight == nullptr) {
    FlightState& s = fstate();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.logs.emplace_back(static_cast<std::uint32_t>(s.logs.size() + 1));
    t_flight = &s.logs.back();
    const unsigned n = s.nlogs.load(std::memory_order_relaxed);
    if (n < kMaxThreads) {
      s.slots[n].store(t_flight, std::memory_order_release);
      s.nlogs.store(n + 1, std::memory_order_release);
    }
  }
  return *t_flight;
}

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGABRT:
      return "SIGABRT";
    case SIGTERM:
      return "SIGTERM";
    default:
      return "UNKNOWN";
  }
}

// ------------------------------------------------- async-signal-safe writer

/// Buffered writer over a raw fd using only write(2). Everything it
/// formats (decimal integers, minimally-escaped strings) happens in
/// fixed stack/struct storage — no allocation, no locale, no stdio.
class SigsafeWriter {
 public:
  explicit SigsafeWriter(int fd) : fd_(fd) {}

  void lit(const char* s) noexcept {
    while (*s != '\0') put(*s++);
  }

  void u64(std::uint64_t v) noexcept {
    char digits[20];
    int n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(digits[--n]);
  }

  /// JSON string body with the minimal escapes ('"', '\\', control
  /// chars). Span names are static literals so this is normally a
  /// straight copy.
  void escaped(const char* s) noexcept {
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        put('\\');
        put(static_cast<char>(c));
      } else if (c < 0x20) {
        lit("\\u00");
        const char* hex = "0123456789abcdef";
        put(hex[c >> 4]);
        put(hex[c & 0xf]);
      } else {
        put(static_cast<char>(c));
      }
    }
  }

  void flush() noexcept {
    std::size_t off = 0;
    while (off < len_) {
      const ssize_t n = ::write(fd_, buf_ + off, len_ - off);
      if (n <= 0) {
        ok_ = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    len_ = 0;
  }

  bool ok() const noexcept { return ok_; }

 private:
  void put(char c) noexcept {
    if (len_ == sizeof buf_) flush();
    buf_[len_++] = c;
  }

  int fd_;
  char buf_[4096];
  std::size_t len_ = 0;
  bool ok_ = true;
};

extern "C" void sfcacd_crash_handler(int sig) {
  FlightState& s = fstate();
  // A fault inside the dump (or a second signal during it) must not
  // recurse: restore default and re-raise immediately.
  if (s.in_handler.exchange(1) == 0) {
    FlightRecorder::instance().write_crash_report(sig);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

namespace detail {

void flight_begin_span(const char* name, std::uint64_t start_ns) {
  FlightLog& log = local_flight_log();
  if (log.depth >= FlightRecorder::kMaxDepth) {
    ++log.depth_skipped;
    return;
  }
  log.stack[log.depth++] = FlightLog::Open{name, start_ns, 0};
}

void flight_end_span(std::uint64_t end_ns) {
  FlightLog& log = local_flight_log();
  if (log.depth_skipped > 0) {
    // The matching begin overflowed the stack; spans close LIFO, so the
    // skipped closes all arrive before any tracked one.
    --log.depth_skipped;
    return;
  }
  if (log.depth == 0) return;  // recorder enabled mid-span: nothing pushed
  const FlightLog::Open open = log.stack[--log.depth];
  const std::uint64_t dur =
      end_ns >= open.start_ns ? end_ns - open.start_ns : 0;
  if (log.depth > 0) log.stack[log.depth - 1].child_ns += dur;
  const std::uint64_t self =
      dur >= open.child_ns ? dur - open.child_ns : 0;

  const std::uint64_t h = log.head.load(std::memory_order_relaxed);
  log.ring[h % FlightRecorder::kRingCapacity] =
      FlightRecordPod{open.name, open.start_ns, dur};
  log.head.store(h + 1, std::memory_order_release);
  log.accumulate(open.name, dur, self);
}

void flight_set_thread_name(const char* name) noexcept {
  FlightLog& log = local_flight_log();
  std::snprintf(log.name, sizeof log.name, "%s", name);
}

}  // namespace detail

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::begin_span(const char* name, std::uint64_t start_ns) {
  detail::flight_begin_span(name, start_ns);
}

void FlightRecorder::end_span(std::uint64_t end_ns) {
  detail::flight_end_span(end_ns);
}

std::uint64_t FlightRecorder::recorded() const {
  FlightState& s = fstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::uint64_t n = 0;
  for (const FlightLog& log : s.logs) {
    n += log.head.load(std::memory_order_acquire);
  }
  return n;
}

std::string FlightRecorder::stage_profile_json() const {
  FlightState& s = fstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
  };
  // Keyed by string value (not pointer): the same name literal can have
  // distinct addresses across translation units.
  std::map<std::string, Agg> merged;
  std::uint64_t spans = 0;
  std::uint64_t overflow = 0;
  for (const FlightLog& log : s.logs) {
    spans += log.head.load(std::memory_order_acquire);
    overflow += log.stage_overflow + log.depth_skipped;
    for (const FlightLog::StageSlot& slot : log.stages) {
      if (slot.name == nullptr) continue;
      Agg& a = merged[slot.name];
      a.count += slot.count;
      a.total_ns += slot.total_ns;
      a.self_ns += slot.self_ns;
    }
  }
  std::ostringstream os;
  os << "{\"spans\":" << spans << ",\"untracked\":" << overflow
     << ",\"stages\":{";
  bool first = true;
  for (const auto& [name, a] : merged) {
    if (!first) os << ',';
    first = false;
    os << '"' << util::json_escape(name) << "\":{\"count\":" << a.count
       << ",\"total_ns\":" << a.total_ns << ",\"self_ns\":" << a.self_ns
       << '}';
  }
  os << "}}";
  return os.str();
}

std::string FlightRecorder::rings_json() const {
  FlightState& s = fstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::ostringstream os;
  os << "{\"ring_capacity\":" << kRingCapacity << ",\"threads\":[";
  bool first_log = true;
  for (const FlightLog& log : s.logs) {
    if (!first_log) os << ',';
    first_log = false;
    const std::uint64_t head = log.head.load(std::memory_order_acquire);
    const std::uint64_t count = head < kRingCapacity ? head : kRingCapacity;
    os << "{\"tid\":" << log.tid << ",\"name\":\""
       << util::json_escape(log.name) << "\",\"spans\":[";
    for (std::uint64_t i = 0; i < count; ++i) {
      const FlightRecordPod& r =
          log.ring[(head - count + i) % kRingCapacity];
      if (i != 0) os << ',';
      os << "{\"name\":\"" << util::json_escape(r.name)
         << "\",\"start_ns\":" << r.start_ns << ",\"dur_ns\":" << r.dur_ns
         << '}';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

void FlightRecorder::clear() {
  FlightState& s = fstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (FlightLog& log : s.logs) {
    log.head.store(0, std::memory_order_release);
    log.depth = 0;
    log.depth_skipped = 0;
    log.stage_overflow = 0;
    for (FlightLog::StageSlot& slot : log.stages) {
      slot = FlightLog::StageSlot{};
    }
  }
}

void FlightRecorder::install_crash_handler(const std::string& path) {
  FlightState& s = fstate();
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    std::snprintf(s.path, sizeof s.path, "%s", path.c_str());
    const std::string build = build_info_json();
    std::snprintf(s.build_json, sizeof s.build_json, "%s", build.c_str());
  }
  now_ns();  // force the span-clock epoch init outside the handler
  set_enabled(true);
  publish_metrics_snapshot(Registry::instance().json());
  if (!s.installed.exchange(true)) {
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = sfcacd_crash_handler;
    sigemptyset(&action.sa_mask);
    for (const int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGTERM}) {
      ::sigaction(sig, &action, nullptr);
    }
  }
}

void FlightRecorder::publish_metrics_snapshot(
    const std::string& metrics_json) {
  FlightState& s = fstate();
  if (metrics_json.size() >= kSnapshotCapacity) return;  // keep the old one
  const std::lock_guard<std::mutex> lock(s.mutex);
  const int active = s.snapshot_active.load(std::memory_order_relaxed);
  const int next = active == 0 ? 1 : 0;
  std::memcpy(s.snapshots[next], metrics_json.data(), metrics_json.size());
  s.snapshot_len[next] = metrics_json.size();
  s.snapshot_active.store(next, std::memory_order_release);
}

bool FlightRecorder::write_crash_report(int sig) noexcept {
  FlightState& s = fstate();
  const int fd =
      ::open(s.path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  SigsafeWriter w(fd);
  w.lit("{\"schema\":\"sfcacd-crash-report-v1\"");
  w.lit(",\"signal\":");
  w.u64(static_cast<std::uint64_t>(sig));
  w.lit(",\"signal_name\":\"");
  w.lit(signal_name(sig));
  w.lit("\",\"crash_ns\":");
  w.u64(now_ns());
  w.lit(",\"build\":");
  w.lit(s.build_json);
  w.lit(",\"metrics\":");
  const int active = s.snapshot_active.load(std::memory_order_acquire);
  if (active >= 0 && s.snapshot_len[active] > 0) {
    // The snapshot buffer is complete JSON published with a release
    // store; write it raw.
    std::size_t off = 0;
    w.flush();
    while (off < s.snapshot_len[active]) {
      const ssize_t n =
          ::write(fd, s.snapshots[active] + off, s.snapshot_len[active] - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  } else {
    w.lit("{}");
  }
  w.lit(",\"flight\":{\"ring_capacity\":");
  w.u64(kRingCapacity);
  w.lit(",\"threads\":[");
  const unsigned nlogs = s.nlogs.load(std::memory_order_acquire);
  bool first_log = true;
  for (unsigned i = 0; i < nlogs && i < kMaxThreads; ++i) {
    const FlightLog* log = s.slots[i].load(std::memory_order_acquire);
    if (log == nullptr) continue;
    if (!first_log) w.lit(",");
    first_log = false;
    w.lit("{\"tid\":");
    w.u64(log->tid);
    w.lit(",\"name\":\"");
    w.escaped(log->name);
    w.lit("\",\"events\":[");
    const std::uint64_t head = log->head.load(std::memory_order_acquire);
    const std::uint64_t count = head < kRingCapacity ? head : kRingCapacity;
    bool first_event = true;
    for (std::uint64_t k = 0; k < count; ++k) {
      const FlightRecordPod r =
          log->ring[(head - count + k) % kRingCapacity];
      if (r.name == nullptr) continue;  // torn slot: skip, stay balanced
      if (!first_event) w.lit(",");
      first_event = false;
      w.lit("{\"ph\":\"B\",\"name\":\"");
      w.escaped(r.name);
      w.lit("\",\"ts_ns\":");
      w.u64(r.start_ns);
      w.lit("},{\"ph\":\"E\",\"name\":\"");
      w.escaped(r.name);
      w.lit("\",\"ts_ns\":");
      w.u64(r.start_ns + r.dur_ns);
      w.lit("}");
    }
    w.lit("]}");
  }
  w.lit("]}}\n");
  w.flush();
  const bool ok = w.ok();
  ::close(fd);
  return ok;
}

std::string FlightRecorder::crash_report_path() const {
  FlightState& s = fstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return std::string(s.path);
}

}  // namespace sfc::obs
