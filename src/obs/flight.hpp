// flight.hpp — an always-on flight recorder for post-mortem forensics.
//
// The span tracer (obs/trace.hpp) answers "what happened in this run?"
// but must be pre-armed with --trace and grows without bound — neither
// property suits a long-running advisor server that degrades after an
// hour or dies mid-query. The flight recorder is the complement: a
// *bounded* per-thread ring of the most recently completed spans, cheap
// enough to leave enabled for the whole process lifetime, plus an
// async-signal-safe dump path that turns SIGSEGV/SIGABRT/SIGTERM into a
// crash-report file holding the last-N spans of every thread, the newest
// metrics snapshot, and the build provenance.
//
// Three responsibilities, one per section below:
//
//  1. Ring recording. obs::Span feeds every completed span (name, start,
//     duration) into the calling thread's fixed-capacity ring — single
//     writer, no locks, wrap-around overwrite. The write path is two
//     clock reads plus a few stores (BM_ObsSpanFlight in
//     bench/micro_obs.cpp), which keeps the <1% disabled-tracing
//     overhead gate green with the recorder always on.
//
//  2. Stage profile. The same completion hook accumulates per-name
//     {count, total_ns, self_ns} into a per-thread open-addressed table
//     (self time = duration minus time spent in nested child spans,
//     tracked by a per-thread span stack). stage_profile_json() merges
//     the per-thread tables into the document the bench harness embeds
//     and scripts/attribute_regression.py diffs.
//
//  3. Crash reports. install_crash_handler(path) registers handlers for
//     SIGSEGV/SIGABRT/SIGTERM (and SIGBUS) that write a JSON report
//     using only async-signal-safe primitives (open/write, no
//     allocation, no formatting library), then re-raise the signal with
//     its default disposition. The "metrics" member is the most recent
//     snapshot published via publish_metrics_snapshot() — the sampler
//     (obs/sampler.hpp) republishes on every tick, so a crashed server
//     reports state at most one sampling period old. The report schema
//     is validated by scripts/check_crash_report.py.
//
// Ring reads during a dump are best-effort: other threads keep recording
// while the handler walks their rings, so a record may pair the name of
// one span with the timing of another. Names are always valid pointers
// (static-lifetime strings, the same contract as Span), so the dump can
// never fault on them — only mislabel a span that was being overwritten
// at the instant of the crash.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/trace.hpp"  // flight_enabled, now_ns, the Span hooks

namespace sfc::obs {

class FlightRecorder {
 public:
  /// Per-thread ring capacity (completed spans retained per thread).
  static constexpr std::size_t kRingCapacity = 128;
  /// Open-span stack depth per thread; deeper nesting is still timed
  /// for the ring but stops contributing to parents' self-time split.
  static constexpr unsigned kMaxDepth = 64;

  static FlightRecorder& instance();

  void set_enabled(bool on) noexcept {
    g_flight_enabled.store(on, std::memory_order_relaxed);
  }

  /// Span-entry hook: pushes onto the calling thread's open-span stack.
  /// Every begin_span MUST be matched by exactly one end_span on the
  /// same thread (obs::Span guarantees this via RAII).
  void begin_span(const char* name, std::uint64_t start_ns);

  /// Span-exit hook: pops the stack, appends the completed span to the
  /// thread's ring, and accumulates the stage profile.
  void end_span(std::uint64_t end_ns);

  /// Completed spans recorded across all threads (monotonic; rings
  /// retain only the newest kRingCapacity per thread).
  std::uint64_t recorded() const;

  /// Merged per-span-name aggregate over all threads, ascending name
  /// order: {"stages":{name:{"count":..,"total_ns":..,"self_ns":..}}}.
  /// Requires quiescence (no thread inside a span), like the tracer's
  /// export.
  std::string stage_profile_json() const;

  /// The per-thread rings as JSON (oldest to newest per thread):
  /// {"threads":[{"tid":..,"name":..,"spans":[{"name":..,"start_ns":..,
  /// "dur_ns":..}]}]}. Requires quiescence.
  std::string rings_json() const;

  /// Drop all recorded state (rings, stage tables, recorded() count).
  /// Requires quiescence; intended for tests.
  void clear();

  // ----------------------------------------------------------- crash path

  /// Install SIGSEGV/SIGBUS/SIGABRT/SIGTERM handlers that dump a crash
  /// report to `path` and re-raise. Also enables the recorder, captures
  /// the build-provenance JSON, and publishes an initial metrics
  /// snapshot, so a crash one instruction later already has a complete
  /// report. Idempotent; later calls just update the path.
  void install_crash_handler(const std::string& path);

  /// Replace the pre-serialized metrics snapshot the crash handler will
  /// embed. Must be a complete JSON object; truncated to the internal
  /// buffer capacity (64 KiB) if enormous — the handler then falls back
  /// to "{}" for that slot rather than emit invalid JSON.
  void publish_metrics_snapshot(const std::string& metrics_json);

  /// The handler body: write the report for `sig` to the installed
  /// path. Async-signal-safe; public so tests (and SIGTERM-style
  /// graceful shutdown paths) can exercise the dump without crashing.
  /// Returns false if the report file could not be opened.
  bool write_crash_report(int sig) noexcept;

  std::string crash_report_path() const;

 private:
  FlightRecorder() = default;
};

}  // namespace sfc::obs
