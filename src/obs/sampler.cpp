#include "obs/sampler.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"  // now_ns
#include "util/table.hpp"  // util::json_escape

namespace sfc::obs {
namespace {

struct Point {
  std::uint64_t t_ns = 0;
  double v = 0.0;
  double rate_per_s = 0.0;  ///< counters only
};

/// One metric's bounded history. A deque trimmed to capacity — sampling
/// happens a few times per second, never on a hot path, so pointer
/// stability and O(1) push/pop beat a hand-rolled ring here.
struct Series {
  bool is_counter = false;
  std::deque<Point> points;
  // Last raw sample, kept even after the ring trims it, so rates stay
  // correct across wraparound.
  std::uint64_t last_t_ns = 0;
  double last_v = 0.0;
  bool has_last = false;
};

/// Heap-allocated and never destroyed (same discipline as the registry:
/// exports may race static destruction).
struct SamplerState {
  mutable std::mutex mutex;
  std::uint64_t period_ms = 0;  ///< 0 = unconfigured, resolve at start
  std::size_t capacity = Sampler::kDefaultCapacity;
  std::map<std::string, Series> series;
  std::uint64_t ticks = 0;

  std::thread worker;
  std::condition_variable cv;
  bool running = false;
  bool stop_requested = false;
};

SamplerState& sstate() {
  static SamplerState* s = new SamplerState;
  return *s;
}

void append_sample(SamplerState& s, const std::string& name, bool is_counter,
                   std::uint64_t t_ns, double v) {
  Series& ser = s.series[name];
  ser.is_counter = is_counter;
  Point p{t_ns, v, 0.0};
  if (is_counter && ser.has_last && t_ns > ser.last_t_ns) {
    const double dv = v - ser.last_v;  // counters are monotonic; clamp anyway
    const double dt_s =
        static_cast<double>(t_ns - ser.last_t_ns) / 1e9;
    p.rate_per_s = dv > 0.0 ? dv / dt_s : 0.0;
  }
  ser.last_t_ns = t_ns;
  ser.last_v = v;
  ser.has_last = true;
  ser.points.push_back(p);
  while (ser.points.size() > s.capacity) ser.points.pop_front();
}

void worker_loop() {
  SamplerState& s = sstate();
  std::unique_lock<std::mutex> lock(s.mutex);
  while (!s.stop_requested) {
    const auto period = std::chrono::milliseconds(s.period_ms);
    s.cv.wait_for(lock, period, [&s] { return s.stop_requested; });
    if (s.stop_requested) break;
    lock.unlock();
    Sampler::instance().sample_once(now_ns());
    lock.lock();
  }
}

}  // namespace

Sampler& Sampler::instance() {
  static Sampler sampler;
  return sampler;
}

std::uint64_t Sampler::default_period_ms() {
  if (const char* env = std::getenv("SFCACD_OBS_SAMPLE_MS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::uint64_t>(v);
    }
  }
  return kDefaultPeriodMs;
}

void Sampler::configure(std::uint64_t period_ms, std::size_t capacity) {
  SamplerState& s = sstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (period_ms > 0) s.period_ms = period_ms;
  if (capacity > 0) {
    s.capacity = capacity;
    for (auto& [name, ser] : s.series) {
      while (ser.points.size() > s.capacity) ser.points.pop_front();
    }
  }
}

void Sampler::start() {
  SamplerState& s = sstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.running) return;
  if (s.period_ms == 0) s.period_ms = default_period_ms();
  s.stop_requested = false;
  s.running = true;
  s.worker = std::thread(worker_loop);
}

void Sampler::stop() {
  SamplerState& s = sstate();
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.running) return;
    s.stop_requested = true;
  }
  s.cv.notify_all();
  s.worker.join();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.running = false;
}

bool Sampler::running() const {
  SamplerState& s = sstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.running;
}

void Sampler::sample_once(std::uint64_t t_ns) {
  const MetricsSnapshot snap = Registry::instance().snapshot();
  SamplerState& s = sstate();
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [name, v] : snap.counters) {
      append_sample(s, name, /*is_counter=*/true, t_ns,
                    static_cast<double>(v));
    }
    for (const auto& [name, v] : snap.gauges) {
      append_sample(s, name, /*is_counter=*/false, t_ns, v);
    }
    for (const HistogramValues& h : snap.histograms) {
      append_sample(s, h.name + ".count", /*is_counter=*/true, t_ns,
                    static_cast<double>(h.count));
    }
    ++s.ticks;
  }
  // Keep the crash report's metrics at most one period stale.
  FlightRecorder::instance().publish_metrics_snapshot(
      Registry::instance().json());
}

std::uint64_t Sampler::tick_count() const {
  SamplerState& s = sstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.ticks;
}

void Sampler::clear() {
  SamplerState& s = sstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.series.clear();
  s.ticks = 0;
}

std::string Sampler::json() const {
  SamplerState& s = sstate();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::ostringstream os;
  os.precision(17);
  os << "{\"period_ms\":" << s.period_ms << ",\"capacity\":" << s.capacity
     << ",\"ticks\":" << s.ticks << ",\"series\":{";
  bool first = true;
  for (const auto& [name, ser] : s.series) {
    if (!first) os << ',';
    first = false;
    os << '"' << util::json_escape(name) << "\":{\"kind\":\""
       << (ser.is_counter ? "counter" : "gauge") << "\",\"points\":[";
    bool fp = true;
    for (const Point& p : ser.points) {
      if (!fp) os << ',';
      fp = false;
      os << "{\"t_ns\":" << p.t_ns << ",\"v\":" << p.v << '}';
    }
    os << ']';
    if (ser.is_counter) {
      os << ",\"rate_per_s\":[";
      fp = true;
      for (const Point& p : ser.points) {
        if (!fp) os << ',';
        fp = false;
        os << p.rate_per_s;
      }
      os << ']';
    }
    os << '}';
  }
  os << "}}";
  return os.str();
}

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "sfcacd_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_text() {
  const MetricsSnapshot snap = Registry::instance().snapshot();
  std::ostringstream os;
  os.precision(17);
  for (const auto& [name, v] : snap.counters) {
    const std::string pname = prometheus_metric_name(name);
    os << "# TYPE " << pname << " counter\n" << pname << ' ' << v << '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string pname = prometheus_metric_name(name);
    os << "# TYPE " << pname << " gauge\n" << pname << ' ' << v << '\n';
  }
  for (const HistogramValues& h : snap.histograms) {
    const std::string pname = prometheus_metric_name(h.name);
    os << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [le, n] : h.buckets) {
      cumulative += n;
      os << pname << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    os << pname << "_bucket{le=\"+Inf\"} " << h.count << '\n'
       << pname << "_sum " << h.sum << '\n'
       << pname << "_count " << h.count << '\n';
  }
  return os.str();
}

}  // namespace sfc::obs
