#include "obs/metrics.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "util/table.hpp"  // util::json_escape

namespace sfc::obs {
namespace {

/// Heap-allocated and never destroyed: instruments may be updated by
/// worker threads during static destruction (e.g. the global ThreadPool).
/// The retired vector holds instruments detached by reset_for_testing():
/// handles into them stay valid, they just stop being exported.
struct RegistryState {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::vector<std::shared_ptr<void>> retired;
};

RegistryState& state() {
  static RegistryState* s = new RegistryState;
  return *s;
}

template <typename T>
T& lookup(std::map<std::string, std::unique_ptr<T>>& map,
          const std::string& name) {
  const std::lock_guard<std::mutex> lock(state().mutex);
  std::unique_ptr<T>& slot = map[name];
  if (slot == nullptr) slot = std::make_unique<T>();
  return *slot;
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  return lookup(state().counters, name);
}

Gauge& Registry::gauge(const std::string& name) {
  return lookup(state().gauges, name);
}

Histogram& Registry::histogram(const std::string& name) {
  return lookup(state().histograms, name);
}

std::string Registry::json() const {
  RegistryState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::ostringstream os;
  os.precision(17);

  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : s.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << util::json_escape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : s.gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << util::json_escape(name) << "\":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    if (!first) os << ',';
    first = false;
    const std::uint64_t count = h->count();
    os << '"' << util::json_escape(name) << "\":{\"count\":" << count
       << ",\"sum\":" << h->sum();
    if (count > 0) {
      os << ",\"min\":" << h->min() << ",\"max\":" << h->max()
         << ",\"mean\":"
         << static_cast<double>(h->sum()) / static_cast<double>(count);
    }
    os << ",\"buckets\":[";
    bool first_bucket = true;
    for (unsigned b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      if (!first_bucket) os << ',';
      first_bucket = false;
      os << "{\"le\":" << Histogram::bucket_le(b) << ",\"count\":" << n
         << '}';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

MetricsSnapshot Registry::snapshot() const {
  RegistryState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(s.counters.size());
  for (const auto& [name, c] : s.counters) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(s.gauges.size());
  for (const auto& [name, g] : s.gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(s.histograms.size());
  for (const auto& [name, h] : s.histograms) {
    HistogramValues v;
    v.name = name;
    v.count = h->count();
    v.sum = h->sum();
    if (v.count > 0) {
      v.min = h->min();
      v.max = h->max();
    }
    for (unsigned b = 0; b < Histogram::kBucketCount; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n != 0) v.buckets.emplace_back(Histogram::bucket_le(b), n);
    }
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

void Registry::reset() {
  RegistryState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [name, c] : s.counters) c->reset();
  for (auto& [name, g] : s.gauges) g->reset();
  for (auto& [name, h] : s.histograms) h->reset();
}

void Registry::reset_for_testing() {
  RegistryState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [name, c] : s.counters) s.retired.emplace_back(std::move(c));
  for (auto& [name, g] : s.gauges) s.retired.emplace_back(std::move(g));
  for (auto& [name, h] : s.histograms) s.retired.emplace_back(std::move(h));
  s.counters.clear();
  s.gauges.clear();
  s.histograms.clear();
}

}  // namespace sfc::obs
