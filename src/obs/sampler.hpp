// sampler.hpp — time-series telemetry over the metrics registry.
//
// Registry::json() answers "what are the totals now?"; a regression
// investigation needs "how did they move?". The Sampler closes that gap:
// a background thread snapshots the Registry every period_ms and appends
// each instrument's value to a fixed-capacity per-metric ring buffer, so
// a long-running process retains a sliding window of its recent history
// at a bounded, configurable memory cost. For counters (and histogram
// counts) the sampler also derives a rate-per-second series from
// consecutive samples — the signal that actually localizes a stall or a
// throughput cliff in time.
//
// Each tick also republishes the freshly serialized registry snapshot to
// the flight recorder (obs/flight.hpp), so a crash report's "metrics"
// member is never more than one sampling period stale.
//
// Exports:
//  - json(): the ring buffers as one document (deterministic ascending
//    name order), embedded by the bench harness under "timeseries".
//  - prometheus_text(): the *current* registry values in the Prometheus
//    text exposition format (metric names prefixed "sfcacd_" and
//    sanitized; histograms as cumulative le-labelled buckets with
//    _sum/_count). Validated by scripts/check_prometheus.py in CI.
//
// The sampling period defaults to the SFCACD_OBS_SAMPLE_MS environment
// variable (milliseconds) when set, else kDefaultPeriodMs; the bench
// harness overrides it with --sample-ms. sample_once(t_ns) is public and
// takes an explicit timestamp so tests drive the ring/rate logic under a
// fake clock without a background thread.
#pragma once

#include <cstdint>
#include <string>

namespace sfc::obs {

/// Background registry sampler with bounded per-metric history.
/// start()/stop() manage the thread; configure() must not be called
/// while running. All exports are safe to call concurrently with the
/// background thread.
class Sampler {
 public:
  static constexpr std::uint64_t kDefaultPeriodMs = 250;
  static constexpr std::size_t kDefaultCapacity = 240;

  static Sampler& instance();

  /// Sampling period in ms (0 keeps the current value) and ring capacity
  /// in points per metric (0 keeps current). Existing history survives a
  /// capacity change only up to the new capacity. Call before start().
  void configure(std::uint64_t period_ms, std::size_t capacity);

  /// The period configure() would default to: SFCACD_OBS_SAMPLE_MS if
  /// set to a positive integer, else kDefaultPeriodMs.
  static std::uint64_t default_period_ms();

  /// Launch the background thread (idempotent). Ticks every period_ms
  /// until stop().
  void start();

  /// Stop and join the background thread (idempotent). History is kept.
  void stop();

  bool running() const;

  /// Take one sample at span-clock time `t_ns`: snapshot the registry,
  /// append every instrument's value to its ring, derive counter rates
  /// against the previous sample, republish the flight-recorder metrics
  /// snapshot. The background thread calls this with now_ns(); tests
  /// call it directly with a fake clock.
  void sample_once(std::uint64_t t_ns);

  /// Samples taken since process start (monotonic, never trimmed).
  std::uint64_t tick_count() const;

  /// Drop all recorded series and the tick count (configuration and the
  /// running thread survive). Intended for tests.
  void clear();

  /// The ring buffers as one JSON document, ascending metric-name order:
  /// {"period_ms":..,"capacity":..,"ticks":..,"series":{name:{"kind":
  /// "counter"|"gauge","points":[{"t_ns":..,"v":..}],"rate_per_s":
  /// [..]}}}. Counter series carry rate_per_s (one entry per point;
  /// the first is 0); gauge series omit it. Histogram instruments
  /// appear as "<name>.count" counter series.
  std::string json() const;

 private:
  Sampler() = default;
};

/// The current registry contents in the Prometheus text exposition
/// format (version 0.0.4): "# TYPE" lines, "sfcacd_"-prefixed sanitized
/// names, histograms as cumulative buckets with le="..." labels plus
/// +Inf, _sum and _count. Deterministic ascending name order.
std::string prometheus_text();

/// "sfcacd_" + name with every character outside [a-zA-Z0-9_] replaced
/// by '_' (Prometheus metric-name grammar).
std::string prometheus_metric_name(const std::string& name);

}  // namespace sfc::obs
