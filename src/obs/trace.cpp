#include "obs/trace.hpp"

#include <chrono>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>

#include "util/table.hpp"  // util::json_escape

namespace sfc::obs {
namespace {

struct Event {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  bool begin = false;
};

/// One thread's event log: appended only by the owning thread, read by
/// the exporter under the tracer mutex after the writer has quiesced.
/// Storage is chunked so appends never move existing events; the only
/// lock on the write path guards the (rare) allocation of a new chunk.
class ThreadLog {
 public:
  static constexpr std::size_t kChunkEvents = 4096;

  explicit ThreadLog(std::uint32_t tid)
      : tid_(tid), name_("thread-" + std::to_string(tid)) {}

  void append(const Event& e) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n == chunks_.size() * kChunkEvents) {
      const std::lock_guard<std::mutex> lock(chunk_mutex_);
      chunks_.emplace_back();
    }
    chunks_[n / kChunkEvents].events[n % kChunkEvents] = e;
    count_.store(n + 1, std::memory_order_release);
  }

  std::uint32_t tid() const noexcept { return tid_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(const std::string& name) { name_ = name; }

  std::size_t size() const noexcept {
    return count_.load(std::memory_order_acquire);
  }
  const Event& event(std::size_t i) const noexcept {
    return chunks_[i / kChunkEvents].events[i % kChunkEvents];
  }
  void reset() noexcept { count_.store(0, std::memory_order_release); }

 private:
  struct Chunk {
    Event events[kChunkEvents];
  };

  std::uint32_t tid_;
  std::string name_;
  std::deque<Chunk> chunks_;  ///< deque: chunk addresses never move
  std::atomic<std::size_t> count_{0};
  std::mutex chunk_mutex_;
};

/// Heap-allocated and never destroyed: worker threads (e.g. the global
/// ThreadPool's) may still record during static destruction.
struct TracerState {
  mutable std::mutex mutex;        ///< registry, names, interning
  std::deque<ThreadLog> logs;      ///< stable addresses
  std::deque<std::string> interned;
};

TracerState& state() {
  static TracerState* s = new TracerState;
  return *s;
}

thread_local ThreadLog* t_log = nullptr;

ThreadLog& local_log() {
  if (t_log == nullptr) {
    TracerState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.logs.emplace_back(static_cast<std::uint32_t>(s.logs.size() + 1));
    t_log = &s.logs.back();
  }
  return *t_log;
}

void print_event(std::ostream& os, const Event& e, std::uint32_t tid,
                 bool& first) {
  if (!first) os << ",\n";
  first = false;
  // Microsecond timestamps with nanosecond resolution kept in the
  // fraction (the trace-event format's ts unit is microseconds).
  const std::uint64_t us = e.ts_ns / 1000;
  const std::uint64_t frac = e.ts_ns % 1000;
  os << "{\"ph\":\"" << (e.begin ? 'B' : 'E') << "\",\"name\":\""
     << util::json_escape(e.name) << "\",\"cat\":\"sfc\",\"pid\":1,\"tid\":"
     << tid << ",\"ts\":" << us << '.';
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10) << '}';
}

}  // namespace

std::uint64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_thread_name(const std::string& name) {
  {
    ThreadLog& log = local_log();
    const std::lock_guard<std::mutex> lock(state().mutex);
    log.set_name(name);
  }
  detail::flight_set_thread_name(name.c_str());
}

const char* Tracer::intern(const std::string& name) {
  TracerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const std::string& existing : s.interned) {
    if (existing == name) return existing.c_str();
  }
  s.interned.push_back(name);
  return s.interned.back().c_str();
}

void Tracer::record_begin(const char* name) {
  local_log().append(Event{name, now_ns(), true});
}

void Tracer::record_end(const char* name) {
  local_log().append(Event{name, now_ns(), false});
}

std::size_t Tracer::event_count() const {
  TracerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t n = 0;
  for (const ThreadLog& log : s.logs) n += log.size();
  return n;
}

void Tracer::export_chrome_trace(std::ostream& os) const {
  TracerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const ThreadLog& log : s.logs) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
       << log.tid() << ",\"args\":{\"name\":\""
       << util::json_escape(log.name()) << "\"}}";
    const std::size_t n = log.size();
    for (std::size_t i = 0; i < n; ++i) {
      print_event(os, log.event(i), log.tid(), first);
    }
  }
  os << "\n]}\n";
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  export_chrome_trace(os);
  return os.good();
}

void Tracer::clear() {
  TracerState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (ThreadLog& log : s.logs) log.reset();
}

}  // namespace sfc::obs
