// trace.hpp — a low-overhead span tracer for the ACD pipeline.
//
// obs::Span is an RAII scope: its constructor records a begin ("B") event
// and its destructor the matching end ("E") event, stamped with a
// steady-clock timestamp and the recording thread's id. Events land in
// per-thread buffers — a chunked log appended only by its owning thread
// (lock-free on the hot path; a mutex is taken only when a 4096-event
// chunk fills) — so instrumenting the ThreadPool and the sweep engine's
// worker tasks never serializes them. Tracer::write_chrome_trace emits
// the Chrome trace-event JSON format, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Cost discipline: a disabled tracer costs one relaxed atomic load and a
// branch per span (micro-benched in bench/micro_obs.cpp; see
// docs/observability.md for the numbers), and the SFC_OBS_DISABLE
// compile-time switch (CMake option SFCACD_OBS_DISABLE) turns Span into
// an empty struct so instrumented call sites compile to nothing.
//
// Export assumes quiescence: call write_chrome_trace when no thread is
// inside a span (the harness exports after the run body and its pool
// have finished). Span names must have static storage duration — pass
// string literals, or Tracer::intern() a dynamic name once.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace sfc::obs {

#if defined(SFC_OBS_DISABLE)
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// Nanoseconds on the monotonic span clock (steady_clock, relative to a
/// process-wide epoch captured on first use). Every timestamp the obs
/// layer or its clients report — span events, per-cell elapsed times,
/// queue-wait histograms — comes from this one clock, so they can never
/// disagree.
std::uint64_t now_ns() noexcept;

/// Runtime enable flag, checked (relaxed) at every span entry.
inline std::atomic<bool> g_tracing_enabled{false};

inline bool tracing_enabled() noexcept {
  return kTracingCompiledIn &&
         g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Flight-recorder enable flag (obs/flight.hpp), checked alongside the
/// tracing flag at every span entry. Lives here so Span can feed the
/// recorder without trace.hpp depending on flight.hpp.
inline std::atomic<bool> g_flight_enabled{false};

inline bool flight_enabled() noexcept {
  return kTracingCompiledIn &&
         g_flight_enabled.load(std::memory_order_relaxed);
}

namespace detail {
/// Implemented in flight.cpp: the completion hooks Span calls when the
/// flight recorder is enabled. begin pushes the per-thread open-span
/// stack; end pops it, appends the completed span to the thread's ring,
/// and accumulates the stage profile.
void flight_begin_span(const char* name, std::uint64_t start_ns);
void flight_end_span(std::uint64_t end_ns);
/// Mirror a thread name into the flight recorder's log (crash reports
/// label threads with it). Called by Tracer::set_thread_name.
void flight_set_thread_name(const char* name) noexcept;
}  // namespace detail

class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on) noexcept {
    g_tracing_enabled.store(on, std::memory_order_relaxed);
  }

  /// Name the calling thread in the exported trace (also registers its
  /// buffer). Safe to call whether or not tracing is enabled.
  void set_thread_name(const std::string& name);

  /// Copy a dynamic string into tracer-owned storage and return a
  /// pointer that satisfies Span's static-lifetime requirement.
  const char* intern(const std::string& name);

  /// Append a begin/end event to the calling thread's buffer. Span calls
  /// these; call them directly only to bracket a scope that RAII cannot
  /// express.
  void record_begin(const char* name);
  void record_end(const char* name);

  /// Total recorded events across all threads (B + E both count).
  std::size_t event_count() const;

  /// Emit the Chrome trace-event JSON document. Requires quiescence (no
  /// thread currently inside a span).
  void export_chrome_trace(std::ostream& os) const;

  /// export_chrome_trace to a file; false if the file cannot be opened.
  bool write_chrome_trace(const std::string& path) const;

  /// Drop all recorded events (thread registrations and names survive).
  /// Requires quiescence; intended for tests.
  void clear();

 private:
  Tracer() = default;
};

#if !defined(SFC_OBS_DISABLE)

/// RAII trace span. When both the tracer and the flight recorder are
/// disabled the constructor is two relaxed loads and a branch; when
/// either is enabled, a timestamp plus an append to the corresponding
/// thread-local buffer at entry and at exit. The two sinks are
/// independent: --trace runs feed the Perfetto export, the always-on
/// flight recorder feeds the bounded crash-forensics ring and the
/// stage profile.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    const bool traced = tracing_enabled();
    const bool flight = flight_enabled();
    if (traced || flight) {
      name_ = name;
      traced_ = traced;
      flight_ = flight;
      if (traced) Tracer::instance().record_begin(name);
      if (flight) detail::flight_begin_span(name, now_ns());
    }
  }
  ~Span() {
    // A sink that was enabled at entry is closed even if it was disabled
    // mid-scope, so B/E events always balance and the flight stack
    // always pops what it pushed.
    if (name_ != nullptr) {
      if (traced_) Tracer::instance().record_end(name_);
      if (flight_) detail::flight_end_span(now_ns());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  bool traced_ = false;
  bool flight_ = false;
};

#else  // SFC_OBS_DISABLE: spans compile to nothing.

class Span {
 public:
  explicit Span(const char*) noexcept {}
};

#endif

}  // namespace sfc::obs
