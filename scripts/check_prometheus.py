#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (format 0.0.4).

The bench harness's --prom flag (obs::prometheus_text) emits the final
metrics registry in the Prometheus text format; CI runs this checker over
that output so a formatting regression fails the build rather than a
scrape. Checks:

  - every sample line parses as `name[{labels}] value`
  - metric names match the Prometheus grammar and carry the sfcacd_ prefix
  - every sample is preceded by a # TYPE declaration for its family
    (histogram samples may use the _bucket/_sum/_count suffixes)
  - the declared type is counter, gauge, or histogram
  - histogram bucket counts are cumulative (non-decreasing in le order),
    the +Inf bucket exists and equals _count
  - counter and histogram values are non-negative

Usage: scripts/check_prometheus.py FILE [--min-samples N]
Exits nonzero with a message per violation.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$")
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<type>\w+)$")
VALID_TYPES = {"counter", "gauge", "histogram"}
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, types):
    """The declared family a sample belongs to (histograms sample through
    their suffixed series)."""
    if name in types:
        return name
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def check(path, min_samples):
    errors = []
    types = {}
    samples = 0
    histograms = {}  # family -> {"buckets": [(le, v)], "sum": v, "count": v}

    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                m = TYPE_RE.match(line)
                if m:
                    if m.group("type") not in VALID_TYPES:
                        errors.append(f"line {lineno}: TYPE "
                                      f"{m.group('type')!r} is not one of "
                                      f"{sorted(VALID_TYPES)}")
                    if m.group("name") in types:
                        errors.append(f"line {lineno}: duplicate TYPE for "
                                      f"{m.group('name')}")
                    types[m.group("name")] = m.group("type")
                continue  # other comments (HELP etc.) are fine
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"line {lineno}: unparseable sample: {line!r}")
                continue
            name = m.group("name")
            try:
                value = float(m.group("value"))
            except ValueError:
                errors.append(f"line {lineno}: non-numeric value "
                              f"{m.group('value')!r}")
                continue
            samples += 1
            family = family_of(name, types)
            if family is None:
                errors.append(f"line {lineno}: sample {name} has no "
                              "preceding # TYPE declaration")
                continue
            if not family.startswith("sfcacd_"):
                errors.append(f"line {lineno}: {family} lacks the sfcacd_ "
                              "prefix")
            ftype = types[family]
            if ftype in ("counter", "histogram") and value < 0:
                errors.append(f"line {lineno}: {name} = {value} but "
                              f"{ftype}s are non-negative")
            if ftype == "histogram":
                h = histograms.setdefault(family,
                                          {"buckets": [], "sum": None,
                                           "count": None})
                if name == family + "_bucket":
                    labels = m.group("labels") or ""
                    lm = re.match(r'^le="([^"]*)"$', labels)
                    if not lm:
                        errors.append(f"line {lineno}: bucket without an "
                                      f"le label: {labels!r}")
                        continue
                    le = (float("inf") if lm.group(1) == "+Inf"
                          else float(lm.group(1)))
                    h["buckets"].append((le, value, lineno))
                elif name == family + "_sum":
                    h["sum"] = value
                elif name == family + "_count":
                    h["count"] = value
                else:  # bare family name as a sample of a histogram
                    errors.append(f"line {lineno}: histogram {family} "
                                  "sampled without a suffix")

    for family, h in histograms.items():
        buckets = h["buckets"]
        if not buckets or buckets[-1][0] != float("inf"):
            errors.append(f"{family}: histogram missing the +Inf bucket")
            continue
        les = [b[0] for b in buckets]
        if les != sorted(les):
            errors.append(f"{family}: bucket le values not ascending")
        values = [b[1] for b in buckets]
        for i in range(1, len(values)):
            if values[i] < values[i - 1]:
                errors.append(f"{family}: bucket counts not cumulative at "
                              f"le={les[i]} (line {buckets[i][2]})")
                break
        if h["count"] is None:
            errors.append(f"{family}: missing _count")
        elif values and values[-1] != h["count"]:
            errors.append(f"{family}: +Inf bucket {values[-1]} != _count "
                          f"{h['count']}")
        if h["sum"] is None:
            errors.append(f"{family}: missing _sum")

    if samples < min_samples:
        errors.append(f"only {samples} samples (expected >= {min_samples}) "
                      "— did the run record any metrics?")
    return errors, samples, len(types)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="Prometheus text-exposition file")
    parser.add_argument("--min-samples", type=int, default=1,
                        help="fail if fewer samples than this are present")
    opts = parser.parse_args()
    errors, samples, families = check(opts.file, opts.min_samples)
    if errors:
        for e in errors:
            print(f"check_prometheus: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_prometheus: OK — {samples} samples across "
          f"{families} families in {opts.file}")


if __name__ == "__main__":
    main()
