#!/usr/bin/env sh
# Rebuilds and regenerates every table/figure of the reproduction.
# Usage: scripts/run_all_experiments.sh [--full]
# With --full the Figure 6/7 harnesses run at the paper's exact scale
# (roughly 12 minutes each on one core); otherwise reduced defaults.
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

FULL=""
if [ "${1:-}" = "--full" ]; then
  FULL="--full"
fi

mkdir -p results
for b in build/bench/*; do
  name=$(basename "$b")
  echo "== $name =="
  case "$name" in
    fig6_topologies|fig7_scaling)
      "$b" $FULL | tee "results/$name.txt" ;;
    micro_*)
      "$b" | tee "results/$name.txt" ;;
    *)
      "$b" | tee "results/$name.txt" ;;
  esac
done
echo "results written to results/"
