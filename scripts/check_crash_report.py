#!/usr/bin/env python3
"""Validate a flight-recorder crash report (sfcacd-crash-report-v1).

The obs::FlightRecorder's signal handler writes this document from inside
SIGSEGV/SIGABRT/SIGTERM using only async-signal-safe primitives; this
checker is the schema's executable definition. CI provokes a crash on
purpose, runs this over the report, and archives it as an artifact.

Checks:
  - the file is valid JSON with schema == "sfcacd-crash-report-v1"
  - signal/signal_name are present and consistent (--expect-signal pins
    the number)
  - build provenance carries version and git_sha
  - crash_ns is a non-negative integer on the span clock
  - metrics is an object (the registry snapshot published before the
    crash, or {} when none was published)
  - every flight thread's events are balanced: B/E alternate, each E
    matches its B's name, timestamps are monotone within a pair, and no
    thread exceeds the declared ring capacity in completed spans

Usage: scripts/check_crash_report.py FILE [--expect-signal N]
                                     [--min-spans N]
Exits nonzero with a message per violation.
"""

import argparse
import json
import sys

KNOWN_SIGNALS = {4: "SIGILL", 6: "SIGABRT", 7: "SIGBUS", 8: "SIGFPE",
                 11: "SIGSEGV", 15: "SIGTERM"}


def check(doc, expect_signal, min_spans):
    errors = []

    if doc.get("schema") != "sfcacd-crash-report-v1":
        errors.append(f"schema is {doc.get('schema')!r}, expected "
                      "'sfcacd-crash-report-v1'")

    sig = doc.get("signal")
    if not isinstance(sig, int):
        errors.append("missing integer 'signal'")
    elif expect_signal is not None and sig != expect_signal:
        errors.append(f"signal {sig} != expected {expect_signal}")
    name = doc.get("signal_name")
    if not isinstance(name, str) or not name:
        errors.append("missing 'signal_name'")
    elif isinstance(sig, int) and sig in KNOWN_SIGNALS \
            and name != KNOWN_SIGNALS[sig]:
        errors.append(f"signal_name {name!r} inconsistent with signal "
                      f"{sig} ({KNOWN_SIGNALS[sig]})")

    crash_ns = doc.get("crash_ns")
    if not isinstance(crash_ns, int) or crash_ns < 0:
        errors.append("crash_ns missing or negative")

    build = doc.get("build")
    if not isinstance(build, dict):
        errors.append("missing 'build' object")
    else:
        for key in ("version", "git_sha"):
            if not build.get(key):
                errors.append(f"build.{key} missing")

    if not isinstance(doc.get("metrics"), dict):
        errors.append("'metrics' is not an object")

    flight = doc.get("flight")
    total_spans = 0
    if not isinstance(flight, dict) or \
            not isinstance(flight.get("threads"), list):
        errors.append("missing flight.threads list")
    else:
        capacity = flight.get("ring_capacity")
        if not isinstance(capacity, int) or capacity <= 0:
            errors.append("flight.ring_capacity missing or non-positive")
            capacity = None
        for t in flight["threads"]:
            tid = t.get("tid", "?")
            events = t.get("events")
            if not isinstance(events, list):
                errors.append(f"thread {tid}: missing events list")
                continue
            if len(events) % 2 != 0:
                errors.append(f"thread {tid}: odd event count "
                              f"{len(events)} — unbalanced B/E")
                continue
            for i in range(0, len(events), 2):
                b, e = events[i], events[i + 1]
                if b.get("ph") != "B" or e.get("ph") != "E":
                    errors.append(f"thread {tid}: events[{i}] not a B/E "
                                  "pair")
                    break
                if b.get("name") != e.get("name"):
                    errors.append(f"thread {tid}: E name "
                                  f"{e.get('name')!r} != B name "
                                  f"{b.get('name')!r} at events[{i}]")
                    break
                if not isinstance(b.get("ts_ns"), int) or \
                        not isinstance(e.get("ts_ns"), int) or \
                        e["ts_ns"] < b["ts_ns"]:
                    errors.append(f"thread {tid}: non-monotone pair "
                                  f"timestamps at events[{i}]")
                    break
            spans = len(events) // 2
            total_spans += spans
            if capacity is not None and spans > capacity:
                errors.append(f"thread {tid}: {spans} spans exceed the "
                              f"declared ring capacity {capacity}")
    if total_spans < min_spans:
        errors.append(f"only {total_spans} recorded spans (expected >= "
                      f"{min_spans}) — was the flight recorder enabled?")
    return errors, total_spans


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="crash-report JSON file")
    parser.add_argument("--expect-signal", type=int, default=None,
                        help="require this exact signal number")
    parser.add_argument("--min-spans", type=int, default=0,
                        help="require at least this many recorded spans")
    opts = parser.parse_args()
    try:
        with open(opts.file) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_crash_report: cannot parse {opts.file}: {e}")
    errors, spans = check(doc, opts.expect_signal, opts.min_spans)
    if errors:
        for e in errors:
            print(f"check_crash_report: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_crash_report: OK — {doc['signal_name']} report with "
          f"{spans} spans across "
          f"{len(doc['flight']['threads'])} threads in {opts.file}")


if __name__ == "__main__":
    main()
