#!/usr/bin/env python3
"""Emit BENCH_acd.json: machine-readable perf numbers for the ACD hot paths.

Runs the micro_model google-benchmark binary (aggregated vs direct NFI/FFI
passes, ns per communication pair), optionally a reduced-scale table1_nfi
end-to-end timing, and the sweep-engine comparison (table1_nfi and
fig6_topologies with artifact reuse vs --no-reuse, verifying the ACD cells
are bit-identical and recording the wall-clock speedup plus the engine's
cache counters and --metrics snapshot), then writes one JSON file so the
perf trajectory can be compared across commits. When micro_fold is built,
the Topology::fold strategy timings are recorded and the factorized-vs-
cold-dense speedup gated; when fig7_scaling is built, the million-rank
scaling points (p = 2^16..2^20) are lifted into the document and their
peak RSS gated below 1 GiB. When micro_obs is built,
the obs-layer primitives are timed too, and --with-table1 additionally
bounds the disabled-tracing overhead on table1_nfi (exits nonzero at
>= 1%).

Usage:
  scripts/bench_to_json.py [--build-dir build-release] [--out BENCH_acd.json]
                           [--min-time 0.5] [--with-table1] [--smoke]
                           [--skip-sweep] [--threads N]
"""

import argparse
import json
import math
import os
import shutil
import subprocess
import sys
import tempfile
import time


def run_micro_model(binary, min_time, repetitions, smoke):
    """Run the aggregated/direct micro benchmarks; return google-benchmark
    entries keyed by benchmark name. With repetitions > 1 the medians are
    used, which suppresses scheduler/frequency jitter on shared machines."""
    cmd = [
        binary,
        "--benchmark_filter=Aggregated|Direct",
        "--benchmark_format=json",
    ]
    if smoke:
        # Short but never single-iteration: these ns/pair numbers feed
        # the committed-baseline regression caps, and a one-iteration
        # timing swings far beyond the cap on a busy runner.
        cmd.append("--benchmark_min_time=0.05")
    else:
        cmd.append(f"--benchmark_min_time={min_time}")
        if repetitions > 1:
            cmd.append(f"--benchmark_repetitions={repetitions}")
            cmd.append("--benchmark_report_aggregates_only=true")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    data = json.loads(out.stdout)
    entries = {}
    for b in data["benchmarks"]:
        name = b["name"]
        if name.endswith("_median"):
            entries[name[: -len("_median")]] = b
        elif b.get("run_type") != "aggregate":
            entries.setdefault(name, b)
    return entries, simd_context(data)


def simd_context(data):
    """The dispatched/compiled SIMD tier the bench binary stamped into its
    JSON context (AddCustomContext in the bench mains). Absent keys mean a
    binary predating the dispatch layer; report "scalar" so gates and
    baseline matching treat it as the portable tier."""
    ctx = data.get("context", {})
    return {
        "simd": ctx.get("simd", "scalar"),
        "simd_compiled": ctx.get("simd_compiled", "scalar"),
    }


def ns_per_pair(entry):
    """Items are communication pairs, so items_per_second is pairs/s."""
    ips = entry.get("items_per_second")
    return 1e9 / ips if ips else None


def run_table1(binary):
    """Reduced-scale end-to-end Table I sweep (wall-clock seconds)."""
    args = [
        binary,
        "--particles=20000",
        "--level=8",
        "--procs=256",
        "--trials=1",
    ]
    start = time.monotonic()
    subprocess.run(args, check=True, capture_output=True, text=True)
    return time.monotonic() - start


def run_micro_obs(binary, min_time, smoke):
    """ns/op for the obs primitives (disabled span, enabled span, clock,
    counter, gauge, histogram), keyed by short name."""
    cmd = [binary, "--benchmark_filter=Obs", "--benchmark_format=json"]
    # Never drop to a single iteration here: these ns-scale ops feed the
    # overhead gate, and a one-iteration "measurement" is timer
    # granularity plus first-call setup (thread-local ring registration,
    # registry warm-up) — thousands of ns, tripping the gate spuriously.
    cmd.append("--benchmark_min_time=0.05" if smoke
               else f"--benchmark_min_time={min_time}")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    data = json.loads(out.stdout)
    results = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"].removeprefix("BM_Obs")
        results[name] = b["real_time"]  # ns (benchmark default unit)
    return results


def traced_table1_overhead(binary, obs_ns_per_op):
    """Measure the background-observability overhead bound on table1_nfi.

    Runs a reduced table1_nfi sweep with --trace and --metrics, counts the
    spans it actually records, and bounds the cost those same span sites
    pay in the *default* harness configuration: tracing compiled in but
    disabled, the flight recorder on (so the per-span price is
    max(SpanDisabled, SpanFlight) ns/op), plus one SamplerSample per
    sampler tick. The harness promises <1% of the run's wall clock —
    exceed it and this script exits nonzero (the CI assertion).
    """
    args = ["--particles=20000", "--level=8", "--procs=256", "--trials=1"]
    trace_path = "obs_overhead_trace.json"
    doc = run_sweep_harness(
        binary, args + [f"--trace={trace_path}", "--metrics"])
    with open(trace_path) as f:
        trace = json.load(f)
    os.remove(trace_path)
    events = [e for e in trace["traceEvents"] if e["ph"] in ("B", "E")]
    spans = len(events) // 2
    seconds = doc["elapsed_seconds"]
    span_disabled_ns = obs_ns_per_op.get("SpanDisabled", 0.0)
    span_flight_ns = obs_ns_per_op.get("SpanFlight", 0.0)
    span_cost_ns = max(span_disabled_ns, span_flight_ns)
    sampler_ns = obs_ns_per_op.get("SamplerSample", 0.0)
    ticks = doc.get("timeseries", {}).get("ticks")
    if ticks is None:  # pre-sampler binary: assume the default period
        ticks = max(1, int(seconds * 1000 / 250))
    overhead_pct = ((spans * span_cost_ns + ticks * sampler_ns)
                    / (seconds * 1e9) * 100.0)
    if overhead_pct >= 1.0:
        sys.exit(f"error: observability overhead bound {overhead_pct:.3f}%"
                 " >= 1% on table1_nfi (flight recorder + sampler on)")
    return {
        "args": args,
        "spans": spans,
        "elapsed_seconds": seconds,
        "span_disabled_ns": span_disabled_ns,
        "span_flight_ns": span_flight_ns,
        "sampler_sample_ns": sampler_ns,
        "sampler_ticks": ticks,
        "stage_profile": doc.get("stage_profile"),
        "disabled_overhead_pct": overhead_pct,
    }


def run_micro_curves(binary, min_time, smoke):
    """Per-curve encode timings (virtual per-point vs batched, ns/point)
    and the ordering-stage comparison (virtual encode + stable_sort vs
    batched encode + radix argsort) at the level-10/100k acceptance
    scenario."""
    cmd = [binary, "--benchmark_filter=Encode|Order",
           "--benchmark_format=json"]
    # Same rationale as run_micro_model: the ordering ns/point values
    # are gated against the committed baseline, so they need more than
    # one iteration to be comparable run-to-run.
    cmd.append("--benchmark_min_time=0.05" if smoke
               else f"--benchmark_min_time={min_time}")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    data = json.loads(out.stdout)
    per_point, batched, batched_scalar = {}, {}, {}
    order_virtual, order_radix, order_radix_scalar = {}, {}, {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        name, _, curve = b["name"].partition("/")
        ns = ns_per_pair(b)  # items are points here, so this is ns/point
        if name == "BM_EncodePerPoint":
            per_point[curve] = ns
        elif name == "BM_EncodeBatched":
            batched[curve] = ns
        elif name == "BM_EncodeBatchedScalar":
            batched_scalar[curve] = ns
        elif name == "BM_OrderVirtualStableSort":
            order_virtual[curve] = ns
        elif name == "BM_OrderBatchedRadix":
            order_radix[curve] = ns
        elif name == "BM_OrderBatchedRadixScalar":
            order_radix_scalar[curve] = ns
    curves = {}
    for curve in per_point:
        p, b = per_point[curve], batched.get(curve)
        curves[curve] = {
            "per_point_ns": p,
            "batched_ns": b,
            "speedup": p / b if p and b else None,
        }
        s = batched_scalar.get(curve)
        if s is not None:
            curves[curve]["batched_scalar_ns"] = s
            curves[curve]["simd_speedup"] = s / b if s and b else None
    ordering = {}
    for curve in order_virtual:
        v, r = order_virtual[curve], order_radix.get(curve)
        ordering[curve] = {
            "virtual_stable_sort_ns_per_point": v,
            "batched_radix_ns_per_point": r,
            "speedup": v / r if v and r else None,
        }
        s = order_radix_scalar.get(curve)
        if s is not None:
            ordering[curve]["batched_radix_scalar_ns_per_point"] = s
            ordering[curve]["simd_speedup"] = s / r if s and r else None
    return curves, ordering, simd_context(data)


def run_micro_fold(binary, min_time, smoke):
    """ns/distinct-pair for the Topology::fold strategies at p = 4096 (the
    old dense-table wall): factorized closed forms vs the dense path warm
    (table prebuilt) and cold (p² table rebuilt inside the timed region —
    the per-topology cost the pre-fold contract paid), plus the streamed
    graph-BFS point beyond the budget and the factorized fold at p = 2^20."""
    cmd = [binary, "--benchmark_filter=Fold", "--benchmark_format=json"]
    cmd.append("--benchmark_min_time=0" if smoke
               else f"--benchmark_min_time={min_time}")
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    data = json.loads(out.stdout)
    factorized, cold, warm, extras = {}, {}, {}, {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        name, _, topo = b["name"].partition("/")
        ns = ns_per_pair(b)
        if name == "BM_FoldFactorized":
            factorized[topo] = ns
        elif name == "BM_FoldDenseCold":
            cold[topo] = ns
        elif name == "BM_FoldDenseWarm":
            warm[topo] = ns
        elif name == "BM_FoldStreamed":
            extras["streamed_ring8192_ns_per_pair"] = ns
        elif name == "BM_FoldFactorizedMillion":
            extras["factorized_torus_p2e20_ns_per_pair"] = ns
    topologies = {}
    for topo, f in factorized.items():
        entry = {"factorized_ns_per_pair": f}
        c, w = cold.get(topo), warm.get(topo)
        if c is not None:
            entry["dense_cold_ns_per_pair"] = c
            entry["cold_speedup"] = c / f if f and c else None
        if w is not None:
            entry["dense_warm_ns_per_pair"] = w
            entry["warm_speedup"] = w / f if f and w else None
        topologies[topo] = entry
    return {"procs": 4096, "topologies": topologies, **extras}


def run_fig7_scaling(build_dir, smoke):
    """The million-rank Figure 7 points the factorized fold unlocked:
    p ∈ {2^16, 2^18, 2^20} on the torus, 60k particles, one trial. Peak
    RSS comes from the child's rusage (ru_maxrss, KiB on Linux) — the CI
    assertion that no stage materializes p×p state at p = 2^20."""
    binary = os.path.join(build_dir, "bench", "fig7_scaling")
    if not os.path.exists(binary):
        return None
    args = ["--json", "--particles=60000", "--level=10",
            "--min-procs=65536", "--max-procs=1048576", "--trials=1"]
    start = time.monotonic()
    with open("fig7_million.json", "w") as out:
        proc = subprocess.Popen([binary] + args, stdout=out,
                                stderr=subprocess.DEVNULL)
        _, status, rusage = os.wait4(proc.pid, 0)
        proc.returncode = os.waitstatus_to_exitcode(status)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        sys.exit(f"error: fig7_scaling exited {proc.returncode}")
    with open("fig7_million.json") as f:
        doc = json.load(f)
    os.remove("fig7_million.json")
    points = {}
    for cell in doc["study"]["cells"]:
        p = cell["procs"]
        if p not in (65536, 1048576):
            continue
        entry = points.setdefault(str(p), {})
        entry[cell["particle_curve"]] = {
            "nfi_acd": cell.get("nfi_acd"),
            "ffi_acd": cell.get("ffi_acd"),
        }
    return {
        "args": args,
        "elapsed_seconds": elapsed,
        "peak_rss_bytes": rusage.ru_maxrss * 1024,
        "points": points,
    }


def run_ext_dynamics(build_dir, smoke):
    """Incremental-vs-recompute dynamics timing. ext_dynamics drives the
    DynamicAcd engine along a drift trajectory (5% of particles per
    step), asserting each step's incremental totals are bit-identical to
    a full recompute, and attaches the median per-step speedup. Smoke
    runs the reduced preset (20k particles, p=256, dense accumulators);
    the full run uses the sparse-regime preset (250k, p=4096) where the
    delta path's netting matters most."""
    binary = os.path.join(build_dir, "bench", "ext_dynamics")
    if not os.path.exists(binary):
        return None
    args = ["--steps=4"] + ([] if smoke else ["--full"])
    doc = run_sweep_harness(binary, args)
    dyn = doc.get("dynamics")
    if not dyn:
        sys.exit("error: ext_dynamics: no 'dynamics' attachment in document")
    return {"args": args, "elapsed_seconds": doc["elapsed_seconds"], **dyn}


def check_gates(result, previous, smoke):
    """Regression gates against hard floors and the committed baseline.

    - The FFI aggregated path must beat the direct path by >= 1.5x (1.2x
      in smoke mode, where single-iteration timings are indicative only).
    - The ordering stage (batched encode + radix argsort) must beat the
      virtual-encode + stable_sort baseline by >= 3x (1.5x smoke),
      measured as the geometric mean over the benchmarked curves: the
      cheap-encode curves (morton) sit right at 3x with high run-to-run
      variance because the comparison sort dominates both shapes, while
      hilbert clears 5x -- a per-curve floor would flap on noise.
    - When the binary dispatched a SIMD tier, the in-binary SIMD-vs-
      forced-scalar ratios must hold: Morton/Gray batched encode >= 2x
      (1.4x smoke), NFI r4 aggregation >= 1.3x (1.1x smoke), Hilbert
      ordering >= 1.1x (full runs only). Morton ordering gets no SIMD floor:
      the radix scatter dominates that shape, so its ratio is ~1x by
      construction — it is covered by the baseline comparison instead.
    - Every topology with a dense-cold fold column must show the
      factorized fold >= 5x faster (3x smoke) than cold dense — the cold
      column pays the p² table build, which is the cost that walled the
      sweep at p = 4096 before Topology::fold.
    - The million-rank fig7 run must peak below 1 GiB RSS: the factorized
      fold contract promises no O(p²) state at p = 2^20.
    - The cell-graph scheduler must cut fig6 wall-clock >= 2x at 8
      worker threads vs 1 — enforced only on hosts with >= 8 cores.
    - A warm artifact-store rerun of table1_nfi must beat the cold run
      >= 4x (2x smoke) with nonzero store hits.
    - Committed-baseline comparison (ordering ns/point within 25%/50%,
      NFI r4 aggregated ns/pair within the same caps) runs only when the
      committed file recorded the same dispatched SIMD tier — comparing
      an avx2 run against a scalar baseline (or vice versa) would gate on
      the ISA delta, not a regression. On a tier mismatch the fallback is
      absolute ceilings, generous enough for any supported machine but
      low enough to catch a hot path falling off a cliff.
    Returns a list of failure strings; empty means all gates passed.
    """
    failures = []
    ffi_floor = 1.2 if smoke else 1.5
    order_floor = 1.5 if smoke else 3.0
    regress_cap = 0.50 if smoke else 0.25

    ffi_speedup = result.get("ffi", {}).get("speedup")
    if ffi_speedup is not None and ffi_speedup < ffi_floor:
        failures.append(f"ffi aggregated speedup {ffi_speedup:.2f}x "
                        f"< {ffi_floor}x floor")

    speedups = [o["speedup"] for o in result.get("ordering", {}).values()
                if o.get("speedup") is not None]
    if speedups:
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if geomean < order_floor:
            failures.append(f"ordering: batched+radix geomean speedup "
                            f"{geomean:.2f}x < {order_floor}x floor")

    fold_floor = 3.0 if smoke else 5.0
    for topo, f in result.get("fold", {}).get("topologies", {}).items():
        s = f.get("cold_speedup")
        if s is not None and s < fold_floor:
            failures.append(f"fold/{topo}: factorized vs cold-dense speedup "
                            f"{s:.2f}x < {fold_floor}x floor")

    rss = result.get("fig7_scaling", {}).get("peak_rss_bytes")
    if rss is not None and rss >= 1 << 30:
        failures.append(f"fig7_scaling: peak RSS {rss / 2**20:.0f} MiB "
                        f">= 1 GiB cap at p = 2^20")

    # The incremental dynamics engine must earn its keep: with 5% of the
    # particles moving per step, a DynamicAcd timestep (move + fold) must
    # be >= 5x faster than recomputing NFI+FFI from scratch (2x smoke —
    # the reduced preset's recompute is small enough that fixed per-step
    # costs eat into the ratio). Equality of the totals is asserted
    # inside the bench itself; this gate is purely about the speedup.
    dyn_floor = 2.0 if smoke else 5.0
    dyn_speedup = result.get("dynamics", {}).get("speedup_p50")
    if dyn_speedup is not None and dyn_speedup < dyn_floor:
        failures.append(f"dynamics: incremental timestep {dyn_speedup:.2f}x "
                        f"vs full recompute < {dyn_floor}x floor")

    # Cell-graph scheduler scaling: 8 workers must halve fig6 wall-clock
    # vs 1 worker — but only on hosts that actually have >= 8 cores
    # (same conditionality as the SIMD gates: a 1-core runner cannot
    # exhibit parallel speedup, and the bit-identity assertion inside
    # the measurement still ran).
    sched = result.get("scheduler_scaling")
    if sched and sched.get("speedup") is not None:
        if (sched.get("cpus") or 0) >= 8 and sched["speedup"] < 2.0:
            failures.append(
                f"scheduler_scaling: 8-thread speedup "
                f"{sched['speedup']:.2f}x < 2x floor on "
                f"{sched['cpus']}-core host")

    # Persistent artifact store: a warm rerun answers the expensive
    # stages (canonicalization, ordering, instances, histograms) from
    # disk, so it must beat the cold run by >= 4x (2x smoke, where the
    # shrunken grid leaves less recompute to save). Zero warm hits
    # already aborted inside the measurement.
    warm_floor = 2.0 if smoke else 4.0
    warm_speedup = result.get("warm_store", {}).get("speedup")
    if warm_speedup is not None and warm_speedup < warm_floor:
        failures.append(f"warm_store: warm rerun speedup "
                        f"{warm_speedup:.2f}x < {warm_floor}x floor")

    cur_isa = result.get("build", {}).get("simd", "scalar")
    if cur_isa != "scalar":
        encode_floor = 1.4 if smoke else 2.0
        for curve in ("morton", "gray"):
            s = result.get("curves", {}).get(curve, {}).get("simd_speedup")
            if s is not None and s < encode_floor:
                failures.append(f"encode/{curve}: simd speedup {s:.2f}x "
                                f"< {encode_floor}x floor on {cur_isa}")
        if not smoke:
            # Full runs only: the ordering ratio rides on a single radix
            # sort whose single-iteration smoke timing wobbles +-10%, right
            # at this floor.
            s = (result.get("ordering", {}).get("hilbert", {})
                 .get("simd_speedup"))
            if s is not None and s < 1.1:
                failures.append(f"ordering/hilbert: simd speedup {s:.2f}x "
                                f"< 1.1x floor on {cur_isa}")
        nfi_floor = 1.1 if smoke else 1.3
        s = result.get("nfi", {}).get("r4", {}).get("simd_speedup")
        if s is not None and s < nfi_floor:
            failures.append(f"nfi/r4: simd speedup {s:.2f}x "
                            f"< {nfi_floor}x floor on {cur_isa}")

    prev_isa = (previous or {}).get("build", {}).get("simd", "scalar")
    if previous is not None and prev_isa == cur_isa:
        old_ordering = previous.get("ordering", {})
        for curve, o in result.get("ordering", {}).items():
            new_ns = o.get("batched_radix_ns_per_point")
            old_ns = old_ordering.get(curve, {}).get(
                "batched_radix_ns_per_point")
            if new_ns and old_ns and new_ns > old_ns * (1.0 + regress_cap):
                failures.append(
                    f"ordering/{curve}: {new_ns:.2f} ns/point regressed "
                    f"> {regress_cap:.0%} over committed {old_ns:.2f}")
        new_ns = result.get("nfi", {}).get("r4", {}).get(
            "aggregated_ns_per_pair")
        old_ns = (previous.get("nfi", {}).get("r4", {})
                  .get("aggregated_ns_per_pair"))
        if new_ns and old_ns and new_ns > old_ns * (1.0 + regress_cap):
            failures.append(
                f"nfi/r4: {new_ns:.2f} ns/pair regressed "
                f"> {regress_cap:.0%} over committed {old_ns:.2f}")
    else:
        # ISA mismatch (or no committed file): the committed numbers came
        # off a different dispatch tier, so relative caps would measure
        # the ISA, not the code. Absolute ceilings only.
        order_cap = 240.0 if smoke else 120.0
        for curve, o in result.get("ordering", {}).items():
            new_ns = o.get("batched_radix_ns_per_point")
            if new_ns and new_ns > order_cap:
                failures.append(
                    f"ordering/{curve}: {new_ns:.2f} ns/point over the "
                    f"{order_cap:.0f} ns absolute cap (no {cur_isa} "
                    f"baseline committed)")
        nfi_cap = 100.0 if smoke else 50.0
        new_ns = result.get("nfi", {}).get("r4", {}).get(
            "aggregated_ns_per_pair")
        if new_ns and new_ns > nfi_cap:
            failures.append(
                f"nfi/r4: {new_ns:.2f} ns/pair over the {nfi_cap:.0f} ns "
                f"absolute cap (no {cur_isa} baseline committed)")
    return failures


def run_sweep_harness(binary, extra):
    """Run one sweep-engine bench with --json; return the parsed document."""
    out = subprocess.run([binary, "--json"] + extra, check=True,
                         capture_output=True, text=True)
    return json.loads(out.stdout)


def sweep_comparison(build_dir, name, extra, threads):
    """Time `name` with artifact reuse vs --no-reuse on the same grid.

    The two paths must produce bit-identical ACD cells (the engine folds
    exact integer histograms, so reuse never changes the arithmetic) —
    any difference is a correctness bug and aborts. A run whose cache
    records zero hits means the engine stopped sharing artifacts across
    cells, which defeats its purpose — that also aborts, and doubles as
    the CI assertion on the hit counters.
    """
    binary = os.path.join(build_dir, "bench", name)
    if not os.path.exists(binary):
        return None
    extra = list(extra) + [f"--threads={threads}"]
    # --metrics embeds the obs registry snapshot (cache gauges, pool
    # queue-wait histograms) in the document; round-trip it into the
    # BENCH entry so the perf numbers carry their runtime behavior.
    reused = run_sweep_harness(binary, extra + ["--metrics"])
    direct = run_sweep_harness(binary, extra + ["--no-reuse"])
    if reused["study"]["cells"] != direct["study"]["cells"]:
        sys.exit(f"error: {name}: reuse and --no-reuse ACD cells differ")
    cache = reused["study"]["sweep"]
    if cache["hits"] == 0:
        sys.exit(f"error: {name}: sweep engine recorded zero cache hits")
    metrics = reused.get("metrics")
    if not metrics or "sweep.cache.peak_bytes" not in metrics.get("gauges",
                                                                  {}):
        sys.exit(f"error: {name}: --metrics snapshot missing sweep gauges")
    reuse_s = reused["elapsed_seconds"]
    direct_s = direct["elapsed_seconds"]
    return {
        "args": extra,
        "cells": len(reused["study"]["cells"]),
        "reuse_seconds": reuse_s,
        "direct_seconds": direct_s,
        "speedup": direct_s / reuse_s if reuse_s > 0 else None,
        "cache": cache,
        "build": reused.get("build"),
        "metrics": metrics,
        # The flight recorder's per-stage self/total aggregate: committed
        # with the baseline so a later gate failure can be attributed to
        # the stage that slowed (scripts/attribute_regression.py).
        "stage_profile": reused.get("stage_profile"),
    }


def scheduler_scaling(build_dir, name, extra):
    """Time the cell-graph scheduler at 1 worker vs 8 on the same grid.

    Both runs use the reuse engine, so the ratio isolates the scheduler's
    concurrency (independent cells flowing through the task graph) from
    artifact sharing. The two thread counts must produce bit-identical
    ACD cells — the replay design makes thread count invisible to the
    arithmetic, and any divergence aborts. The host's cpu_count is
    recorded alongside: the >= 2x gate only binds on machines with at
    least 8 cores (a 1-core CI runner cannot exhibit parallel speedup,
    same pattern as the SIMD-conditional gates).
    """
    binary = os.path.join(build_dir, "bench", name)
    if not os.path.exists(binary):
        return None
    serial = run_sweep_harness(binary, list(extra) + ["--threads=1"])
    threaded = run_sweep_harness(binary, list(extra) + ["--threads=8"])
    if serial["study"]["cells"] != threaded["study"]["cells"]:
        sys.exit(f"error: {name}: 1-thread and 8-thread ACD cells differ")
    serial_s = serial["elapsed_seconds"]
    threaded_s = threaded["elapsed_seconds"]
    return {
        "bench": name,
        "args": list(extra),
        "cpus": os.cpu_count(),
        "cells": len(serial["study"]["cells"]),
        "serial_seconds": serial_s,
        "threads8_seconds": threaded_s,
        "speedup": serial_s / threaded_s if threaded_s > 0 else None,
    }


def warm_store_comparison(build_dir, name, extra, threads):
    """Time a cold artifact-store run vs a warm rerun of the same grid.

    The cold run starts from an empty store directory (--store-clear) and
    spills its artifacts to disk; the warm run reopens the directory and
    must answer its expensive stages from the store. Cells must be
    bit-identical across the two runs (the store round-trips exact
    serialized artifacts), and a warm run with zero store hits means
    persistence is broken — both abort. The store directory is a temp
    dir, deleted afterwards, so the measurement never leaks state into a
    later invocation.
    """
    binary = os.path.join(build_dir, "bench", name)
    if not os.path.exists(binary):
        return None
    store_dir = tempfile.mkdtemp(prefix="sfcacd_bench_store_")
    try:
        base = list(extra) + [f"--threads={threads}",
                              f"--store={store_dir}"]
        cold = run_sweep_harness(binary, base + ["--store-clear"])
        warm = run_sweep_harness(binary, base)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    if cold["study"]["cells"] != warm["study"]["cells"]:
        sys.exit(f"error: {name}: cold-store and warm-store ACD cells "
                 "differ")
    warm_store = warm.get("artifact_store", {})
    if warm_store.get("hits", 0) == 0:
        sys.exit(f"error: {name}: warm run recorded zero store hits")
    cold_s = cold["elapsed_seconds"]
    warm_s = warm["elapsed_seconds"]
    return {
        "bench": name,
        "args": list(extra),
        "threads": threads,
        "cells": len(warm["study"]["cells"]),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else None,
        "cold_store": cold.get("artifact_store"),
        "warm_store": warm_store,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-release",
                        help="CMake build directory holding bench binaries")
    parser.add_argument("--out", default="BENCH_acd.json")
    parser.add_argument("--min-time", type=float, default=0.5,
                        help="google-benchmark min time per benchmark (s)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="benchmark repetitions (medians are reported)")
    parser.add_argument("--with-table1", action="store_true",
                        help="also time a reduced-scale table1_nfi run")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal iterations; timings are indicative only")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the sweep-engine reuse/no-reuse comparison")
    parser.add_argument("--threads", type=int, default=1,
                        help="worker threads for the sweep benches "
                             "(1 = serial, 0 = all cores)")
    opts = parser.parse_args()

    micro = os.path.join(opts.build_dir, "bench", "micro_model")
    if not os.path.exists(micro):
        sys.exit(f"error: {micro} not found — build the bench targets first")

    entries, build = run_micro_model(micro, opts.min_time, opts.repetitions,
                                     opts.smoke)

    nfi = {}
    for radius in ("r1", "r4"):
        agg = entries.get(f"BM_NfiAggregated/{radius}")
        direct = entries.get(f"BM_NfiDirect/{radius}")
        if not agg or not direct:
            continue
        a, d = ns_per_pair(agg), ns_per_pair(direct)
        nfi[radius] = {
            "aggregated_ns_per_pair": a,
            "direct_ns_per_pair": d,
            "speedup": d / a if a and d else None,
        }
        scalar = entries.get(f"BM_NfiAggregatedScalar/{radius}")
        if scalar:
            s = ns_per_pair(scalar)
            nfi[radius]["aggregated_scalar_ns_per_pair"] = s
            nfi[radius]["simd_speedup"] = s / a if s and a else None
    ffi = {}
    agg, direct = entries.get("BM_FfiAggregated"), entries.get("BM_FfiDirect")
    if agg and direct:
        a, d = ns_per_pair(agg), ns_per_pair(direct)
        ffi = {
            "aggregated_ns_per_pair": a,
            "direct_ns_per_pair": d,
            "speedup": d / a if a and d else None,
        }

    result = {
        "benchmark": "acd_rank_pair_aggregation",
        "scenario": {
            "level": 10,
            "particles": 100000,
            "procs": 256,
            "distribution": "uniform",
            "topology": "torus",
        },
        "smoke": opts.smoke,
        "build": build,
        "nfi": nfi,
        "ffi": ffi,
    }

    micro_curves = os.path.join(opts.build_dir, "bench", "micro_curves")
    if os.path.exists(micro_curves):
        curves, ordering, curves_build = run_micro_curves(
            micro_curves, opts.min_time, opts.smoke)
        if curves_build != build:
            sys.exit("error: micro_curves and micro_model dispatched "
                     f"different SIMD tiers ({curves_build} vs {build}) — "
                     "mixed-provenance numbers are not comparable")
        result["curves"] = curves
        result["ordering"] = ordering

    micro_fold = os.path.join(opts.build_dir, "bench", "micro_fold")
    if os.path.exists(micro_fold):
        result["fold"] = run_micro_fold(micro_fold, opts.min_time, opts.smoke)

    fig7 = run_fig7_scaling(opts.build_dir, opts.smoke)
    if fig7:
        result["fig7_scaling"] = fig7

    dynamics = run_ext_dynamics(opts.build_dir, opts.smoke)
    if dynamics:
        result["dynamics"] = dynamics

    micro_obs = os.path.join(opts.build_dir, "bench", "micro_obs")
    obs = {}
    if os.path.exists(micro_obs):
        obs["ns_per_op"] = run_micro_obs(micro_obs, opts.min_time,
                                         opts.smoke)

    if opts.with_table1:
        table1 = os.path.join(opts.build_dir, "bench", "table1_nfi")
        if os.path.exists(table1):
            result["table1_nfi_reduced"] = {
                "particles": 20000,
                "level": 8,
                "procs": 256,
                "seconds": run_table1(table1),
            }
            if "SpanDisabled" in obs.get("ns_per_op", {}):
                obs["table1_nfi"] = traced_table1_overhead(
                    table1, obs["ns_per_op"])
    if obs:
        result["observability"] = obs

    if not opts.skip_sweep:
        # The engine's reuse leverage is scale-independent (it comes from
        # the grid combinatorics, not n), so smoke mode shrinks n/p to fit
        # a CI budget while still asserting bit-identity and nonzero hits.
        if opts.smoke:
            grids = {
                "table1_nfi": ["--particles=20000", "--level=8",
                               "--procs=1024"],
                "fig6_topologies": ["--particles=20000", "--level=8",
                                    "--procs=1024"],
            }
        else:
            grids = {
                "table1_nfi": [],  # paper defaults: 250k particles, p=65536
                "fig6_topologies": [],  # reduced preset: 150k, p=4096
            }
        sweeps = {}
        for name, extra in grids.items():
            comparison = sweep_comparison(opts.build_dir, name, extra,
                                          opts.threads)
            if comparison:
                sweeps[name] = comparison
        if sweeps:
            result["sweep_engine"] = sweeps
        scaling = scheduler_scaling(opts.build_dir, "fig6_topologies",
                                    grids["fig6_topologies"])
        if scaling:
            result["scheduler_scaling"] = scaling
        warm = warm_store_comparison(opts.build_dir, "table1_nfi",
                                     grids["table1_nfi"], opts.threads)
        if warm:
            result["warm_store"] = warm

    # The committed file (if any) is the regression baseline — read it
    # before overwriting.
    previous = None
    if os.path.exists(opts.out):
        try:
            with open(opts.out) as f:
                previous = json.load(f)
        except (OSError, json.JSONDecodeError):
            previous = None
    failures = check_gates(result, previous, opts.smoke)

    with open(opts.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"wrote {opts.out}")
    print(f"  simd: {build['simd']} dispatched "
          f"({build['simd_compiled']} compiled)")
    for radius, r in nfi.items():
        speed = r["speedup"]
        simd = (f", simd {r['simd_speedup']:.2f}x"
                if r.get("simd_speedup") else "")
        print(f"  nfi/{radius}: {r['aggregated_ns_per_pair']:.2f} ns/pair "
              f"aggregated vs {r['direct_ns_per_pair']:.2f} direct "
              f"({speed:.2f}x{simd})" if speed
              else f"  nfi/{radius}: incomplete")
    if ffi and ffi.get("speedup"):
        print(f"  ffi: {ffi['aggregated_ns_per_pair']:.2f} ns/pair aggregated "
              f"vs {ffi['direct_ns_per_pair']:.2f} direct "
              f"({ffi['speedup']:.2f}x)")
    for name, s in result.get("sweep_engine", {}).items():
        print(f"  sweep/{name}: {s['reuse_seconds']:.2f}s reuse vs "
              f"{s['direct_seconds']:.2f}s direct ({s['speedup']:.2f}x), "
              f"{s['cache']['hits']} cache hits / "
              f"{s['cache']['misses']} misses")
    sched = result.get("scheduler_scaling")
    if sched and sched.get("speedup") is not None:
        print(f"  scheduler: {sched['serial_seconds']:.2f}s @1 thread vs "
              f"{sched['threads8_seconds']:.2f}s @8 "
              f"({sched['speedup']:.2f}x on {sched['cpus']} cpus)")
    warm = result.get("warm_store")
    if warm and warm.get("speedup") is not None:
        print(f"  warm_store: {warm['cold_seconds']:.2f}s cold vs "
              f"{warm['warm_seconds']:.2f}s warm "
              f"({warm['speedup']:.2f}x, "
              f"{warm['warm_store']['hits']} store hits)")
    obs_out = result.get("observability", {})
    for name, ns in sorted(obs_out.get("ns_per_op", {}).items()):
        print(f"  obs/{name}: {ns:.2f} ns/op")
    if "table1_nfi" in obs_out:
        o = obs_out["table1_nfi"]
        print(f"  obs/table1_nfi: {o['spans']} spans, disabled-tracing "
              f"overhead bound {o['disabled_overhead_pct']:.5f}% (< 1%)")
    for curve, c in sorted(result.get("curves", {}).items()):
        if c.get("speedup"):
            simd = (f", simd {c['simd_speedup']:.2f}x"
                    if c.get("simd_speedup") else "")
            print(f"  encode/{curve}: {c['per_point_ns']:.2f} ns/point "
                  f"virtual vs {c['batched_ns']:.2f} batched "
                  f"({c['speedup']:.2f}x{simd})")
    for topo, f in sorted(result.get("fold", {}).get("topologies", {})
                          .items()):
        cold = (f", {f['cold_speedup']:.0f}x vs cold-dense"
                if f.get("cold_speedup") else "")
        warm = (f", {f['warm_speedup']:.2f}x vs warm-dense"
                if f.get("warm_speedup") else "")
        print(f"  fold/{topo}: {f['factorized_ns_per_pair']:.2f} ns/pair "
              f"factorized{cold}{warm}")
    if "fig7_scaling" in result:
        f7 = result["fig7_scaling"]
        print(f"  fig7 @ 2^20 ranks: {f7['elapsed_seconds']:.1f}s, peak RSS "
              f"{f7['peak_rss_bytes'] / 2**20:.0f} MiB (< 1024)")
    if "dynamics" in result:
        dyn = result["dynamics"]
        print(f"  dynamics: incremental timestep {dyn['speedup_p50']:.2f}x "
              f"vs full recompute at move fraction "
              f"{dyn['move_fraction']:.2f} ({dyn['steps']} steps)")
    for curve, o in sorted(result.get("ordering", {}).items()):
        if o.get("speedup"):
            simd = (f", simd {o['simd_speedup']:.2f}x"
                    if o.get("simd_speedup") else "")
            print(f"  ordering/{curve}: "
                  f"{o['virtual_stable_sort_ns_per_point']:.2f} ns/point "
                  f"baseline vs {o['batched_radix_ns_per_point']:.2f} "
                  f"batched+radix ({o['speedup']:.2f}x{simd})")
    if failures:
        for f in failures:
            print(f"GATE FAILED: {f}", file=sys.stderr)
        attribute_failures(previous, result)
        sys.exit(1)


def attribute_failures(previous, result):
    """On a gate failure, name the suspect stage automatically.

    Diffs the committed baseline's stage profiles against this run's
    (scripts/attribute_regression.py) so the CI log says *which stage*
    slowed, not just that a threshold tripped. Best-effort: a baseline
    predating the flight recorder has no profiles and the gate failure
    stands on its own.
    """
    if previous is None:
        return
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    try:
        import attribute_regression
    except ImportError:
        return
    base_profiles = attribute_regression.extract_profiles(previous)
    cur_profiles = attribute_regression.extract_profiles(result)
    shared = [k for k in cur_profiles if k in base_profiles]
    if not shared:
        print("attribution: no stage profiles in both documents; "
              "re-run after committing a baseline with the flight "
              "recorder enabled", file=sys.stderr)
        return
    for label in shared:
        rows = attribute_regression.attribute(base_profiles[label],
                                              cur_profiles[label])
        attribute_regression.report(label, rows, threshold_pct=1.0,
                                    top=5, out=sys.stderr)


if __name__ == "__main__":
    main()
