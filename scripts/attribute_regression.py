#!/usr/bin/env python3
"""Name the pipeline stage responsible for a perf regression.

Every bench-harness document (and every sweep entry in BENCH_acd.json)
carries a "stage_profile": the flight recorder's per-span-name aggregate
{count, total_ns, self_ns}, where self time excludes nested child spans.
Given a baseline and a current document, this script diffs the two
profiles stage by stage and ranks the stages by how much *self* time
they gained — the stage at the top is where the regression lives, not
merely a parent that inherited it.

Deltas are compared on normalized shares (each stage's self_ns over the
profile's total self_ns) as well as absolute nanoseconds, so a uniformly
slower machine doesn't blame every stage equally: a pure clock-speed
difference moves absolute times but leaves shares flat, while a real
stage regression moves its share.

Accepts either document shape:
  - a bench harness --json document: {"stage_profile": {...}, ...}
  - a BENCH_acd.json: stage profiles under sweep_engine.<name>.stage_profile
    (each sweep entry is diffed against its namesake)

Usage:
  scripts/attribute_regression.py BASELINE.json CURRENT.json [--top N]
                                  [--json] [--threshold-pct 1.0]

Exit status is 0 whether or not a culprit is found — the caller
(scripts/bench_to_json.py invokes this automatically when a perf gate
trips) owns the failure decision; this tool only explains it.
"""

import argparse
import json
import sys


def extract_profiles(doc):
    """Return {label: stages-dict} for every stage profile in `doc`."""
    profiles = {}
    prof = doc.get("stage_profile")
    if isinstance(prof, dict) and isinstance(prof.get("stages"), dict):
        profiles[""] = prof["stages"]
    for name, entry in doc.get("sweep_engine", {}).items():
        prof = entry.get("stage_profile")
        if isinstance(prof, dict) and isinstance(prof.get("stages"), dict):
            profiles[name] = prof["stages"]
    return profiles


def attribute(baseline, current):
    """Diff two stage dicts; return per-stage rows sorted by blame.

    Each row: {stage, baseline_self_ns, current_self_ns, delta_self_ns,
    baseline_share, current_share, delta_share, delta_total_ns,
    count_ratio}. Sorted by delta_share descending (the normalized blame
    signal), ties by delta_self_ns.
    """
    base_total = sum(s.get("self_ns", 0) for s in baseline.values()) or 1
    cur_total = sum(s.get("self_ns", 0) for s in current.values()) or 1
    rows = []
    for stage in sorted(set(baseline) | set(current)):
        b = baseline.get(stage, {})
        c = current.get(stage, {})
        b_self = b.get("self_ns", 0)
        c_self = c.get("self_ns", 0)
        b_share = b_self / base_total
        c_share = c_self / cur_total
        b_count = b.get("count", 0)
        c_count = c.get("count", 0)
        rows.append({
            "stage": stage,
            "baseline_self_ns": b_self,
            "current_self_ns": c_self,
            "delta_self_ns": c_self - b_self,
            "baseline_share": b_share,
            "current_share": c_share,
            "delta_share": c_share - b_share,
            "delta_total_ns": c.get("total_ns", 0) - b.get("total_ns", 0),
            # A count ratio far from 1 means the *shape* of the run
            # changed (more work), not just its speed.
            "count_ratio": (c_count / b_count) if b_count else None,
        })
    rows.sort(key=lambda r: (-r["delta_share"], -r["delta_self_ns"]))
    return rows


def culprit(rows, threshold_pct):
    """The top row, if its share moved by at least threshold_pct points."""
    if rows and rows[0]["delta_share"] * 100.0 >= threshold_pct:
        return rows[0]
    return None


def fmt_ms(ns):
    return f"{ns / 1e6:+.2f} ms"


def report(label, rows, threshold_pct, top, out=sys.stdout):
    prefix = f"{label}: " if label else ""
    top_row = culprit(rows, threshold_pct)
    if top_row is None:
        print(f"{prefix}no stage gained more than "
              f"{threshold_pct:.1f}% of self time — the regression is "
              "outside the instrumented stages (or spread evenly: suspect "
              "the machine, not one stage)", file=out)
    else:
        extra = ""
        ratio = top_row["count_ratio"]
        if ratio is not None and not 0.9 <= ratio <= 1.1:
            extra = (f" [span count x{ratio:.2f} — the stage runs "
                     "a different amount of work, not just slower]")
        print(f"{prefix}suspect stage: {top_row['stage']} "
              f"(self-time share {top_row['baseline_share']:.1%} -> "
              f"{top_row['current_share']:.1%}, "
              f"{fmt_ms(top_row['delta_self_ns'])}){extra}", file=out)
    for r in rows[:top]:
        print(f"{prefix}  {r['stage']}: share "
              f"{r['baseline_share']:.1%} -> {r['current_share']:.1%} "
              f"({r['delta_share']:+.1%}), self {fmt_ms(r['delta_self_ns'])}",
              file=out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline JSON document")
    parser.add_argument("current", help="current JSON document")
    parser.add_argument("--top", type=int, default=5,
                        help="rows to print per profile")
    parser.add_argument("--threshold-pct", type=float, default=1.0,
                        help="minimum self-time share gain (percentage "
                             "points) to name a culprit")
    parser.add_argument("--json", action="store_true",
                        help="emit the ranked rows as JSON instead of text")
    opts = parser.parse_args()

    with open(opts.baseline) as f:
        base_doc = json.load(f)
    with open(opts.current) as f:
        cur_doc = json.load(f)

    base_profiles = extract_profiles(base_doc)
    cur_profiles = extract_profiles(cur_doc)
    shared = [k for k in cur_profiles if k in base_profiles]
    if not shared:
        sys.exit("error: no stage_profile section found in both documents "
                 "(need harness --json output or BENCH_acd.json sweep "
                 "entries from builds with the flight recorder)")

    if opts.json:
        out = {label or "document": attribute(base_profiles[label],
                                              cur_profiles[label])
               for label in shared}
        json.dump(out, sys.stdout, indent=2)
        print()
        return

    for label in shared:
        rows = attribute(base_profiles[label], cur_profiles[label])
        report(label, rows, opts.threshold_pct, opts.top)


if __name__ == "__main__":
    main()
